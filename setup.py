import setuptools; setuptools.setup()
