"""Tests for approximation configurations."""

import pytest

from repro.core import (
    ACCURATE_CONFIG,
    ApproximationConfig,
    ConfigurationError,
    DEFAULT_WORK_GROUP,
    FIGURE8_CONFIGS,
    ROWS1,
    ROWS1_LI,
    ROWS1_NN,
    ROWS2_NN,
    STENCIL1,
    STENCIL1_NN,
    WORK_GROUP_CANDIDATES,
    default_configurations,
)


class TestConfigBasics:
    def test_accurate_config(self):
        assert ACCURATE_CONFIG.is_accurate
        assert ACCURATE_CONFIG.label == "Accurate"
        assert ACCURATE_CONFIG.work_group == DEFAULT_WORK_GROUP

    def test_labels_match_paper_terminology(self):
        assert ROWS1_NN.label == "Rows1:NN"
        assert ROWS2_NN.label == "Rows2:NN"
        assert ROWS1_LI.label == "Rows1:LI"
        assert STENCIL1_NN.label == "Stencil1:NN"

    def test_figure8_configs(self):
        labels = [c.label for c in FIGURE8_CONFIGS]
        assert labels == ["Rows1:NN", "Rows2:NN", "Rows1:LI", "Stencil1:NN"]

    def test_with_work_group(self):
        shaped = ROWS1_NN.with_work_group((32, 8))
        assert shaped.work_group == (32, 8)
        assert shaped.scheme == ROWS1
        assert ROWS1_NN.work_group == DEFAULT_WORK_GROUP  # original untouched

    def test_describe_mentions_scheme(self):
        assert "rows" in ROWS1_NN.describe()
        assert "16x16" in ROWS1_NN.describe()

    def test_invalid_reconstruction(self):
        with pytest.raises(ConfigurationError):
            ApproximationConfig(scheme=ROWS1, reconstruction="cubic")

    def test_invalid_work_group(self):
        with pytest.raises(ConfigurationError):
            ApproximationConfig(scheme=ROWS1, work_group=(0, 16))


class TestHaloValidation:
    def test_stencil_requires_halo(self):
        with pytest.raises(ConfigurationError):
            STENCIL1_NN.validate_for_halo(0)
        STENCIL1_NN.validate_for_halo(1)

    def test_rows_work_for_any_halo(self):
        ROWS1_NN.validate_for_halo(0)
        ROWS1_NN.validate_for_halo(2)

    def test_default_configurations_respect_halo(self):
        with_halo = default_configurations(1)
        without_halo = default_configurations(0)
        assert any(c.scheme == STENCIL1 for c in with_halo)
        assert not any(c.scheme == STENCIL1 for c in without_halo)
        assert len(with_halo) == 4
        assert len(without_halo) == 3


class TestWorkGroupCandidates:
    def test_paper_shapes_present(self):
        assert (2, 128) in WORK_GROUP_CANDIDATES
        assert (128, 2) in WORK_GROUP_CANDIDATES
        assert (16, 16) in WORK_GROUP_CANDIDATES
        assert len(WORK_GROUP_CANDIDATES) == 10

    def test_all_shapes_fit_the_device_limit(self):
        assert all(x * y <= 256 for x, y in WORK_GROUP_CANDIDATES)
        assert all(x & (x - 1) == 0 and y & (y - 1) == 0 for x, y in WORK_GROUP_CANDIDATES)
