"""Tests for the perforation schemes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ACCURATE,
    COLS1,
    ColumnPerforation,
    ROWS1,
    ROWS2,
    RandomPerforation,
    RowPerforation,
    STENCIL1,
    SchemeError,
    StencilPerforation,
    available_schemes,
    get_scheme,
)


class TestAccurateScheme:
    def test_loads_everything(self):
        mask = ACCURATE.loaded_mask(18, 18, halo=1)
        assert mask.all()
        assert ACCURATE.loaded_fraction(18, 18, 1) == 1.0
        assert ACCURATE.kind == "none"
        assert not ACCURATE.requires_halo()

    def test_invalid_tile_rejected(self):
        with pytest.raises(SchemeError):
            ACCURATE.loaded_mask(0, 8)
        with pytest.raises(SchemeError):
            ACCURATE.loaded_mask(8, 8, halo=-1)
        with pytest.raises(SchemeError):
            ACCURATE.loaded_mask(8, 8, halo=4)


class TestRowPerforation:
    def test_rows1_loads_every_other_row(self):
        mask = ROWS1.loaded_mask(18, 18, halo=1)
        assert mask[0].all()
        assert not mask[1].any()
        assert mask[2].all()
        assert ROWS1.loaded_fraction(18, 18, 1) == pytest.approx(0.5)

    def test_rows2_loads_one_in_four(self):
        mask = ROWS2.loaded_mask(20, 18, halo=1)
        assert mask.sum() == 5 * 18
        assert ROWS2.step == 4

    def test_rows_loaded_fraction(self):
        assert ROWS1.rows_loaded_fraction(18, 1) == pytest.approx(0.5)
        assert ROWS2.rows_loaded_fraction(20, 1) == pytest.approx(0.25)

    def test_invalid_step(self):
        with pytest.raises(SchemeError):
            RowPerforation(step=1)

    def test_names(self):
        assert ROWS1.name == "rows1"
        assert ROWS2.name == "rows2"
        assert "rows" in ROWS1.describe()

    @given(step=st.integers(min_value=2, max_value=8), tile=st.sampled_from([8, 16, 18, 20, 32]))
    @settings(max_examples=40, deadline=None)
    def test_loaded_fraction_close_to_inverse_step(self, step, tile):
        scheme = RowPerforation(step=step)
        fraction = scheme.loaded_fraction(tile, tile)
        assert fraction == pytest.approx(np.ceil(tile / step) / tile)


class TestColumnPerforation:
    def test_cols_loads_every_other_column(self):
        mask = COLS1.loaded_mask(8, 8)
        assert mask[:, 0].all()
        assert not mask[:, 1].any()

    def test_invalid_step(self):
        with pytest.raises(SchemeError):
            ColumnPerforation(step=0)


class TestStencilPerforation:
    def test_loads_core_only(self):
        mask = STENCIL1.loaded_mask(18, 18, halo=1)
        assert mask[1:17, 1:17].all()
        assert not mask[0].any()
        assert not mask[:, 0].any()
        assert not mask[-1].any()

    def test_requires_halo(self):
        assert STENCIL1.requires_halo()
        with pytest.raises(SchemeError):
            STENCIL1.loaded_mask(16, 16, halo=0)

    def test_loaded_fraction_with_larger_halo(self):
        fraction = STENCIL1.loaded_fraction(20, 20, halo=2)
        assert fraction == pytest.approx(16 * 16 / (20 * 20))


class TestRandomPerforation:
    def test_fraction_respected_approximately(self):
        scheme = RandomPerforation(fraction=0.3, seed=1)
        mask = scheme.loaded_mask(64, 64)
        assert 0.2 < mask.mean() < 0.4

    def test_always_loads_at_least_one(self):
        scheme = RandomPerforation(fraction=0.0001, seed=3)
        assert scheme.loaded_mask(8, 8).sum() >= 1

    def test_deterministic_for_seed(self):
        a = RandomPerforation(fraction=0.5, seed=9).loaded_mask(16, 16)
        b = RandomPerforation(fraction=0.5, seed=9).loaded_mask(16, 16)
        np.testing.assert_array_equal(a, b)

    def test_invalid_fraction(self):
        with pytest.raises(SchemeError):
            RandomPerforation(fraction=0.0)
        with pytest.raises(SchemeError):
            RandomPerforation(fraction=1.5)


class TestRegistry:
    def test_available_schemes(self):
        names = available_schemes()
        assert {"accurate", "rows1", "rows2", "cols1", "stencil1"} <= set(names)

    def test_get_scheme(self):
        assert get_scheme("rows1") == ROWS1
        assert isinstance(get_scheme("stencil1"), StencilPerforation)

    def test_get_unknown_scheme(self):
        with pytest.raises(SchemeError):
            get_scheme("hexagonal")


class TestMaskInvariants:
    @given(
        tile=st.sampled_from([8, 16, 18, 20]),
        halo=st.sampled_from([0, 1, 2]),
        which=st.sampled_from(["rows1", "rows2", "cols1", "accurate"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_fraction_matches_mask_mean(self, tile, halo, which):
        scheme = get_scheme(which)
        if 2 * halo >= tile:
            return
        mask = scheme.loaded_mask(tile, tile, halo)
        assert scheme.loaded_fraction(tile, tile, halo) == pytest.approx(mask.mean())

    @given(tile=st.sampled_from([8, 16, 32]), halo=st.sampled_from([1, 2]))
    @settings(max_examples=30, deadline=None)
    def test_stencil_mask_mean(self, tile, halo):
        if 2 * halo >= tile:
            return
        mask = STENCIL1.loaded_mask(tile, tile, halo)
        assert STENCIL1.loaded_fraction(tile, tile, halo) == pytest.approx(mask.mean())
