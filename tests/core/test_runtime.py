"""Tests for the quality-aware runtime."""

import pytest

from repro.apps import GaussianApp
from repro.core import QualityAwareRuntime, TuningError


@pytest.fixture()
def calibration_images(flat_image_64, natural_image_64):
    return [flat_image_64, natural_image_64]


class TestCalibration:
    def test_calibrate_produces_entries_sorted_by_speedup(self, calibration_images, device):
        runtime = QualityAwareRuntime(GaussianApp(), error_budget=0.05, device=device)
        entries = runtime.calibrate(calibration_images)
        assert len(entries) == 4  # the paper's four configurations
        speedups = [e.speedup for e in entries]
        assert speedups == sorted(speedups, reverse=True)
        assert all(e.mean_error <= e.max_error for e in entries)

    def test_calibration_required_before_select(self, device):
        runtime = QualityAwareRuntime(GaussianApp(), error_budget=0.05, device=device)
        with pytest.raises(TuningError):
            runtime.select()

    def test_empty_calibration_rejected(self, device):
        runtime = QualityAwareRuntime(GaussianApp(), error_budget=0.05, device=device)
        with pytest.raises(TuningError):
            runtime.calibrate([])

    def test_invalid_budget_rejected(self, device):
        with pytest.raises(TuningError):
            QualityAwareRuntime(GaussianApp(), error_budget=0.0, device=device)


class TestSelection:
    def test_generous_budget_selects_fast_config(self, calibration_images, device):
        runtime = QualityAwareRuntime(GaussianApp(), error_budget=0.10, device=device)
        runtime.calibrate(calibration_images)
        assert not runtime.selected.is_accurate

    def test_tiny_budget_falls_back_to_accurate(self, calibration_images, device):
        runtime = QualityAwareRuntime(GaussianApp(), error_budget=1e-9, device=device)
        runtime.calibrate(calibration_images)
        assert runtime.selected.is_accurate

    def test_report_mentions_selection(self, calibration_images, device):
        runtime = QualityAwareRuntime(GaussianApp(), error_budget=0.10, device=device)
        runtime.calibrate(calibration_images)
        report = runtime.report()
        assert "selected" in report
        assert "speedup" in report


class TestExecution:
    def test_execute_with_monitoring(self, calibration_images, natural_image_64, device):
        runtime = QualityAwareRuntime(GaussianApp(), error_budget=0.10, device=device)
        runtime.calibrate(calibration_images)
        record = runtime.execute(natural_image_64, monitor=True)
        assert record.output.shape == natural_image_64.shape
        assert record.error is not None
        assert record.within_budget
        assert len(runtime.history) == 1

    def test_execute_without_monitoring_skips_reference(self, calibration_images, natural_image_64, device):
        runtime = QualityAwareRuntime(GaussianApp(), error_budget=0.10, device=device)
        runtime.calibrate(calibration_images)
        record = runtime.execute(natural_image_64, monitor=False)
        assert record.error is None

    def test_budget_violation_demotes_configuration(self, calibration_images, pattern_image_64, device):
        """A pattern image blows the budget; the runtime must react."""
        runtime = QualityAwareRuntime(GaussianApp(), error_budget=0.02, device=device)
        runtime.calibrate(calibration_images)
        first_config = runtime.selected
        record = runtime.execute(pattern_image_64, monitor=True)
        if not record.within_budget:
            assert runtime.selected.label != first_config.label or runtime.selected.is_accurate

    def test_accurate_selection_executes_reference(self, calibration_images, natural_image_64, device):
        runtime = QualityAwareRuntime(GaussianApp(), error_budget=1e-9, device=device)
        runtime.calibrate(calibration_images)
        record = runtime.execute(natural_image_64)
        assert record.error == 0.0
        assert record.within_budget
