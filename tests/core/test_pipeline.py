"""Tests for the evaluation pipeline (error + modelled speedup)."""

import pytest

from repro.apps import GaussianApp, InversionApp, Sobel5App
from repro.core import (
    ACCURATE_CONFIG,
    ConfigurationError,
    ROWS1_NN,
    ROWS2_NN,
    STENCIL1_NN,
    evaluate_configuration,
    evaluate_dataset,
    evaluate_many,
    timing_for,
)
from repro.core.pipeline import baseline_config_for


class TestEvaluateConfiguration:
    def test_result_fields(self, natural_image_128, device):
        result = evaluate_configuration(GaussianApp(), natural_image_128, ROWS1_NN, device=device)
        assert result.app_name == "gaussian"
        assert result.error > 0
        assert result.speedup > 1.0
        assert result.baseline_time_s > result.approx_time_s
        assert result.runtime_ms == pytest.approx(result.approx_time_s * 1e3)
        assert "gaussian" in result.describe()

    def test_accurate_configuration_has_zero_error(self, natural_image_128, device):
        result = evaluate_configuration(
            GaussianApp(), natural_image_128, ACCURATE_CONFIG, device=device
        )
        assert result.error == pytest.approx(0.0, abs=1e-12)

    def test_reference_can_be_supplied(self, natural_image_128, device):
        app = GaussianApp()
        reference = app.reference(natural_image_128)
        result = evaluate_configuration(
            app, natural_image_128, ROWS1_NN, device=device, reference=reference
        )
        assert result.error > 0

    def test_invalid_config_rejected(self, natural_image_128, device):
        with pytest.raises(ConfigurationError):
            evaluate_configuration(InversionApp(), natural_image_128, STENCIL1_NN, device=device)

    def test_more_aggressive_scheme_is_faster(self, natural_image_128, device):
        app = GaussianApp()
        rows1 = evaluate_configuration(app, natural_image_128, ROWS1_NN, device=device)
        rows2 = evaluate_configuration(app, natural_image_128, ROWS2_NN, device=device)
        assert rows2.speedup >= rows1.speedup
        assert rows2.error >= rows1.error

    def test_sobel5_gets_largest_speedup(self, natural_image_128, device):
        gaussian = evaluate_configuration(
            GaussianApp(), natural_image_128, STENCIL1_NN, device=device
        )
        sobel5 = evaluate_configuration(
            Sobel5App(), natural_image_128, STENCIL1_NN, device=device
        )
        assert sobel5.speedup > gaussian.speedup


class TestEvaluateMany:
    def test_shared_reference(self, natural_image_128, device):
        results = evaluate_many(
            GaussianApp(), natural_image_128, [ROWS1_NN, STENCIL1_NN], device=device
        )
        assert len(results) == 2
        assert {r.config.label for r in results} == {"Rows1:NN", "Stencil1:NN"}


class TestEvaluateDataset:
    def test_summary_and_speedup(self, natural_image_64, flat_image_64, pattern_image_64, device):
        dataset = [natural_image_64, flat_image_64, pattern_image_64]
        result = evaluate_dataset(GaussianApp(), dataset, ROWS1_NN, device=device)
        assert result.summary.count == 3
        assert len(result.errors) == 3
        assert result.speedup > 1.0
        assert result.summary.minimum <= result.summary.median <= result.summary.maximum
        assert "gaussian" in result.describe()

    def test_flat_images_have_smallest_error(self, natural_image_64, flat_image_64, pattern_image_64, device):
        dataset = [flat_image_64, natural_image_64, pattern_image_64]
        result = evaluate_dataset(GaussianApp(), dataset, ROWS1_NN, device=device)
        flat_error, natural_error, pattern_error = result.errors
        assert flat_error < natural_error < pattern_error

    def test_empty_dataset_rejected(self, device):
        with pytest.raises(ConfigurationError):
            evaluate_dataset(GaussianApp(), [], ROWS1_NN, device=device)


class TestTimingHelpers:
    def test_timing_for(self, natural_image_128, device):
        breakdown = timing_for(GaussianApp(), ROWS1_NN, natural_image_128, device=device)
        assert breakdown.total_time_s > 0

    def test_baseline_config(self):
        app = GaussianApp()
        config = baseline_config_for(app)
        assert config.is_accurate
        assert config.work_group == app.baseline_work_group
