"""Tests for the error metrics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    ErrorMetric,
    ErrorSummary,
    QualityError,
    compute_error,
    max_error,
    mean_error,
    mean_relative_error,
    normalized_mean_error,
    psnr,
    rmse,
)


def arrays(shape=(8, 8)):
    return hnp.arrays(
        dtype=np.float64,
        shape=shape,
        elements=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
    )


class TestMeanRelativeError:
    def test_identical_arrays_have_zero_error(self):
        a = np.random.default_rng(0).random((16, 16)) + 1.0
        assert mean_relative_error(a, a) == 0.0

    def test_known_value(self):
        ref = np.full((4, 4), 10.0)
        approx = np.full((4, 4), 11.0)
        assert mean_relative_error(ref, approx) == pytest.approx(0.1)

    def test_near_zero_references_do_not_explode(self):
        ref = np.array([[100.0, 0.001], [100.0, 100.0]])
        approx = ref + 1.0
        error = mean_relative_error(ref, approx)
        assert error < 1.0  # the floored denominator prevents a blow-up

    def test_all_zero_reference_falls_back_to_normalised_error(self):
        ref = np.zeros((4, 4))
        approx = np.ones((4, 4))
        assert mean_relative_error(ref, approx) == normalized_mean_error(ref, approx)

    def test_shape_mismatch(self):
        with pytest.raises(QualityError):
            mean_relative_error(np.zeros((2, 2)), np.zeros((3, 3)))

    @given(reference=arrays(), noise=st.floats(min_value=0.0, max_value=5.0))
    @settings(max_examples=40, deadline=None)
    def test_error_grows_with_perturbation(self, reference, noise):
        reference = reference + 10.0  # keep away from zero
        small = mean_relative_error(reference, reference + noise)
        large = mean_relative_error(reference, reference + 2 * noise)
        assert large >= small - 1e-12

    @given(reference=arrays())
    @settings(max_examples=30, deadline=None)
    def test_non_negative(self, reference):
        approx = reference * 1.1 + 0.5
        assert mean_relative_error(reference, approx) >= 0.0


class TestOtherMetrics:
    def test_mean_error(self):
        assert mean_error(np.zeros((2, 2)), np.full((2, 2), 3.0)) == 3.0

    def test_normalized_mean_error_scales_by_range(self):
        ref = np.array([[0.0, 100.0], [50.0, 25.0]])
        approx = ref + 10.0
        assert normalized_mean_error(ref, approx) == pytest.approx(0.1)

    def test_normalized_mean_error_constant_reference(self):
        ref = np.full((4, 4), 5.0)
        assert normalized_mean_error(ref, ref + 1.0) == pytest.approx(0.2)

    def test_rmse_and_max_error(self):
        ref = np.zeros((2, 2))
        approx = np.array([[3.0, 0.0], [0.0, 4.0]])
        assert rmse(ref, approx) == pytest.approx(2.5)
        assert max_error(ref, approx) == 4.0

    def test_psnr_infinite_for_identical(self):
        a = np.ones((4, 4))
        assert math.isinf(psnr(a, a))

    def test_psnr_decreases_with_noise(self):
        rng = np.random.default_rng(1)
        ref = rng.random((32, 32)) * 255
        small = psnr(ref, ref + 1.0)
        large = psnr(ref, ref + 10.0)
        assert small > large

    def test_compute_error_dispatch(self):
        ref = np.full((4, 4), 10.0)
        approx = np.full((4, 4), 12.0)
        assert compute_error(ref, approx, ErrorMetric.MEAN_RELATIVE_ERROR) == pytest.approx(0.2)
        assert compute_error(ref, approx, ErrorMetric.RMSE) == pytest.approx(2.0)
        assert compute_error(ref, approx, ErrorMetric.MAX_ERROR) == pytest.approx(2.0)
        assert compute_error(ref, approx, ErrorMetric.PSNR) > 0
        assert compute_error(ref, approx, ErrorMetric.MEAN_ERROR) >= 0

    def test_empty_arrays_rejected(self):
        with pytest.raises(QualityError):
            mean_error(np.zeros((0,)), np.zeros((0,)))


class TestErrorSummary:
    def test_summary_statistics(self):
        errors = [0.01, 0.02, 0.03, 0.10]
        summary = ErrorSummary.from_errors(errors)
        assert summary.count == 4
        assert summary.mean == pytest.approx(0.04)
        assert summary.median == pytest.approx(0.025)
        assert summary.minimum == 0.01
        assert summary.maximum == 0.10
        assert summary.p25 <= summary.median <= summary.p75
        assert "median" in summary.describe()

    def test_empty_errors_rejected(self):
        with pytest.raises(QualityError):
            ErrorSummary.from_errors([])

    @given(
        errors=st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=50)
    )
    @settings(max_examples=40, deadline=None)
    def test_summary_ordering_invariants(self, errors):
        summary = ErrorSummary.from_errors(errors)
        tolerance = 1e-12
        assert summary.minimum <= summary.p25 + tolerance
        assert summary.p25 <= summary.median + tolerance
        assert summary.median <= summary.p75 + tolerance
        assert summary.p75 <= summary.maximum + tolerance
        # The mean of floating-point values can overshoot the extrema by an ulp.
        assert summary.minimum - tolerance <= summary.mean <= summary.maximum + tolerance
