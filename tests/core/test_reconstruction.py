"""Tests for reconstruction techniques and input samplers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    ACCURATE,
    AccurateSampler,
    LINEAR_INTERPOLATION,
    NEAREST_NEIGHBOR,
    ROWS1,
    ROWS2,
    ReconstructedImageSampler,
    ReconstructionError,
    RowTileSampler,
    STENCIL1,
    SchemeError,
    StencilTileSampler,
    approximate_input,
    loaded_row_indices,
    make_sampler,
    perforate,
    reconstruct_columns,
    reconstruct_mask,
    reconstruct_rows,
)
from repro.core.schemes import RandomPerforation


def images(min_side=4, max_side=24):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(min_value=min_side, max_value=max_side),
            st.integers(min_value=min_side, max_value=max_side),
        ),
        elements=st.floats(min_value=0.0, max_value=255.0, allow_nan=False),
    )


class TestLoadedRows:
    def test_basic(self):
        np.testing.assert_array_equal(loaded_row_indices(10, 2), [0, 2, 4, 6, 8])
        np.testing.assert_array_equal(loaded_row_indices(10, 4, phase=1), [1, 5, 9])

    def test_invalid_step(self):
        with pytest.raises(ReconstructionError):
            loaded_row_indices(10, 1)


class TestReconstructRows:
    def test_loaded_rows_pass_through_exactly(self, natural_image_64):
        for technique in (NEAREST_NEIGHBOR, LINEAR_INTERPOLATION):
            result = reconstruct_rows(natural_image_64, 2, technique)
            np.testing.assert_array_equal(result[::2], natural_image_64[::2])

    def test_nearest_neighbor_copies_a_loaded_row(self, natural_image_64):
        result = reconstruct_rows(natural_image_64, 2, NEAREST_NEIGHBOR)
        for row in range(1, 63, 2):
            source_below = natural_image_64[row - 1]
            source_above = natural_image_64[row + 1]
            matches = np.allclose(result[row], source_below) or np.allclose(
                result[row], source_above
            )
            assert matches

    def test_linear_interpolation_blends_neighbours(self):
        image = np.zeros((6, 4))
        image[2, :] = 0.0
        image[4, :] = 10.0
        result = reconstruct_rows(image, 2, LINEAR_INTERPOLATION)
        np.testing.assert_allclose(result[3, :], 5.0)

    def test_linear_interpolation_reduces_error_on_smooth_ramp(self):
        ramp = np.tile(np.arange(64, dtype=np.float64)[:, None], (1, 8))
        nn = reconstruct_rows(ramp, 2, NEAREST_NEIGHBOR)
        li = reconstruct_rows(ramp, 2, LINEAR_INTERPOLATION)
        assert np.abs(li - ramp).mean() < np.abs(nn - ramp).mean()

    def test_perfect_reconstruction_of_constant_image(self):
        constant = np.full((16, 16), 7.0)
        for step in (2, 4):
            for technique in (NEAREST_NEIGHBOR, LINEAR_INTERPOLATION):
                np.testing.assert_allclose(
                    reconstruct_rows(constant, step, technique), constant
                )

    def test_more_aggressive_perforation_is_worse(self, natural_image_64):
        err2 = np.abs(reconstruct_rows(natural_image_64, 2) - natural_image_64).mean()
        err4 = np.abs(reconstruct_rows(natural_image_64, 4) - natural_image_64).mean()
        assert err4 >= err2

    def test_invalid_technique(self):
        with pytest.raises(ReconstructionError):
            reconstruct_rows(np.zeros((4, 4)), 2, "bicubic")

    def test_invalid_image(self):
        with pytest.raises(ReconstructionError):
            reconstruct_rows(np.zeros((4,)), 2)

    @given(image=images(), step=st.sampled_from([2, 3, 4]))
    @settings(max_examples=40, deadline=None)
    def test_values_stay_within_input_range(self, image, step):
        """Reconstruction never extrapolates outside the input value range."""
        for technique in (NEAREST_NEIGHBOR, LINEAR_INTERPOLATION):
            result = reconstruct_rows(image, step, technique)
            assert result.min() >= image.min() - 1e-9
            assert result.max() <= image.max() + 1e-9

    @given(image=images(min_side=6), step=st.sampled_from([2, 4]))
    @settings(max_examples=30, deadline=None)
    def test_columns_is_transpose_of_rows(self, image, step):
        via_columns = reconstruct_columns(image, step, NEAREST_NEIGHBOR)
        via_rows = reconstruct_rows(image.T, step, NEAREST_NEIGHBOR).T
        np.testing.assert_allclose(via_columns, via_rows)


class TestReconstructMask:
    def test_loaded_pixels_pass_through(self, natural_image_64):
        mask = RandomPerforation(fraction=0.5, seed=5).loaded_mask(64, 64)
        result = reconstruct_mask(natural_image_64, mask)
        np.testing.assert_array_equal(result[mask], natural_image_64[mask])

    def test_full_mask_is_identity(self, natural_image_64):
        mask = np.ones_like(natural_image_64, dtype=bool)
        np.testing.assert_array_equal(
            reconstruct_mask(natural_image_64, mask), natural_image_64
        )

    def test_empty_mask_rejected(self):
        with pytest.raises(ReconstructionError):
            reconstruct_mask(np.zeros((4, 4)), np.zeros((4, 4), dtype=bool))

    def test_shape_mismatch(self):
        with pytest.raises(ReconstructionError):
            reconstruct_mask(np.zeros((4, 4)), np.ones((5, 5), dtype=bool))


class TestPerforate:
    def test_perforated_image_keeps_only_loaded_values(self, natural_image_64):
        mask = ROWS1.loaded_mask(64, 64)
        perforated = perforate(natural_image_64, mask, fill_value=0.0)
        np.testing.assert_array_equal(perforated[::2], natural_image_64[::2])
        assert (perforated[1::2] == 0.0).all()


class TestSamplers:
    def test_accurate_sampler_shifts_and_clamps(self, natural_image_64):
        sampler = AccurateSampler(natural_image_64)
        centre = sampler.read_offset(0, 0)
        np.testing.assert_array_equal(centre, natural_image_64)
        right = sampler.read_offset(1, 0)
        np.testing.assert_array_equal(right[:, :-1], natural_image_64[:, 1:])
        np.testing.assert_array_equal(right[:, -1], natural_image_64[:, -1])
        assert sampler.reads_per_pixel_are_exact()

    def test_row_sampler_matches_reconstructed_image_in_tile_interior(
        self, natural_image_64
    ):
        sampler = make_sampler(
            natural_image_64, ROWS1, NEAREST_NEIGHBOR, tile_y=16, halo=0
        )
        assert isinstance(sampler, RowTileSampler)
        expected = reconstruct_rows(natural_image_64, 2, NEAREST_NEIGHBOR, phase=0)
        interior = [r for r in range(64) if r % 16 != 15]
        np.testing.assert_array_equal(
            sampler.read_offset(0, 0)[interior], expected[interior]
        )
        # The bottom row of each tile reconstructs from the last row fetched
        # by the *own* tile (the row above), not the next tile's nearer row.
        boundary = [r for r in range(64) if r % 16 == 15]
        np.testing.assert_array_equal(
            sampler.read_offset(0, 0)[boundary], natural_image_64[[r - 1 for r in boundary]]
        )

    def test_row_sampler_phase_accounts_for_halo(self, natural_image_64):
        # With a one-row halo the tile fetch starts one row above the tile,
        # which shifts the loaded rows to the odd global rows — for the tile
        # interior this coincides with a phase-1 global reconstruction.
        sampler = make_sampler(
            natural_image_64, ROWS1, NEAREST_NEIGHBOR, tile_y=16, halo=1
        )
        expected = reconstruct_rows(natural_image_64, 2, NEAREST_NEIGHBOR, phase=1)
        np.testing.assert_array_equal(sampler.read_offset(0, 0), expected)

    def test_row_sampler_halo_reads_exact_at_image_border(self, natural_image_64):
        """The clamped halo fetch duplicates the border row into the halo
        slot, so the up-read at row 0 serves the original border row."""
        sampler = make_sampler(
            natural_image_64, ROWS1, NEAREST_NEIGHBOR, tile_y=16, halo=1
        )
        up = sampler.read_offset(0, -1)
        np.testing.assert_array_equal(up[0], natural_image_64[0])

    def test_column_sampler_transposes_row_semantics(self, natural_image_64):
        from repro.core.schemes import ColumnPerforation

        sampler = make_sampler(
            natural_image_64, ColumnPerforation(step=2), NEAREST_NEIGHBOR,
            tile_x=16, halo=0,
        )
        row_sampler = make_sampler(
            natural_image_64.T, ROWS1, NEAREST_NEIGHBOR, tile_y=16, halo=0
        )
        np.testing.assert_array_equal(
            sampler.read_offset(1, 0), row_sampler.read_offset(0, 1).T
        )

    def test_stencil_sampler_center_reads_are_exact(self, natural_image_64):
        sampler = make_sampler(natural_image_64, STENCIL1, tile_x=16, tile_y=16, halo=1)
        assert isinstance(sampler, StencilTileSampler)
        np.testing.assert_array_equal(sampler.read_offset(0, 0), natural_image_64)

    def test_stencil_sampler_clamps_reads_to_tile(self, natural_image_64):
        sampler = StencilTileSampler(natural_image_64, tile_x=16, tile_y=16)
        right = sampler.read_offset(1, 0)
        # Inside a tile the read is exact...
        assert right[0, 0] == natural_image_64[0, 1]
        # ...but at the tile's right edge the read is clamped to the tile.
        assert right[0, 15] == natural_image_64[0, 15]
        assert right[0, 31] == natural_image_64[0, 31]

    def test_stencil_scheme_requires_halo(self, natural_image_64):
        with pytest.raises(SchemeError):
            make_sampler(natural_image_64, STENCIL1, halo=0)

    def test_accurate_scheme_gives_accurate_sampler(self, natural_image_64):
        sampler = make_sampler(natural_image_64, ACCURATE)
        assert isinstance(sampler, AccurateSampler)

    def test_random_scheme_sampler(self, natural_image_64):
        scheme = RandomPerforation(fraction=0.5, seed=2)
        sampler = make_sampler(natural_image_64, scheme, tile_x=16, tile_y=16, halo=1)
        assert isinstance(sampler, ReconstructedImageSampler)

    def test_approximate_input_bundle(self, natural_image_64):
        bundle = approximate_input(natural_image_64, ROWS1, NEAREST_NEIGHBOR, halo=0)
        assert bundle.view.shape == natural_image_64.shape
        accurate_bundle = approximate_input(natural_image_64, ACCURATE)
        np.testing.assert_array_equal(accurate_bundle.view, natural_image_64)

    @given(image=images(min_side=8), dx=st.integers(-2, 2), dy=st.integers(-2, 2))
    @settings(max_examples=40, deadline=None)
    def test_row_sampler_error_bounded_by_row_distance(self, image, dx, dy):
        """A perforated read never invents values outside the image range."""
        sampler = make_sampler(image, ROWS2, NEAREST_NEIGHBOR, halo=0)
        values = sampler.read_offset(dx, dy)
        assert values.min() >= image.min() - 1e-9
        assert values.max() <= image.max() + 1e-9
