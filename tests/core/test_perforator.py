"""Tests for the compiler-level kernel perforator."""

import numpy as np
import pytest

from repro.apps import GaussianApp, InversionApp
from repro.clsim import Buffer, Executor, NDRange
from repro.core import (
    ApproximationConfig,
    ConfigurationError,
    COLS1,
    KernelPerforator,
    LINEAR_INTERPOLATION,
    ROWS1_NN,
    ROWS2_NN,
    STENCIL1_NN,
)
from repro.kernellang import parse_program


@pytest.fixture(scope="module")
def gaussian_perforator():
    return KernelPerforator(GaussianApp().kernel_source())


@pytest.fixture(scope="module")
def inversion_perforator():
    return KernelPerforator(InversionApp().kernel_source())


def run_perforated(perforated, image, local=(8, 8)):
    executor = Executor()
    kernel = perforated.executable()
    height, width = image.shape
    inb, outb = Buffer(image, "input"), Buffer(np.zeros_like(image), "output")
    executor.run(
        kernel,
        NDRange((width, height), local),
        {"input": inb, "output": outb, "width": width, "height": height},
    )
    return outb.array, inb.counters.reads


class TestAnalysisSurface:
    def test_halo_and_buffers(self, gaussian_perforator, inversion_perforator):
        assert gaussian_perforator.halo == 1
        assert gaussian_perforator.input_buffers == ["input"]
        assert inversion_perforator.halo == 0

    def test_reuse_factors(self, gaussian_perforator, inversion_perforator):
        assert gaussian_perforator.reuse_factors(16, 16)["input"] > 5
        assert inversion_perforator.reuse_factors(16, 16)["input"] == pytest.approx(1.0)


class TestPerforation:
    def test_accurate_returns_untransformed_kernel(self, gaussian_perforator):
        accurate = gaussian_perforator.accurate()
        assert "_kp_" not in accurate.source
        assert accurate.config.is_accurate

    def test_perforate_produces_valid_opencl(self, gaussian_perforator):
        perforated = gaussian_perforator.perforate(ROWS1_NN.with_work_group((8, 8)))
        assert "__local float _kp_input_tile" in perforated.source
        assert "barrier(CLK_LOCAL_MEM_FENCE);" in perforated.source
        # The emitted source must re-parse (valid OpenCL C subset).
        parse_program(perforated.source)
        assert perforated.local_tile_names() == ["_kp_input_tile"]
        assert perforated.notes

    def test_stencil_rejected_for_1x1_kernel(self, inversion_perforator):
        with pytest.raises(ConfigurationError):
            inversion_perforator.perforate(STENCIL1_NN.with_work_group((8, 8)))

    def test_column_scheme_not_supported_by_compiler_path(self, gaussian_perforator):
        config = ApproximationConfig(scheme=COLS1, work_group=(8, 8))
        with pytest.raises(ConfigurationError):
            gaussian_perforator.perforate(config)

    def test_functional_output_close_to_accurate(self, gaussian_perforator, natural_image_64):
        accurate_out, accurate_reads = run_perforated(
            gaussian_perforator.accurate(), natural_image_64
        )
        perforated_out, perforated_reads = run_perforated(
            gaussian_perforator.perforate(ROWS1_NN.with_work_group((8, 8))), natural_image_64
        )
        error = np.abs(perforated_out - accurate_out).mean() / 255.0
        assert error < 0.1
        assert perforated_reads < accurate_reads

    def test_rows2_reads_less_than_rows1(self, gaussian_perforator, natural_image_64):
        _, rows1_reads = run_perforated(
            gaussian_perforator.perforate(ROWS1_NN.with_work_group((8, 8))), natural_image_64
        )
        _, rows2_reads = run_perforated(
            gaussian_perforator.perforate(ROWS2_NN.with_work_group((8, 8))), natural_image_64
        )
        assert rows2_reads < rows1_reads

    def test_li_matches_or_beats_nn(self, gaussian_perforator, natural_image_64):
        accurate_out, _ = run_perforated(gaussian_perforator.accurate(), natural_image_64)
        nn_out, _ = run_perforated(
            gaussian_perforator.perforate(ROWS1_NN.with_work_group((8, 8))), natural_image_64
        )
        li_config = ApproximationConfig(
            scheme=ROWS1_NN.scheme, reconstruction=LINEAR_INTERPOLATION, work_group=(8, 8)
        )
        li_out, _ = run_perforated(gaussian_perforator.perforate(li_config), natural_image_64)
        assert np.abs(li_out - accurate_out).mean() <= np.abs(nn_out - accurate_out).mean() + 1e-9

    def test_optimize_with_local_memory_is_exact(self, gaussian_perforator, natural_image_64):
        accurate_out, accurate_reads = run_perforated(
            gaussian_perforator.accurate(), natural_image_64
        )
        optimised = gaussian_perforator.optimize_with_local_memory((8, 8))
        optimised_out, optimised_reads = run_perforated(optimised, natural_image_64)
        np.testing.assert_allclose(optimised_out, accurate_out, atol=1e-9)
        assert optimised_reads < accurate_reads

    def test_inversion_rows_perforation(self, inversion_perforator, natural_image_64):
        accurate_out, _ = run_perforated(inversion_perforator.accurate(), natural_image_64)
        perforated_out, reads = run_perforated(
            inversion_perforator.perforate(ROWS1_NN.with_work_group((8, 8))), natural_image_64
        )
        assert reads == natural_image_64.size // 2
        assert np.abs(perforated_out - accurate_out).mean() < 30.0
