"""Tests for the Pareto-front analysis."""

from dataclasses import dataclass

from hypothesis import given, settings, strategies as st

from repro.core import dominates, hypervolume_2d, is_pareto_optimal, pareto_front


@dataclass(frozen=True)
class Point:
    label: str
    speedup: float
    error: float


class TestDominates:
    def test_faster_and_more_accurate_dominates(self):
        assert dominates(Point("a", 2.0, 0.01), Point("b", 1.5, 0.05))

    def test_equal_points_do_not_dominate(self):
        a = Point("a", 2.0, 0.01)
        b = Point("b", 2.0, 0.01)
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_tradeoff_points_do_not_dominate(self):
        fast_inaccurate = Point("a", 3.0, 0.10)
        slow_accurate = Point("b", 1.2, 0.01)
        assert not dominates(fast_inaccurate, slow_accurate)
        assert not dominates(slow_accurate, fast_inaccurate)


class TestParetoFront:
    def test_front_excludes_dominated_points(self):
        points = [
            Point("accurate", 1.0, 0.0),
            Point("ours", 2.0, 0.01),
            Point("paraprox", 1.8, 0.07),
            Point("bad", 0.9, 0.10),
        ]
        front = pareto_front(points)
        labels = {p.label for p in front}
        assert labels == {"accurate", "ours"}

    def test_front_sorted_by_speedup(self):
        points = [Point("a", 2.0, 0.02), Point("b", 1.0, 0.0), Point("c", 3.0, 0.08)]
        front = pareto_front(points)
        speedups = [p.speedup for p in front]
        assert speedups == sorted(speedups)

    def test_duplicates_collapse(self):
        points = [Point("a", 2.0, 0.02), Point("a2", 2.0, 0.02)]
        assert len(pareto_front(points)) == 1

    def test_duplicate_witness_is_first_in_input(self):
        """The documented tie rule: one witness per duplicated pair — the
        earliest occurrence in the input sequence."""
        a, b = Point("a", 2.0, 0.02), Point("b", 2.0, 0.02)
        assert [p.label for p in pareto_front([a, b])] == ["a"]
        assert [p.label for p in pareto_front([b, a])] == ["b"]
        # A third copy anywhere in the sequence changes nothing.
        assert [p.label for p in pareto_front([a, b, Point("c", 2.0, 0.02)])] == ["a"]

    def test_duplicates_never_co_survive_or_co_drop(self):
        """Non-dominated duplicates yield exactly one front entry in any
        input order; dominated duplicates all drop."""
        dup1, dup2 = Point("d1", 2.0, 0.02), Point("d2", 2.0, 0.02)
        other = Point("o", 1.0, 0.0)
        for ordering in ([dup1, dup2, other], [dup2, other, dup1], [other, dup1, dup2]):
            front = pareto_front(ordering)
            assert sorted({(p.speedup, p.error) for p in front}) == [(1.0, 0.0), (2.0, 0.02)]
            assert len(front) == 2  # exactly one duplicate witness
        dominator = Point("x", 3.0, 0.0)
        front = pareto_front([dup1, dup2, dominator])
        assert [p.label for p in front] == ["x"]

    def test_front_value_set_is_input_order_invariant(self):
        points = [
            Point("a", 2.0, 0.02),
            Point("a2", 2.0, 0.02),
            Point("b", 1.0, 0.0),
            Point("c", 3.0, 0.08),
            Point("dominated", 0.9, 0.2),
        ]
        expected = [(p.speedup, p.error) for p in pareto_front(points)]
        assert [(p.speedup, p.error) for p in pareto_front(points[::-1])] == expected
        rotated = points[2:] + points[:2]
        assert [(p.speedup, p.error) for p in pareto_front(rotated)] == expected

    def test_near_ties_are_not_collapsed(self):
        """No rounding: points differing only in the last decimals are
        distinct (and mutually non-dominating when the trade-off holds)."""
        a = Point("a", 2.0, 0.02)
        b = Point("b", 2.0 + 1e-13, 0.02 + 1e-15)
        front = pareto_front([a, b])
        assert {p.label for p in front} == {"a", "b"}

    def test_empty_input(self):
        assert pareto_front([]) == []

    def test_is_pareto_optimal(self):
        points = [Point("a", 1.0, 0.0), Point("b", 2.0, 0.05), Point("c", 1.5, 0.2)]
        assert is_pareto_optimal(points[0], points)
        assert is_pareto_optimal(points[1], points)
        assert not is_pareto_optimal(points[2], points)

    @given(
        data=st.lists(
            st.tuples(
                st.floats(min_value=0.5, max_value=5.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_front_members_are_mutually_non_dominating(self, data):
        points = [Point(f"p{i}", s, e) for i, (s, e) in enumerate(data)]
        front = pareto_front(points)
        assert front  # at least one point always survives
        for a in front:
            for b in front:
                if a is not b:
                    assert not dominates(a, b)

    @given(
        data=st.lists(
            st.tuples(
                st.floats(min_value=0.5, max_value=5.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_every_point_dominated_by_or_on_front(self, data):
        points = [Point(f"p{i}", s, e) for i, (s, e) in enumerate(data)]
        front = pareto_front(points)
        for point in points:
            on_front = any(
                f.speedup == point.speedup and f.error == point.error for f in front
            )
            dominated = any(dominates(f, point) for f in front)
            assert on_front or dominated


class TestHypervolume:
    def test_better_front_has_larger_hypervolume(self):
        ours = [Point("stencil", 2.1, 0.0045), Point("rows", 2.2, 0.029)]
        paraprox = [Point("rows", 2.08, 0.075), Point("center", 1.9, 0.09)]
        assert hypervolume_2d(ours) > hypervolume_2d(paraprox)

    def test_points_below_reference_contribute_nothing(self):
        points = [Point("slow", 0.8, 0.01)]
        assert hypervolume_2d(points) == 0.0

    def test_empty(self):
        assert hypervolume_2d([]) == 0.0
