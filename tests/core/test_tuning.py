"""Tests for parameter exploration (configuration and work-group sweeps)."""

import pytest

from repro.apps import GaussianApp, InversionApp, MedianApp
from repro.core import (
    ROWS1_NN,
    STENCIL1_NN,
    TuningError,
    best_work_group,
    full_sweep,
    sweep_configurations,
    sweep_work_groups,
)
from repro.core.config import WORK_GROUP_CANDIDATES


class TestSweepConfigurations:
    def test_default_configs_for_stencil_app(self, natural_image_64, device):
        sweep = sweep_configurations(GaussianApp(), natural_image_64, device=device)
        labels = {p.label for p in sweep.points}
        assert labels == {"Rows1:NN", "Rows2:NN", "Rows1:LI", "Stencil1:NN"}
        assert all(p.error >= 0 for p in sweep.points)
        assert all(p.speedup > 0 for p in sweep.points)

    def test_default_configs_for_1x1_app(self, natural_image_64, device):
        sweep = sweep_configurations(InversionApp(), natural_image_64, device=device)
        labels = {p.label for p in sweep.points}
        assert "Stencil1:NN" not in labels

    def test_pareto_and_selection_helpers(self, natural_image_64, device):
        sweep = sweep_configurations(GaussianApp(), natural_image_64, device=device)
        front = sweep.pareto_optimal()
        assert front
        assert all(p in sweep.points for p in front)
        assert sweep.best_error().error == min(p.error for p in sweep.points)
        assert sweep.fastest().speedup == max(p.speedup for p in sweep.points)

    def test_best_for_error_budget(self, natural_image_64, device):
        sweep = sweep_configurations(GaussianApp(), natural_image_64, device=device)
        point = sweep.best_for_error_budget(0.10)
        assert point.error <= 0.10
        with pytest.raises(TuningError):
            sweep.best_for_error_budget(1e-12)

    def test_point_describe(self, natural_image_64, device):
        sweep = sweep_configurations(GaussianApp(), natural_image_64, device=device)
        assert "speedup" in sweep.points[0].describe()


class TestWorkGroupSweep:
    def test_sweep_covers_admissible_shapes(self, natural_image_128, device):
        timings = sweep_work_groups(
            GaussianApp(), natural_image_128, [STENCIL1_NN, ROWS1_NN], device=device
        )
        variants = {t.variant for t in timings}
        assert variants == {"Baseline", "Stencil1:NN", "Rows1:NN"}
        shapes = {t.work_group for t in timings if t.variant == "Baseline"}
        # 128x128 image: all ten candidate shapes divide it.
        assert shapes == set(WORK_GROUP_CANDIDATES)

    def test_wide_shapes_beat_narrow_shapes(self, natural_image_128, device):
        """The paper's Figure 9 observation: x >= y shapes are faster."""
        timings = sweep_work_groups(GaussianApp(), natural_image_128, [ROWS1_NN], device=device)
        by_shape = {
            t.work_group: t.runtime_s for t in timings if t.variant == "Rows1:NN"
        }
        assert by_shape[(128, 2)] < by_shape[(2, 128)]
        assert by_shape[(16, 16)] < by_shape[(2, 128)]

    def test_non_dividing_shapes_skipped(self, device):
        from repro.data import generate_image
        image = generate_image("natural", size=96, seed=1)
        timings = sweep_work_groups(GaussianApp(), image, [ROWS1_NN], device=device)
        shapes = {t.work_group for t in timings}
        assert (128, 2) not in shapes  # 128 does not divide 96

    def test_best_work_group(self, natural_image_128, device):
        shape = best_work_group(GaussianApp(), natural_image_128, ROWS1_NN, device=device)
        assert shape in WORK_GROUP_CANDIDATES
        assert shape[0] >= shape[1]  # the x-major observation

    def test_best_work_group_no_candidates(self, device):
        from repro.data import generate_image
        image = generate_image("natural", size=50, seed=1)  # nothing divides 50
        with pytest.raises(TuningError):
            best_work_group(GaussianApp(), image, ROWS1_NN, device=device)


class TestFullSweep:
    def test_joint_sweep_contains_shaped_configs(self, natural_image_64, device):
        sweep = full_sweep(
            MedianApp(),
            natural_image_64,
            work_groups=((16, 16), (32, 8)),
            device=device,
        )
        assert len(sweep.points) == 8  # 4 configs x 2 shapes
        work_groups = {p.config.work_group for p in sweep.points}
        assert work_groups == {(16, 16), (32, 8)}
