"""Integration tests across the whole stack.

These tests tie the layers together the way a user of the library would:
OpenCL C source -> compiler passes -> simulator execution, compared against
the NumPy fast path used by the experiments, and the end-to-end pipeline
claims of the paper.
"""

import numpy as np
import pytest

from repro.apps import GaussianApp, InversionApp, get_application
from repro.baselines import ParaproxScheme, evaluate_paraprox
from repro.clsim import Buffer, CommandQueue, Executor, NDRange
from repro.core import (
    ApproximationConfig,
    KernelPerforator,
    NEAREST_NEIGHBOR,
    ROWS1_NN,
    STENCIL1_NN,
    compute_error,
    evaluate_configuration,
    pareto_front,
)
from repro.data import generate_image
from repro.kernellang.analysis import build_profile


def run_compiled(perforated, image, local):
    # The vectorized backend makes the compiler-path tests cheap enough for
    # the fast tier; its equivalence to the reference interpreter backend is
    # pinned down by tests/clsim/test_backend_parity.py.
    executor = Executor(backend="vectorized")
    kernel = perforated.executable()
    height, width = image.shape
    inb, outb = Buffer(image, "input"), Buffer(np.zeros_like(image), "output")
    executor.run(
        kernel,
        NDRange((width, height), local),
        {"input": inb, "output": outb, "width": width, "height": height},
    )
    return outb.array


class TestCompilerPathAgainstNumpyPath:
    """The compiled perforated kernels and the sampler-based fast path must
    implement the same approximation."""

    @pytest.mark.parametrize("app_name", ["gaussian", "inversion"])
    def test_rows1_nn_outputs_match(self, app_name):
        """The compiled kernel and the NumPy fast path agree *everywhere*,
        including work-group boundary rows: the tile-aware row sampler
        reproduces the kernel's per-tile reconstruction (clamped halo fetch at
        the image border, reconstruction clamped to the rows of the own tile)
        bit for bit."""
        app = get_application(app_name)
        image = generate_image("natural", size=32, seed=5)
        config = ApproximationConfig(
            scheme=ROWS1_NN.scheme, reconstruction=NEAREST_NEIGHBOR, work_group=(8, 8)
        )
        fast_path = app.approximate(image, config)
        compiled = run_compiled(app.perforator().perforate(config), image, (8, 8))
        np.testing.assert_array_equal(compiled, fast_path)

    def test_stencil_outputs_match(self):
        app = GaussianApp()
        image = generate_image("natural", size=32, seed=6)
        config = STENCIL1_NN.with_work_group((8, 8))
        fast_path = app.approximate(image, config)
        compiled = run_compiled(app.perforator().perforate(config), image, (8, 8))
        np.testing.assert_allclose(compiled, fast_path, atol=1e-6)

    def test_accurate_kernel_matches_reference(self):
        app = GaussianApp()
        image = generate_image("flat", size=32, seed=7)
        compiled = run_compiled(app.perforator().accurate(), image, (8, 8))
        np.testing.assert_allclose(compiled, app.reference(image), atol=1e-9)


class TestAnalysisDrivenTiming:
    def test_profile_built_from_source_feeds_queue(self, device):
        app = GaussianApp()
        perforator = KernelPerforator(app.kernel_source())
        ndrange = NDRange((256, 256), (16, 16))
        profile = build_profile(perforator.accurate().kernel_def, ndrange)
        queue = CommandQueue(device)
        breakdown = queue.estimate(profile, ndrange)
        assert breakdown.total_time_s > 0


@pytest.mark.slow
class TestPaperLevelClaims:
    @pytest.fixture(scope="class")
    def image(self):
        return generate_image("natural", size=256, seed=42)

    def test_speedups_within_paper_band(self, image, device):
        """All six applications speed up; the band straddles the paper's 1.6-3x."""
        from repro.data import hotspot_single

        speedups = {}
        for name in ("gaussian", "inversion", "median", "hotspot", "sobel3", "sobel5"):
            app = get_application(name)
            inputs = hotspot_single(size=256) if name == "hotspot" else image
            config = ROWS1_NN if app.halo == 0 or name == "hotspot" else STENCIL1_NN
            result = evaluate_configuration(app, inputs, config, device=device)
            speedups[name] = result.speedup
        assert all(s > 1.0 for s in speedups.values())
        assert speedups["sobel5"] == max(speedups.values())
        assert min(speedups.values()) == pytest.approx(speedups["inversion"], rel=0.2)

    def test_pareto_front_contains_our_configurations(self, image, device):
        app = GaussianApp()
        ours = [
            evaluate_configuration(app, image, config, device=device)
            for config in (ROWS1_NN, STENCIL1_NN)
        ]
        paraprox = [
            evaluate_paraprox(app, image, ParaproxScheme(kind, level), device=device)
            for kind in ("rows", "center")
            for level in (1, 2)
        ]
        front = pareto_front(list(ours) + list(paraprox))
        our_labels = {r.config.label for r in ours}
        front_labels = set()
        for point in front:
            label = getattr(point, "label", None) or point.config.label
            front_labels.add(label)
        assert front_labels & our_labels

    def test_error_scales_with_image_class(self, device):
        app = InversionApp()
        errors = {}
        for image_class in ("flat", "natural", "pattern"):
            image = generate_image(image_class, size=128, seed=3)
            reference = app.reference(image)
            approx = app.approximate(image, ROWS1_NN)
            errors[image_class] = compute_error(reference, approx, app.error_metric)
        assert errors["flat"] < errors["natural"] < errors["pattern"]
