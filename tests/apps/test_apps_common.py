"""Cross-cutting tests that every benchmark application must satisfy."""

import numpy as np
import pytest

from repro.apps import (
    IMAGE_APPS,
    TABLE1_ORDER,
    all_applications,
    available_applications,
    get_application,
)
from repro.clsim import NDRange
from repro.core import (
    ACCURATE_CONFIG,
    ROWS1_LI,
    ROWS1_NN,
    ROWS2_NN,
    STENCIL1_NN,
    compute_error,
    default_configurations,
)
from repro.kernellang import check_program, parse_program
from repro.kernellang.analysis import analyze_kernel


pytestmark = pytest.mark.slow


def inputs_for(app, image, hotspot):
    return hotspot if app.name == "hotspot" else image


class TestRegistry:
    def test_six_applications_available(self):
        assert len(available_applications()) == 6
        assert set(TABLE1_ORDER) == set(available_applications())

    def test_get_application_unknown(self):
        with pytest.raises(KeyError):
            get_application("raytracer")

    def test_all_applications_order(self):
        apps = all_applications()
        assert [a.name for a in apps] == list(TABLE1_ORDER)

    def test_describe_contains_domain(self):
        for app in all_applications():
            assert app.domain in app.describe()


@pytest.mark.parametrize("name", TABLE1_ORDER)
class TestPerApplication:
    def test_kernel_source_is_valid(self, name):
        app = get_application(name)
        program = parse_program(app.kernel_source())
        check_program(program)
        kernel = program.kernel()
        assert kernel.is_kernel

    def test_kernel_halo_matches_declared_halo(self, name):
        app = get_application(name)
        info = analyze_kernel(parse_program(app.kernel_source()).kernel())
        assert info.max_halo == app.halo

    def test_reference_output_shape(self, name, natural_image_64, hotspot_input_64):
        app = get_application(name)
        inputs = inputs_for(app, natural_image_64, hotspot_input_64)
        reference = app.reference(inputs)
        width, height = app.global_size(inputs)
        assert reference.shape == (height, width)

    def test_accurate_config_reproduces_reference(self, name, natural_image_64, hotspot_input_64):
        app = get_application(name)
        inputs = inputs_for(app, natural_image_64, hotspot_input_64)
        reference = app.reference(inputs)
        accurate = app.approximate(inputs, ACCURATE_CONFIG)
        np.testing.assert_allclose(accurate, reference, atol=1e-9)

    def test_perforated_error_is_bounded(self, name, natural_image_64, hotspot_input_64):
        app = get_application(name)
        inputs = inputs_for(app, natural_image_64, hotspot_input_64)
        reference = app.reference(inputs)
        config = ROWS1_NN.with_work_group((16, 16))
        approx = app.approximate(inputs, config)
        error = compute_error(reference, approx, app.error_metric)
        assert 0.0 <= error < 0.5

    def test_rows2_error_at_least_rows1(self, name, natural_image_64, hotspot_input_64):
        app = get_application(name)
        inputs = inputs_for(app, natural_image_64, hotspot_input_64)
        reference = app.reference(inputs)
        rows1 = compute_error(reference, app.approximate(inputs, ROWS1_NN), app.error_metric)
        rows2 = compute_error(reference, app.approximate(inputs, ROWS2_NN), app.error_metric)
        assert rows2 >= rows1 - 1e-12

    def test_linear_interpolation_not_worse_than_nn(self, name, natural_image_64, hotspot_input_64):
        app = get_application(name)
        inputs = inputs_for(app, natural_image_64, hotspot_input_64)
        reference = app.reference(inputs)
        nn = compute_error(reference, app.approximate(inputs, ROWS1_NN), app.error_metric)
        li = compute_error(reference, app.approximate(inputs, ROWS1_LI), app.error_metric)
        assert li <= nn * 1.05 + 1e-12

    def test_stencil_error_small_when_applicable(self, name, natural_image_64, hotspot_input_64):
        app = get_application(name)
        if app.halo == 0:
            pytest.skip("stencil scheme needs a halo")
        inputs = inputs_for(app, natural_image_64, hotspot_input_64)
        reference = app.reference(inputs)
        stencil = compute_error(reference, app.approximate(inputs, STENCIL1_NN), app.error_metric)
        rows1 = compute_error(reference, app.approximate(inputs, ROWS1_NN), app.error_metric)
        assert stencil <= rows1 + 1e-12

    def test_profiles_for_all_default_configs(self, name, natural_image_64, hotspot_input_64):
        app = get_application(name)
        inputs = inputs_for(app, natural_image_64, hotspot_input_64)
        global_size = app.global_size(inputs)
        for config in [ACCURATE_CONFIG] + default_configurations(app.halo):
            profile, ndrange = app.profile(config, global_size)
            assert isinstance(ndrange, NDRange)
            assert ndrange.global_size == global_size
            assert profile.traffic  # at least input + output traffic
            store_buffers = [t for t in profile.traffic if t.is_store]
            assert store_buffers, "every kernel writes its output"

    def test_perforated_profile_moves_less_data(self, name, natural_image_64, hotspot_input_64):
        app = get_application(name)
        inputs = inputs_for(app, natural_image_64, hotspot_input_64)
        global_size = app.global_size(inputs)
        accurate_profile, _ = app.profile(
            ACCURATE_CONFIG.with_work_group(app.baseline_work_group), global_size
        )
        rows1_profile, _ = app.profile(ROWS1_NN, global_size)

        def loaded_elements(profile):
            return sum(
                t.elements_per_group() + t.cached_accesses_per_group
                for t in profile.traffic
                if not t.is_store
            )

        assert loaded_elements(rows1_profile) < loaded_elements(accurate_profile)

    def test_invalid_work_group_rejected(self, name, natural_image_64, hotspot_input_64):
        from repro.core import ConfigurationError

        app = get_application(name)
        inputs = inputs_for(app, natural_image_64, hotspot_input_64)
        bad = ROWS1_NN.with_work_group((7, 3))
        with pytest.raises(ConfigurationError):
            app.profile(bad, app.global_size(inputs))


class TestImageAppsList:
    def test_image_apps_subset(self):
        assert set(IMAGE_APPS) < set(TABLE1_ORDER)
        assert "hotspot" not in IMAGE_APPS
