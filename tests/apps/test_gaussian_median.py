"""Application-specific tests: Gaussian and Median."""

import numpy as np
import pytest
from scipy import ndimage

from repro.apps import GAUSSIAN_WEIGHTS, GaussianApp, MedianApp
from repro.core import ROWS1_NN, STENCIL1_NN, compute_error


pytestmark = pytest.mark.slow


class TestGaussian:
    def test_weights_are_normalised(self):
        assert GAUSSIAN_WEIGHTS.sum() == pytest.approx(1.0)
        assert GAUSSIAN_WEIGHTS.shape == (3, 3)

    def test_reference_matches_scipy(self, natural_image_64):
        app = GaussianApp()
        expected = ndimage.correlate(natural_image_64, GAUSSIAN_WEIGHTS, mode="nearest")
        np.testing.assert_allclose(app.reference(natural_image_64), expected, atol=1e-9)

    def test_blur_reduces_variance(self, natural_image_64):
        app = GaussianApp()
        blurred = app.reference(natural_image_64)
        assert blurred.var() < natural_image_64.var()

    def test_constant_image_is_fixed_point(self):
        app = GaussianApp()
        constant = np.full((32, 32), 42.0)
        np.testing.assert_allclose(app.reference(constant), constant)
        np.testing.assert_allclose(app.approximate(constant, ROWS1_NN), constant)

    def test_perforation_error_ordering_matches_figure8(self, natural_image_128):
        app = GaussianApp()
        reference = app.reference(natural_image_128)
        stencil = compute_error(
            reference, app.approximate(natural_image_128, STENCIL1_NN), app.error_metric
        )
        rows1 = compute_error(
            reference, app.approximate(natural_image_128, ROWS1_NN), app.error_metric
        )
        assert stencil < rows1
        assert stencil < 0.01  # the paper: "always less than 1%"


class TestMedian:
    def test_reference_matches_scipy_median_filter(self, natural_image_64):
        app = MedianApp()
        expected = ndimage.median_filter(natural_image_64, size=3, mode="nearest")
        np.testing.assert_allclose(app.reference(natural_image_64), expected, atol=1e-9)

    def test_removes_salt_and_pepper_noise(self, rng):
        app = MedianApp()
        clean = np.full((64, 64), 100.0)
        noisy = clean.copy()
        positions = rng.choice(64 * 64, size=200, replace=False)
        noisy.flat[positions[:100]] = 255.0
        noisy.flat[positions[100:]] = 0.0
        filtered = app.reference(noisy)
        assert np.abs(filtered - clean).mean() < np.abs(noisy - clean).mean() * 0.2

    def test_metadata_matches_paper(self):
        app = MedianApp()
        assert app.domain == "Medical imaging"
        assert app.baseline_uses_local_memory  # "already highly optimised"
        assert app.private_accesses_per_item > 0

    def test_median_baseline_speedup_smaller_than_gaussian(self, natural_image_128, device):
        """The paper: Median's baseline is already optimised, so its speedup
        is the smallest of the stencil apps."""
        from repro.core import evaluate_configuration

        gaussian = evaluate_configuration(
            GaussianApp(), natural_image_128, STENCIL1_NN, device=device
        )
        median = evaluate_configuration(
            MedianApp(), natural_image_128, STENCIL1_NN, device=device
        )
        assert median.speedup < gaussian.speedup
