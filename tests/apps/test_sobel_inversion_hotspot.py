"""Application-specific tests: Sobel3/Sobel5, Inversion and Hotspot."""

import numpy as np
import pytest

from repro.apps import (
    HotspotApp,
    HotspotCoefficients,
    INVERSION_MAX,
    InversionApp,
    SOBEL3_GX,
    SOBEL5_GX,
    Sobel3App,
    Sobel5App,
)
from repro.core import ACCURATE_CONFIG, ErrorMetric, ROWS1_NN, STENCIL1_NN, compute_error
from repro.data import generate_hotspot_input
from repro.data.hotspot import AMBIENT_TEMPERATURE


pytestmark = pytest.mark.slow


class TestSobel:
    def test_masks_are_antisymmetric(self):
        np.testing.assert_array_equal(SOBEL3_GX, -SOBEL3_GX[:, ::-1])
        np.testing.assert_array_equal(SOBEL5_GX, -SOBEL5_GX[:, ::-1])

    def test_uniform_image_has_zero_gradient(self):
        constant = np.full((32, 32), 99.0)
        assert float(Sobel3App().reference(constant).max()) == pytest.approx(0.0)
        assert float(Sobel5App().reference(constant).max()) == pytest.approx(0.0)

    def test_vertical_edge_detected(self):
        image = np.zeros((32, 32))
        image[:, 16:] = 200.0
        edges = Sobel3App().reference(image)
        edge_columns = edges[:, 14:18].mean()
        flat_columns = edges[:, 2:10].mean()
        assert edge_columns > 10 * max(flat_columns, 1e-9)

    def test_sobel_uses_mean_error_metric(self):
        assert Sobel3App().error_metric is ErrorMetric.MEAN_ERROR
        assert Sobel5App().error_metric is ErrorMetric.MEAN_ERROR

    def test_sobel5_halo_is_two(self):
        assert Sobel5App().halo == 2
        assert Sobel3App().halo == 1

    def test_sobel5_reuse_exceeds_sobel3(self):
        reuse3 = Sobel3App().perforator().reuse_factors(16, 16)["input"]
        reuse5 = Sobel5App().perforator().reuse_factors(16, 16)["input"]
        assert reuse5 > reuse3

    def test_perforated_sobel_error_bounded(self, natural_image_64):
        for app in (Sobel3App(), Sobel5App()):
            reference = app.reference(natural_image_64)
            approx = app.approximate(natural_image_64, STENCIL1_NN)
            error = compute_error(reference, approx, app.error_metric)
            assert 0 <= error < 0.2


class TestInversion:
    def test_reference_is_exact_negative(self, natural_image_64):
        app = InversionApp()
        np.testing.assert_allclose(
            app.reference(natural_image_64), INVERSION_MAX - natural_image_64
        )

    def test_double_inversion_is_identity(self, natural_image_64):
        app = InversionApp()
        np.testing.assert_allclose(
            app.reference(app.reference(natural_image_64)), natural_image_64
        )

    def test_has_no_halo_and_no_local_memory_baseline(self):
        app = InversionApp()
        assert app.halo == 0
        assert not app.baseline_uses_local_memory

    def test_rows_error_equals_input_reconstruction_error(self, natural_image_64):
        """Inversion is linear and pointwise, so the output error equals the
        input reconstruction error exactly."""
        from repro.core import reconstruct_rows

        app = InversionApp()
        approx = app.approximate(natural_image_64, ROWS1_NN)
        # The sampler reconstructs per tile; away from the bottom row of each
        # work group's tile this equals the global row reconstruction.
        reconstructed = reconstruct_rows(natural_image_64, 2, "nearest-neighbor", phase=0)
        tile_y = ROWS1_NN.work_group[1]
        interior = [r for r in range(64) if (r % tile_y) != tile_y - 1]
        np.testing.assert_allclose(approx[interior], (INVERSION_MAX - reconstructed)[interior])
        # At the bottom row of each tile the reconstruction copies the last
        # row fetched by the own tile (the row above) instead of the next
        # tile's nearer row.
        boundary = [r for r in range(64) if (r % tile_y) == tile_y - 1]
        above = [r - 1 for r in boundary]
        np.testing.assert_allclose(
            approx[boundary], (INVERSION_MAX - natural_image_64)[above]
        )


class TestHotspot:
    def test_coefficients_positive_and_stable(self):
        coeffs = HotspotCoefficients.for_grid(256, 256)
        assert coeffs.step_div_cap > 0
        assert coeffs.rx_1 > 0 and coeffs.ry_1 > 0 and coeffs.rz_1 > 0

    def test_reference_step_stays_near_ambient(self, hotspot_input_64):
        app = HotspotApp()
        result = app.reference(hotspot_input_64)
        assert result.shape == (64, 64)
        assert (result > AMBIENT_TEMPERATURE - 10).all()
        assert (result < AMBIENT_TEMPERATURE + 120).all()

    def test_uniform_grid_without_power_stays_constant(self):
        size = 32
        temp = np.full((size, size), AMBIENT_TEMPERATURE)
        power = np.zeros((size, size))
        instance = generate_hotspot_input(size, seed=0)
        instance = type(instance)(size=size, temperature=temp, power=power)
        result = HotspotApp().reference(instance)
        np.testing.assert_allclose(result, AMBIENT_TEMPERATURE, rtol=1e-9)

    def test_heating_follows_power(self, hotspot_input_64):
        """More dissipated power must mean more heating (everything else equal)."""
        app = HotspotApp()
        with_power = app.reference(hotspot_input_64)
        no_power_input = type(hotspot_input_64)(
            size=hotspot_input_64.size,
            temperature=hotspot_input_64.temperature,
            power=np.zeros_like(hotspot_input_64.power),
        )
        without_power = app.reference(no_power_input)
        assert (with_power >= without_power - 1e-12).all()
        assert with_power.mean() > without_power.mean()

    def test_perforation_error_is_tiny(self, hotspot_input_64):
        """Paper: Hotspot's perforated error is very small with low variance."""
        app = HotspotApp()
        reference = app.reference(hotspot_input_64)
        approx = app.approximate(hotspot_input_64, ROWS1_NN)
        error = compute_error(reference, approx, app.error_metric)
        assert error < 0.01

    def test_stencil_config_keeps_power_accurate(self, hotspot_input_64):
        app = HotspotApp()
        reference = app.reference(hotspot_input_64)
        approx = app.approximate(hotspot_input_64, STENCIL1_NN)
        error = compute_error(reference, approx, app.error_metric)
        assert error < 0.01

    def test_multi_step_simulation(self, hotspot_input_64):
        app = HotspotApp()
        accurate = app.simulate(hotspot_input_64, steps=3)
        approximate = app.simulate(hotspot_input_64, steps=3, config=ROWS1_NN)
        assert accurate.shape == approximate.shape
        drift = compute_error(accurate, approximate, app.error_metric)
        assert drift < 0.05

    def test_simulate_rejects_non_positive_steps(self, hotspot_input_64):
        with pytest.raises(ValueError):
            HotspotApp().simulate(hotspot_input_64, steps=0)

    def test_accurate_config_simulation_matches_reference_chain(self, hotspot_input_64):
        app = HotspotApp()
        one = app.simulate(hotspot_input_64, steps=1, config=ACCURATE_CONFIG)
        np.testing.assert_allclose(one, app.reference(hotspot_input_64))
