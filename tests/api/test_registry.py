"""Tests for the string-keyed registries behind the session API."""

import pytest

from repro.api.registry import Registry, RegistryError
from repro.apps import (
    APPLICATIONS,
    GaussianApp,
    available_applications,
    get_application,
    register_application,
)
from repro.clsim.device import (
    DEVICE_PROFILES,
    Device,
    available_devices,
    get_device,
    register_device,
)
from repro.clsim.errors import InvalidDeviceError
from repro.core.errors import SchemeError
from repro.core.schemes import (
    ROWS1,
    RowPerforation,
    SCHEMES,
    available_schemes,
    get_scheme,
    register_scheme,
)


class TestRegistryBasics:
    def test_register_and_get(self):
        registry = Registry("thing")
        registry.register("a", 1)
        assert registry.get("a") == 1
        assert "a" in registry
        assert registry.names() == ["a"]
        assert len(registry) == 1

    def test_unknown_name_raises_with_available_names(self):
        registry = Registry("thing")
        registry.register("a", 1)
        with pytest.raises(RegistryError, match="unknown thing 'b'.*'a'"):
            registry.get("b")

    def test_duplicate_registration_rejected(self):
        registry = Registry("thing")
        registry.register("a", 1)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("a", 2)
        registry.register("a", 2, overwrite=True)
        assert registry.get("a") == 2

    def test_decorator_form(self):
        registry = Registry("factory")

        @registry.register("f")
        def factory():
            return 42

        assert registry.get("f") is factory

    def test_unregister(self):
        registry = Registry("thing")
        registry.register("a", 1)
        registry.unregister("a")
        assert "a" not in registry
        registry.unregister("a")  # idempotent

    def test_invalid_name_rejected(self):
        registry = Registry("thing")
        with pytest.raises(ValueError):
            registry.register("", 1)

    def test_custom_error_class(self):
        registry = Registry("widget", error=LookupError)
        with pytest.raises(LookupError):
            registry.get("nope")


class TestApplicationRegistry:
    def test_builtin_apps_registered(self):
        assert set(available_applications()) >= {
            "gaussian", "inversion", "median", "hotspot", "sobel3", "sobel5",
        }

    def test_get_application_instantiates(self):
        assert isinstance(get_application("gaussian"), GaussianApp)

    def test_unknown_application_raises_keyerror(self):
        with pytest.raises(KeyError):
            get_application("does-not-exist")

    def test_register_application_resolves_in_engine(self):
        from repro.api import PerforationEngine

        class TinyApp(GaussianApp):
            name = "tiny-gaussian"

        register_application("tiny-gaussian", TinyApp)
        try:
            session = PerforationEngine().session(app="tiny-gaussian")
            assert isinstance(session.app, TinyApp)
        finally:
            APPLICATIONS.unregister("tiny-gaussian")


class TestDeviceRegistry:
    def test_builtin_profiles_registered(self):
        assert set(available_devices()) >= {
            "firepro-w5100", "generic-hbm", "low-bandwidth-igpu",
        }

    def test_unknown_device_raises_invalid_device_error(self):
        with pytest.raises(InvalidDeviceError):
            get_device("does-not-exist")

    def test_register_device_resolves_in_engine(self):
        from repro.api import PerforationEngine

        register_device(
            "test-tiny-gpu", lambda: Device(name="tiny", compute_units=2, clock_mhz=500.0)
        )
        try:
            engine = PerforationEngine(device="test-tiny-gpu")
            assert engine.device.compute_units == 2
        finally:
            DEVICE_PROFILES.unregister("test-tiny-gpu")


class TestSchemeRegistry:
    def test_builtin_schemes_registered(self):
        assert set(available_schemes()) >= {
            "accurate", "rows1", "rows2", "cols1", "stencil1",
        }

    def test_get_scheme(self):
        assert get_scheme("rows1") == ROWS1

    def test_unknown_scheme_raises_scheme_error(self):
        with pytest.raises(SchemeError):
            get_scheme("hexagonal")

    def test_register_scheme_by_own_name(self):
        rows8 = RowPerforation(step=8)
        register_scheme(rows8)
        try:
            assert get_scheme("rows4") is rows8  # step=8 -> name "rows4"
        finally:
            SCHEMES.unregister("rows4")
