"""ResultCache bounds: LRU capacity, eviction/hit/miss statistics."""

import numpy as np
import pytest

from repro.api.cache import (
    DEFAULT_MAX_REFERENCES,
    DEFAULT_MAX_TIMINGS,
    CacheStats,
    ResultCache,
)


class TestReferenceBound:
    def test_reference_lru_eviction_counted(self):
        cache = ResultCache(max_references=2)
        for i in range(3):
            cache.reference("app", np.full((2, 2), i, dtype=float), lambda i=i: np.full(1, i))
        assert cache.stats.reference_misses == 3
        assert cache.stats.reference_evictions == 1
        # the first input was evicted: recomputing it is a miss again
        cache.reference("app", np.full((2, 2), 0, dtype=float), lambda: np.full(1, 0))
        assert cache.stats.reference_misses == 4

    def test_reference_lru_keeps_recently_used(self):
        cache = ResultCache(max_references=2)
        a, b, c = (np.full((2, 2), i, dtype=float) for i in range(3))
        cache.reference("app", a, lambda: np.zeros(1))
        cache.reference("app", b, lambda: np.zeros(1))
        cache.reference("app", a, lambda: np.zeros(1))  # refresh a
        cache.reference("app", c, lambda: np.zeros(1))  # evicts b
        hits_before = cache.stats.reference_hits
        cache.reference("app", a, lambda: np.zeros(1))
        assert cache.stats.reference_hits == hits_before + 1

    def test_unbounded_references(self):
        cache = ResultCache(max_references=None)
        for i in range(50):
            cache.reference("app", np.full((1,), i, dtype=float), lambda: np.zeros(1))
        assert cache.stats.reference_evictions == 0


class TestTimingBound:
    def test_timing_lru_capacity(self):
        cache = ResultCache(max_timings=2)
        for key in ("a", "b", "c"):
            cache.timing(key, lambda key=key: key.upper())
        assert cache.stats.timing_misses == 3
        assert cache.stats.timing_evictions == 1
        # "a" was evicted, "c" is still present
        assert cache.timing("c", lambda: "fresh") == "C"
        assert cache.timing("a", lambda: "recomputed") == "recomputed"
        assert cache.stats.timing_misses == 4

    def test_timing_lru_refresh_on_hit(self):
        cache = ResultCache(max_timings=2)
        cache.timing("a", lambda: 1)
        cache.timing("b", lambda: 2)
        cache.timing("a", lambda: -1)  # hit refreshes "a"
        cache.timing("c", lambda: 3)  # evicts "b"
        assert cache.timing("a", lambda: -1) == 1
        assert cache.timing("b", lambda: 20) == 20  # recomputed

    def test_default_bounds(self):
        cache = ResultCache()
        assert cache.max_references == DEFAULT_MAX_REFERENCES
        assert cache.max_timings == DEFAULT_MAX_TIMINGS


class TestStats:
    def test_aggregates_and_hit_rate(self):
        stats = CacheStats(
            reference_hits=3,
            reference_misses=1,
            reference_evictions=2,
            timing_hits=1,
            timing_misses=3,
            timing_evictions=4,
        )
        assert stats.hits == 4
        assert stats.misses == 4
        assert stats.evictions == 6
        assert stats.hit_rate == pytest.approx(0.5)
        text = stats.describe()
        assert "evictions" in text

    def test_empty_hit_rate(self):
        assert CacheStats().hit_rate == 0.0

    def test_clear_resets_counters(self):
        cache = ResultCache(max_timings=1)
        cache.timing("a", lambda: 1)
        cache.timing("b", lambda: 2)
        assert cache.stats.timing_evictions == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.timing_evictions == 0
