"""Tests for the fluent Session API (sweep / autotune / run)."""

import pytest

from repro.api import PerforationEngine
from repro.core import ROWS1_NN, TuningError
from repro.core.config import default_configurations
from repro.data import generate_image


@pytest.fixture()
def engine():
    return PerforationEngine()


@pytest.fixture()
def images():
    return [
        generate_image("flat", size=64, seed=14),
        generate_image("natural", size=64, seed=11),
    ]


class TestFluentSweep:
    def test_sweep_with_explicit_inputs(self, engine, images):
        sweep = engine.session(app="gaussian").sweep(images[1])
        assert {p.label for p in sweep.points} == {
            "Rows1:NN", "Rows2:NN", "Rows1:LI", "Stencil1:NN",
        }

    def test_sweep_without_inputs_uses_generated_sample(self, engine):
        sweep = engine.session(app="sobel3").sweep()
        assert len(sweep.points) == 4

    def test_hotspot_default_inputs(self, engine):
        sweep = engine.session(app="hotspot").sweep()
        assert all(p.speedup > 0 for p in sweep.points)

    def test_with_configs_restricts_sweep(self, engine, images):
        session = engine.session(app="gaussian").with_configs([ROWS1_NN])
        sweep = session.sweep(images[1])
        assert [p.label for p in sweep.points] == ["Rows1:NN"]

    def test_with_inputs_is_sticky(self, engine, images):
        session = engine.session(app="gaussian").with_inputs(images[1])
        first = session.sweep()
        second = session.sweep()
        assert [p.error for p in first.points] == [p.error for p in second.points]


class TestAutotune:
    def test_autotune_returns_session_and_selects(self, engine, images):
        session = engine.session(app="gaussian").autotune(
            error_budget=0.10, calibration_inputs=images
        )
        assert not session.selected.is_accurate
        assert len(session.calibration) == 4

    def test_entries_sorted_fastest_first(self, engine, images):
        session = engine.session(app="gaussian").autotune(
            error_budget=0.05, calibration_inputs=images
        )
        speedups = [e.speedup for e in session.calibration]
        assert speedups == sorted(speedups, reverse=True)

    def test_calibration_deterministic_in_input_order(self, engine, images):
        """Regression: the speedup used to come from the first sweep point."""
        forward = engine.session(app="gaussian").autotune(
            error_budget=0.05, calibration_inputs=images
        )
        backward = engine.session(app="gaussian").autotune(
            error_budget=0.05, calibration_inputs=list(reversed(images))
        )
        by_label_f = {e.config.label: e for e in forward.calibration}
        by_label_b = {e.config.label: e for e in backward.calibration}
        assert by_label_f.keys() == by_label_b.keys()
        for label, entry in by_label_f.items():
            assert entry.speedup == by_label_b[label].speedup
            assert entry.mean_error == by_label_b[label].mean_error

    def test_tiny_budget_falls_back_to_accurate(self, engine, images):
        session = engine.session(app="gaussian").autotune(
            error_budget=1e-9, calibration_inputs=images
        )
        assert session.selected.is_accurate

    def test_missing_budget_rejected(self, engine, images):
        with pytest.raises(TuningError):
            engine.session(app="gaussian").calibrate(images)

    def test_empty_calibration_rejected(self, engine):
        session = engine.session(app="gaussian", error_budget=0.05)
        with pytest.raises(TuningError):
            session.calibrate([])

    def test_select_before_calibrate_rejected(self, engine):
        with pytest.raises(TuningError):
            engine.session(app="gaussian", error_budget=0.05).select()


class TestRun:
    def test_run_with_monitoring(self, engine, images):
        session = engine.session(app="gaussian").autotune(
            error_budget=0.10, calibration_inputs=images
        )
        record = session.run(images[1], monitor=True)
        assert record.output.shape == images[1].shape
        assert record.error is not None
        assert record.within_budget
        assert len(session.history) == 1

    def test_run_without_monitoring_skips_reference(self, engine, images):
        session = engine.session(app="gaussian").autotune(
            error_budget=0.10, calibration_inputs=images
        )
        assert session.run(images[1]).error is None

    def test_accurate_selection_runs_reference(self, engine, images):
        session = engine.session(app="gaussian").autotune(
            error_budget=1e-9, calibration_inputs=images
        )
        record = session.run(images[1])
        assert record.error == 0.0
        assert record.within_budget

    def test_budget_violation_demotes(self, engine, images):
        pattern = generate_image("pattern", size=64, seed=13)
        session = engine.session(app="gaussian").autotune(
            error_budget=0.02, calibration_inputs=images
        )
        first = session.selected
        record = session.run(pattern, monitor=True)
        if not record.within_budget:
            assert session.selected.label != first.label or session.selected.is_accurate

    def test_report_mentions_selection(self, engine, images):
        session = engine.session(app="gaussian").autotune(
            error_budget=0.10, calibration_inputs=images
        )
        report = session.report()
        assert "selected" in report
        assert "speedup" in report


class TestSessionsShareEngineCache:
    def test_two_sessions_share_reference_cache(self, engine, images):
        app_configs = default_configurations(1)
        engine.session(app="gaussian").sweep(images[1], app_configs)
        before = engine.cache_stats.reference_misses
        engine.session(app="gaussian").sweep(images[1], app_configs)
        assert engine.cache_stats.reference_misses == before
