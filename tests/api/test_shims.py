"""The legacy free functions must keep working as deprecation shims."""

import warnings

import pytest

from repro.api import PerforationEngine
from repro.apps import GaussianApp
from repro.core import (
    QualityAwareRuntime,
    ROWS1_NN,
    evaluate_configuration,
    evaluate_dataset,
    evaluate_many,
    sweep_configurations,
)
from repro.data import generate_image


@pytest.fixture()
def image():
    return generate_image("natural", size=64, seed=11)


class TestDeprecationWarnings:
    def test_evaluate_configuration_warns(self, image):
        with pytest.warns(DeprecationWarning, match="evaluate_configuration"):
            evaluate_configuration(GaussianApp(), image, ROWS1_NN)

    def test_evaluate_dataset_warns(self, image):
        with pytest.warns(DeprecationWarning, match="evaluate_dataset"):
            evaluate_dataset(GaussianApp(), [image], ROWS1_NN)

    def test_evaluate_many_warns(self, image):
        with pytest.warns(DeprecationWarning, match="evaluate_many"):
            evaluate_many(GaussianApp(), image, [ROWS1_NN])

    def test_sweep_configurations_warns(self, image):
        with pytest.warns(DeprecationWarning, match="sweep_configurations"):
            sweep_configurations(GaussianApp(), image)

    def test_quality_aware_runtime_warns(self):
        with pytest.warns(DeprecationWarning, match="QualityAwareRuntime"):
            QualityAwareRuntime(GaussianApp(), error_budget=0.05)


class TestShimParity:
    """The shims must return exactly what the engine returns."""

    def test_evaluate_configuration_matches_engine(self, image):
        engine = PerforationEngine()
        direct = engine.evaluate(GaussianApp(), image, ROWS1_NN)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shimmed = evaluate_configuration(GaussianApp(), image, ROWS1_NN)
        assert shimmed.error == direct.error
        assert shimmed.speedup == direct.speedup

    def test_sweep_configurations_matches_engine(self, image):
        engine = PerforationEngine()
        direct = engine.sweep(GaussianApp(), image)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shimmed = sweep_configurations(GaussianApp(), image)
        assert [(p.label, p.error, p.speedup) for p in direct.points] == [
            (p.label, p.error, p.speedup) for p in shimmed.points
        ]

    def test_runtime_attributes_still_assignable(self, image):
        """The 1.0 class exposed plain attributes; the shim must too."""
        from repro.core.config import ACCURATE_CONFIG

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            runtime = QualityAwareRuntime(GaussianApp(), error_budget=0.10)
        runtime.selected = ACCURATE_CONFIG
        runtime.error_budget = 0.02
        runtime.safety_margin = 0.5
        assert runtime.selected.is_accurate
        assert runtime.error_budget == 0.02
        record = runtime.execute(image)
        assert record.error == 0.0
        record.output[0, 0] = 42.0  # output is the caller's private copy

    def test_runtime_matches_session_autotune(self, image):
        flat = generate_image("flat", size=64, seed=14)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            runtime = QualityAwareRuntime(GaussianApp(), error_budget=0.10)
            runtime.calibrate([flat, image])
        session = PerforationEngine().session(app="gaussian").autotune(
            error_budget=0.10, calibration_inputs=[flat, image]
        )
        assert runtime.selected.label == session.selected.label
        assert [e.config.label for e in runtime.calibration] == [
            e.config.label for e in session.calibration
        ]
