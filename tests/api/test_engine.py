"""Tests for the PerforationEngine: caching, parallelism, evaluation parity."""

import numpy as np
import pytest

from repro.api import PerforationEngine
from repro.api.cache import ResultCache, input_token
from repro.apps import GaussianApp
from repro.core import ConfigurationError, ROWS1_NN, STENCIL1_NN
from repro.core.config import default_configurations
from repro.data import generate_image, hotspot_single


class CountingGaussian(GaussianApp):
    """Gaussian app that counts reference/approximate evaluations."""

    def __init__(self):
        super().__init__()
        self.reference_calls = 0
        self.approximate_calls = 0

    def reference(self, inputs):
        self.reference_calls += 1
        return super().reference(inputs)

    def approximate(self, inputs, config):
        self.approximate_calls += 1
        return super().approximate(inputs, config)


@pytest.fixture()
def image():
    return generate_image("natural", size=64, seed=11)


class TestConstruction:
    def test_default_device_is_firepro(self):
        engine = PerforationEngine()
        assert "W5100" in engine.device.name

    def test_device_by_name(self):
        engine = PerforationEngine(device="generic-hbm")
        assert "HBM" in engine.device.name

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            PerforationEngine(workers=0)
        with pytest.raises(ValueError):
            PerforationEngine(workers="many")

    def test_auto_workers(self):
        assert PerforationEngine(workers="auto").workers >= 1

    def test_context_manager_closes_pool(self, image):
        with PerforationEngine(workers=2) as engine:
            engine.sweep("gaussian", image)
        assert engine._pool is None

    def test_closed_engine_stays_serial(self, image):
        engine = PerforationEngine(workers=4)
        engine.close()
        sweep = engine.sweep("gaussian", image)
        assert len(sweep.points) == 4
        assert engine._pool is None  # no pool recreated after close()


class TestReferenceCache:
    def test_reference_computed_once_across_sweep(self, image):
        app = CountingGaussian()
        engine = PerforationEngine()
        engine.sweep(app, image, default_configurations(app.halo))
        assert app.reference_calls == 1
        assert app.approximate_calls == 4

    def test_second_sweep_hits_cache(self, image):
        app = CountingGaussian()
        engine = PerforationEngine()
        engine.sweep(app, image, default_configurations(app.halo))
        engine.sweep(app, image, default_configurations(app.halo))
        assert app.reference_calls == 1
        assert engine.cache_stats.reference_hits >= 1

    def test_equal_content_different_objects_share_reference(self, image):
        app = CountingGaussian()
        engine = PerforationEngine()
        engine.evaluate(app, image, ROWS1_NN)
        engine.evaluate(app, image.copy(), ROWS1_NN)
        assert app.reference_calls == 1

    def test_cache_disabled(self, image):
        app = CountingGaussian()
        engine = PerforationEngine(cache=False)
        engine.evaluate(app, image, ROWS1_NN)
        engine.evaluate(app, image, ROWS1_NN)
        assert app.reference_calls == 2
        assert engine.cache_stats.hits == 0

    def test_clear_cache(self, image):
        app = CountingGaussian()
        engine = PerforationEngine()
        engine.evaluate(app, image, ROWS1_NN)
        engine.clear_cache()
        engine.evaluate(app, image, ROWS1_NN)
        assert app.reference_calls == 2

    def test_timing_cache_hits_across_configs(self, image):
        engine = PerforationEngine()
        engine.sweep("gaussian", image)
        # The baseline timing is shared by all four configurations.
        assert engine.cache_stats.timing_hits >= 3

    def test_cached_reference_is_readonly(self, image):
        """Shared cache entries must not be silently mutable by callers."""
        engine = PerforationEngine()
        reference = engine.reference("gaussian", image)
        with pytest.raises(ValueError):
            reference[0, 0] = 123.0

    def test_subclass_with_same_name_gets_own_cache_entry(self, image):
        """A subclass overriding reference() must not alias the stock app."""
        engine = PerforationEngine()
        engine.reference(GaussianApp(), image)
        counting = CountingGaussian()
        engine.reference(counting, image)
        assert counting.reference_calls == 1  # computed, not aliased

    def test_lru_bound_evicts_old_references(self):
        cache = ResultCache(max_references=2)
        engine = PerforationEngine(cache=cache)
        app = CountingGaussian()
        images = [generate_image("natural", size=32, seed=s) for s in range(3)]
        for img in images:
            engine.reference(app, img)
        engine.reference(app, images[0])  # evicted -> recomputed
        assert app.reference_calls == 4


class TestInputToken:
    def test_array_token_is_content_based(self):
        a = np.arange(12.0).reshape(3, 4)
        assert input_token(a) == input_token(a.copy())
        assert input_token(a) != input_token(a + 1)

    def test_dataclass_token(self):
        h1 = hotspot_single(size=64, seed=3)
        h2 = hotspot_single(size=64, seed=3)
        h3 = hotspot_single(size=64, seed=4)
        assert input_token(h1) == input_token(h2)
        assert input_token(h1) != input_token(h3)

    def test_unhashable_object_returns_none(self):
        class Opaque:
            pass

        assert input_token(Opaque()) is None


class TestParallelParity:
    """Acceptance: parallel sweeps match the serial path bit for bit."""

    def test_parallel_sweep_identical_to_serial(self, image):
        app = GaussianApp()
        configs = default_configurations(app.halo)
        serial = PerforationEngine(workers=1).sweep(app, image, configs)
        parallel = PerforationEngine(workers=4).sweep(app, image, configs)
        assert [p.config for p in serial.points] == [p.config for p in parallel.points]
        assert [p.error for p in serial.points] == [p.error for p in parallel.points]
        assert [p.speedup for p in serial.points] == [p.speedup for p in parallel.points]
        assert [p.runtime_s for p in serial.points] == [p.runtime_s for p in parallel.points]

    def test_parallel_dataset_identical_to_serial(self):
        dataset = [generate_image("natural", size=64, seed=s) for s in range(5)]
        serial = PerforationEngine(workers=1).evaluate_dataset("gaussian", dataset, ROWS1_NN)
        parallel = PerforationEngine(workers=4).evaluate_dataset("gaussian", dataset, ROWS1_NN)
        assert serial.errors == parallel.errors
        assert serial.speedup == parallel.speedup

    def test_parallel_full_sweep_identical_to_serial(self, image):
        serial = PerforationEngine(workers=1).full_sweep("median", image)
        parallel = PerforationEngine(workers=3).full_sweep("median", image)
        assert [(p.config, p.error, p.speedup) for p in serial.points] == [
            (p.config, p.error, p.speedup) for p in parallel.points
        ]


class TestEvaluation:
    def test_evaluate_by_app_name(self, image):
        result = PerforationEngine().evaluate("gaussian", image, ROWS1_NN)
        assert result.app_name == "gaussian"
        assert result.error > 0
        assert result.speedup > 1.0

    def test_invalid_config_rejected(self, image):
        with pytest.raises(ConfigurationError):
            PerforationEngine().evaluate("inversion", image, STENCIL1_NN)

    def test_numpy_array_dataset_accepted(self):
        """Regression: ``if not dataset`` used to raise for array datasets."""
        stack = np.stack([generate_image("natural", size=64, seed=s) for s in range(3)])
        result = PerforationEngine().evaluate_dataset("gaussian", stack, ROWS1_NN)
        assert result.summary.count == 3

    def test_empty_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            PerforationEngine().evaluate_dataset("gaussian", [], ROWS1_NN)

    def test_hotspot_inputs_cacheable(self):
        instance = hotspot_single(size=64, seed=21)
        engine = PerforationEngine()
        r1 = engine.evaluate("hotspot", instance, ROWS1_NN)
        r2 = engine.evaluate("hotspot", instance, ROWS1_NN)
        assert r1.error == r2.error
        assert engine.cache_stats.reference_hits >= 1

    def test_best_work_group_matches_legacy_observation(self, image):
        shape = PerforationEngine().best_work_group("gaussian", image, ROWS1_NN)
        assert shape[0] >= shape[1]  # the paper's x-major observation
