"""Artifact-cache semantics: hit/miss/eviction, corruption recovery, env
override and content-key invalidation.

The on-disk cache must never change execution results — only skip the
lowering step — so most tests here drive it through the real codegen
backend and assert the outputs stay bit-identical across cache states.
"""

import os

import numpy as np
import pytest

from repro.api import PerforationEngine
from repro.api.artifacts import (
    ARTIFACT_HEADER,
    ArtifactCache,
    DEFAULT_MAX_ENTRIES,
    ENV_CACHE_DIR,
    ENV_CACHE_MAX,
    default_cache,
)
from repro.data import generate_image
from repro.kernellang import codegen


HEADER = ARTIFACT_HEADER + " (format test)\n"


def _key(n: int) -> str:
    return f"{n:064x}"


def _source(n: int) -> str:
    return f"{HEADER}x = {n}\n"


@pytest.fixture()
def cache(tmp_path):
    return ArtifactCache(tmp_path / "artifacts", max_entries=4)


@pytest.fixture()
def cache_env(tmp_path, monkeypatch):
    """Point the process default cache at a fresh directory."""
    root = tmp_path / "cgcache"
    monkeypatch.setenv(ENV_CACHE_DIR, str(root))
    monkeypatch.delenv(ENV_CACHE_MAX, raising=False)
    codegen._FN_MEMO.clear()
    yield root
    codegen._FN_MEMO.clear()


class TestCacheBasics:
    def test_miss_then_put_then_hit(self, cache):
        assert cache.get(_key(1)) is None
        assert cache.stats.misses == 1
        assert cache.put(_key(1), _source(1))
        assert cache.get(_key(1)) == _source(1)
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_invalidate_and_clear(self, cache):
        for n in range(3):
            cache.put(_key(n), _source(n))
        cache.invalidate(_key(0))
        assert cache.get(_key(0)) is None
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_invalid_keys_never_touch_disk(self, cache):
        assert cache.get("../../etc/passwd") is None
        assert not cache.put("not-a-hash!", _source(1))
        assert cache.stats.errors == 1
        cache.invalidate("..")  # no-op, no exception

    def test_put_rejects_headerless_source(self, cache):
        assert not cache.put(_key(1), "print('hi')\n")
        assert cache.get(_key(1)) is None

    def test_corrupt_entry_is_dropped_on_get(self, cache):
        cache.put(_key(1), _source(1))
        (cache.root / f"{_key(1)}.py").write_text("garbage", encoding="utf-8")
        assert cache.get(_key(1)) is None
        assert len(cache) == 0  # the bad entry was removed

    def test_unwritable_root_degrades_to_no_cache(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the cache dir should be")
        cache = ArtifactCache(blocker / "sub")
        assert not cache.put(_key(1), _source(1))
        assert cache.get(_key(1)) is None
        assert cache.stats.errors >= 1


class TestEviction:
    def test_lru_eviction_beyond_bound(self, cache):
        for n in range(6):
            assert cache.put(_key(n), _source(n))
            os.utime(cache._path(_key(n)), (n, n))  # deterministic LRU order
        cache._evict()
        assert len(cache) == 4
        assert cache.stats.evictions >= 2
        # Oldest entries went first.
        assert cache.get(_key(0)) is None
        assert cache.get(_key(5)) == _source(5)

    def test_get_refreshes_lru_position(self, cache):
        for n in range(4):
            cache.put(_key(n), _source(n))
            os.utime(cache._path(_key(n)), (n, n))
        assert cache.get(_key(0)) == _source(0)  # refreshes mtime
        cache.put(_key(9), _source(9))  # evicts beyond max_entries=4
        assert cache.get(_key(0)) == _source(0)
        assert cache.get(_key(1)) is None


class TestEnvOverride:
    def test_env_overrides_directory(self, cache_env):
        cache = default_cache()
        assert cache is not None
        assert str(cache.root) == str(cache_env)

    def test_disabled_values(self, monkeypatch):
        for value in ("0", "off", "NONE", " disabled "):
            monkeypatch.setenv(ENV_CACHE_DIR, value)
            assert default_cache() is None

    def test_max_entries_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "c"))
        monkeypatch.setenv(ENV_CACHE_MAX, "7")
        assert default_cache().max_entries == 7
        monkeypatch.setenv(ENV_CACHE_MAX, "bogus")
        assert default_cache().max_entries == DEFAULT_MAX_ENTRIES

    def test_instances_shared_per_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "c"))
        assert default_cache() is default_cache()


class TestBackendIntegration:
    """The cache only ever skips lowering — results stay bit-identical."""

    def _run(self):
        engine = PerforationEngine(backend="codegen")
        image = generate_image("natural", size=16, seed=3)
        return engine.run_compiled("gaussian", image)

    def test_populates_then_hits_across_processes(self, cache_env):
        reference = self._run()
        cache = default_cache()
        assert cache.stats.puts >= 1
        assert len(cache) >= 1
        # Simulate a fresh process: drop the in-memory memo, rerun.
        codegen._FN_MEMO.clear()
        hits_before = cache.stats.hits
        np.testing.assert_array_equal(self._run(), reference)
        assert cache.stats.hits > hits_before

    def test_corrupt_artifact_recovers_bit_identically(self, cache_env):
        reference = self._run()
        cache = default_cache()
        for path in cache._entries():
            path.write_text("def kernel_group(:\n", encoding="utf-8")
        codegen._FN_MEMO.clear()
        np.testing.assert_array_equal(self._run(), reference)

    def test_parseable_but_broken_artifact_recovers(self, cache_env):
        """Corruption that survives the header check AND compiles, but
        raises at module-exec time, must still count as a miss."""
        from repro.api.artifacts import ARTIFACT_HEADER

        reference = self._run()
        cache = default_cache()
        for path in cache._entries():
            path.write_text(
                ARTIFACT_HEADER + "\nboom = undefined_name\n", encoding="utf-8"
            )
        codegen._FN_MEMO.clear()
        np.testing.assert_array_equal(self._run(), reference)

    def test_key_changes_with_kernel_source_and_config(self):
        from repro.apps import get_application
        from repro.core import ApproximationConfig
        from repro.core.schemes import RowPerforation

        app = get_application("gaussian")
        accurate = app.perforator().accurate()
        perforated = app.perforator().perforate(
            ApproximationConfig(scheme=RowPerforation(step=2), work_group=(8, 8))
        )
        key = codegen.artifact_key(accurate.source, "gaussian", (8, 8), False)
        assert key != codegen.artifact_key(
            perforated.source, "gaussian", (8, 8), False
        ), "perforation config must change the key (it rewrites the source)"
        assert key != codegen.artifact_key(accurate.source, "gaussian", (4, 4), False)
        assert key != codegen.artifact_key(accurate.source, "gaussian", (8, 8), True)
        assert key != codegen.artifact_key(
            accurate.source + " ", "gaussian", (8, 8), False
        )
        assert key == codegen.artifact_key(accurate.source, "gaussian", (8, 8), False)


class TestGenericStore:
    """The artifact cache is one consumer of the generic DiskStore; the
    tuning database is the other.  Pin the shared machinery's contract."""

    def test_artifact_cache_is_a_disk_store(self, cache):
        from repro.api.store import DiskStore, StoreStats

        assert isinstance(cache, DiskStore)
        # stats() counters are part of the generic store surface...
        assert isinstance(cache.stats(), StoreStats)
        # ...and the legacy attribute view stays bit-compatible.
        assert cache.stats() is cache.stats

    def test_stats_counters_cover_hit_miss_put_eviction(self, cache):
        import os

        assert cache.get(_key(1)) is None
        cache.put(_key(1), _source(1))
        cache.get(_key(1))
        for n in range(2, 8):
            cache.put(_key(n), _source(n))
            os.utime(cache._path(_key(n)), (n, n))
        stats = cache.stats()
        assert stats.misses >= 1 and stats.hits >= 1
        assert stats.puts == 7
        assert stats.evictions >= 3  # bound is 4
        assert 0.0 < stats.hit_rate < 1.0

    def test_suffixes_namespace_stores_sharing_a_directory(self, tmp_path):
        from repro.api.store import DiskStore

        py_store = DiskStore(tmp_path, header="# a", suffix=".py")
        json_store = DiskStore(tmp_path, header="# b", suffix=".json")
        py_store.put(_key(1), "# a\nx = 1\n")
        json_store.put(_key(1), "# b\n{}\n")
        assert py_store.get(_key(1)) == "# a\nx = 1\n"
        assert json_store.get(_key(1)) == "# b\n{}\n"
        assert len(py_store) == 1 and len(json_store) == 1

    def test_store_validates_construction(self, tmp_path):
        from repro.api.store import DiskStore

        with pytest.raises(ValueError):
            DiskStore(tmp_path, max_entries=0, header="# h")
        with pytest.raises(ValueError):
            DiskStore(tmp_path, header="")
        with pytest.raises(ValueError):
            DiskStore(tmp_path, header="# h", suffix="json")


class TestReadOnlyStore:
    """The read-only open mode the fleet workers use: reads hit, nothing
    on disk ever changes — no LRU mtime refresh, no writes, no eviction."""

    @pytest.fixture()
    def shared(self, tmp_path):
        from repro.api.store import DiskStore

        writer = DiskStore(tmp_path / "shared", max_entries=8, header="# h", suffix=".txt")
        for n in range(4):
            assert writer.put(_key(n), f"# h\nentry {n}\n")
        return writer

    def _reader(self, shared):
        from repro.api.store import DiskStore

        return DiskStore(
            shared.root, max_entries=8, header="# h", suffix=".txt", readonly=True
        )

    def test_reads_hit_without_touching_mtimes(self, shared):
        reader = self._reader(shared)
        path = shared._path(_key(0))
        os.utime(path, (1_000_000, 1_000_000))
        before = path.stat().st_mtime
        assert reader.get(_key(0)) == "# h\nentry 0\n"
        assert path.stat().st_mtime == before  # no LRU refresh
        assert reader.stats().hits == 1

    def test_writes_refused_silently(self, shared):
        reader = self._reader(shared)
        assert reader.put(_key(9), "# h\nnew\n") is False
        assert reader.get(_key(9)) is None
        reader.invalidate(_key(0))
        assert reader.get(_key(0)) is not None  # invalidate was a no-op
        assert reader.clear() == 0
        assert len(shared) == 4
        assert reader.stats().puts == 0 and reader.stats().errors == 0

    def test_corrupt_entry_reported_as_miss_but_left_in_place(self, shared):
        reader = self._reader(shared)
        shared._path(_key(1)).write_text("torn garbage")
        assert reader.get(_key(1)) is None
        # The writer owns the directory; a read-only handle must not
        # delete entries out from under it.
        assert shared._path(_key(1)).exists()

    def test_many_concurrent_readers_share_one_directory(self, shared):
        from concurrent.futures import ThreadPoolExecutor

        readers = [self._reader(shared) for _ in range(8)]

        def sweep(reader):
            entries = []
            for _ in range(16):
                entries.extend(reader.get(_key(n)) for n in range(4))
            return entries

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(sweep, readers))
        expected = [f"# h\nentry {n}\n" for n in range(4)] * 16
        assert all(result == expected for result in results)
        for reader in readers:
            assert reader.stats().errors == 0
            assert reader.stats().hits == 64
        assert len(shared) == 4  # nothing evicted, nothing written
