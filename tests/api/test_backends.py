"""Tests for the execution-backend registry and the ``backend=`` plumbing
through executor, engine and session (mirrors ``tests/api/test_registry.py``
for the application/device/scheme registries)."""

import numpy as np
import pytest

from repro.api import PerforationEngine
from repro.clsim import Executor
from repro.clsim.backends import (
    DEFAULT_BACKEND,
    EXECUTION_BACKENDS,
    InterpreterBackend,
    VectorizedBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.clsim.errors import InvalidBackendError
from repro.core import ROWS1_NN
from repro.data import generate_image


class RecordingBackend(InterpreterBackend):
    """Interpreter backend that counts the groups it executed."""

    name = "recording"

    def __init__(self) -> None:
        self.groups = 0

    def run_group(self, kernel, ctx, ndrange, group_id):
        self.groups += 1
        return super().run_group(kernel, ctx, ndrange, group_id)


class TestBackendRegistry:
    def test_builtin_backends_are_registered(self):
        assert "interpreter" in available_backends()
        assert "vectorized" in available_backends()
        assert DEFAULT_BACKEND == "interpreter"

    def test_get_backend_instantiates(self):
        assert isinstance(get_backend("interpreter"), InterpreterBackend)
        assert isinstance(get_backend("vectorized"), VectorizedBackend)

    def test_unknown_name_raises_with_available_names(self):
        with pytest.raises(InvalidBackendError, match="unknown execution backend"):
            get_backend("warp-drive")
        with pytest.raises(InvalidBackendError, match="interpreter"):
            get_backend("warp-drive")

    def test_register_and_unregister(self):
        register_backend("recording-test", RecordingBackend)
        try:
            assert "recording-test" in available_backends()
            assert isinstance(get_backend("recording-test"), RecordingBackend)
            with pytest.raises(ValueError, match="already registered"):
                register_backend("recording-test", RecordingBackend)
            register_backend("recording-test", RecordingBackend, overwrite=True)
        finally:
            EXECUTION_BACKENDS.unregister("recording-test")
        assert "recording-test" not in available_backends()

    def test_resolve_backend(self):
        assert isinstance(resolve_backend(None), InterpreterBackend)
        assert isinstance(resolve_backend("vectorized"), VectorizedBackend)
        instance = RecordingBackend()
        assert resolve_backend(instance) is instance
        with pytest.raises(InvalidBackendError):
            resolve_backend(42)


class TestExecutorBackendSelection:
    def test_executor_defaults_to_interpreter(self, device):
        assert isinstance(Executor(device).backend, InterpreterBackend)

    def test_executor_accepts_name_and_instance(self, device):
        assert isinstance(Executor(device, backend="vectorized").backend, VectorizedBackend)
        instance = RecordingBackend()
        assert Executor(device, backend=instance).backend is instance

    def test_executor_rejects_unknown_backend(self, device):
        with pytest.raises(InvalidBackendError):
            Executor(device, backend="warp-drive")


class TestEngineBackendPlumbing:
    def test_engine_defaults_to_interpreter(self):
        engine = PerforationEngine()
        assert engine.backend.name == "interpreter"
        assert isinstance(engine.executor().backend, InterpreterBackend)

    def test_engine_resolves_backend_name_eagerly(self):
        engine = PerforationEngine(backend="vectorized")
        assert isinstance(engine.backend, VectorizedBackend)
        with pytest.raises(InvalidBackendError):
            PerforationEngine(backend="warp-drive")

    def test_engine_executor_override(self):
        engine = PerforationEngine(backend="vectorized")
        assert isinstance(engine.executor("interpreter").backend, InterpreterBackend)
        assert isinstance(engine.executor().backend, VectorizedBackend)

    def test_run_compiled_uses_engine_backend(self):
        recording = RecordingBackend()
        engine = PerforationEngine(backend=recording)
        image = generate_image("natural", size=16, seed=3)
        engine.run_compiled("inversion", image, ROWS1_NN.with_work_group((8, 8)))
        assert recording.groups == 4  # 16x16 image, 8x8 groups

    def test_run_compiled_per_call_override(self):
        recording = RecordingBackend()
        engine = PerforationEngine(backend="vectorized")
        image = generate_image("natural", size=16, seed=3)
        engine.run_compiled(
            "inversion", image, ROWS1_NN.with_work_group((8, 8)), backend=recording
        )
        assert recording.groups == 4

    def test_compiled_sweep_runs_every_configuration(self):
        engine = PerforationEngine(backend="vectorized")
        image = generate_image("natural", size=16, seed=3)
        outputs = engine.compiled_sweep("gaussian", image)
        assert len(outputs) == 4
        for label, output in outputs.items():
            assert output.shape == image.shape, label


class TestSessionBackendPlumbing:
    def test_session_inherits_engine_backend(self):
        recording = RecordingBackend()
        engine = PerforationEngine(backend=recording)
        session = engine.session("inversion")
        assert session.backend is None  # defers to the engine
        image = generate_image("natural", size=16, seed=3)
        session.run_compiled(image, ROWS1_NN.with_work_group((8, 8)))
        assert recording.groups == 4

    def test_per_session_override_beats_engine_backend(self):
        recording = RecordingBackend()
        engine = PerforationEngine(backend="vectorized")
        session = engine.session("inversion", backend=recording)
        image = generate_image("natural", size=16, seed=3)
        session.run_compiled(image, ROWS1_NN.with_work_group((8, 8)))
        assert recording.groups == 4

    def test_with_backend_fluent_setter(self):
        engine = PerforationEngine()
        session = engine.session("inversion").with_backend("vectorized")
        assert isinstance(session.backend, VectorizedBackend)
        image = generate_image("natural", size=16, seed=3)
        out = session.run_compiled(image, ROWS1_NN.with_work_group((8, 8)))
        np.testing.assert_array_equal(
            out,
            engine.run_compiled(
                "inversion", image, ROWS1_NN.with_work_group((8, 8))
            ),
        )

    def test_unknown_session_backend_fails_eagerly(self):
        engine = PerforationEngine()
        with pytest.raises(InvalidBackendError):
            engine.session("inversion", backend="warp-drive")
        with pytest.raises(InvalidBackendError):
            engine.session("inversion").with_backend("warp-drive")

    def test_compiled_sweep_rejects_colliding_labels(self):
        from repro.core.errors import ConfigurationError

        engine = PerforationEngine(backend="vectorized")
        image = generate_image("natural", size=16, seed=3)
        config = ROWS1_NN.with_work_group((8, 8))
        with pytest.raises(ConfigurationError, match="distinct labels"):
            engine.compiled_sweep("inversion", image, [config, config])
