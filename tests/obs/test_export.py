"""Exporters: Chrome trace documents, Prometheus text, trace_summary CLI."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs.export import (
    render_prometheus,
    to_chrome_trace,
    write_chrome_trace,
    write_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span


def make_spans() -> list[Span]:
    parent = Span(
        name="serve.batch",
        category="serve",
        start_ns=1_000_000,
        duration_ns=2_000_000,
        pid=100,
        process="main",
        attrs={"batch_id": 1},
    )
    child = Span(
        name="serve.request",
        category="serve",
        start_ns=1_200_000,
        duration_ns=800_000,
        parent_id=parent.span_id,
        trace_id="r0",
        pid=200,
        process="worker-0",
    )
    return [parent, child]


class TestChromeTrace:
    def test_document_structure(self):
        doc = to_chrome_trace(make_spans())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert {m["args"]["name"] for m in meta} == {"main", "worker-0"}
        assert len(spans) == 2
        batch = next(e for e in spans if e["name"] == "serve.batch")
        request = next(e for e in spans if e["name"] == "serve.request")
        # Timestamps are microseconds.
        assert batch["ts"] == 1000.0
        assert batch["dur"] == 2000.0
        assert batch["args"]["batch_id"] == 1
        assert request["args"]["parent_id"] == batch["args"]["span_id"]
        assert request["args"]["trace_id"] == "r0"

    def test_accepts_span_dicts(self):
        doc = to_chrome_trace([s.to_dict() for s in make_spans()])
        assert len([e for e in doc["traceEvents"] if e["ph"] == "X"]) == 2

    def test_dropped_spans_reported(self):
        doc = to_chrome_trace([], dropped=5)
        assert doc["otherData"] == {"dropped_spans": 5}
        assert "otherData" not in to_chrome_trace([])

    def test_write_is_valid_json(self, tmp_path):
        path = write_chrome_trace(tmp_path / "t.json", make_spans(), dropped=1)
        doc = json.loads(Path(path).read_text())
        assert doc["otherData"]["dropped_spans"] == 1


class TestPrometheus:
    def test_render_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.counter("serve.completed", help="requests finished").inc(12)
        reg.gauge("fleet.workers").set(2)
        h = reg.histogram("serve.latency_ms")
        h.observe(1.5)
        h.observe(2.5)
        text = render_prometheus(reg)
        assert "# HELP serve_completed requests finished" in text
        assert "# TYPE serve_completed counter" in text
        assert "serve_completed 12" in text
        assert "fleet_workers 2" in text
        assert "# TYPE serve_latency_ms summary" in text
        assert "serve_latency_ms_count 2" in text
        assert "serve_latency_ms_sum 4.0" in text
        assert "serve_latency_ms_min 1.5" in text
        assert "serve_latency_ms_max 2.5" in text

    def test_empty_histogram_renders_without_inf(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        text = render_prometheus(reg)
        assert "h_count 0" in text
        assert "Inf" not in text

    def test_write(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        path = write_prometheus(tmp_path / "m.prom", reg)
        assert "c 1" in Path(path).read_text()


@pytest.fixture(scope="module")
def trace_summary():
    """Load tools/trace_summary.py as a module (tools/ is not a package)."""
    root = Path(__file__).resolve().parents[2]
    spec = importlib.util.spec_from_file_location(
        "trace_summary", root / "tools" / "trace_summary.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestTraceSummaryCLI:
    def test_summary_of_exported_trace(self, tmp_path, trace_summary, capsys):
        path = write_chrome_trace(tmp_path / "t.json", make_spans())
        assert trace_summary.main([path, "--expect-spans", "2"]) == 0
        out = capsys.readouterr().out
        assert "spans: 2" in out
        assert "serve" in out
        assert "worker-0" in out
        assert "r0" in out  # slow-request table shows trace ids

    def test_expect_workers_counts_traced_worker_pids(self, tmp_path, trace_summary):
        path = write_chrome_trace(tmp_path / "t.json", make_spans())
        assert trace_summary.count_worker_processes(trace_summary.load_events(path)) == 1
        assert trace_summary.main([path, "--expect-workers", "1"]) == 0
        assert trace_summary.main([path, "--expect-workers", "2"]) == 1

    def test_expect_spans_failure(self, tmp_path, trace_summary):
        path = write_chrome_trace(tmp_path / "t.json", [])
        assert trace_summary.main([path, "--expect-spans", "1"]) == 1

    def test_rejects_non_trace_json(self, tmp_path, trace_summary):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "a trace"}')
        assert trace_summary.main([str(path)]) == 1
