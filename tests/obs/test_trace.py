"""Tracer: span nesting, ring bounds, no-op fast path, env installation."""

from __future__ import annotations

import threading

import pytest

from repro.obs import trace as obs_trace
from repro.obs.trace import NULL_TRACER, Span, Tracer


@pytest.fixture()
def tracer():
    tr = obs_trace.install(process="test")
    yield tr
    obs_trace.disable()


class TestSpans:
    def test_context_manager_records_one_span(self, tracer):
        with tracer.span("work", category="unit", detail=7):
            pass
        spans = tracer.spans()
        assert len(spans) == 1
        span = spans[0]
        assert span.name == "work"
        assert span.category == "unit"
        assert span.attrs == {"detail": 7}
        assert span.duration_ns >= 0
        assert span.parent_id is None

    def test_nesting_links_parent_ids(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
            outer.set(tag="x")
        inner, outer = tracer.spans()
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.attrs == {"tag": "x"}

    def test_record_adopts_open_span_as_parent(self, tracer):
        with tracer.span("outer") as outer:
            tracer.record("measured", start_ns=1, duration_ns=2)
        measured, outer_span = tracer.spans()
        assert measured.parent_id == outer_span.span_id
        assert outer.set() is outer  # chainable, harmless after exit

    def test_point_is_instant(self, tracer):
        tracer.point("decision", category="ctl", action="tighten")
        (span,) = tracer.spans()
        assert span.duration_ns == 0
        assert span.attrs["action"] == "tighten"

    def test_exception_annotates_span_and_propagates(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (span,) = tracer.spans()
        assert span.attrs["error"] == "ValueError"

    def test_trace_id_is_carried(self, tracer):
        with tracer.span("req", trace_id="r7"):
            pass
        assert tracer.spans()[0].trace_id == "r7"

    def test_monotonic_ordering(self, tracer):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.spans()
        assert b.start_ns >= a.start_ns

    def test_threads_have_independent_parent_stacks(self, tracer):
        seen = []

        def worker():
            with tracer.span("thread-span"):
                pass
            seen.append(True)

        with tracer.span("main-span"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        thread_span = next(s for s in tracer.spans() if s.name == "thread-span")
        assert thread_span.parent_id is None  # not parented across threads
        assert seen == [True]


class TestRingBuffer:
    def test_capacity_bounds_and_counts_drops(self):
        tr = Tracer(capacity=4, process="t")
        for i in range(10):
            tr.point(f"p{i}")
        assert len(tr) == 4
        assert tr.dropped == 6
        assert [s.name for s in tr.spans()] == ["p6", "p7", "p8", "p9"]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_drain_empties_and_round_trips(self, tracer):
        with tracer.span("x", category="c", k=1, trace_id="r1"):
            pass
        shipped = tracer.drain()
        assert len(tracer) == 0
        back = Span.from_dict(shipped[0])
        assert back.name == "x"
        assert back.category == "c"
        assert back.attrs == {"k": 1}
        assert back.trace_id == "r1"

    def test_ingest_merges_foreign_spans(self, tracer):
        foreign = Span(name="remote", category="serve", pid=4242, process="worker-1").to_dict()
        assert tracer.ingest([foreign]) == 1
        (span,) = tracer.spans()
        assert span.process == "worker-1"
        assert span.pid == 4242

    def test_ingest_can_relabel_process(self, tracer):
        foreign = Span(name="remote").to_dict()
        tracer.ingest([foreign], process="worker-3")
        assert tracer.spans()[0].process == "worker-3"


class TestNullTracer:
    def test_null_tracer_is_disabled_and_cheap(self):
        obs_trace.disable()
        tr = obs_trace.get_tracer()
        assert tr is NULL_TRACER
        assert not tr.enabled
        # The no-op span is one shared object: no allocation per call site.
        assert tr.span("a") is tr.span("b", category="c", k=1)
        with tr.span("a") as sp:
            sp.set(x=1)
        tr.point("p")
        tr.record("r", start_ns=0, duration_ns=0)
        assert tr.spans() == []
        assert tr.drain() == []
        assert tr.ingest([{"name": "x"}]) == 0
        assert len(tr) == 0
        assert list(tr) == []


class TestEnvInstall:
    def test_env_var_installs_exporting_tracer(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs_trace.ENV_TRACE, str(tmp_path / "out.json"))
        monkeypatch.setattr(obs_trace, "_env_checked", False)
        monkeypatch.setattr(obs_trace, "_active", NULL_TRACER)
        try:
            tr = obs_trace.get_tracer()
            assert tr.enabled
            assert obs_trace.get_tracer() is tr  # idempotent
        finally:
            obs_trace.disable()

    @pytest.mark.parametrize("value", ["", "0", "off", "none", "disabled"])
    def test_disabled_values_stay_null(self, value, monkeypatch):
        monkeypatch.setenv(obs_trace.ENV_TRACE, value)
        monkeypatch.setattr(obs_trace, "_env_checked", False)
        monkeypatch.setattr(obs_trace, "_active", NULL_TRACER)
        assert obs_trace.get_tracer() is NULL_TRACER
        assert obs_trace.env_trace_path() is None

    def test_install_disable_round_trip(self):
        tr = obs_trace.install(process="x")
        assert obs_trace.get_tracer() is tr
        obs_trace.disable()
        assert obs_trace.get_tracer() is NULL_TRACER
