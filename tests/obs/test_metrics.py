"""Metrics registry: typed metrics, merge semantics, cache snapshots."""

from __future__ import annotations

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    cache_snapshot,
)


class TestCounter:
    def test_inc_and_merge_add(self):
        a, b = Counter("x"), Counter("x")
        a.inc()
        a.inc(4)
        b.inc(10)
        a.merge(b)
        assert a.value == 15

    def test_negative_inc_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("x")
        g.set(3.5)
        g.set(1.0)
        assert g.value == 1.0

    def test_merge_keeps_maximum(self):
        a, b = Gauge("x"), Gauge("x")
        a.set(2.0)
        b.set(7.0)
        a.merge(b)
        assert a.value == 7.0


class TestHistogram:
    def test_observe_tracks_aggregates(self):
        h = Histogram("x")
        for value in (4.0, 1.0, 7.0):
            h.observe(value)
        assert h.count == 3
        assert h.sum == 12.0
        assert h.min == 1.0
        assert h.max == 7.0
        assert h.mean == 4.0

    def test_empty_histogram_is_json_safe(self):
        # No inf min/max in the wire dict when nothing was observed.
        d = Histogram("x").to_dict()
        assert "min" not in d and "max" not in d
        assert d["count"] == 0
        assert Histogram("x").mean == 0.0

    def test_merge_folds(self):
        a, b = Histogram("x"), Histogram("x")
        a.observe(2.0)
        b.observe(5.0)
        b.observe(1.0)
        a.merge(b)
        assert (a.count, a.sum, a.min, a.max) == (3, 8.0, 1.0, 5.0)


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.names() == ["a"]
        assert len(reg) == 1

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_round_trip_and_merge(self):
        reg = MetricsRegistry()
        reg.counter("c", help="a count").inc(3)
        reg.gauge("g").set(2.5)
        reg.histogram("h").observe(4.0)

        other = MetricsRegistry.from_dict(reg.to_dict())
        assert other.to_dict() == reg.to_dict()

        reg.merge(other)
        assert reg.get("c").value == 6
        assert reg.get("g").value == 2.5  # max(2.5, 2.5)
        assert reg.get("h").count == 2

    def test_from_dict_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            MetricsRegistry.from_dict({"x": {"type": "mystery"}})

    def test_snapshot_is_flat(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.histogram("h").observe(3.0)
        snap = reg.snapshot()
        assert snap["c"] == 2
        assert snap["h.count"] == 1
        assert snap["h.min"] == 3.0

    def test_merge_empty_histogram_keeps_values_finite_in_snapshot(self):
        reg = MetricsRegistry()
        reg.histogram("h")  # never observed
        snap = reg.snapshot()
        assert snap == {"h.count": 0, "h.sum": 0.0}


class TestCacheSnapshot:
    def test_zero_lookups_guarded(self):
        class Empty:
            hits = 0
            misses = 0

        snap = cache_snapshot(Empty())
        assert snap["hit_rate"] == 0.0
        assert snap["lookups"] == 0

    def test_all_three_stat_structs_share_one_shape(self):
        from repro.api.cache import CacheStats
        from repro.api.store import StoreStats
        from repro.serve.cache import ServeCacheStats

        store = StoreStats(hits=3, misses=1, puts=4, evictions=2, errors=1)
        serve = ServeCacheStats(hits=2, misses=2, evictions=1)
        result = CacheStats(reference_hits=2, reference_misses=1, timing_hits=1)

        keys = {
            "hits",
            "misses",
            "evictions",
            "puts",
            "errors",
            "lookups",
            "hit_rate",
        }
        for stats in (store, serve, result):
            snap = stats.snapshot()
            assert set(snap) == keys
            assert 0.0 <= snap["hit_rate"] <= 1.0
        assert store.snapshot()["hit_rate"] == 0.75
        assert serve.snapshot()["hit_rate"] == 0.5
        assert result.snapshot()["hit_rate"] == 0.75

    def test_absorb_cache_prefixes_metrics(self):
        from repro.serve.cache import ServeCacheStats

        reg = MetricsRegistry()
        reg.absorb_cache("serve.result_cache", ServeCacheStats(hits=4, misses=1))
        assert reg.get("serve.result_cache.hits").value == 4
        assert reg.get("serve.result_cache.misses").value == 1
        assert reg.get("serve.result_cache.hit_rate").value == pytest.approx(0.8)


class TestCollectors:
    def test_collector_appears_in_exposition_until_collected(self):
        class Owner:
            def observability(self) -> MetricsRegistry:
                reg = MetricsRegistry()
                reg.counter("owner.pings").inc(9)
                return reg

        owner = Owner()
        obs_metrics.register_collector(owner.observability)
        text = obs_metrics.exposition()
        assert "owner_pings 9" in text

        del owner
        text = obs_metrics.exposition()
        assert "owner_pings" not in text

    def test_plain_function_collector_is_held(self):
        def collect() -> MetricsRegistry:
            reg = MetricsRegistry()
            reg.counter("fn.calls").inc(1)
            return reg

        obs_metrics.register_collector(collect)
        assert "fn_calls 1" in obs_metrics.exposition()

    def test_failing_collector_is_skipped(self):
        def bad() -> MetricsRegistry:
            raise RuntimeError("nope")

        obs_metrics.register_collector(bad)
        obs_metrics.exposition()  # must not raise
