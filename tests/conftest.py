"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clsim import CommandQueue, Executor, firepro_w5100
from repro.data import generate_image, hotspot_single
from repro.data.images import ImageClass


@pytest.fixture(scope="session")
def device():
    """The default simulated device."""
    return firepro_w5100()


@pytest.fixture()
def executor(device):
    return Executor(device)


@pytest.fixture()
def queue(device):
    return CommandQueue(device)


@pytest.fixture(scope="session")
def natural_image_64():
    """A small natural image shared by functional tests."""
    return generate_image(ImageClass.NATURAL, size=64, seed=11)


@pytest.fixture(scope="session")
def natural_image_128():
    return generate_image(ImageClass.NATURAL, size=128, seed=12)


@pytest.fixture(scope="session")
def pattern_image_64():
    return generate_image(ImageClass.PATTERN, size=64, seed=13)


@pytest.fixture(scope="session")
def flat_image_64():
    return generate_image(ImageClass.FLAT, size=64, seed=14)


@pytest.fixture(scope="session")
def hotspot_input_64():
    return hotspot_single(size=64, seed=21)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(2018)
