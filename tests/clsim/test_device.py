"""Tests for the device models."""

import pytest

from repro.clsim import (
    Device,
    InvalidDeviceError,
    available_devices,
    firepro_w5100,
    generic_hbm_gpu,
    get_device,
    low_bandwidth_igpu,
)


class TestDeviceConstruction:
    def test_firepro_profile_matches_paper_hardware(self):
        device = firepro_w5100()
        assert device.compute_units == 12
        assert device.wavefront_size == 64
        assert device.local_mem_per_cu == 64 * 1024
        assert device.global_mem_bytes == int(3.5 * 1024 ** 3)

    def test_derived_quantities(self):
        device = firepro_w5100()
        assert device.clock_hz == pytest.approx(930e6)
        assert device.cycle_time_s == pytest.approx(1.0 / 930e6)
        assert device.global_bandwidth_bytes_per_s == pytest.approx(96e9)
        assert device.peak_flops > 1e12
        assert device.global_latency_s > 0

    def test_describe_mentions_name_and_cus(self):
        text = firepro_w5100().describe()
        assert "FirePro" in text
        assert "12" in text

    def test_invalid_compute_units_rejected(self):
        with pytest.raises(InvalidDeviceError):
            Device(name="bad", compute_units=0, clock_mhz=1000.0)

    def test_invalid_clock_rejected(self):
        with pytest.raises(InvalidDeviceError):
            Device(name="bad", compute_units=4, clock_mhz=0.0)

    def test_wavefront_must_be_power_of_two(self):
        with pytest.raises(InvalidDeviceError):
            Device(name="bad", compute_units=4, clock_mhz=1000.0, wavefront_size=48)

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(InvalidDeviceError):
            Device(
                name="bad", compute_units=4, clock_mhz=1000.0, global_bandwidth_gbps=-1.0
            )


class TestDeviceRegistry:
    def test_available_devices_lists_builtin_profiles(self):
        names = available_devices()
        assert "firepro-w5100" in names
        assert "generic-hbm" in names
        assert "low-bandwidth-igpu" in names

    def test_get_device_returns_fresh_instances(self):
        a = get_device("firepro-w5100")
        b = get_device("firepro-w5100")
        assert a == b
        assert a is not None

    def test_get_device_unknown_name(self):
        with pytest.raises(InvalidDeviceError):
            get_device("does-not-exist")

    def test_profiles_have_distinct_bandwidths(self):
        fast = generic_hbm_gpu()
        slow = low_bandwidth_igpu()
        assert fast.global_bandwidth_gbps > slow.global_bandwidth_gbps

    def test_devices_are_frozen(self):
        device = firepro_w5100()
        with pytest.raises(Exception):
            device.compute_units = 99  # type: ignore[misc]
