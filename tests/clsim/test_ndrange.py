"""Tests for NDRange index arithmetic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clsim import (
    InvalidNDRangeError,
    InvalidWorkGroupSizeError,
    NDRange,
    firepro_w5100,
    ndrange_2d,
)


class TestConstruction:
    def test_basic_2d(self):
        nd = NDRange((64, 32), (16, 8))
        assert nd.rank == 2
        assert nd.total_work_items == 64 * 32
        assert nd.work_group_size == 128
        assert nd.num_groups == (4, 4)
        assert nd.total_groups == 16

    def test_1d_and_3d(self):
        assert NDRange((128,), (32,)).total_groups == 4
        nd3 = NDRange((8, 8, 8), (4, 4, 2))
        assert nd3.total_groups == 2 * 2 * 4
        assert nd3.work_group_size == 32

    def test_local_must_divide_global(self):
        with pytest.raises(InvalidWorkGroupSizeError):
            NDRange((100, 100), (16, 16))

    def test_rank_mismatch(self):
        with pytest.raises(InvalidNDRangeError):
            NDRange((64, 64), (16,))

    def test_zero_dimension_rejected(self):
        with pytest.raises(InvalidNDRangeError):
            NDRange((0, 64), (1, 16))

    def test_too_many_dimensions(self):
        with pytest.raises(InvalidNDRangeError):
            NDRange((2, 2, 2, 2), (1, 1, 1, 1))

    def test_helper_constructor(self):
        nd = ndrange_2d(256, 128, 16, 8)
        assert nd.global_size == (256, 128)
        assert nd.local_size == (16, 8)


class TestDeviceValidation:
    def test_work_group_exceeding_device_limit(self):
        device = firepro_w5100()
        nd = NDRange((1024, 1024), (32, 32))  # 1024 > 256 limit
        with pytest.raises(InvalidWorkGroupSizeError):
            nd.validate_for_device(device)

    def test_valid_configuration_passes(self):
        device = firepro_w5100()
        NDRange((1024, 1024), (16, 16)).validate_for_device(device)

    def test_waves_per_group(self):
        device = firepro_w5100()
        assert NDRange((64, 64), (16, 16)).waves_per_group(device) == 4
        assert NDRange((64, 64), (8, 8)).waves_per_group(device) == 1


class TestIteration:
    def test_group_ids_cover_grid(self):
        nd = NDRange((32, 16), (8, 8))
        ids = list(nd.group_ids())
        assert len(ids) == nd.total_groups
        assert len(set(ids)) == nd.total_groups
        assert (0, 0) in ids
        assert (3, 1) in ids

    def test_work_items_in_group_have_consistent_ids(self):
        nd = NDRange((32, 16), (8, 4))
        items = list(nd.work_items_in_group((1, 2)))
        assert len(items) == 32
        for wi in items:
            assert wi.group_id == (1, 2)
            assert wi.global_id[0] == 1 * 8 + wi.local_id[0]
            assert wi.global_id[1] == 2 * 4 + wi.local_id[1]
            assert wi.gid(0) == wi.global_id[0]
            assert wi.lid(1) == wi.local_id[1]
            assert wi.grp(0) == 1

    def test_all_work_items_unique_and_complete(self):
        nd = NDRange((16, 8), (4, 4))
        items = list(nd.work_items())
        assert len(items) == 128
        assert len({wi.global_id for wi in items}) == 128

    def test_invalid_group_id_rejected(self):
        nd = NDRange((16, 8), (4, 4))
        with pytest.raises(InvalidNDRangeError):
            list(nd.work_items_in_group((10, 0)))

    def test_1d_iteration(self):
        nd = NDRange((16,), (4,))
        items = list(nd.work_items())
        assert [wi.global_id for wi in items[:4]] == [(0,), (1,), (2,), (3,)]


class TestProperties:
    @given(
        gx=st.sampled_from([16, 32, 64, 128]),
        gy=st.sampled_from([16, 32, 64]),
        lx=st.sampled_from([2, 4, 8, 16]),
        ly=st.sampled_from([2, 4, 8, 16]),
    )
    @settings(max_examples=40, deadline=None)
    def test_group_count_times_group_size_equals_total(self, gx, gy, lx, ly):
        nd = NDRange((gx, gy), (lx, ly))
        assert nd.total_groups * nd.work_group_size == nd.total_work_items

    @given(
        lx=st.sampled_from([2, 4, 8]),
        ly=st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=20, deadline=None)
    def test_global_ids_reconstructed_from_group_and_local(self, lx, ly):
        nd = NDRange((32, 32), (lx, ly))
        for wi in nd.work_items_in_group((1, 1)):
            assert wi.global_id == (
                wi.group_id[0] * lx + wi.local_id[0],
                wi.group_id[1] * ly + wi.local_id[1],
            )
