"""Cross-backend conformance suite.

Every compiled execution backend (the ``vectorized`` AST-walking backend
and the ``codegen`` source-specializing backend) must be observationally
identical to the reference interpreter backend: bit-for-bit equal outputs
*and* exactly equal :class:`~repro.clsim.executor.ExecutionStats` access
counters, across the full matrix of applications x perforation schemes x
reconstruction modes the compiler path supports.  Any drift between the
backends fails this suite (CI runs it on every push).

The matrix runs on small inputs so the interpreter side stays cheap; the
compiled backends are exercised on paper-scale inputs by the benchmarks.
"""

import numpy as np
import pytest

from repro.api import PerforationEngine
from repro.apps import get_application
from repro.clsim import Buffer, Executor, Kernel, KernelExecutionError, NDRange
from repro.core import (
    ApproximationConfig,
    LINEAR_INTERPOLATION,
    NEAREST_NEIGHBOR,
)
from repro.core.schemes import RowPerforation, StencilPerforation
from repro.data import generate_image, hotspot_single

#: Work-group shape of the conformance runs (tiles the 16x16 inputs).
WORK_GROUP = (8, 8)

#: The compiled backends checked against the reference interpreter.
COMPILED_BACKENDS = ("vectorized", "codegen")

APP_NAMES = ("gaussian", "inversion", "sobel3", "sobel5", "median", "hotspot")

SCHEMES = {
    "rows1": RowPerforation(step=2),
    "rows2": RowPerforation(step=4),
    "stencil": StencilPerforation(),
}

TECHNIQUES = {
    "nn": NEAREST_NEIGHBOR,
    "li": LINEAR_INTERPOLATION,
}


def _inputs_for(app_name: str):
    if app_name == "hotspot":
        return hotspot_single(size=16, seed=21)
    return generate_image("natural", size=16, seed=7)


def _configs_for(app):
    """The scheme x technique matrix admissible for ``app``."""
    configs = [ApproximationConfig(work_group=WORK_GROUP)]  # accurate baseline
    for scheme_name, scheme in SCHEMES.items():
        if scheme.requires_halo() and app.halo == 0:
            continue  # stencil perforation needs a halo (e.g. not Inversion)
        for technique in TECHNIQUES.values():
            configs.append(
                ApproximationConfig(
                    scheme=scheme, reconstruction=technique, work_group=WORK_GROUP
                )
            )
    return configs


def _stats_tuple(stats):
    return (
        stats.work_items,
        stats.work_groups,
        stats.barriers,
        stats.global_counters.reads,
        stats.global_counters.writes,
        stats.local_counters.reads,
        stats.local_counters.writes,
        stats.private_counters.reads,
        stats.private_counters.writes,
    )


@pytest.fixture(scope="module")
def engine():
    return PerforationEngine()


#: Interpreter reference runs memoized per (app, config): each compiled
#: backend re-checks against the same reference without re-interpreting.
_REFERENCE_MEMO: dict = {}


def _reference(engine, app, inputs, config, app_name):
    key = (app_name, config.label)
    cached = _REFERENCE_MEMO.get(key)
    if cached is None:
        cached = _REFERENCE_MEMO[key] = engine.run_compiled(
            app, inputs, config, backend="interpreter", with_stats=True
        )
    return cached


class TestBackendParity:
    """Compiled backends == interpreter, bit for bit, across the matrix."""

    @pytest.mark.parametrize("backend", COMPILED_BACKENDS)
    @pytest.mark.parametrize("app_name", APP_NAMES)
    def test_outputs_and_stats_identical(self, engine, app_name, backend):
        app = get_application(app_name)
        inputs = _inputs_for(app_name)
        for config in _configs_for(app):
            reference, ref_stats = _reference(engine, app, inputs, config, app_name)
            produced, got_stats = engine.run_compiled(
                app, inputs, config, backend=backend, with_stats=True
            )
            label = f"{app_name}/{config.label}/{backend}"
            np.testing.assert_array_equal(
                produced, reference, err_msg=f"output drift for {label}"
            )
            assert _stats_tuple(got_stats) == _stats_tuple(ref_stats), (
                f"ExecutionStats drift for {label}: "
                f"{_stats_tuple(got_stats)} != {_stats_tuple(ref_stats)}"
            )

    @pytest.mark.parametrize("backend", COMPILED_BACKENDS)
    @pytest.mark.parametrize("app_name", ["gaussian", "inversion"])
    def test_matches_numpy_fast_path(self, engine, app_name, backend):
        """All backends implement the same approximation as the NumPy
        sampler fast path (the row schemes are reconciled exactly)."""
        app = get_application(app_name)
        image = generate_image("natural", size=16, seed=7)
        config = ApproximationConfig(
            scheme=RowPerforation(step=2),
            reconstruction=NEAREST_NEIGHBOR,
            work_group=WORK_GROUP,
        )
        fast_path = app.approximate(image, config)
        produced = engine.run_compiled(app, image, config, backend=backend)
        np.testing.assert_array_equal(produced, fast_path)

    @pytest.mark.parametrize("backend", COMPILED_BACKENDS)
    def test_helper_function_with_pointer_argument(self, backend):
        """Helper functions taking buffer pointers work on every backend."""
        from repro.kernellang.interpreter import compile_kernel

        source = """
        float fetch(__global const float* buf, int index) {
            return buf[index] * 2.0f;
        }

        __kernel void doubled(__global const float* input,
                              __global float* output,
                              int width, int height) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            output[y * width + x] = fetch(input, y * width + x);
        }
        """
        image = generate_image("natural", size=8, seed=1)
        outputs = {}
        for run_backend in ("interpreter", backend):
            inb = Buffer(image, "input")
            outb = Buffer(np.zeros_like(image), "output")
            Executor(backend=run_backend).run(
                compile_kernel(source),
                NDRange((8, 8), (4, 4)),
                {"input": inb, "output": outb, "width": 8, "height": 8},
            )
            outputs[run_backend] = outb.array
        np.testing.assert_array_equal(outputs[backend], outputs["interpreter"])
        np.testing.assert_array_equal(outputs[backend], image * 2.0)

    @pytest.mark.parametrize("backend", COMPILED_BACKENDS)
    def test_larger_image_and_uneven_tiling(self, engine, backend):
        """Parity holds when the halo spans several group boundaries."""
        app = get_application("sobel5")
        image = generate_image("pattern", size=32, seed=9)
        config = ApproximationConfig(
            scheme=RowPerforation(step=4),
            reconstruction=LINEAR_INTERPOLATION,
            work_group=(16, 4),
        )
        a, sa = engine.run_compiled(
            app, image, config, backend="interpreter", with_stats=True
        )
        b, sb = engine.run_compiled(
            app, image, config, backend=backend, with_stats=True
        )
        np.testing.assert_array_equal(a, b)
        assert _stats_tuple(sa) == _stats_tuple(sb)

    def test_compiled_backends_agree_with_each_other(self, engine):
        """Belt and braces: vectorized and codegen agree directly too."""
        app = get_application("median")
        image = generate_image("natural", size=16, seed=13)
        config = ApproximationConfig(
            scheme=RowPerforation(step=2),
            reconstruction=NEAREST_NEIGHBOR,
            work_group=WORK_GROUP,
        )
        a, sa = engine.run_compiled(
            app, image, config, backend="vectorized", with_stats=True
        )
        b, sb = engine.run_compiled(
            app, image, config, backend="codegen", with_stats=True
        )
        np.testing.assert_array_equal(a, b)
        assert _stats_tuple(sa) == _stats_tuple(sb)


class TestVectorizedBackendLimits:
    def test_python_body_kernels_are_rejected(self):
        """Kernels without a kernellang AST cannot be re-lowered."""

        def body(ctx, wi):
            x, y = wi.gid(0), wi.gid(1)
            dst = ctx.buffer("output")
            dst.write((y, x), 1.0)

        kernel = Kernel("handwritten", body, ["output"])
        executor = Executor(backend="vectorized")
        out = Buffer(np.zeros((8, 8), dtype=np.float64), "output")
        with pytest.raises(KernelExecutionError, match="no kernellang AST"):
            executor.run(kernel, NDRange((8, 8), (8, 8)), {"output": out})

    def test_balanced_divergent_barriers_are_rejected(self):
        """Known, documented divergence from the interpreter: the lock-step
        interpreter only counts barriers per work-item and accepts balanced
        divergent barriers; the vectorized backend requires all lanes at the
        same barrier statement and fails loudly instead of drifting."""
        from repro.clsim import BarrierDivergenceError
        from repro.kernellang.interpreter import compile_kernel

        source = """
        __kernel void balanced(__global float* output, int width, int height) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            if (x < 2) {
                barrier(CLK_LOCAL_MEM_FENCE);
            } else {
                barrier(CLK_LOCAL_MEM_FENCE);
            }
            output[y * width + x] = 1.0f;
        }
        """
        args = {
            "output": Buffer(np.zeros((4, 4), dtype=np.float64), "output"),
            "width": 4,
            "height": 4,
        }
        ndrange = NDRange((4, 4), (4, 4))
        # The interpreter accepts the pattern (equal barrier counts)...
        stats = Executor(backend="interpreter").run(compile_kernel(source), ndrange, args)
        assert stats.barriers == 1
        # ...the vectorized backend rejects it rather than diverging silently.
        with pytest.raises(BarrierDivergenceError):
            Executor(backend="vectorized").run(compile_kernel(source), ndrange, args)

    def test_divergent_return_before_barrier_raises(self):
        from repro.clsim import BarrierDivergenceError
        from repro.kernellang.interpreter import compile_kernel

        source = """
        __kernel void diverge(__global float* output, int width, int height) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            if (x == 0) {
                return;
            }
            barrier(CLK_LOCAL_MEM_FENCE);
            output[y * width + x] = 1.0f;
        }
        """
        kernel = compile_kernel(source)
        out = Buffer(np.zeros((4, 4), dtype=np.float64), "output")
        executor = Executor(backend="vectorized")
        with pytest.raises(BarrierDivergenceError):
            executor.run(
                kernel,
                NDRange((4, 4), (4, 4)),
                {"output": out, "width": 4, "height": 4},
            )
