"""Micro-batched launch parity suite.

A batched launch (:meth:`Executor.run_batch` /
:meth:`PerforationEngine.run_compiled_batch`) must be observationally a
pure throughput optimisation: bit-identical outputs and *summed*
:class:`ExecutionStats` compared with running the same requests one by
one — on the vectorized and codegen backends (which stack the requests
into single work-group launches) and on the interpreter backend (which
serves batches through the serial fallback).
"""

import numpy as np
import pytest

from repro.api import PerforationEngine
from repro.clsim import Executor, KernelExecutionError, NDRange
from repro.clsim.memory import Buffer, SegmentedBuffer
from repro.clsim.errors import BufferSizeError
from repro.core import ApproximationConfig
from repro.core.schemes import RowPerforation, StencilPerforation
from repro.data import generate_image, hotspot_single

#: Small inputs + (8, 8) groups keep the interpreter side cheap.
WORK_GROUP = (8, 8)
SIZE = 16

ROWS1 = ApproximationConfig(scheme=RowPerforation(step=2), work_group=WORK_GROUP)
ROWS1_LI = ApproximationConfig(
    scheme=RowPerforation(step=2),
    reconstruction="linear-interpolation",
    work_group=WORK_GROUP,
)
STENCIL = ApproximationConfig(scheme=StencilPerforation(), work_group=WORK_GROUP)
ACCURATE = ApproximationConfig(work_group=WORK_GROUP)


def _inputs(app_name: str, count: int):
    if app_name == "hotspot":
        return [hotspot_single(size=SIZE, seed=30 + i) for i in range(count)]
    return [generate_image("natural", size=SIZE, seed=30 + i) for i in range(count)]


def _stats_tuple(stats):
    return (
        stats.work_items,
        stats.work_groups,
        stats.barriers,
        stats.global_counters.reads,
        stats.global_counters.writes,
        stats.local_counters.reads,
        stats.local_counters.writes,
        stats.private_counters.reads,
        stats.private_counters.writes,
    )


def _summed(stats_list):
    return tuple(sum(values) for values in zip(*map(_stats_tuple, stats_list)))


class TestBatchedLaunchParity:
    @pytest.mark.parametrize("backend", ["vectorized", "codegen", "interpreter"])
    @pytest.mark.parametrize(
        "app_name,config",
        [
            ("gaussian", ROWS1),
            ("gaussian", STENCIL),
            ("gaussian", ACCURATE),
            ("sobel3", ROWS1_LI),
            ("inversion", ROWS1),
            ("median", ROWS1),
            ("hotspot", STENCIL),
        ],
    )
    def test_batch_matches_individual_runs(self, backend, app_name, config):
        engine = PerforationEngine(backend=backend)
        inputs = _inputs(app_name, 3)

        individual = [
            engine.run_compiled(app_name, i, config, with_stats=True) for i in inputs
        ]
        outputs, stats = engine.run_compiled_batch(
            app_name, inputs, config, with_stats=True
        )

        assert len(outputs) == len(inputs)
        for (expected, _), actual in zip(individual, outputs):
            np.testing.assert_array_equal(expected, actual)
        assert _stats_tuple(stats) == _summed(s for _, s in individual)

    @pytest.mark.parametrize("backend", ["vectorized", "codegen"])
    def test_batch_of_one_matches_single_run(self, backend):
        engine = PerforationEngine(backend=backend)
        image = generate_image("natural", size=SIZE, seed=5)
        single = engine.run_compiled("gaussian", image, ROWS1)
        [batched] = engine.run_compiled_batch("gaussian", [image], ROWS1)
        np.testing.assert_array_equal(single, batched)

    def test_session_run_compiled_batch(self):
        engine = PerforationEngine(backend="vectorized")
        inputs = _inputs("gaussian", 2)
        session = engine.session(app="gaussian")
        outputs = session.run_compiled_batch(inputs, config=ROWS1)
        expected = [engine.run_compiled("gaussian", i, ROWS1) for i in inputs]
        for want, got in zip(expected, outputs):
            np.testing.assert_array_equal(want, got)


class TestBatchedLaunchValidation:
    def test_empty_batch_rejected(self):
        engine = PerforationEngine(backend="vectorized")
        with pytest.raises(Exception, match="at least one input"):
            engine.run_compiled_batch("gaussian", [], ROWS1)

    def test_mismatched_sizes_rejected(self):
        engine = PerforationEngine(backend="vectorized")
        a = generate_image("natural", size=16, seed=1)
        b = generate_image("natural", size=32, seed=2)
        with pytest.raises(Exception, match="identically sized"):
            engine.run_compiled_batch("gaussian", [a, b], ROWS1)

    def test_mismatched_scalars_rejected(self):
        """Same global size but different scalar kernel arguments."""

        engine = PerforationEngine(backend="vectorized")
        app = engine.resolve_app("gaussian")
        kernel = app.perforator().accurate().executable()
        image = generate_image("natural", size=SIZE, seed=3)
        ndrange = NDRange((SIZE, SIZE), WORK_GROUP)

        def args(width):
            output = app.output_buffer(image)
            bound = app.kernel_args(image, output)
            bound["width"] = width
            return bound

        with pytest.raises(KernelExecutionError, match="identical scalar"):
            engine.executor().run_batch(kernel, ndrange, [args(SIZE), args(SIZE + 16)])

    def test_mismatched_buffer_shapes_rejected(self):
        engine = PerforationEngine(backend="vectorized")
        app = engine.resolve_app("gaussian")
        kernel = app.perforator().accurate().executable()
        small = generate_image("natural", size=SIZE, seed=3)
        ndrange = NDRange((SIZE, SIZE), WORK_GROUP)

        good = app.kernel_args(small, app.output_buffer(small))
        bad = dict(good)
        bad["input"] = Buffer(np.zeros((SIZE, 2 * SIZE)), "input")
        with pytest.raises(KernelExecutionError, match="identically shaped"):
            engine.executor().run_batch(kernel, ndrange, [good, bad])

    def test_interpreter_fallback_is_serial(self):
        """Backends without batching support still serve batches (serially)."""

        executor = Executor(backend="interpreter")
        assert not executor.backend.supports_batching
        engine = PerforationEngine(backend="interpreter")
        inputs = _inputs("gaussian", 2)
        outputs = engine.run_compiled_batch("gaussian", inputs, ROWS1)
        for inp, out in zip(inputs, outputs):
            np.testing.assert_array_equal(engine.run_compiled("gaussian", inp, ROWS1), out)

    def test_base_backend_batch_hook_raises(self):
        from repro.clsim.backends import InterpreterBackend

        backend = InterpreterBackend()
        with pytest.raises(KernelExecutionError, match="does not support batched"):
            backend.run_group_batch(None, None, None, (0, 0), 2)


class TestSegmentedBuffer:
    def test_segments_partition_the_arena(self):
        arena = SegmentedBuffer(np.arange(12.0), "x", segment_elements=4, batch=3)
        np.testing.assert_array_equal(arena.segment(1), [4.0, 5.0, 6.0, 7.0])

    def test_size_must_match(self):
        with pytest.raises(BufferSizeError):
            SegmentedBuffer(np.arange(10.0), "x", segment_elements=4, batch=3)

    def test_segment_index_bounds(self):
        arena = SegmentedBuffer(np.arange(8.0), "x", segment_elements=4, batch=2)
        with pytest.raises(Exception, match="out of range"):
            arena.segment(2)
