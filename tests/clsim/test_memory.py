"""Tests for buffers, local memory and access accounting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.clsim import (
    Buffer,
    BufferOutOfBoundsError,
    BufferSizeError,
    LocalMemory,
    LocalMemoryExceededError,
    PrivateMemory,
    transactions_for_row_segment,
)


class TestBuffer:
    def test_creation_copies_data(self):
        source = np.arange(12, dtype=np.float32).reshape(3, 4)
        buf = Buffer(source, name="input")
        source[0, 0] = 99.0
        assert buf.array[0, 0] == 0.0
        assert buf.shape == (3, 4)
        assert buf.itemsize == 4
        assert buf.nbytes == 48
        assert buf.size == 12

    def test_empty_buffer_rejected(self):
        with pytest.raises(BufferSizeError):
            Buffer(np.zeros((0,)), name="empty")

    def test_read_write_update_counters(self):
        buf = Buffer(np.zeros((4, 4)))
        buf.write((1, 2), 5.0)
        assert buf.read((1, 2)) == 5.0
        assert buf.counters.writes == 1
        assert buf.counters.reads == 1
        assert buf.counters.total == 2

    def test_out_of_bounds_read(self):
        buf = Buffer(np.zeros((4, 4)))
        with pytest.raises(BufferOutOfBoundsError):
            buf.read((4, 0))
        with pytest.raises(BufferOutOfBoundsError):
            buf.read((0, -1))

    def test_rank_mismatch(self):
        buf = Buffer(np.zeros((4, 4)))
        with pytest.raises(BufferOutOfBoundsError):
            buf.read((1,))

    def test_read_clamped(self):
        buf = Buffer(np.arange(16, dtype=np.float64).reshape(4, 4))
        assert buf.read_clamped((-3, 10)) == buf.array[0, 3]

    def test_record_bulk_accesses(self):
        buf = Buffer(np.zeros((8, 8)))
        buf.record_reads(100)
        buf.record_writes(10)
        assert buf.counters.reads == 100
        assert buf.counters.writes == 10
        buf.reset_counters()
        assert buf.counters.total == 0

    def test_empty_like_and_zeros(self):
        buf = Buffer(np.ones((3, 3), dtype=np.float32))
        out = Buffer.empty_like(buf, name="out")
        assert out.shape == buf.shape
        assert out.dtype == buf.dtype
        assert float(out.array.sum()) == 0.0
        z = Buffer.zeros((2, 5), name="z")
        assert z.shape == (2, 5)

    def test_copy_array_is_independent(self):
        buf = Buffer(np.ones((2, 2)))
        copy = buf.copy_array()
        copy[0, 0] = 7.0
        assert buf.array[0, 0] == 1.0


class TestLocalMemory:
    def test_allocate_and_access(self):
        local = LocalMemory(capacity_bytes=1024)
        tile = local.allocate("tile", (8, 8), dtype=np.float32)
        assert tile.shape == (8, 8)
        local.write("tile", (2, 3), 1.5)
        assert local.read("tile", (2, 3)) == pytest.approx(1.5)
        assert local.counters.reads == 1
        assert local.counters.writes == 1

    def test_allocate_is_idempotent(self):
        local = LocalMemory(capacity_bytes=1024)
        a = local.allocate("tile", (4, 4))
        b = local.allocate("tile", (4, 4))
        assert a is b
        assert local.allocated_bytes == 4 * 4 * 4

    def test_capacity_enforced(self):
        local = LocalMemory(capacity_bytes=100)
        with pytest.raises(LocalMemoryExceededError):
            local.allocate("big", (10, 10), dtype=np.float64)

    def test_reset_clears_tiles_and_counters(self):
        local = LocalMemory(capacity_bytes=4096)
        local.allocate("tile", (4,))
        local.record_reads(5)
        local.reset()
        assert not local.has_tile("tile")
        assert local.counters.total == 0


class TestPrivateMemory:
    def test_store_load_and_counters(self):
        private = PrivateMemory()
        private.store("x", 3)
        assert private.load("x") == 3
        assert "x" in private
        assert private.counters.reads == 1
        assert private.counters.writes == 1


class TestTransactions:
    @pytest.mark.parametrize(
        "elements,itemsize,txn,expected",
        [
            (0, 4, 64, 0),
            (1, 4, 64, 1),
            (16, 4, 64, 1),
            (17, 4, 64, 2),
            (32, 4, 64, 2),
            (18, 4, 64, 2),
            (10, 8, 64, 2),
            (16, 4, 32, 2),
        ],
    )
    def test_examples(self, elements, itemsize, txn, expected):
        assert transactions_for_row_segment(elements, itemsize, txn) == expected

    @given(
        elements=st.integers(min_value=1, max_value=4096),
        itemsize=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_transactions_cover_all_bytes(self, elements, itemsize):
        txn = 64
        count = transactions_for_row_segment(elements, itemsize, txn)
        assert count * txn >= elements * itemsize
        assert (count - 1) * txn < elements * itemsize
