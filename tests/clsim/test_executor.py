"""Tests for the functional executor (work groups, barriers, kernels)."""

import numpy as np
import pytest

from repro.clsim import (
    BARRIER,
    BarrierDivergenceError,
    Buffer,
    Kernel,
    KernelArgumentError,
    KernelExecutionError,
    NDRange,
)


def copy_kernel():
    def body(ctx, wi):
        x, y = wi.gid(0), wi.gid(1)
        src = ctx.buffer("input")
        dst = ctx.buffer("output")
        dst.write((y, x), src.read((y, x)))

    return Kernel("copy", body, ["input", "output"])


def scale_kernel():
    def body(ctx, wi):
        x, y = wi.gid(0), wi.gid(1)
        factor = ctx.arg("factor")
        src = ctx.buffer("input")
        dst = ctx.buffer("output")
        dst.write((y, x), factor * src.read((y, x)))

    return Kernel("scale", body, ["input", "output", "factor"])


def reverse_rows_kernel():
    """Uses local memory + a barrier: each row is reversed within a work group."""

    def body(ctx, wi):
        x, y = wi.gid(0), wi.gid(1)
        lx = wi.lid(0)
        width = ctx.get_local_size(0)
        tile = ctx.local.allocate(f"row{wi.lid(1)}", (width,))
        src = ctx.buffer("input")
        tile[lx] = src.read((y, x))
        ctx.local.record_writes(1)
        yield BARRIER
        dst = ctx.buffer("output")
        ctx.local.record_reads(1)
        dst.write((y, x), tile[width - 1 - lx])

    return Kernel("reverse", body, ["input", "output"])


class TestBasicExecution:
    def test_copy_kernel(self, executor):
        data = np.arange(64, dtype=np.float64).reshape(8, 8)
        inb, outb = Buffer(data, "in"), Buffer(np.zeros_like(data), "out")
        stats = executor.run(copy_kernel(), NDRange((8, 8), (4, 4)), {"input": inb, "output": outb})
        np.testing.assert_array_equal(outb.array, data)
        assert stats.work_items == 64
        assert stats.work_groups == 4
        assert stats.global_counters.reads == 64
        assert stats.global_counters.writes == 64

    def test_scalar_arguments_positional(self, executor):
        data = np.ones((4, 4))
        inb, outb = Buffer(data), Buffer(np.zeros_like(data))
        executor.run(scale_kernel(), NDRange((4, 4), (2, 2)), [inb, outb, 3.0])
        np.testing.assert_allclose(outb.array, 3.0)

    def test_missing_argument_rejected(self, executor):
        inb = Buffer(np.ones((4, 4)))
        with pytest.raises(KernelArgumentError):
            executor.run(copy_kernel(), NDRange((4, 4), (2, 2)), {"input": inb})

    def test_unexpected_argument_rejected(self, executor):
        inb = Buffer(np.ones((4, 4)))
        outb = Buffer(np.ones((4, 4)))
        with pytest.raises(KernelArgumentError):
            executor.run(
                copy_kernel(),
                NDRange((4, 4), (2, 2)),
                {"input": inb, "output": outb, "bogus": 1},
            )

    def test_wrong_positional_count(self, executor):
        with pytest.raises(KernelArgumentError):
            executor.run(copy_kernel(), NDRange((4, 4), (2, 2)), [Buffer(np.ones((4, 4)))])

    def test_kernel_exception_wrapped(self, executor):
        def bad_body(ctx, wi):
            raise ValueError("boom")

        kernel = Kernel("bad", bad_body, [])
        with pytest.raises(KernelExecutionError):
            executor.run(kernel, NDRange((2, 2), (2, 2)), {})


class TestBarriers:
    def test_barrier_synchronises_work_group(self, executor):
        data = np.arange(64, dtype=np.float64).reshape(8, 8)
        inb, outb = Buffer(data), Buffer(np.zeros_like(data))
        stats = executor.run(
            reverse_rows_kernel(), NDRange((8, 8), (8, 2)), {"input": inb, "output": outb}
        )
        expected = data.copy()
        expected[:, :8] = data[:, ::-1]
        np.testing.assert_array_equal(outb.array, expected)
        assert stats.barriers == 4  # one barrier per work group
        assert stats.local_counters.total > 0

    def test_divergent_barrier_detected(self, executor):
        def body(ctx, wi):
            if wi.lid(0) == 0:
                yield BARRIER

        kernel = Kernel("divergent", body, [])
        with pytest.raises(BarrierDivergenceError):
            executor.run(kernel, NDRange((4,), (4,)), {})

    def test_invalid_yield_value_rejected(self, executor):
        def body(ctx, wi):
            yield "not-a-barrier"

        kernel = Kernel("weird", body, [])
        with pytest.raises(KernelExecutionError):
            executor.run(kernel, NDRange((2,), (2,)), {})

    def test_generator_error_wrapped(self, executor):
        def body(ctx, wi):
            yield BARRIER
            raise RuntimeError("late failure")

        kernel = Kernel("late", body, [])
        with pytest.raises(KernelExecutionError):
            executor.run(kernel, NDRange((2,), (2,)), {})


class TestExecutorLimits:
    def test_device_limit_enforced(self, executor):
        with pytest.raises(Exception):
            executor.run(copy_kernel(), NDRange((64, 64), (32, 32)), {})

    def test_private_memory_stats_collected(self, executor):
        def body(ctx, wi):
            private = ctx.private_memory(wi)
            private.store("tmp", wi.gid(0))
            _ = private.load("tmp")

        kernel = Kernel("private", body, [])
        stats = executor.run(kernel, NDRange((4, 4), (2, 2)), {})
        assert stats.private_counters.reads == 16
        assert stats.private_counters.writes == 16
