"""Tests for the command queue and profiling events."""

import numpy as np
import pytest

from repro.clsim import (
    CommandQueue,
    Kernel,
    KernelProfile,
    NDRange,
    ProfilingError,
    tile_traffic,
)


def make_kernel(with_profile=False):
    def body(ctx, wi):
        x, y = wi.gid(0), wi.gid(1)
        dst = ctx.buffer("output")
        dst.write((y, x), float(x + y))

    factory = None
    if with_profile:
        def factory(ndrange, args):
            return KernelProfile(
                name="coords", traffic=(tile_traffic("output", *ndrange.local_size, is_store=True),)
            )

    return Kernel("coords", body, ["output"], profile_factory=factory)


class TestCommandQueue:
    def test_enqueue_executes_and_profiles(self, queue):
        out = queue.create_buffer(np.zeros((8, 8)), "out")
        profile = KernelProfile(name="coords", traffic=(tile_traffic("out", 4, 4, is_store=True),))
        event = queue.enqueue(make_kernel(), NDRange((8, 8), (4, 4)), {"output": out}, profile=profile)
        assert event.stats is not None
        assert event.timing is not None
        assert event.duration_s > 0
        assert event.duration_ms == pytest.approx(event.duration_s * 1e3)
        assert out.array[3, 5] == 8.0

    def test_profile_factory_used_when_no_explicit_profile(self, queue):
        out = queue.create_buffer(np.zeros((8, 8)))
        event = queue.enqueue(make_kernel(with_profile=True), NDRange((8, 8), (4, 4)), {"output": out})
        assert event.timing is not None

    def test_event_without_profile_has_no_duration(self, queue):
        out = queue.create_buffer(np.zeros((8, 8)))
        event = queue.enqueue(make_kernel(), NDRange((8, 8), (4, 4)), {"output": out})
        assert event.timing is None
        with pytest.raises(ProfilingError):
            _ = event.duration_s

    def test_timing_only_launch(self, queue):
        out = queue.create_buffer(np.zeros((8, 8)))
        profile = KernelProfile(name="coords")
        event = queue.enqueue(
            make_kernel(), NDRange((8, 8), (4, 4)), {"output": out}, profile=profile, execute=False
        )
        assert event.stats is None
        assert event.timing is not None
        assert float(out.array.sum()) == 0.0  # not executed

    def test_total_time_accumulates(self, queue):
        out = queue.create_buffer(np.zeros((8, 8)))
        profile = KernelProfile(name="coords", traffic=(tile_traffic("out", 4, 4, is_store=True),))
        queue.enqueue(make_kernel(), NDRange((8, 8), (4, 4)), {"output": out}, profile=profile)
        queue.enqueue(make_kernel(), NDRange((8, 8), (4, 4)), {"output": out}, profile=profile)
        assert queue.total_time_s() == pytest.approx(2 * queue.events[0].timing.total_time_s)
        queue.finish()  # no-op, must not raise

    def test_create_output_like(self, queue):
        src = queue.create_buffer(np.ones((4, 4), dtype=np.float32))
        out = queue.create_output_like(src, "out")
        assert out.shape == src.shape
        assert out.dtype == src.dtype

    def test_profiling_disabled(self, device):
        queue = CommandQueue(device, profiling=False)
        out = queue.create_buffer(np.zeros((4, 4)))
        profile = KernelProfile(name="coords")
        event = queue.enqueue(make_kernel(), NDRange((4, 4), (2, 2)), {"output": out}, profile=profile)
        assert event.timing is None

    def test_estimate_pure_analytical(self, queue):
        profile = KernelProfile(name="p", traffic=(tile_traffic("in", 16, 16, halo=1),))
        breakdown = queue.estimate(profile, NDRange((256, 256), (16, 16)))
        assert breakdown.total_time_s > 0
