"""Tests for the analytical timing model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clsim import (
    AccessPattern,
    GlobalTraffic,
    KernelProfile,
    LocalMemoryExceededError,
    NDRange,
    TimingModel,
    firepro_w5100,
    per_item_traffic,
    tile_traffic,
)


@pytest.fixture()
def model():
    return TimingModel(firepro_w5100())


def simple_profile(reads_per_item=1.0, name="k", **kwargs):
    traffic = (
        per_item_traffic("input", 16, 16, elements_per_item=reads_per_item),
        tile_traffic("output", 16, 16, is_store=True),
    )
    return KernelProfile(name=name, traffic=traffic, flops_per_item=4.0, **kwargs)


class TestGlobalTraffic:
    def test_row_contiguous_transactions(self):
        traffic = GlobalTraffic("buf", segments_per_group=18, segment_elements=18)
        # 18 floats = 72 bytes -> 2 transactions of 64 bytes per segment
        assert traffic.transactions_per_group(64) == 36
        assert traffic.bytes_per_group() == 18 * 18 * 4
        assert traffic.coalescing_efficiency(64) == pytest.approx(72 / 128)

    def test_strided_costs_one_transaction_per_element(self):
        traffic = GlobalTraffic(
            "buf", segments_per_group=10, segment_elements=4, pattern=AccessPattern.STRIDED
        )
        assert traffic.transactions_per_group(64) == 40

    def test_broadcast_costs_one_transaction(self):
        traffic = GlobalTraffic(
            "buf", segments_per_group=10, segment_elements=4, pattern=AccessPattern.BROADCAST
        )
        assert traffic.transactions_per_group(64) == 1

    def test_empty_traffic(self):
        traffic = GlobalTraffic("buf", segments_per_group=0, segment_elements=0)
        assert traffic.transactions_per_group(64) == 0
        assert traffic.coalescing_efficiency(64) == 1.0

    def test_tile_traffic_row_fraction(self):
        full = tile_traffic("in", 16, 16, halo=1)
        half = tile_traffic("in", 16, 16, halo=1, rows_loaded_fraction=0.5)
        assert half.elements_per_group() == pytest.approx(full.elements_per_group() / 2)

    def test_tile_traffic_without_halo(self):
        core = tile_traffic("in", 16, 16, halo=2, include_halo=False)
        assert core.segment_elements == 16
        assert core.segments_per_group == 16

    def test_per_item_traffic_accounts_for_cache(self):
        traffic = per_item_traffic("in", 16, 16, elements_per_item=9, halo=1)
        unique = 18 * 18
        assert traffic.elements_per_group() == unique
        assert traffic.cached_accesses_per_group == pytest.approx(9 * 256 - unique)


class TestKernelProfile:
    def test_divergence_must_be_at_least_one(self):
        with pytest.raises(ValueError):
            KernelProfile(name="bad", divergence_factor=0.5)

    def test_total_ops_include_private_accesses(self):
        profile = KernelProfile(
            name="k", flops_per_item=10.0, int_ops_per_item=2.0, private_accesses_per_item=4.0
        )
        assert profile.total_ops_per_item() == pytest.approx(10.0 + 2.0 + 2.0)

    def test_with_traffic_replaces_traffic(self):
        profile = simple_profile()
        replaced = profile.with_traffic([tile_traffic("x", 8, 8)])
        assert len(replaced.traffic) == 1
        assert len(profile.traffic) == 2


class TestTimingModel:
    def test_estimate_produces_positive_breakdown(self, model):
        nd = NDRange((1024, 1024), (16, 16))
        breakdown = model.estimate(simple_profile(), nd)
        assert breakdown.total_time_s > 0
        assert breakdown.dram_time_s > 0
        assert breakdown.total_time_s >= breakdown.launch_overhead_s
        assert 0 < breakdown.coalescing_efficiency <= 1.0
        assert 0 < breakdown.occupancy <= 1.0
        assert breakdown.bound in ("compute", "dram", "latency", "local")
        assert "Kernel" in breakdown.describe()

    def test_more_traffic_is_slower(self, model):
        nd = NDRange((1024, 1024), (16, 16))
        light = model.estimate(simple_profile(reads_per_item=1), nd)
        heavy = model.estimate(simple_profile(reads_per_item=25), nd)
        assert heavy.total_time_s > light.total_time_s

    def test_speedup_over(self, model):
        nd = NDRange((1024, 1024), (16, 16))
        light = model.estimate(simple_profile(reads_per_item=1), nd)
        heavy = model.estimate(simple_profile(reads_per_item=25), nd)
        assert light.speedup_over(heavy) > 1.0
        assert heavy.speedup_over(light) < 1.0

    def test_compare_helper(self, model):
        nd = NDRange((1024, 1024), (16, 16))
        ratio = model.compare(
            (simple_profile(reads_per_item=9), nd), (simple_profile(reads_per_item=1), nd)
        )
        assert ratio > 1.0

    def test_perforation_reduces_modelled_time(self, model):
        """Halving the fetched rows must make the kernel faster (the core claim)."""
        nd = NDRange((1024, 1024), (16, 16))
        full = KernelProfile(
            name="full",
            traffic=(tile_traffic("in", 16, 16, halo=1), tile_traffic("out", 16, 16, is_store=True)),
            flops_per_item=18.0,
            local_reads_per_item=9.0,
            local_writes_per_item=1.3,
            barriers_per_group=1,
            local_mem_bytes_per_group=18 * 18 * 4,
        )
        perforated = KernelProfile(
            name="perforated",
            traffic=(
                tile_traffic("in", 16, 16, halo=1, rows_loaded_fraction=0.5),
                tile_traffic("out", 16, 16, is_store=True),
            ),
            flops_per_item=18.0,
            local_reads_per_item=10.0,
            local_writes_per_item=1.3,
            barriers_per_group=3,
            local_mem_bytes_per_group=18 * 18 * 4,
        )
        assert model.estimate(perforated, nd).total_time_s < model.estimate(full, nd).total_time_s

    def test_local_staging_beats_repeated_global_reads(self, model):
        """Staging a 5x5 stencil in local memory must be faster than naive reads."""
        nd = NDRange((1024, 1024), (16, 16))
        naive = simple_profile(reads_per_item=25)
        staged = KernelProfile(
            name="staged",
            traffic=(tile_traffic("in", 16, 16, halo=2), tile_traffic("out", 16, 16, is_store=True)),
            flops_per_item=4.0,
            local_reads_per_item=25.0,
            local_writes_per_item=1.6,
            barriers_per_group=1,
            local_mem_bytes_per_group=20 * 20 * 4,
        )
        assert model.estimate(staged, nd).total_time_s < model.estimate(naive, nd).total_time_s

    def test_poor_coalescing_is_penalised(self, model):
        """Narrow work groups (2x128) fetch badly aligned segments (Figure 9)."""
        wide = model.estimate(
            KernelProfile(name="wide", traffic=(tile_traffic("in", 64, 4, halo=1),)),
            NDRange((1024, 1024), (64, 4)),
        )
        narrow = model.estimate(
            KernelProfile(name="narrow", traffic=(tile_traffic("in", 2, 128, halo=1),)),
            NDRange((1024, 1024), (2, 128)),
        )
        assert narrow.total_time_s > wide.total_time_s
        assert narrow.coalescing_efficiency < wide.coalescing_efficiency

    def test_local_memory_limits_occupancy(self, model):
        nd = NDRange((1024, 1024), (16, 16))
        small = KernelProfile(name="small", local_mem_bytes_per_group=1024)
        large = KernelProfile(name="large", local_mem_bytes_per_group=32 * 1024)
        assert model.occupancy(large, nd) < model.occupancy(small, nd)

    def test_local_memory_over_capacity_raises(self, model):
        nd = NDRange((64, 64), (16, 16))
        profile = KernelProfile(name="too-big", local_mem_bytes_per_group=128 * 1024)
        with pytest.raises(LocalMemoryExceededError):
            model.estimate(profile, nd)

    def test_sfu_ops_add_compute_time(self, model):
        nd = NDRange((1024, 1024), (16, 16))
        base = KernelProfile(name="base", flops_per_item=500.0)
        sfu = KernelProfile(name="sfu", flops_per_item=500.0, sfu_ops_per_item=100.0)
        assert model.estimate(sfu, nd).compute_time_s > model.estimate(base, nd).compute_time_s

    @given(fraction=st.floats(min_value=0.1, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_runtime_monotone_in_loaded_fraction(self, fraction):
        """Loading less data never makes the modelled kernel slower."""
        model = TimingModel(firepro_w5100())
        nd = NDRange((512, 512), (16, 16))
        def profile(frac):
            return KernelProfile(
                name="p",
                traffic=(
                    tile_traffic("in", 16, 16, halo=1, rows_loaded_fraction=frac),
                    tile_traffic("out", 16, 16, is_store=True),
                ),
                local_mem_bytes_per_group=18 * 18 * 4,
            )
        partial = model.estimate(profile(fraction), nd).total_time_s
        full = model.estimate(profile(1.0), nd).total_time_s
        assert partial <= full + 1e-12
