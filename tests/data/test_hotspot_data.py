"""Tests for the Rodinia-style Hotspot input generators."""

import numpy as np
import pytest

from repro.data import (
    AMBIENT_TEMPERATURE,
    HotspotInput,
    RODINIA_SIZES,
    generate_hotspot_input,
    generate_power_grid,
    generate_temperature_grid,
    rodinia_input_suite,
)


class TestPowerGrid:
    def test_shape_and_positivity(self):
        power = generate_power_grid(64, seed=1)
        assert power.shape == (64, 64)
        assert (power > 0).all()

    def test_contains_hot_blocks(self):
        power = generate_power_grid(128, seed=2)
        assert power.max() > 10 * power.min()

    def test_deterministic(self):
        np.testing.assert_array_equal(generate_power_grid(64, seed=5), generate_power_grid(64, seed=5))

    def test_too_small_grid_rejected(self):
        with pytest.raises(ValueError):
            generate_power_grid(4)


class TestTemperatureGrid:
    def test_temperatures_near_ambient(self):
        power = generate_power_grid(64, seed=3)
        temp = generate_temperature_grid(64, power, seed=3)
        assert temp.shape == (64, 64)
        assert (temp >= AMBIENT_TEMPERATURE - 5.0).all()
        assert (temp <= AMBIENT_TEMPERATURE + 80.0).all()

    def test_hot_regions_follow_power(self):
        power = generate_power_grid(64, seed=4)
        temp = generate_temperature_grid(64, power, seed=4)
        hottest_cell = np.unravel_index(np.argmax(temp), temp.shape)
        assert power[hottest_cell] > np.median(power)


class TestHotspotInput:
    def test_generate_single_input(self):
        instance = generate_hotspot_input(64, seed=9)
        assert instance.size == 64
        assert instance.name == "hotspot-64"
        assert instance.temperature.shape == (64, 64)
        assert instance.power.shape == (64, 64)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            HotspotInput(size=32, temperature=np.zeros((16, 16)), power=np.zeros((32, 32)))
        with pytest.raises(ValueError):
            HotspotInput(size=32, temperature=np.zeros((32, 32)), power=np.zeros((16, 16)))

    def test_rodinia_suite_sizes(self):
        suite = rodinia_input_suite(max_size=256)
        assert [i.size for i in suite] == [s for s in RODINIA_SIZES if s <= 256]
        full = rodinia_input_suite(max_size=None, sizes=(64, 96))
        assert len(full) == 2

    def test_suite_is_deterministic(self):
        a = rodinia_input_suite(max_size=96, seed=7)
        b = rodinia_input_suite(max_size=96, seed=7)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.power, y.power)
            np.testing.assert_array_equal(x.temperature, y.temperature)
