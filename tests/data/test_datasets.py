"""Tests for the dataset registry."""

import numpy as np
import pytest

from repro.data import (
    ImageClass,
    available_datasets,
    describe_dataset,
    figure7_examples,
    hotspot_single,
    hotspot_suite,
    image_arrays,
    image_suite,
    single_image,
)


class TestRegistry:
    def test_available_datasets(self):
        names = available_datasets()
        assert "sipi-substitute" in names
        assert "hotspot-rodinia" in names
        assert "class-examples" in names

    def test_describe_dataset(self):
        description = describe_dataset("sipi-substitute")
        assert description.count == 100
        assert "USC-SIPI" in description.notes

    def test_describe_unknown(self):
        with pytest.raises(KeyError):
            describe_dataset("imagenet")


class TestImageDatasets:
    def test_image_suite_cached_and_sized(self):
        suite_a = image_suite(count=8, size=32, seed=1)
        suite_b = image_suite(count=8, size=32, seed=1)
        assert suite_a is suite_b  # lru_cache
        assert len(suite_a) == 8
        spec, image = suite_a[0]
        assert image.shape == (32, 32)
        assert spec.size == 32

    def test_image_arrays_returns_plain_arrays(self):
        arrays = image_arrays(count=4, size=32, seed=2)
        assert len(arrays) == 4
        assert all(isinstance(a, np.ndarray) for a in arrays)

    def test_figure7_examples(self):
        examples = figure7_examples(size=32)
        assert set(examples) == set(ImageClass)

    def test_single_image(self):
        image = single_image(ImageClass.PATTERN, size=32, seed=5)
        assert image.shape == (32, 32)


class TestHotspotDatasets:
    def test_hotspot_suite_capped(self):
        suite = hotspot_suite(max_size=128)
        assert all(i.size <= 128 for i in suite)
        assert len(suite) >= 3

    def test_hotspot_single(self):
        instance = hotspot_single(size=96)
        assert instance.size == 96
