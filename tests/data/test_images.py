"""Tests for the synthetic image generators."""

import numpy as np
import pytest

from repro.data import (
    IMAGE_MAX,
    IMAGE_MIN,
    ImageClass,
    class_examples,
    flat_image,
    generate_dataset,
    generate_image,
    natural_image,
    pattern_image,
)


class TestGenerators:
    @pytest.mark.parametrize("generator", [flat_image, natural_image, pattern_image])
    def test_shape_and_range(self, generator):
        image = generator(size=64, seed=3)
        assert image.shape == (64, 64)
        assert image.min() >= IMAGE_MIN
        assert image.max() <= IMAGE_MAX
        assert image.dtype == np.float64

    @pytest.mark.parametrize("generator", [flat_image, natural_image, pattern_image])
    def test_deterministic_for_seed(self, generator):
        a = generator(size=32, seed=9)
        b = generator(size=32, seed=9)
        np.testing.assert_array_equal(a, b)
        c = generator(size=32, seed=10)
        assert not np.array_equal(a, c)

    def test_generate_image_accepts_string_class(self):
        image = generate_image("pattern", size=32, seed=1)
        assert image.shape == (32, 32)

    def test_generate_image_rejects_unknown_class(self):
        with pytest.raises(ValueError):
            generate_image("fractal", size=32)

    def test_high_frequency_content_ordering(self):
        """Pattern images must carry more row-to-row variation than natural
        ones, which in turn carry more than flat ones — this ordering is what
        drives the Figure 7 error ordering."""

        def row_variation(image):
            return float(np.abs(np.diff(image, axis=0)).mean())

        flat = flat_image(size=128, seed=5)
        natural = natural_image(size=128, seed=5)
        pattern = pattern_image(size=128, seed=5)
        assert row_variation(flat) < row_variation(natural) < row_variation(pattern)

    def test_pattern_variants_cover_kinds(self):
        variations = {pattern_image(size=32, seed=s).std() for s in range(6)}
        assert len(variations) > 1


class TestDataset:
    def test_default_mix_counts(self):
        dataset = generate_dataset(count=20, size=32, seed=1)
        assert len(dataset) == 20
        classes = [spec.image_class for spec, _ in dataset]
        assert classes.count(ImageClass.NATURAL) >= 6
        assert classes.count(ImageClass.FLAT) >= 4
        assert classes.count(ImageClass.PATTERN) >= 4

    def test_specs_are_named_and_seeded(self):
        dataset = generate_dataset(count=5, size=32, seed=7)
        names = [spec.name for spec, _ in dataset]
        assert len(set(names)) == 5
        seeds = [spec.seed for spec, _ in dataset]
        assert len(set(seeds)) == 5

    def test_custom_mix(self):
        dataset = generate_dataset(
            count=10, size=32, seed=3, class_mix={ImageClass.PATTERN: 1.0}
        )
        assert all(spec.image_class == ImageClass.PATTERN for spec, _ in dataset)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            generate_dataset(count=0)

    def test_class_examples_has_all_classes(self):
        examples = class_examples(size=32)
        assert set(examples) == {ImageClass.FLAT, ImageClass.NATURAL, ImageClass.PATTERN}
