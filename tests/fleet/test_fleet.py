"""Fleet end-to-end: bit-identity vs the single-process server, exact shed
accounting, zero-calibration warm starts, fleet-level metrics.

These tests spawn real worker processes, so they live in the slow tier;
the fast per-module pieces (protocol, sharding, validation) have their own
files.
"""

import numpy as np
import pytest

from repro.data import generate_image
from repro.fleet import PerforationFleet
from repro.serve import PerforationServer, ServeRequest, TraceSpec, generate_trace

pytestmark = pytest.mark.slow

SPEC = TraceSpec(
    apps=("gaussian", "sobel3", "median"),
    requests=18,
    size=32,
    inputs_per_app=2,
    seed=31,
)


def _calibration_inputs(size=32):
    return {app: [generate_image("natural", size=size, seed=77)] for app in SPEC.apps}


@pytest.fixture(scope="module")
def single_process_responses():
    """Reference outputs: the whole trace served by one in-process server."""
    server = PerforationServer(max_batch=4, calibration_inputs=_calibration_inputs())
    responses = {r.request_id: r for r in server.run_trace(generate_trace(SPEC))}
    return server, responses


@pytest.mark.parametrize("transport", ["unix", "tcp"])
def test_fleet_outputs_bit_identical_to_single_process(
    transport, single_process_responses
):
    _, reference = single_process_responses
    trace = generate_trace(SPEC)
    with PerforationFleet(
        workers=2,
        max_batch=4,
        calibration_inputs=_calibration_inputs(),
        transport=transport,
    ) as fleet:
        responses = fleet.serve_trace(trace)
        metrics = fleet.metrics()

    assert len(responses) == len(trace)
    assert metrics.shed == 0
    for response in responses:
        expected = reference[response.request_id]
        # Bit-identical, not approximately equal: same config choice, same
        # output bytes, same measured error, same virtual timestamps.
        assert response.config_label == expected.config_label
        assert np.array_equal(response.output, expected.output)
        assert response.output.tobytes() == expected.output.tobytes()
        assert response.error == expected.error
        assert response.within_budget == expected.within_budget
        assert response.batch_size == expected.batch_size
        assert response.completed_ms == expected.completed_ms
        assert response.queue_delay_ms == expected.queue_delay_ms


def test_fleet_metrics_match_single_process_accounting(single_process_responses):
    server, _ = single_process_responses
    with PerforationFleet(
        workers=2, max_batch=4, calibration_inputs=_calibration_inputs()
    ) as fleet:
        fleet.serve_trace(generate_trace(SPEC))
        merged = fleet.metrics()
        per_worker = fleet.worker_metrics()

    expected = server.metrics.deterministic_snapshot()
    actual = merged.deterministic_snapshot()
    # Counters and per-key counts are exactly the single-process values;
    # the errors list is a per-worker concatenation, so compare it as a
    # multiset rather than a sequence.
    for field in ("completed", "violations", "fallbacks", "cache_hits", "batches"):
        assert actual[field] == expected[field]
    assert actual["per_app"] == expected["per_app"]
    assert actual["per_config"] == expected["per_config"]
    assert actual["batch_sizes"] == expected["batch_sizes"]
    assert sorted(actual["errors"]) == sorted(expected["errors"])
    assert actual["worst_budget_fraction"] == expected["worst_budget_fraction"]
    # Worker contributions are disjoint and complete.
    assert sum(w["metrics"]["completed"] for w in per_worker) == expected["completed"]
    assert all(w["metrics"]["completed"] > 0 for w in per_worker)


def test_cold_workers_start_with_zero_calibration_sweeps():
    with PerforationFleet(
        workers=2, max_batch=4, calibration_inputs=_calibration_inputs()
    ) as fleet:
        fleet.start()
        reports = list(fleet.warm_reports)
        parent = fleet.parent_db_stats

    # The front-end's own calibration pass filled the database...
    assert parent is not None and parent["puts"] > 0
    # ...and every worker restored its ladders purely from it: reads only.
    assert len(reports) == 2
    for report in reports:
        assert report["calibrated_apps"] == sorted(SPEC.apps)
        assert report["db"]["misses"] == 0
        assert report["db"]["puts"] == 0
        assert report["db"]["hits"] >= len(SPEC.apps)


def test_admission_control_sheds_exactly_beyond_max_pending():
    calibration = _calibration_inputs()
    requests = [
        ServeRequest(
            request_id=index,
            app="gaussian",
            inputs=generate_image("natural", size=32, seed=index),
            error_budget=0.05,
            arrival_ms=float(index),
        )
        for index in range(6)
    ]
    # One worker, pending bound 1, and a scheduler that never flushes
    # before the drain (huge batch, huge delay): the first request stays
    # outstanding for the whole trace, so every later request is shed —
    # deterministically, independent of process timing.
    with PerforationFleet(
        workers=1,
        max_batch=64,
        max_delay_ms=1e9,
        calibration_inputs=calibration,
        max_pending=1,
    ) as fleet:
        responses = fleet.serve_trace(requests)
        metrics = fleet.metrics()

    assert metrics.completed == 1
    assert metrics.shed == len(requests) - 1
    assert metrics.completed + metrics.shed == len(requests)
    rejected = [r for r in responses if r.rejected]
    assert len(rejected) == len(requests) - 1
    assert {r.request_id for r in rejected} == set(range(1, 6))
    for response in rejected:
        assert response.output is None
        assert not response.within_budget
        assert response.config_label == ""
    served = [r for r in responses if not r.rejected]
    assert len(served) == 1 and served[0].request_id == 0
