"""Front-end pieces that need no worker processes: validation, rejected
responses, and the in-process zero-evaluation warm-start property."""

import pytest

from repro.data import generate_image
from repro.fleet import FleetError, PerforationFleet, rejected_response
from repro.fleet.worker import WorkerSpec, build_server
from repro.serve import ServeRequest


class TestValidation:
    def test_constructor_rejects_bad_parameters(self):
        with pytest.raises(FleetError):
            PerforationFleet(workers=0)
        with pytest.raises(FleetError):
            PerforationFleet(transport="carrier-pigeon")
        with pytest.raises(FleetError):
            PerforationFleet(max_pending=0)

    def test_closed_fleet_refuses_work(self):
        fleet = PerforationFleet(workers=1)
        fleet.close()
        with pytest.raises(FleetError):
            fleet.start()

    def test_close_is_idempotent_and_removes_runtime_dir(self):
        fleet = PerforationFleet(workers=1)
        runtime_dir = fleet.runtime_dir
        assert runtime_dir.exists()
        fleet.close()
        fleet.close()
        assert not runtime_dir.exists()

    def test_empty_trace_never_spawns_workers(self):
        fleet = PerforationFleet(workers=1)
        try:
            assert fleet.serve_trace([]) == []
            assert fleet._procs == []  # still cold — no processes, no sockets
        finally:
            fleet.close()


class TestRejectedResponse:
    def test_rejected_response_mirrors_the_request(self):
        request = ServeRequest(
            request_id=3,
            app="gaussian",
            inputs=generate_image("natural", size=32, seed=1),
            error_budget=0.05,
            arrival_ms=12.0,
        )
        response = rejected_response(request)
        assert response.request_id == 3 and response.app == "gaussian"
        assert response.rejected is True
        assert response.output is None and response.error is None
        assert not response.within_budget
        assert response.batch_size == 0
        assert response.completed_ms == 12.0
        assert response.metadata["reason"] == "admission-control"


class TestWarmStartInProcess:
    """The exact worker-side construction, run in process: a warm tuning
    database restores the ladders with zero kernel evaluations."""

    def test_build_server_warm_start_runs_no_kernels(self, tmp_path, monkeypatch):
        from repro.api.engine import PerforationEngine
        from repro.autotune import Tuner, TuningDB
        from repro.serve.controller import OnlineController

        image = generate_image("natural", size=32, seed=77)
        calibration = {"gaussian": [image]}
        db_path = tmp_path / "tuning-db"

        # Front-end-style warm-up: calibrate once, persist to the DB.  The
        # backend is part of the tuning key, so it must match the worker's.
        seed_engine = PerforationEngine(backend="vectorized")
        OnlineController(
            seed_engine,
            calibration_inputs=calibration,
            tuner=Tuner(seed_engine, db=TuningDB(db_path)),
        ).ladder("gaussian")

        # Worker-style construction with kernels booby-trapped: warm start
        # must not evaluate a single one.
        probe_engine = PerforationEngine()
        app_type = type(probe_engine.resolve_app("gaussian"))

        def boom(*args, **kwargs):
            raise AssertionError("warm start must not evaluate kernels")

        monkeypatch.setattr(app_type, "approximate", boom)
        monkeypatch.setattr(app_type, "reference", boom)

        spec = WorkerSpec(
            index=0,
            address=str(tmp_path / "unused.sock"),
            calibration_inputs=calibration,
            warm_apps=("gaussian",),
            tuning_db=str(db_path),
        )
        server, report = build_server(spec)
        assert report["db"]["misses"] == 0
        assert report["db"]["puts"] == 0
        assert report["db"]["hits"] >= 1
        ladder = server.controller.ladder("gaussian")
        assert ladder[-1].config.label == "Accurate"
        assert len(ladder) > 1

    def test_worker_database_handle_is_readonly(self, tmp_path):
        spec = WorkerSpec(
            index=0,
            address=str(tmp_path / "unused.sock"),
            tuning_db=str(tmp_path / "tuning-db"),
        )
        server, _ = build_server(spec)
        assert server.controller.tuner.db.readonly is True
