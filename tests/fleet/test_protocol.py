"""Wire protocol: tagged value codec and length-prefixed frame IO."""

import asyncio
import io

import numpy as np
import pytest

from repro.data.hotspot import HotspotInput
from repro.fleet import (
    MAX_FRAME_BYTES,
    ProtocolError,
    encode_frame,
    from_wire,
    read_frame,
    read_frame_async,
    request_from_wire,
    request_to_wire,
    response_from_wire,
    response_to_wire,
    to_wire,
    write_frame,
)
from repro.serve import ServeRequest, ServeResponse


def round_trip(value):
    return from_wire(to_wire(value))


class TestValueCodec:
    @pytest.mark.parametrize("dtype", ["float64", "float32", "int32", "uint8", "bool"])
    def test_ndarray_round_trip_is_exact(self, dtype):
        rng = np.random.default_rng(5)
        array = (rng.uniform(0, 100, size=(5, 7)) - 50).astype(dtype)
        back = round_trip(array)
        assert back.dtype == array.dtype
        assert back.shape == array.shape
        assert np.array_equal(back, array)

    def test_float_bit_exactness(self):
        values = [0.1 + 0.2, 1.0 / 3.0, 2.0**-1074, 1e308, -0.0]
        array = np.array(values)
        assert round_trip(array).tobytes() == array.tobytes()
        assert round_trip(values) == values  # plain floats via JSON repr

    def test_decoded_arrays_are_writable(self):
        back = round_trip(np.zeros((2, 2)))
        back[0, 0] = 1.0  # np.frombuffer alone would be read-only

    def test_non_contiguous_array(self):
        array = np.arange(16.0).reshape(4, 4)[::2, ::2]
        assert np.array_equal(round_trip(array), array)

    def test_hotspot_input_round_trip(self):
        from repro.data import hotspot_single

        original = hotspot_single(size=32, seed=7)
        back = round_trip(original)
        assert isinstance(back, HotspotInput)
        assert back.size == original.size and back.name == original.name
        assert np.array_equal(back.temperature, original.temperature)
        assert np.array_equal(back.power, original.power)

    def test_tuples_survive_nested_containers(self):
        value = {"a": (1, 2.5, "x"), "b": [(0,), {"c": (None, True)}]}
        back = round_trip(value)
        assert back == value
        assert isinstance(back["a"], tuple)
        assert isinstance(back["b"][0], tuple)
        assert isinstance(back["b"][1]["c"], tuple)

    def test_numpy_scalars_become_python_numbers(self):
        assert to_wire(np.int64(3)) == 3
        assert to_wire(np.float64(0.5)) == 0.5

    def test_reserved_and_invalid_keys_rejected(self):
        with pytest.raises(ProtocolError):
            to_wire({"__kind__": "nope"})
        with pytest.raises(ProtocolError):
            to_wire({1: "non-string key"})

    def test_unencodable_value_rejected(self):
        with pytest.raises(ProtocolError):
            to_wire(object())

    def test_unknown_tag_rejected(self):
        with pytest.raises(ProtocolError):
            from_wire({"__kind__": "mystery"})


class TestRequestResponseCodec:
    def test_request_round_trip(self):
        request = ServeRequest(
            request_id=7,
            app="gaussian",
            inputs=np.ones((4, 4)),
            error_budget=0.025,
            arrival_ms=12.5,
            latency_budget_ms=40.0,
            priority=1,
        )
        back = request_from_wire(request_to_wire(request))
        assert back.request_id == 7 and back.app == "gaussian"
        assert back.error_budget == 0.025 and back.arrival_ms == 12.5
        assert back.latency_budget_ms == 40.0 and back.priority == 1
        assert np.array_equal(back.inputs, request.inputs)

    def test_response_round_trip_including_rejected(self):
        served = ServeResponse(
            request_id=1,
            app="sobel3",
            config_label="Rows1:NN",
            output=np.full((2, 2), 0.5),
            error=0.0125,
            within_budget=True,
            fallback=True,
            cache_hit=True,
            batch_size=3,
            queue_delay_ms=1.5,
            service_time_ms=2.25,
            completed_ms=10.0,
            metadata={"k": (1, 2)},
        )
        back = response_from_wire(response_to_wire(served))
        assert np.array_equal(back.output, served.output)
        assert back.error == served.error and back.rejected is False
        assert back.fallback and back.cache_hit and back.batch_size == 3
        assert back.metadata == {"k": (1, 2)}

        rejected = ServeResponse(
            request_id=2,
            app="sobel3",
            config_label="",
            output=None,
            error=None,
            within_budget=False,
            rejected=True,
        )
        back = response_from_wire(response_to_wire(rejected))
        assert back.rejected is True and back.output is None and back.error is None


class TestFrames:
    def test_sync_frame_round_trip(self):
        stream = io.BytesIO()
        write_frame(stream, {"type": "hello", "n": 1})
        write_frame(stream, {"type": "bye", "values": [0.1, 0.2]})
        stream.seek(0)
        assert read_frame(stream) == {"type": "hello", "n": 1}
        assert read_frame(stream) == {"type": "bye", "values": [0.1, 0.2]}
        assert read_frame(stream) is None  # clean EOF

    def test_truncated_stream_raises(self):
        frame = encode_frame({"type": "x"})
        stream = io.BytesIO(frame[:-2])
        with pytest.raises(ProtocolError):
            read_frame(stream)
        header_only = io.BytesIO(frame[:3])
        with pytest.raises(ProtocolError):
            read_frame(header_only)

    def test_oversized_frame_rejected_both_ways(self):
        import struct

        with pytest.raises(ProtocolError):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})
        bogus = io.BytesIO(struct.pack(">I", MAX_FRAME_BYTES + 1) + b"x")
        with pytest.raises(ProtocolError):
            read_frame(bogus)

    def test_non_object_body_rejected(self):
        import struct

        body = b"[1, 2]"
        stream = io.BytesIO(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError):
            read_frame(stream)

    def test_async_frame_round_trip(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"type": "hello"}))
            reader.feed_data(encode_frame({"n": 2}))
            reader.feed_eof()
            first = await read_frame_async(reader)
            second = await read_frame_async(reader)
            third = await read_frame_async(reader)
            return first, second, third

        first, second, third = asyncio.run(scenario())
        assert first == {"type": "hello"}
        assert second == {"n": 2}
        assert third is None

    def test_async_truncation_raises(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"type": "x"})[:-1])
            reader.feed_eof()
            await read_frame_async(reader)

        with pytest.raises(ProtocolError):
            asyncio.run(scenario())
