"""End-to-end fleet tracing: worker spans merge into one cross-process trace.

Spawns real worker processes — slow tier.  The fast protocol-level pieces
live in ``test_trace_propagation.py``.
"""

import pytest

from repro.data import generate_image
from repro.fleet import PerforationFleet
from repro.obs import trace as obs_trace
from repro.obs.export import to_chrome_trace
from repro.serve import TraceSpec, generate_trace

pytestmark = pytest.mark.slow

SPEC = TraceSpec(
    apps=("gaussian", "sobel3"),
    requests=10,
    size=32,
    inputs_per_app=2,
    seed=31,
)


def _calibration_inputs(size=32):
    return {app: [generate_image("natural", size=size, seed=77)] for app in SPEC.apps}


@pytest.fixture()
def traced_fleet_run():
    tracer = obs_trace.install(process="main")
    try:
        with PerforationFleet(
            workers=2, max_batch=4, calibration_inputs=_calibration_inputs()
        ) as fleet:
            responses = fleet.serve_trace(generate_trace(SPEC))
            registry = fleet.observability()  # also pulls worker spans
        yield tracer, responses, registry
    finally:
        obs_trace.disable()


def test_worker_spans_merge_with_matching_trace_ids(traced_fleet_run):
    tracer, responses, registry = traced_fleet_run
    spans = tracer.spans()

    front = [s for s in spans if s.name == "fleet.request"]
    served = [s for s in spans if s.name == "serve.request"]
    assert len(front) == len(responses)
    assert len(served) == len(responses)

    # Front-end and worker halves of each request share one trace id.
    assert {s.trace_id for s in front} == {s.trace_id for s in served}
    assert {s.trace_id for s in front} == {f"r{r.request_id}" for r in responses}

    # Worker spans kept their process labels; both workers contributed.
    worker_processes = {s.process for s in served}
    assert worker_processes == {"worker-0", "worker-1"}
    # fleet.request spans know which worker served them.
    for span in front:
        assert span.process == "main"
        assert span.attrs["worker"] in (0, 1)

    # The wire shipped whole worker traces, not just request spans.
    assert any(s.name == "serve.batch" for s in spans)
    assert any(s.name == "clsim.launch" for s in spans)

    # The merged registry folded both workers' serve counters.
    assert registry.snapshot()["serve.completed"] == len(responses)
    assert registry.snapshot()["fleet.workers"] == 2


def test_merged_trace_exports_with_all_three_processes(traced_fleet_run):
    tracer, _, _ = traced_fleet_run
    doc = to_chrome_trace(tracer.spans(), dropped=tracer.dropped)
    names = {
        e["args"]["name"]
        for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert names == {"main", "worker-0", "worker-1"}


def test_tracing_survives_respawn_and_replay():
    """Kill worker 0 after its first request: the respawned generation's
    spans still arrive, labelled with its generation suffix."""
    tracer = obs_trace.install(process="main")
    try:
        with PerforationFleet(
            workers=2,
            max_batch=4,
            calibration_inputs=_calibration_inputs(),
            fail_after={0: 1},
        ) as fleet:
            responses = fleet.serve_trace(generate_trace(SPEC))
            fleet.metrics()  # final span pull from the survivors
        spans = tracer.spans()
    finally:
        obs_trace.disable()

    assert len(responses) == SPEC.requests
    assert any(s.name == "fleet.recover" and s.attrs["worker"] == 0 for s in spans)
    processes = {s.process for s in spans if s.name == "serve.request"}
    # The replacement worker announces its generation in the process label.
    assert "worker-0.g1" in processes
    assert "worker-1" in processes
