"""Fleet lifecycle regressions: environment hygiene, partial-startup
teardown, and metrics consistency across repeated traces.

The environment tests monkeypatch the spawn/connect path away so they run
without any worker processes (fast tier); the teardown and multi-trace
tests spawn real workers (slow tier).
"""

import os

import pytest

from repro.data import generate_image
from repro.fleet import FleetError, PerforationFleet
from repro.fleet.frontend import PerforationFleet as FrontendFleet
from repro.serve import TraceSpec, generate_trace


def _start_without_workers(monkeypatch, fleet):
    """Run start() with the process machinery stubbed out."""

    async def no_connect(self, addresses):
        return None

    monkeypatch.setattr(FrontendFleet, "_spawn_workers", lambda self: [])
    monkeypatch.setattr(FrontendFleet, "_connect_all", no_connect)
    fleet.start()


class TestEnvironmentRestored:
    def test_codegen_cache_override_is_restored_on_close(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CODEGEN_CACHE", "/prior/cache")
        fleet = PerforationFleet(workers=1, codegen_cache=tmp_path / "cache")
        _start_without_workers(monkeypatch, fleet)
        assert os.environ["REPRO_CODEGEN_CACHE"] == str(tmp_path / "cache")
        fleet.close()
        assert os.environ["REPRO_CODEGEN_CACHE"] == "/prior/cache"

    def test_codegen_cache_removed_when_previously_unset(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CODEGEN_CACHE", raising=False)
        fleet = PerforationFleet(workers=1, codegen_cache=tmp_path / "cache")
        _start_without_workers(monkeypatch, fleet)
        assert os.environ["REPRO_CODEGEN_CACHE"] == str(tmp_path / "cache")
        fleet.close()
        assert "REPRO_CODEGEN_CACHE" not in os.environ

    def test_no_override_means_no_env_mutation(self, monkeypatch):
        monkeypatch.delenv("REPRO_CODEGEN_CACHE", raising=False)
        fleet = PerforationFleet(workers=1)
        _start_without_workers(monkeypatch, fleet)
        assert "REPRO_CODEGEN_CACHE" not in os.environ
        fleet.close()
        assert "REPRO_CODEGEN_CACHE" not in os.environ


@pytest.mark.slow
class TestPartialStartupTeardown:
    def test_spawn_failure_terminates_already_spawned_workers(
        self, monkeypatch, tmp_path
    ):
        """Worker 1's socket path is squatted by a regular file, so its
        bind fails after worker 0 already spawned; start() must tear the
        survivor down rather than leak it."""
        runtime = tmp_path / "rt"
        runtime.mkdir()
        (runtime / "worker-1.sock").write_text("squatter")

        captured = {}
        original = FrontendFleet._spawn_workers

        def spy(self):
            try:
                return original(self)
            finally:
                captured["procs"] = list(self._procs)

        monkeypatch.setattr(FrontendFleet, "_spawn_workers", spy)
        fleet = PerforationFleet(workers=2, runtime_dir=runtime)
        with pytest.raises(FleetError):
            fleet.start()

        assert captured["procs"]  # worker 0 really was spawned
        for proc in captured["procs"]:
            assert not proc.is_alive()
        assert fleet._procs == []

    def test_owned_runtime_dir_removed_on_startup_failure(self, monkeypatch):
        """The private repro-fleet-* temp dir must not leak when start()
        fails before any worker exists."""

        def boom(self):
            raise FleetError("injected spawn failure")

        monkeypatch.setattr(FrontendFleet, "_spawn_workers", boom)
        fleet = PerforationFleet(workers=1)
        runtime_dir = fleet.runtime_dir
        assert runtime_dir.exists()
        with pytest.raises(FleetError, match="injected spawn failure"):
            fleet.start()
        assert not runtime_dir.exists()


@pytest.mark.slow
class TestRepeatedTraces:
    def test_metrics_consistent_across_repeated_traces(self):
        """Wall time accumulates with shed/completed counts, so the
        throughput of a multi-trace fleet divides totals by the total
        wall — not by the last trace's."""
        spec = TraceSpec(
            apps=("gaussian",), requests=6, size=32, inputs_per_app=2, seed=5
        )
        trace = generate_trace(spec)
        calibration = {"gaussian": [generate_image("natural", size=32, seed=77)]}
        with PerforationFleet(
            workers=1, max_batch=4, calibration_inputs=calibration
        ) as fleet:
            fleet.serve_trace(trace)
            first = fleet.metrics()
            fleet.serve_trace(trace)
            second = fleet.metrics()

        assert first.completed == len(trace)
        assert second.completed == 2 * len(trace)
        assert first.wall_time_s is not None and second.wall_time_s is not None
        assert second.wall_time_s > first.wall_time_s  # accumulates, not overwrites
        assert second.shed == 0 and second.failed == 0
        assert second.completed + second.shed + second.failed == 2 * len(trace)
