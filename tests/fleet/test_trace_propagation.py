"""Trace-id propagation across the fleet wire protocol (no worker spawning)."""

from dataclasses import replace

from repro.fleet import (
    encode_frame,
    request_from_wire,
    request_to_wire,
    shard_key,
)
from repro.serve import ServeRequest


def _request(trace_id=None, request_id=0):
    from repro.data import generate_image

    return ServeRequest(
        request_id=request_id,
        app="gaussian",
        inputs=generate_image("natural", size=32, seed=1),
        error_budget=0.05,
        trace_id=trace_id,
    )


class TestWireRoundTrip:
    def test_trace_id_survives_the_wire(self):
        back = request_from_wire(request_to_wire(_request(trace_id="r42")))
        assert back.trace_id == "r42"

    def test_untraced_request_round_trips_as_none(self):
        back = request_from_wire(request_to_wire(_request()))
        assert back.trace_id is None

    def test_trace_id_survives_wire_id_rewrite(self):
        # The front-end renumbers requests per worker connection but must
        # preserve the trace id alongside.
        request = _request(trace_id="r7", request_id=7)
        wire_request = replace(request, request_id=1)
        back = request_from_wire(request_to_wire(wire_request))
        assert back.request_id == 1
        assert back.trace_id == "r7"

    def test_untraced_frames_are_byte_identical_to_pre_tracing_protocol(self):
        # trace_id is out-of-band: when unset, the wire dict must not even
        # contain the key, so untraced deployments produce the exact same
        # bytes as before tracing existed (recovery replay stays bit-stable).
        wire = request_to_wire(_request())
        assert "trace_id" not in wire
        traced = request_to_wire(_request(trace_id="r0"))
        untraced = dict(traced)
        del untraced["trace_id"]
        assert encode_frame({"type": "request", **untraced}) == encode_frame(
            {"type": "request", **request_to_wire(_request())}
        )

    def test_trace_label_falls_back_to_request_id(self):
        assert _request(request_id=5).trace_label == "r5"
        assert _request(trace_id="abc").trace_label == "abc"


class TestShardingUnaffected:
    def test_shard_key_ignores_trace_id(self):
        plain = shard_key(_request(), "vectorized")
        traced = shard_key(_request(trace_id="r99"), "vectorized")
        assert plain == traced
