"""Chaos suite: worker failure recovery preserves bit-identity.

Faults are injected deterministically through the spec-level chaos hooks
(``fail_after`` — hard exit after N served requests, ``error_on`` —
request-scoped error frames, ``hang_on`` — a stuck worker only the
response timeout can detect), so every test here is reproducible: no
random kill timing, no signal races.

The headline property: killing a worker mid-trace yields a *completed*
trace whose outputs are bit-identical to an undisturbed single-process
run, because the respawned worker warm-starts read-only from the same
tuning database and replays the exact observation subsequence its
predecessor saw.  Accounting stays exact throughout:
``completed + shed + failed == len(trace)``.

These tests spawn (and kill) real worker processes — slow tier.
"""

import time

import pytest

from repro.data import generate_image
from repro.fleet import FleetError, PerforationFleet
from repro.serve import PerforationServer, ServeRequest, TraceSpec, generate_trace

pytestmark = pytest.mark.slow

SPEC = TraceSpec(
    apps=("gaussian", "sobel3", "median"),
    requests=18,
    size=32,
    inputs_per_app=2,
    seed=31,
)


def _calibration_inputs(apps=SPEC.apps, size=32):
    return {app: [generate_image("natural", size=size, seed=77)] for app in apps}


def _gaussian_requests(count):
    """A deterministic single-app trace: request id == wire id == arrival order."""
    return [
        ServeRequest(
            request_id=index,
            app="gaussian",
            inputs=generate_image("natural", size=32, seed=index),
            error_budget=0.05,
            arrival_ms=float(index),
        )
        for index in range(count)
    ]


def _assert_bit_identical(response, expected):
    assert not response.rejected
    assert response.config_label == expected.config_label
    assert response.output.tobytes() == expected.output.tobytes()
    assert response.error == expected.error
    assert response.within_budget == expected.within_budget
    assert response.batch_size == expected.batch_size
    assert response.completed_ms == expected.completed_ms


@pytest.fixture(scope="module")
def reference_responses():
    """The undisturbed run: the whole trace on one in-process server."""
    server = PerforationServer(max_batch=4, calibration_inputs=_calibration_inputs())
    return {r.request_id: r for r in server.run_trace(generate_trace(SPEC))}


@pytest.mark.parametrize("transport", ["unix", "tcp"])
def test_worker_crash_mid_trace_recovers_bit_identical(transport, reference_responses):
    """The tentpole: kill worker 0 after its first request; the trace must
    still complete with outputs bit-identical to the undisturbed run."""
    trace = generate_trace(SPEC)
    with PerforationFleet(
        workers=2,
        max_batch=4,
        calibration_inputs=_calibration_inputs(),
        transport=transport,
        fail_after={0: 1},
        max_respawns=2,
    ) as fleet:
        responses = fleet.serve_trace(trace)
        metrics = fleet.metrics()
        respawns = list(fleet.respawn_reports)

    assert len(responses) == len(trace)
    assert metrics.worker_failures >= 1
    assert metrics.replayed >= 1
    assert metrics.failed == 0 and metrics.shed == 0
    assert metrics.completed == len(trace)
    assert metrics.completed + metrics.shed + metrics.failed == len(trace)
    # The replacement announced a bumped generation and warm-started
    # read-only — zero calibration evaluations, like any other worker.
    assert respawns
    for report in respawns:
        assert report["generation"] >= 1
        assert report["db"]["misses"] == 0
        assert report["db"]["puts"] == 0
    for response in responses:
        _assert_bit_identical(response, reference_responses[response.request_id])


def test_hung_worker_detected_by_response_timeout(reference_responses):
    """A worker that hangs (no EOF, no frames) is only detectable by the
    per-request response timeout; recovery then completes the trace."""
    trace = generate_trace(SPEC)
    with PerforationFleet(
        workers=2,
        max_batch=4,
        calibration_inputs=_calibration_inputs(),
        hang_on=(0,),  # hang whichever worker receives the first request
        request_timeout_s=2.0,
        max_respawns=2,
    ) as fleet:
        responses = fleet.serve_trace(trace)
        metrics = fleet.metrics()

    assert metrics.worker_failures >= 1
    assert metrics.failed == 0 and metrics.shed == 0
    assert metrics.completed == len(trace)
    for response in responses:
        _assert_bit_identical(response, reference_responses[response.request_id])


def test_respawn_budget_exhausted_degrades_shard_not_trace():
    """With a zero respawn budget, the crashed shard's requests fail
    explicitly — the other shard's outputs are still bit-identical."""
    spec = TraceSpec(
        apps=("gaussian", "sobel3"), requests=12, size=32, inputs_per_app=2, seed=7
    )
    calibration = _calibration_inputs(apps=spec.apps)
    trace = generate_trace(spec)
    single = PerforationServer(max_batch=1, calibration_inputs=calibration)
    reference = {r.request_id: r for r in single.run_trace(trace)}

    with PerforationFleet(
        workers=2,
        max_batch=1,  # every serve flushes: exactly one completion precedes the crash
        calibration_inputs=calibration,
        fail_after={0: 1},
        max_respawns=0,
    ) as fleet:
        responses = fleet.serve_trace(trace)
        metrics = fleet.metrics()

    assert metrics.worker_failures == 1
    assert metrics.replayed == 0
    assert metrics.failed > 0
    assert metrics.completed + metrics.shed + metrics.failed == len(trace)
    assert len(responses) == len(trace)
    failed = [r for r in responses if r.rejected]
    assert len(failed) == metrics.failed
    for response in failed:
        assert response.output is None
        assert not response.within_budget
        assert response.metadata["reason"] in ("worker-failure", "shard-degraded")
    for response in responses:
        if not response.rejected:
            _assert_bit_identical(response, reference[response.request_id])


def test_persistent_crash_exhausts_budget_with_exact_accounting():
    """A fault that recurs on every respawn burns the whole budget, then
    degrades: initial spawn + max_respawns failures, everything else
    failed explicitly, nothing lost."""
    requests = _gaussian_requests(6)
    with PerforationFleet(
        workers=1,
        max_batch=1,
        calibration_inputs=_calibration_inputs(apps=("gaussian",)),
        fail_after={0: 1},
        chaos_persistent=True,
        max_respawns=2,
    ) as fleet:
        responses = fleet.serve_trace(requests)
        metrics = fleet.metrics()

    # Generation 0 and both respawns crashed: three failures in total.
    assert metrics.worker_failures == 3
    # Every generation re-serves the same first request, then dies before
    # the second — exactly one request ever completes.
    assert metrics.completed == 1
    assert metrics.failed == len(requests) - 1
    assert metrics.completed + metrics.shed + metrics.failed == len(requests)
    served = [r for r in responses if not r.rejected]
    assert len(served) == 1 and served[0].request_id == 0


def test_request_scoped_errors_fail_only_those_requests():
    """A request-scoped error frame fails that request and nothing else —
    no worker death, no recovery, the trace keeps going."""
    requests = _gaussian_requests(6)
    with PerforationFleet(
        workers=1,
        max_batch=1,
        calibration_inputs=_calibration_inputs(apps=("gaussian",)),
        error_on=(2, 4),  # first-trace wire ids == request ids here
    ) as fleet:
        responses = fleet.serve_trace(requests)
        metrics = fleet.metrics()

    assert metrics.worker_failures == 0
    assert metrics.failed == 2
    assert metrics.completed == len(requests) - 2
    assert metrics.completed + metrics.shed + metrics.failed == len(requests)
    failed = {r.request_id: r for r in responses if r.rejected}
    assert set(failed) == {2, 4}
    for response in failed.values():
        assert response.metadata["reason"] == "worker-error"
    for response in responses:
        if not response.rejected:
            assert response.output is not None


def test_worker_startup_failure_fails_fast_with_cause():
    """A worker whose server cannot be built reports the failure through
    an error hello frame — the front-end raises immediately with the real
    cause instead of spinning its connect loop to the spawn timeout."""
    fleet = PerforationFleet(workers=1, warm=False, warm_apps=("no-such-app",))
    runtime_dir = fleet.runtime_dir
    started = time.monotonic()
    with pytest.raises(FleetError) as excinfo:
        fleet.start()
    elapsed = time.monotonic() - started

    assert elapsed < 30.0  # far below the 120 s spawn timeout
    assert "startup failed" in str(excinfo.value)
    # Partial startup was torn down: no leaked processes, no leaked dir.
    assert fleet._procs == []
    assert not runtime_dir.exists()
