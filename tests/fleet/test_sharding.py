"""Routing: shard keys, stable hashing, planned placement."""

import pytest

from repro.core.errors import ConfigurationError
from repro.fleet import ShardMap, assign_shard, shard_key, stable_shard_hash
from repro.serve import ServeRequest, TraceSpec, generate_trace


def _request(app="gaussian", size=32, request_id=0, seed=1):
    from repro.data import generate_image

    return ServeRequest(
        request_id=request_id,
        app=app,
        inputs=generate_image("natural", size=size, seed=seed),
        error_budget=0.05,
    )


class TestShardKey:
    def test_key_is_a_pure_function_of_the_request(self):
        # Same (app, backend, size): same key, regardless of input content
        # or request identity — the config half of the scheduler's compat
        # key is controller state, reproduced inside the worker.
        a = shard_key(_request(request_id=0, seed=1), "vectorized")
        b = shard_key(_request(request_id=9, seed=2), "vectorized")
        assert a == b == ("gaussian", "vectorized", (32, 32))

    def test_key_separates_app_backend_and_size(self):
        base = shard_key(_request(), "vectorized")
        assert shard_key(_request(app="sobel3"), "vectorized") != base
        assert shard_key(_request(), "compiled") != base
        assert shard_key(_request(size=64), "vectorized") != base


class TestStableHash:
    def test_hash_is_pinned_across_processes_and_versions(self):
        # SHA-256-derived, no per-process salt: this exact value must never
        # drift, or restarts would re-route live streams.
        assert stable_shard_hash(("gaussian", "vectorized", (64, 64))) == 8583040166835179682

    def test_assignment_is_deterministic_and_in_range(self):
        keys = [
            (app, "vectorized", (size, size))
            for app in ("gaussian", "sobel3", "sobel5", "median", "inversion", "hotspot")
            for size in (32, 64, 128)
        ]
        for workers in (1, 2, 3, 4, 7):
            first = [assign_shard(key, workers) for key in keys]
            second = [assign_shard(key, workers) for key in keys]
            assert first == second
            assert all(0 <= index < workers for index in first)
        # With one worker everything lands on it.
        assert {assign_shard(key, 1) for key in keys} == {0}

    def test_enough_keys_reach_every_worker(self):
        keys = [("app", "vectorized", (16 * n, 16 * n)) for n in range(1, 65)]
        assert {assign_shard(key, 4) for key in keys} == {0, 1, 2, 3}

    def test_workers_validated(self):
        with pytest.raises(ConfigurationError):
            assign_shard(("a", "b", (1,)), 0)


class TestShardMap:
    def test_planned_keeps_each_key_on_one_worker(self):
        counts = {
            ("gaussian", "vectorized", (32, 32)): 10,
            ("sobel3", "vectorized", (32, 32)): 5,
            ("median", "vectorized", (32, 32)): 5,
        }
        shard_map = ShardMap.planned(counts, workers=2)
        # LPT: the heavy key alone on one worker, the two light ones together.
        heavy = shard_map.assign(("gaussian", "vectorized", (32, 32)))
        light = {
            shard_map.assign(("sobel3", "vectorized", (32, 32))),
            shard_map.assign(("median", "vectorized", (32, 32))),
        }
        assert light == {1 - heavy}

    def test_planned_is_deterministic(self):
        counts = {("a%d" % n, "vectorized", (32, 32)): n % 5 + 1 for n in range(20)}
        first = ShardMap.planned(counts, workers=3).assignment
        second = ShardMap.planned(dict(reversed(list(counts.items()))), workers=3).assignment
        assert first == second  # pure function of counts, not dict order

    def test_unplanned_keys_fall_back_to_stable_hash(self):
        shard_map = ShardMap(4, {("a", "vectorized", (1, 1)): 2})
        assert shard_map.assign(("a", "vectorized", (1, 1))) == 2
        other = ("b", "vectorized", (2, 2))
        assert shard_map.assign(other) == assign_shard(other, 4)

    def test_for_trace_balances_request_counts(self):
        spec = TraceSpec(
            apps=("gaussian", "sobel3", "median", "inversion"),
            requests=60,
            size=32,
            inputs_per_app=2,
            seed=11,
        )
        trace = generate_trace(spec)
        shard_map = ShardMap.for_trace(trace, workers=2, backend_name="vectorized")
        loads = [0, 0]
        key_counts: dict = {}
        for request in trace:
            key = shard_key(request, "vectorized")
            key_counts[key] = key_counts.get(key, 0) + 1
            loads[shard_map.assign(key)] += 1
        assert sum(loads) == len(trace)
        assert min(loads) > 0
        # LPT guarantee: the imbalance never exceeds the heaviest single key
        # (keys are atomic — splitting one would break batching).
        assert abs(loads[0] - loads[1]) <= max(key_counts.values())

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ShardMap(0)
        with pytest.raises(ConfigurationError):
            ShardMap(2, {("a", "b", (1,)): 5})
        with pytest.raises(ConfigurationError):
            ShardMap.planned({}, workers=0)
