"""Tests for classic sequential loop perforation."""

import math

import numpy as np
import pytest

from repro.baselines import (
    accurate_loop,
    compare_strategies,
    input_perforation,
    output_perforation,
)
from repro.core import ConfigurationError


def smooth_signal(n=300):
    xs = np.linspace(0, 4 * math.pi, n)
    return 10.0 + np.sin(xs) * 3.0 + xs * 0.1


def calc(value):
    return value * value + 1.0


class TestAccurateLoop:
    def test_elementwise_application(self):
        values = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(accurate_loop(values, calc), [2.0, 5.0, 10.0])


class TestOutputPerforation:
    def test_saves_evaluations_and_loads(self):
        outcome = output_perforation(smooth_signal(), calc, period=3)
        assert outcome.evaluations == 100
        assert outcome.loads == 100
        assert outcome.evaluation_savings == pytest.approx(2 / 3, abs=0.01)
        assert outcome.load_savings == pytest.approx(2 / 3, abs=0.01)
        assert outcome.error > 0

    def test_period_must_be_at_least_two(self):
        with pytest.raises(ConfigurationError):
            output_perforation(smooth_signal(), calc, period=1)

    def test_computed_elements_are_exact(self):
        signal = smooth_signal()
        outcome = output_perforation(signal, calc, period=4)
        reference = accurate_loop(signal, calc)
        np.testing.assert_allclose(outcome.output[::4], reference[::4])


class TestInputPerforation:
    def test_computes_every_output_but_loads_fewer_inputs(self):
        outcome = input_perforation(smooth_signal(), calc, period=3)
        assert outcome.evaluations == 300
        assert outcome.loads == 100
        assert outcome.load_savings == pytest.approx(2 / 3, abs=0.01)

    def test_linear_beats_nearest_on_smooth_signal(self):
        li = input_perforation(smooth_signal(), calc, period=3, linear=True)
        nn = input_perforation(smooth_signal(), calc, period=3, linear=False)
        assert li.error <= nn.error

    def test_input_perforation_beats_output_perforation(self):
        """The motivating claim of Section 4.1: same loads saved, lower error."""
        signal = smooth_signal()
        output = output_perforation(signal, calc, period=3)
        inputs = input_perforation(signal, calc, period=3, linear=True)
        assert inputs.error < output.error
        assert inputs.loads == output.loads

    def test_period_validation(self):
        with pytest.raises(ConfigurationError):
            input_perforation(smooth_signal(), calc, period=0)

    def test_loaded_samples_pass_through(self):
        signal = smooth_signal()
        outcome = input_perforation(signal, calc, period=5, linear=True)
        reference = accurate_loop(signal, calc)
        np.testing.assert_allclose(outcome.output[::5], reference[::5])


class TestCompareStrategies:
    def test_all_three_strategies_reported(self):
        results = compare_strategies(smooth_signal(), calc, period=3)
        assert set(results) == {
            "output-perforation",
            "input-perforation-nn",
            "input-perforation-li",
        }
        assert results["input-perforation-li"].error <= results["output-perforation"].error
