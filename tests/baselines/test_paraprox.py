"""Tests for the Paraprox output-approximation baseline."""

import numpy as np
import pytest

from repro.apps import GaussianApp, InversionApp, MedianApp
from repro.baselines import (
    PARAPROX_SCHEMES,
    ParaproxScheme,
    approximate_output,
    evaluate_all_schemes,
    evaluate_paraprox,
    paraprox_output,
    paraprox_profile,
)
from repro.core import ConfigurationError, ROWS1_NN, evaluate_configuration


class TestScheme:
    def test_periods(self):
        assert ParaproxScheme("rows", 1).period == 3
        assert ParaproxScheme("rows", 2).period == 5
        assert ParaproxScheme("center", 1).computed_fraction == pytest.approx(1 / 9)
        assert ParaproxScheme("cols", 2).computed_fraction == pytest.approx(1 / 5)

    def test_labels_and_describe(self):
        assert ParaproxScheme("rows", 1).label == "Rows1"
        assert ParaproxScheme("center", 2).label == "Center2"
        assert "copy" in ParaproxScheme("cols", 1).describe()

    def test_invalid_kind_and_level(self):
        with pytest.raises(ConfigurationError):
            ParaproxScheme("diagonal", 1)
        with pytest.raises(ConfigurationError):
            ParaproxScheme("rows", 3)

    def test_six_figure10_schemes(self):
        assert len(PARAPROX_SCHEMES) == 6
        assert len({s.label for s in PARAPROX_SCHEMES}) == 6


class TestApproximateOutput:
    def test_row_replication(self):
        output = np.arange(36, dtype=np.float64).reshape(6, 6)
        approx = approximate_output(output, ParaproxScheme("rows", 1))
        np.testing.assert_array_equal(approx[0], output[0])
        np.testing.assert_array_equal(approx[1], output[0])
        np.testing.assert_array_equal(approx[2], output[0])
        np.testing.assert_array_equal(approx[3], output[3])

    def test_col_replication(self):
        output = np.arange(36, dtype=np.float64).reshape(6, 6)
        approx = approximate_output(output, ParaproxScheme("cols", 1))
        np.testing.assert_array_equal(approx[:, 1], output[:, 0])
        np.testing.assert_array_equal(approx[:, 3], output[:, 3])

    def test_center_replicates_blocks(self):
        output = np.arange(36, dtype=np.float64).reshape(6, 6)
        approx = approximate_output(output, ParaproxScheme("center", 1))
        assert (approx[0:3, 0:3] == output[0, 0]).all()
        assert (approx[3:6, 3:6] == output[3, 3]).all()

    def test_computed_rows_unchanged(self):
        output = np.random.default_rng(0).random((12, 12))
        approx = approximate_output(output, ParaproxScheme("rows", 2))
        np.testing.assert_array_equal(approx[::5], output[::5])

    def test_only_2d_supported(self):
        with pytest.raises(ConfigurationError):
            approximate_output(np.zeros(10), ParaproxScheme("rows", 1))

    def test_paraprox_output_wrapper(self, natural_image_64):
        app = InversionApp()
        approx = paraprox_output(app, natural_image_64, ParaproxScheme("rows", 1))
        assert approx.shape == natural_image_64.shape


class TestProfilesAndEvaluation:
    def test_profile_reduces_compute_but_not_output(self, natural_image_64):
        app = GaussianApp()
        profile, ndrange = paraprox_profile(app, ParaproxScheme("rows", 1), (64, 64))
        assert profile.flops_per_item < app.flops_per_item
        store = [t for t in profile.traffic if t.is_store]
        assert store and store[0].elements_per_group() == 16 * 16

    def test_profile_invalid_work_group(self, natural_image_64):
        with pytest.raises(ConfigurationError):
            paraprox_profile(GaussianApp(), ParaproxScheme("rows", 1), (60, 60))

    def test_evaluate_paraprox_result(self, natural_image_128, device):
        result = evaluate_paraprox(
            GaussianApp(), natural_image_128, ParaproxScheme("rows", 1), device=device
        )
        assert result.error > 0
        assert result.speedup > 0
        assert "paraprox" in result.describe()

    def test_level2_has_larger_error(self, natural_image_128, device):
        app = GaussianApp()
        level1 = evaluate_paraprox(app, natural_image_128, ParaproxScheme("rows", 1), device=device)
        level2 = evaluate_paraprox(app, natural_image_128, ParaproxScheme("rows", 2), device=device)
        assert level2.error > level1.error

    def test_cols_slower_than_rows(self, natural_image_128, device):
        """The paper: Cols aligns badly with the memory layout (Figure 10b)."""
        app = InversionApp()
        rows = evaluate_paraprox(app, natural_image_128, ParaproxScheme("rows", 1), device=device)
        cols = evaluate_paraprox(app, natural_image_128, ParaproxScheme("cols", 1), device=device)
        assert cols.speedup < rows.speedup

    def test_evaluate_all_schemes(self, natural_image_128, device):
        results = evaluate_all_schemes(MedianApp(), natural_image_128, device=device)
        assert len(results) == 6
        assert len({r.label for r in results}) == 6

    def test_our_error_lower_than_paraprox_at_similar_or_better_speedup(
        self, natural_image_128, device
    ):
        """The paper's central comparison (Figure 10a, Gaussian)."""
        app = GaussianApp()
        ours = evaluate_configuration(app, natural_image_128, ROWS1_NN, device=device)
        paraprox = evaluate_paraprox(
            app, natural_image_128, ParaproxScheme("rows", 1), device=device
        )
        assert ours.speedup >= paraprox.speedup
        assert ours.error <= paraprox.error
