"""Fast-tier guard over the documentation set.

Runs the link/anchor/path checks from ``tools/check_docs.py`` so a PR
cannot land a stale cross-reference.  The README quickstart *execution*
is left to the dedicated CI docs job (``python tools/check_docs.py``) —
here we only assert the block exists and parses.
"""

import ast
import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs)


def collect_errors():
    errors = []
    for doc in check_docs.doc_files():
        check_docs.check_links(doc, errors)
        check_docs.check_code_span_paths(doc, errors)
    return errors


class TestDocs:
    def test_docs_cover_readme_and_docs_dir(self):
        names = {f.name for f in check_docs.doc_files()}
        assert "README.md" in names
        assert {"architecture.md", "ir.md", "backends.md"} <= names

    def test_links_anchors_and_paths_resolve(self):
        assert collect_errors() == []

    def test_checker_flags_a_broken_link(self, tmp_path):
        bad = tmp_path / "bad.md"
        bad.write_text("see [missing](no/such/file.md) and [a](#nope)\n# Title\n")
        doc_errors = []
        orig_root = check_docs.REPO_ROOT
        try:
            check_docs.REPO_ROOT = tmp_path
            check_docs.check_links(bad, doc_errors)
        finally:
            check_docs.REPO_ROOT = orig_root
        assert any("broken link" in e for e in doc_errors)
        assert any("broken anchor" in e for e in doc_errors)

    def test_readme_quickstart_block_exists_and_parses(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        match = check_docs._PY_BLOCK_RE.search(readme)
        assert match is not None, "README.md must keep a ```python quickstart block"
        ast.parse(match.group(1))
