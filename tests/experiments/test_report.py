"""Tests for the report runner and the CLI entry point."""

import pytest

from repro.experiments import available_experiments, run_experiment, write_report
from repro.experiments.__main__ import build_parser, main
from repro.experiments.common import ExperimentSettings, format_table, milliseconds, percent, times


class TestCommonHelpers:
    def test_settings_quick_vs_full(self):
        quick = ExperimentSettings.for_mode(quick=True)
        full = ExperimentSettings.for_mode(quick=False)
        assert quick.image_size < full.image_size
        assert quick.image_count < full.image_count
        assert full.image_size == 1024
        assert full.image_count == 100

    def test_settings_size_override(self):
        settings = ExperimentSettings.for_mode(quick=False, image_size=512)
        assert settings.image_size == 512

    def test_format_table_alignment(self):
        text = format_table(["A", "Long header"], [["1", "x"], ["22", "yy"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("A ")
        assert "---" in lines[1]

    def test_number_formatters(self):
        assert percent(0.1234) == "12.34%"
        assert times(2.5) == "2.50x"
        assert milliseconds(0.001) == "1.000 ms"


class TestReportRunner:
    def test_available_experiments(self):
        names = available_experiments()
        assert "figure6" in names and "table1" in names and "headline" in names

    def test_run_experiment_unknown(self):
        with pytest.raises(KeyError):
            run_experiment("figure99")

    def test_run_single_experiment(self):
        text = run_experiment("table1", quick=True)
        assert "Table 1" in text

    def test_write_report(self, tmp_path):
        path = write_report(tmp_path / "report.md", quick=True, names=["table1", "figure7"])
        content = path.read_text()
        assert content.startswith("# Reproduction report")
        assert "Table 1" in content
        assert "Figure 7" in content


class TestCli:
    def test_parser_choices(self):
        parser = build_parser()
        args = parser.parse_args(["figure7", "--quick"])
        assert args.experiment == "figure7"
        assert args.quick

    def test_main_runs_single_experiment(self, capsys):
        assert main(["table1", "--quick"]) == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out

    def test_main_runs_figure7_quick(self, capsys):
        assert main(["figure7", "--quick"]) == 0
        captured = capsys.readouterr()
        assert "Figure 7" in captured.out
