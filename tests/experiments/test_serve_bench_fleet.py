"""Fleet mode of ``serve-bench``: the machine-aware scaling floor and the
record the regression gate consumes (the end-to-end fleet run itself is
covered by ``tests/fleet/test_fleet.py``)."""

from repro.experiments.serve_bench import (
    FLEET_SERVE_APPS,
    FleetBenchResult,
    default_spec,
    fleet_record,
    fleet_required_speedup,
)
from repro.serve import ServeMetrics


class TestRequiredSpeedup:
    def test_floor_scales_with_effective_workers(self):
        assert fleet_required_speedup(4, cpus=8) == 2.5
        assert fleet_required_speedup(8, cpus=4) == 2.5
        assert fleet_required_speedup(3, cpus=8) == 1.8
        assert fleet_required_speedup(2, cpus=2) == 1.3
        assert fleet_required_speedup(4, cpus=1) == 0.6

    def test_oversubscription_never_raises_the_bar(self):
        # Extra workers beyond the core count cannot add parallelism, so
        # they must not tighten the requirement either.
        for cpus in (1, 2, 4):
            at_cpus = fleet_required_speedup(cpus, cpus=cpus)
            assert fleet_required_speedup(cpus * 4, cpus=cpus) == at_cpus


class TestFleetRecord:
    def _result(self):
        fleet = ServeMetrics()
        single = ServeMetrics()
        for metrics, wall in ((fleet, 2.0), (single, 4.0)):
            for _ in range(10):
                metrics.completed += 1
            metrics.finish(wall)
        return FleetBenchResult(
            spec=default_spec(quick=True, apps=FLEET_SERVE_APPS),
            workers=4,
            cpu_count=2,
            max_batch=8,
            fleet=fleet,
            single=single,
            bit_identical=True,
            fleet_within_budget=True,
            single_within_budget=True,
            required_speedup=fleet_required_speedup(4, cpus=2),
        )

    def test_record_declares_its_own_floor(self):
        record = fleet_record(self._result())
        assert record["benchmark"] == "fleet_scaling"
        assert record["speedup"] == 2.0  # 5 rps over 2.5 rps
        assert record["required_speedup"] == 1.3  # 2 effective workers
        assert record["scaling_efficiency"] == 1.0  # 2.0x over 2 cores
        assert record["workers"] == 4 and record["cpu_count"] == 2
        assert record["violation_rate"] == 0.0
        assert record["shed"] == 0 and record["cold_calibration_evals"] == 0

    def test_passed_requires_every_guarantee(self):
        result = self._result()
        assert result.passed
        result.bit_identical = False
        assert not result.passed
        result.bit_identical = True
        result.fleet.shed = 1
        assert not result.passed
        result.fleet.shed = 0
        result.warm_reports = [{"db": {"misses": 3, "puts": 3, "hits": 0}}]
        assert not result.passed
