"""The ``python -m repro.experiments autotune`` entry point."""

import pytest

from repro.experiments.__main__ import build_parser, main


class TestParser:
    def test_autotune_options(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "autotune",
                "--strategy",
                "random",
                "--evals",
                "25",
                "--budget",
                "0.05",
                "--db",
                "off",
            ]
        )
        assert args.experiment == "autotune"
        assert args.strategy == "random"
        assert args.evals == 25
        assert args.budget == 0.05
        assert args.db == "off"

    def test_backend_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["autotune", "--quick", "--backend", "codegen"])


class TestMain:
    def test_quick_smoke_passes_the_gate(self, tmp_path, capsys):
        report = tmp_path / "autotune.txt"
        code = main(
            ["autotune", "--quick", "--budget", "0.05", "--output", str(report)]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "fronts match        : yes" in captured.out
        assert "selected for budget 5.00%" in captured.out
        assert report.exists()
        assert "PASSED" in report.read_text(encoding="utf-8")

    def test_db_persistence_round_trip(self, tmp_path, capsys):
        db = tmp_path / "db"
        args = [
            "autotune",
            "--quick",
            "--size",
            "32",
            "--db",
            str(db),
            "--output",
            str(tmp_path / "r.txt"),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "[from tuning DB]" not in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "[from tuning DB]" in second
