"""End-to-end tests of the per-figure experiment harnesses (quick mode).

Each experiment must run, render, and reproduce the *shape* of the paper's
finding it regenerates (orderings, who wins), even at the reduced quick
sizes.
"""

import pytest

from repro.data.images import ImageClass
from repro.experiments import figure6, figure7, figure8, figure9, figure10, headline, table1


@pytest.fixture(scope="module")
def figure6_result():
    return figure6.run(quick=True)


@pytest.fixture(scope="module")
def figure8_result():
    return figure8.run(quick=True)


@pytest.fixture(scope="module")
def figure9_result():
    return figure9.run(quick=True)


@pytest.fixture(scope="module")
def figure10_result():
    return figure10.run(quick=True)


class TestTable1:
    def test_lists_all_six_applications(self):
        result = table1.run()
        assert len(result.rows) == 6
        names = [row.application.lower() for row in result.rows]
        assert "gaussian" in names and "sobel5" in names

    def test_error_metrics_match_paper(self):
        result = table1.run()
        metric_by_app = {row.application.lower(): row.error_metric for row in result.rows}
        assert "relative" in metric_by_app["gaussian"].lower()
        assert metric_by_app["sobel3"].lower() == "mean error"

    def test_render_contains_table(self):
        text = table1.render(table1.run())
        assert "Table 1" in text
        assert "Medical imaging" in text


class TestFigure6:
    def test_all_apps_present(self, figure6_result):
        assert set(figure6_result.per_app) == set(figure6.FIGURE6_APPS)

    def test_every_speedup_positive_and_sobel5_largest(self, figure6_result):
        speedups = {name: r.speedup for name, r in figure6_result.per_app.items()}
        assert all(s > 0.8 for s in speedups.values())
        assert speedups["sobel5"] == max(speedups.values())

    def test_median_errors_are_moderate(self, figure6_result):
        for name, result in figure6_result.per_app.items():
            assert result.summary.median < 0.25, name

    def test_hotspot_error_is_smallest(self, figure6_result):
        medians = {name: r.summary.median for name, r in figure6_result.per_app.items()}
        assert medians["hotspot"] == min(medians.values())

    def test_render(self, figure6_result):
        text = figure6.render(figure6_result)
        assert "Figure 6" in text
        assert "sobel5" in text


class TestFigure7:
    def test_error_ordering_matches_paper(self):
        result = figure7.run(quick=True)
        errors = result.errors
        assert errors[ImageClass.FLAT] < errors[ImageClass.NATURAL] < errors[ImageClass.PATTERN]

    def test_render_marks_ordering_ok(self):
        result = figure7.run(quick=True)
        text = figure7.render(result)
        assert "Figure 7" in text
        assert "MISMATCH" not in text


class TestFigure8:
    def test_three_apps_present(self, figure8_result):
        assert set(figure8_result.sweeps) == {"gaussian", "inversion", "median"}

    def test_inversion_has_no_stencil_point(self, figure8_result):
        labels = {p.label for p in figure8_result.sweeps["inversion"].points}
        assert "Stencil1:NN" not in labels
        assert {"Rows1:NN", "Rows2:NN", "Rows1:LI"} <= labels

    def test_error_orderings(self, figure8_result):
        for name in ("gaussian", "median"):
            by_label = {p.label: p.error for p in figure8_result.sweeps[name].points}
            assert by_label["Stencil1:NN"] <= by_label["Rows1:NN"]
            assert by_label["Rows1:LI"] <= by_label["Rows1:NN"]
            assert by_label["Rows2:NN"] >= by_label["Rows1:NN"]

    def test_stencil_error_below_one_percent(self, figure8_result):
        by_label = {p.label: p.error for p in figure8_result.sweeps["gaussian"].points}
        assert by_label["Stencil1:NN"] < 0.01

    def test_li_reduction_positive(self, figure8_result):
        assert all(r > 0 for r in figure8_result.li_error_reduction.values())

    def test_render(self, figure8_result):
        text = figure8.render(figure8_result)
        assert "Figure 8" in text
        assert "Rows1:LI" in text


class TestFigure9:
    def test_timings_for_three_apps(self, figure9_result):
        assert set(figure9_result.timings) == {"gaussian", "inversion", "median"}

    def test_wide_shapes_beat_narrow_shapes(self, figure9_result):
        """Paper observation 1: configurations with x >= y are faster."""
        for name, timings in figure9_result.timings.items():
            baseline = {t.work_group: t.runtime_s for t in timings if t.variant == "Baseline"}
            assert baseline[(128, 2)] <= baseline[(2, 128)]

    def test_best_shapes_are_x_major(self, figure9_result):
        for per_variant in figure9_result.best_shape.values():
            for shape in per_variant.values():
                assert shape[0] >= shape[1]

    def test_render(self, figure9_result):
        text = figure9.render(figure9_result)
        assert "Figure 9" in text
        assert "best shape" in text


class TestFigure10:
    def test_points_for_three_apps(self, figure10_result):
        assert set(figure10_result.points) == {"gaussian", "inversion", "median"}

    def test_every_app_has_ours_paraprox_and_accurate(self, figure10_result):
        for points in figure10_result.points.values():
            families = {p.family for p in points}
            assert families == {"ours", "paraprox", "accurate"}

    def test_our_schemes_dominate_for_stencil_apps(self, figure10_result):
        assert figure10.ours_dominates_paraprox(figure10_result, "gaussian")
        assert figure10.ours_dominates_paraprox(figure10_result, "median")

    def test_accurate_point_is_pareto_optimal(self, figure10_result):
        for points in figure10_result.points.values():
            accurate = [p for p in points if p.family == "accurate"][0]
            assert accurate.pareto_optimal

    def test_at_least_one_of_our_points_on_front(self, figure10_result):
        for name, points in figure10_result.points.items():
            ours_on_front = [p for p in points if p.family == "ours" and p.pareto_optimal]
            assert ours_on_front, name

    def test_render(self, figure10_result):
        text = figure10.render(figure10_result)
        assert "Figure 10" in text
        assert "Pareto" in text


class TestHeadline:
    def test_aggregation(self, figure6_result):
        result = headline.run(quick=True)
        assert result.min_speedup <= result.max_speedup
        assert 0 < result.mean_error < 0.25
        text = headline.render(result)
        assert "speedup range" in text
        assert "average error" in text
