"""Lowering-level tests of the codegen backend.

The cross-backend conformance suite (``tests/clsim/test_backend_parity.py``)
pins outputs/stats over the bundled applications; this module tests the
*lowering* itself: uniformity specialization, the masked control-flow
emission on adversarial kernels, the vectorized fallback for programs the
lowering cannot specialize, and the determinism/memoization contract.
"""

import numpy as np
import pytest

from repro.clsim import Buffer, Executor, Kernel, KernelExecutionError, NDRange
from repro.clsim.backends import CodegenBackend
from repro.data import generate_image
from repro.kernellang import codegen
from repro.kernellang.codegen import LoweringError, lower_kernel
from repro.kernellang.interpreter import compile_kernel
from repro.kernellang.parser import parse_program


def _run(source: str, backend: str, size: int = 8, work_group=(4, 4)):
    """Run a 2-arg image kernel and return (output, stats-tuple)."""
    image = generate_image("natural", size=size, seed=11)
    inb = Buffer(image, "input")
    outb = Buffer(np.zeros_like(image), "output")
    stats = Executor(backend=backend).run(
        compile_kernel(source),
        NDRange((size, size), work_group),
        {"input": inb, "output": outb, "width": size, "height": size},
    )
    return outb.array, (
        stats.barriers,
        stats.global_counters.reads,
        stats.global_counters.writes,
        stats.local_counters.reads,
        stats.local_counters.writes,
    )


def _assert_backend_parity(source: str, **kwargs):
    reference, ref_stats = _run(source, "interpreter", **kwargs)
    produced, got_stats = _run(source, "codegen", **kwargs)
    np.testing.assert_array_equal(produced, reference)
    assert got_stats == ref_stats


class TestUniformSpecialization:
    def test_straight_line_kernel_lowers_masklessly(self):
        """Uniform-trip-count loops become Python loops: no mask algebra."""
        from repro.apps import get_application

        pk = get_application("gaussian").perforator().accurate()
        source = lower_kernel(pk.program, pk.kernel_def.name, (8, 8), False)
        assert "while True:" in source  # the dy/dx loops, Python-style
        assert "_amask" not in source
        assert "_decl_scalar" not in source
        assert "_merge_parts" not in source

    def test_local_size_is_baked_in(self):
        source = """
        __kernel void k(__global const float* input, __global float* output,
                        int width, int height) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            output[y * width + x] = input[y * width + x] * (float)(get_local_size(0));
        }
        """
        program = parse_program(source)
        lowered = lower_kernel(program, "k", (4, 4), False)
        assert "lsz" not in lowered  # folded to the literal 4
        _assert_backend_parity(source)

    def test_lowering_is_deterministic(self):
        from repro.apps import get_application

        pk = get_application("sobel3").perforator().accurate()
        first = lower_kernel(pk.program, pk.kernel_def.name, (8, 8), False)
        second = lower_kernel(pk.program, pk.kernel_def.name, (8, 8), False)
        assert first == second

    def test_function_memo_shared_by_content(self):
        """Two kernels from identical source share one compiled function."""
        source = """
        __kernel void k(__global const float* input, __global float* output,
                        int width, int height) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            output[y * width + x] = input[y * width + x];
        }
        """
        a = codegen.CodegenKernel(parse_program(source))
        b = codegen.CodegenKernel(parse_program(source))
        assert a.function((4, 4), False) is b.function((4, 4), False)


class TestMaskedControlFlow:
    """Adversarial divergent kernels: codegen == interpreter, bit for bit."""

    def test_divergent_data_dependent_while(self):
        _assert_backend_parity("""
        __kernel void k(__global const float* input, __global float* output,
                        int width, int height) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            float v = input[y * width + x];
            int n = 0;
            while (v > 0.1f && n < 20) {
                v = v * 0.5f;
                n = n + 1;
            }
            output[y * width + x] = v + (float)(n);
        }
        """)

    def test_divergent_break_continue_in_nested_loops(self):
        _assert_backend_parity("""
        __kernel void k(__global const float* input, __global float* output,
                        int width, int height) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            float acc = 0.0f;
            for (int i = 0; i < 8; i++) {
                if (i > x) { break; }
                for (int j = 0; j < 8; j++) {
                    if (j == y) { continue; }
                    if (j > 5) { break; }
                    acc += input[(i * width + j) % (width * height)];
                }
            }
            output[y * width + x] = acc;
        }
        """)

    def test_divergent_do_while(self):
        _assert_backend_parity("""
        __kernel void k(__global const float* input, __global float* output,
                        int width, int height) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            int i = 0;
            float v = 0.0f;
            do {
                v += input[y * width + ((x + i) % width)];
                i++;
            } while (i <= x);
            output[y * width + x] = v;
        }
        """)

    def test_varying_ternary_and_logical_ops(self):
        _assert_backend_parity("""
        __kernel void k(__global const float* input, __global float* output,
                        int width, int height) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            float v = input[y * width + x];
            float w = (x > 2 && y < 3) ? v * 2.0f : ((x == 0 || y == 0) ? -v : v);
            output[y * width + x] = w;
        }
        """)

    def test_declaration_after_divergent_early_return(self):
        """The ubiquitous guard idiom: lanes return, then fresh variables
        are declared under the merged (divergent) mask."""
        _assert_backend_parity("""
        __kernel void k(__global const float* input, __global float* output,
                        int width, int height) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            output[y * width + x] = -1.0f;
            if (x > 5) {
                return;
            }
            float acc = input[y * width + x];
            int scaled = x * 2;
            output[y * width + x] = acc + (float)(scaled);
        }
        """)

    def test_masked_kill_inside_uniform_branch(self):
        """A uniform if whose body contains a varying return: the merged
        mask must stay defined on the fall-through path."""
        _assert_backend_parity("""
        __kernel void k(__global const float* input, __global float* output,
                        int width, int height) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            output[y * width + x] = -2.0f;
            if (width > 4) {
                if (x + y > 6) {
                    return;
                }
            }
            float v = input[y * width + x];
            output[y * width + x] = v;
        }
        """)

    def test_divergent_return(self):
        _assert_backend_parity("""
        __kernel void k(__global const float* input, __global float* output,
                        int width, int height) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            output[y * width + x] = 1.0f;
            if (x + y > 4) {
                return;
            }
            output[y * width + x] = input[y * width + x];
        }
        """)

    def test_simple_helper_with_local_called_in_divergent_branch(self):
        """A straight-line helper declaring a local, inlined under a
        divergent mask: its declaration must be pre-bound like any other
        divergent declaration."""
        _assert_backend_parity("""
        float helper(float a) {
            float t = a * 2.0f;
            return t + 1.0f;
        }

        __kernel void k(__global const float* input, __global float* output,
                        int width, int height) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            output[y * width + x] = 0.0f;
            if (x < 2) {
                output[y * width + x] = helper(input[y * width + x]);
            }
        }
        """)

    def test_nested_unary_kernels_do_not_share_artifacts(self):
        """-(-v) and --v must produce distinct canonical sources (and so
        distinct artifact keys): regression for the clgen parenthesization
        collision that made one kernel execute the other's artifact."""
        from repro.kernellang.clgen import generate

        double_neg = parse_program("""
        __kernel void k(__global float* output, int width, int height) {
            int x = get_global_id(0);
            float v = (float)(x) - 1.0f;
            output[x] = -(-v);
        }
        """)
        predecrement = parse_program("""
        __kernel void k(__global float* output, int width, int height) {
            int x = get_global_id(0);
            float v = (float)(x) - 1.0f;
            output[x] = --v;
        }
        """)
        assert generate(double_neg) != generate(predecrement)
        source_a = """
        __kernel void k(__global float* output, int width, int height) {
            int x = get_global_id(0);
            float v = (float)(x) - 1.0f;
            output[x] = -(-v);
        }
        """
        source_b = source_a.replace("-(-v)", "--v")
        for source in (source_a, source_b):
            image_shape = (1, 8)
            import numpy as np

            outs = {}
            for backend in ("interpreter", "codegen"):
                outb = Buffer(np.zeros(image_shape), "output")
                Executor(backend=backend).run(
                    compile_kernel(source),
                    NDRange((8, 1), (4, 1)),
                    {"output": outb, "width": 8, "height": 1},
                )
                outs[backend] = outb.array.copy()
            np.testing.assert_array_equal(outs["codegen"], outs["interpreter"])

    def test_helper_with_control_flow_is_inlined_masked(self):
        _assert_backend_parity("""
        float pick(float a, float b, int flag) {
            if (flag > 0) {
                return a;
            }
            return b;
        }

        __kernel void k(__global const float* input, __global float* output,
                        int width, int height) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            float v = input[y * width + x];
            output[y * width + x] = pick(v, -v, x - y);
        }
        """)

    def test_private_array_with_init_list(self):
        _assert_backend_parity("""
        __kernel void k(__global const float* input, __global float* output,
                        int width, int height) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            float taps[3] = {0.25f, 0.5f, 0.25f};
            float acc = 0.0f;
            for (int i = 0; i < 3; i++) {
                int xx = clamp(x + i - 1, 0, width - 1);
                acc += input[y * width + xx] * taps[i];
            }
            output[y * width + x] = acc;
        }
        """)

    def test_divergent_local_memory_and_barrier(self):
        _assert_backend_parity("""
        __kernel void k(__global const float* input, __global float* output,
                        int width, int height) {
            __local float tile[16];
            int x = get_global_id(0);
            int y = get_global_id(1);
            int lx = get_local_id(0);
            int ly = get_local_id(1);
            if (ly % 2 == 0) {
                tile[ly * 4 + lx] = input[y * width + x];
            } else {
                tile[ly * 4 + lx] = 0.0f;
            }
            barrier(CLK_LOCAL_MEM_FENCE);
            output[y * width + x] = tile[((ly + 1) % 4) * 4 + lx];
        }
        """)


class TestFallbackAndLimits:
    def test_unspecializable_kernel_falls_back_to_vectorized(self):
        """A non-literal get_global_id dimension defeats the lowering; the
        backend transparently falls back to the vectorized path."""
        source = """
        __kernel void k(__global const float* input, __global float* output,
                        int width, int height) {
            int d = height > 0 ? 0 : 1;
            int x = get_global_id(d);
            int y = get_global_id(1);
            output[y * width + x] = input[y * width + x];
        }
        """
        program = parse_program(source)
        with pytest.raises(LoweringError):
            lower_kernel(program, "k", (4, 4), False)
        _assert_backend_parity(source)

    def test_python_body_kernels_are_rejected(self):
        def body(ctx, wi):
            ctx.buffer("output").write((wi.gid(1), wi.gid(0)), 1.0)

        kernel = Kernel("handwritten", body, ["output"])
        out = Buffer(np.zeros((4, 4), dtype=np.float64), "output")
        with pytest.raises(KernelExecutionError, match="no kernellang AST"):
            Executor(backend="codegen").run(
                kernel, NDRange((4, 4), (4, 4)), {"output": out}
            )

    def test_balanced_divergent_barriers_are_rejected(self):
        """Same documented strictness as the vectorized backend."""
        from repro.clsim import BarrierDivergenceError

        source = """
        __kernel void balanced(__global float* output, int width, int height) {
            int x = get_global_id(0);
            if (x < 2) {
                barrier(CLK_LOCAL_MEM_FENCE);
            } else {
                barrier(CLK_LOCAL_MEM_FENCE);
            }
            output[get_global_id(1) * width + x] = 1.0f;
        }
        """
        args = {
            "output": Buffer(np.zeros((4, 4), dtype=np.float64), "output"),
            "width": 4,
            "height": 4,
        }
        with pytest.raises(BarrierDivergenceError):
            Executor(backend="codegen").run(
                compile_kernel(source), NDRange((4, 4), (4, 4)), args
            )

    def test_out_of_bounds_error_parity(self):
        source = """
        __kernel void oob(__global float* output, int width, int height) {
            output[width * height + get_global_id(0)] = 1.0f;
        }
        """
        args = {
            "output": Buffer(np.zeros((4, 4), dtype=np.float64), "output"),
            "width": 4,
            "height": 4,
        }
        for backend in ("codegen", "vectorized"):
            with pytest.raises(KernelExecutionError):
                Executor(backend=backend).run(
                    compile_kernel(source), NDRange((4, 4), (4, 4)), args
                )

    def test_backend_is_registered(self):
        from repro.clsim.backends import available_backends, get_backend

        assert "codegen" in available_backends()
        assert isinstance(get_backend("codegen"), CodegenBackend)
        assert get_backend("codegen").supports_batching
