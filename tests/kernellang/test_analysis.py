"""Tests for the access-pattern, reuse and traffic analyses."""

import pytest

from repro.clsim import NDRange
from repro.kernellang import AnalysisError, parse_kernel
from repro.kernellang.analysis import (
    LinearForm,
    analyze_kernel,
    build_profile,
    count_operations,
    local_tile_bytes,
    reuse_info,
)
from repro.kernellang.analysis.access_patterns import SYM_W, SYM_X, SYM_Y


pytestmark = pytest.mark.slow

GAUSSIAN = """
__kernel void gaussian(__global const float* input, __global float* output, int width, int height) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    float sum = 0.0f;
    for (int dy = -1; dy <= 1; dy++) {
        for (int dx = -1; dx <= 1; dx++) {
            int xx = clamp(x + dx, 0, width - 1);
            int yy = clamp(y + dy, 0, height - 1);
            sum += input[yy * width + xx];
        }
    }
    output[y * width + x] = sum * 0.111f;
}
"""

INVERSION = """
__kernel void inversion(__global const float* input, __global float* output, int width, int height) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    output[y * width + x] = 255.0f - input[y * width + x];
}
"""

TWO_BUFFERS = """
__kernel void hotspot(__global const float* temp, __global const float* power,
                      __global float* output, int width, int height) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    int n = clamp(y - 1, 0, height - 1);
    int s = clamp(y + 1, 0, height - 1);
    float acc = temp[n * width + x] + temp[s * width + x] + temp[y * width + x];
    output[y * width + x] = acc + power[y * width + x];
}
"""


class TestLinearForm:
    def test_arithmetic(self):
        x = LinearForm.symbol(SYM_X)
        w = LinearForm.symbol(SYM_W)
        form = x * w + LinearForm.constant(3) - x
        assert form.coefficient(SYM_X, SYM_W) == 1.0
        assert form.coefficient(SYM_X) == -1.0
        assert form.constant_term == 3.0
        assert form.degree() == 2

    def test_multiplication_distributes(self):
        x = LinearForm.symbol(SYM_X)
        y = LinearForm.symbol(SYM_Y)
        product = (x + y) * LinearForm.constant(2)
        assert product.coefficient(SYM_X) == 2.0
        assert product.coefficient(SYM_Y) == 2.0

    def test_negation_cancels(self):
        x = LinearForm.symbol(SYM_X)
        zero = x + x.negate()
        assert zero.terms == {}


class TestAccessPatternAnalysis:
    def test_gaussian_offsets(self):
        info = analyze_kernel(parse_kernel(GAUSSIAN))
        summary = info.summary("input")
        assert len(summary.offsets) == 9
        assert summary.halo == 1
        assert summary.footprint == (3, 3)
        assert info.is_stencil
        assert info.output_buffers == {"output"}
        assert info.x_var == "x" and info.y_var == "y"
        assert info.width_param == "width" and info.height_param == "height"

    def test_inversion_single_offset(self):
        info = analyze_kernel(parse_kernel(INVERSION))
        summary = info.summary("input")
        assert summary.offsets == {(0, 0)}
        assert summary.halo == 0
        assert not info.is_stencil

    def test_two_input_buffers(self):
        info = analyze_kernel(parse_kernel(TWO_BUFFERS))
        assert set(info.input_buffers) == {"temp", "power"}
        assert info.summary("temp").halo == 1
        assert info.summary("power").halo == 0

    def test_direct_get_global_id_in_index(self):
        source = """
        __kernel void direct(__global const float* input, __global float* output, int width, int height) {
            output[get_global_id(1) * width + get_global_id(0)] =
                input[get_global_id(1) * width + get_global_id(0) + 1];
        }
        """
        info = analyze_kernel(parse_kernel(source))
        assert info.summary("input").offsets == {(1, 0)}

    def test_local_memory_detected(self):
        source = """
        __kernel void uses_local(__global const float* input, __global float* output, int width, int height) {
            __local float tile[64];
            int x = get_global_id(0);
            tile[get_local_id(0)] = input[x];
            barrier(CLK_LOCAL_MEM_FENCE);
            output[x] = tile[get_local_id(0)];
        }
        """
        info = analyze_kernel(parse_kernel(source))
        assert info.uses_local_memory

    def test_non_affine_access_rejected(self):
        source = """
        __kernel void weird(__global const float* input, __global float* output, int width, int height) {
            int x = get_global_id(0);
            output[x] = input[x * x];
        }
        """
        with pytest.raises(AnalysisError):
            analyze_kernel(parse_kernel(source))

    def test_data_dependent_access_rejected(self):
        source = """
        __kernel void gather(__global const float* input, __global float* output, int width, int height) {
            int x = get_global_id(0);
            int idx = (int)(input[x]);
            output[x] = input[idx];
        }
        """
        with pytest.raises(AnalysisError):
            analyze_kernel(parse_kernel(source))


class TestReuse:
    def test_gaussian_has_reuse(self):
        kernel = parse_kernel(GAUSSIAN)
        reuse = reuse_info(kernel)["input"]
        assert reuse.accesses_per_item == 9
        assert reuse.reuse_factor(16, 16) > 5.0
        assert reuse.benefits_from_local_memory(16, 16)

    def test_inversion_has_no_reuse(self):
        kernel = parse_kernel(INVERSION)
        reuse = reuse_info(kernel)["input"]
        assert reuse.reuse_factor(16, 16) == pytest.approx(1.0)
        assert not reuse.benefits_from_local_memory(16, 16)

    def test_unique_elements_scale_with_halo(self):
        kernel = parse_kernel(GAUSSIAN)
        reuse = reuse_info(kernel)["input"]
        assert reuse.unique_elements(16, 16) == 18 * 18


class TestOperationCounts:
    def test_gaussian_counts(self):
        counts = count_operations(parse_kernel(GAUSSIAN))
        assert counts.global_reads == pytest.approx(9.0)
        assert counts.global_writes == pytest.approx(1.0)
        assert counts.flops > 9.0
        assert counts.barriers == 0

    def test_barrier_and_local_counts(self):
        source = """
        __kernel void uses_local(__global const float* input, __global float* output, int width, int height) {
            __local float tile[64];
            int x = get_global_id(0);
            tile[get_local_id(0)] = input[x];
            barrier(CLK_LOCAL_MEM_FENCE);
            output[x] = tile[get_local_id(0)];
        }
        """
        kernel = parse_kernel(source)
        counts = count_operations(kernel)
        assert counts.barriers == 1
        assert counts.local_writes == pytest.approx(1.0)
        assert counts.local_reads == pytest.approx(1.0)
        assert local_tile_bytes(kernel) == 64 * 4

    def test_sfu_ops_counted(self):
        source = """
        __kernel void s(__global const float* input, __global float* output, int width, int height) {
            int x = get_global_id(0);
            output[x] = sqrt(input[x]);
        }
        """
        counts = count_operations(parse_kernel(source))
        assert counts.sfu_ops == pytest.approx(1.0)


class TestBuildProfile:
    def test_gaussian_profile_has_traffic_and_ops(self):
        kernel = parse_kernel(GAUSSIAN)
        ndrange = NDRange((256, 256), (16, 16))
        profile = build_profile(kernel, ndrange)
        assert profile.flops_per_item > 0
        assert len(profile.traffic) == 2  # input + output
        names = {t.buffer for t in profile.traffic}
        assert names == {"input", "output"}

    def test_profile_feeds_timing_model(self, device):
        from repro.clsim import TimingModel

        kernel = parse_kernel(GAUSSIAN)
        ndrange = NDRange((256, 256), (16, 16))
        profile = build_profile(kernel, ndrange)
        breakdown = TimingModel(device).estimate(profile, ndrange)
        assert breakdown.total_time_s > 0

    def test_rows_fraction_reduces_traffic(self):
        kernel = parse_kernel(GAUSSIAN)
        ndrange = NDRange((256, 256), (16, 16))
        # Force the local-memory path by passing include_halo/rows fraction.
        full = build_profile(kernel, ndrange, rows_loaded_fraction=1.0)
        # The naive kernel path reports per-item traffic, so the comparison is
        # done on elements per group of the input buffer only.
        half = build_profile(kernel, ndrange, rows_loaded_fraction=0.5)
        full_in = next(t for t in full.traffic if t.buffer == "input")
        half_in = next(t for t in half.traffic if t.buffer == "input")
        assert half_in.elements_per_group() <= full_in.elements_per_group()
