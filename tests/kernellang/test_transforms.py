"""Tests for the compiler passes (prefetch, perforation, reconstruction).

The key functional guarantees:

* local prefetch alone is semantics-preserving (bit-exact output);
* perforation + reconstruction produce outputs whose error behaves as the
  paper describes (LI <= NN, Stencil smallest, Rows2 > Rows1);
* the transformed kernels really do read less global memory.
"""

import numpy as np
import pytest

from repro.clsim import Buffer, Executor, NDRange
from repro.kernellang import TransformError, generate, parse_program
from repro.kernellang.interpreter import KernelInterpreter
from repro.kernellang.transforms import (
    LINEAR_INTERPOLATION,
    NEAREST_NEIGHBOR,
    LocalPrefetchPass,
    PassManager,
    PerforationPass,
    ReconstructionPass,
    parse_statements,
)
from repro.kernellang import ast


pytestmark = pytest.mark.slow

GAUSSIAN = """
__constant float coeff[9] = {
    0.0625f, 0.125f, 0.0625f, 0.125f, 0.25f, 0.125f, 0.0625f, 0.125f, 0.0625f
};

__kernel void gaussian(__global const float* input, __global float* output, int width, int height) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    float sum = 0.0f;
    for (int dy = -1; dy <= 1; dy++) {
        for (int dx = -1; dx <= 1; dx++) {
            int xx = clamp(x + dx, 0, width - 1);
            int yy = clamp(y + dy, 0, height - 1);
            sum += input[yy * width + xx] * coeff[(dy + 1) * 3 + (dx + 1)];
        }
    }
    output[y * width + x] = sum;
}
"""

INVERSION = """
__kernel void inversion(__global const float* input, __global float* output, int width, int height) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    output[y * width + x] = 255.0f - input[y * width + x];
}
"""


def run_program(program, image, local=(8, 8)):
    executor = Executor()
    kernel = KernelInterpreter(program).as_clsim_kernel()
    height, width = image.shape
    inb = Buffer(image, "input")
    outb = Buffer(np.zeros_like(image), "output")
    stats = executor.run(
        kernel,
        NDRange((width, height), local),
        {"input": inb, "output": outb, "width": width, "height": height},
    )
    return outb.array.copy(), inb.counters.reads, stats


def transform(source, passes, tile=(8, 8)):
    program = parse_program(source)
    kernel = program.kernel()
    PassManager(passes).run(kernel, *tile)
    return program


@pytest.fixture(scope="module")
def image():
    rng = np.random.default_rng(7)
    base = np.linspace(0, 255, 32 * 32).reshape(32, 32)
    return base + rng.normal(0, 10, size=(32, 32))


@pytest.fixture(scope="module")
def accurate_output(image):
    output, reads, _ = run_program(parse_program(GAUSSIAN), image)
    return output, reads


class TestParseStatements:
    def test_snippet_parsing(self):
        statements = parse_statements("int a = 1; a += 2;")
        assert len(statements) == 2
        assert isinstance(statements[0], ast.DeclStmt)

    def test_snippet_syntax_error(self):
        with pytest.raises(Exception):
            parse_statements("int a = ;")


class TestLocalPrefetchPass:
    def test_prefetch_is_semantics_preserving(self, image, accurate_output):
        program = transform(GAUSSIAN, [LocalPrefetchPass()])
        output, _, stats = run_program(program, image)
        np.testing.assert_allclose(output, accurate_output[0], atol=1e-9)
        assert stats.barriers > 0

    def test_prefetch_reduces_global_reads(self, image, accurate_output):
        program = transform(GAUSSIAN, [LocalPrefetchPass()])
        _, reads, _ = run_program(program, image)
        assert reads < accurate_output[1]

    def test_prefetch_declares_local_tile(self):
        program = transform(GAUSSIAN, [LocalPrefetchPass()])
        text = generate(program)
        assert "__local float _kp_input_tile" in text
        assert "barrier(CLK_LOCAL_MEM_FENCE);" in text

    def test_tile_size_matches_work_group_and_halo(self):
        program = transform(GAUSSIAN, [LocalPrefetchPass()], tile=(16, 8))
        text = generate(program)
        assert f"_kp_input_tile[{(16 + 2) * (8 + 2)}]" in text

    def test_unknown_buffer_rejected(self):
        with pytest.raises(TransformError):
            transform(GAUSSIAN, [LocalPrefetchPass(buffers=["nonexistent"])])

    def test_kernel_without_reads_rejected(self):
        source = """
        __kernel void writes_only(__global float* output, int width, int height) {
            output[get_global_id(1) * width + get_global_id(0)] = 1.0f;
        }
        """
        with pytest.raises(TransformError):
            transform(source, [LocalPrefetchPass()])


class TestPerforationPass:
    def test_requires_prefetch_first(self):
        program = parse_program(GAUSSIAN)
        kernel = program.kernel()
        with pytest.raises(TransformError):
            PassManager([PerforationPass("rows", 2)]).run(kernel, 8, 8)

    def test_rows_guard_inserted(self):
        program = transform(GAUSSIAN, [LocalPrefetchPass(), PerforationPass("rows", 2)])
        text = generate(program)
        assert "% 2) == 0" in text

    def test_stencil_guard_inserted(self):
        program = transform(GAUSSIAN, [LocalPrefetchPass(), PerforationPass("stencil")])
        text = generate(program)
        assert "_kp_ty >= 1" in text

    def test_invalid_scheme_kind(self):
        with pytest.raises(TransformError):
            PerforationPass("diagonal")

    def test_invalid_row_step(self):
        with pytest.raises(TransformError):
            PerforationPass("rows", step=1)

    def test_stencil_requires_halo(self):
        with pytest.raises(TransformError):
            transform(INVERSION, [LocalPrefetchPass(), PerforationPass("stencil")])

    def test_double_perforation_rejected(self):
        with pytest.raises(TransformError):
            transform(
                GAUSSIAN,
                [LocalPrefetchPass(), PerforationPass("rows", 2), PerforationPass("rows", 2)],
            )

    def test_perforation_halves_global_reads(self, image):
        full = transform(GAUSSIAN, [LocalPrefetchPass()])
        _, full_reads, _ = run_program(full, image)
        perforated = transform(
            GAUSSIAN,
            [LocalPrefetchPass(), PerforationPass("rows", 2), ReconstructionPass(NEAREST_NEIGHBOR)],
        )
        _, perforated_reads, _ = run_program(perforated, image)
        assert perforated_reads == pytest.approx(full_reads * 0.5, rel=0.05)


class TestReconstructionPass:
    def test_requires_perforation_first(self):
        with pytest.raises(TransformError):
            transform(GAUSSIAN, [LocalPrefetchPass(), ReconstructionPass(NEAREST_NEIGHBOR)])

    def test_unknown_technique_rejected(self):
        with pytest.raises(TransformError):
            ReconstructionPass("cubic-spline")

    def test_generated_kernel_reparses(self):
        program = transform(
            GAUSSIAN,
            [LocalPrefetchPass(), PerforationPass("rows", 2), ReconstructionPass(LINEAR_INTERPOLATION)],
        )
        regenerated = parse_program(generate(program))
        assert regenerated.kernel().name == "gaussian"


class TestEndToEndErrorBehaviour:
    def _error(self, image, accurate, passes):
        program = transform(GAUSSIAN, passes)
        output, _, _ = run_program(program, image)
        return float(np.mean(np.abs(output - accurate)))

    def test_rows_nn_introduces_bounded_error(self, image, accurate_output):
        error = self._error(
            image,
            accurate_output[0],
            [LocalPrefetchPass(), PerforationPass("rows", 2), ReconstructionPass(NEAREST_NEIGHBOR)],
        )
        assert 0 < error < 20.0  # bounded, on a 0-255 scale

    def test_linear_interpolation_beats_nearest_neighbor(self, image, accurate_output):
        nn = self._error(
            image,
            accurate_output[0],
            [LocalPrefetchPass(), PerforationPass("rows", 2), ReconstructionPass(NEAREST_NEIGHBOR)],
        )
        li = self._error(
            image,
            accurate_output[0],
            [LocalPrefetchPass(), PerforationPass("rows", 2), ReconstructionPass(LINEAR_INTERPOLATION)],
        )
        assert li <= nn

    def test_rows2_error_exceeds_rows1(self, image, accurate_output):
        rows1 = self._error(
            image,
            accurate_output[0],
            [LocalPrefetchPass(), PerforationPass("rows", 2), ReconstructionPass(NEAREST_NEIGHBOR)],
        )
        rows2 = self._error(
            image,
            accurate_output[0],
            [LocalPrefetchPass(), PerforationPass("rows", 4), ReconstructionPass(NEAREST_NEIGHBOR)],
        )
        assert rows2 >= rows1

    def test_stencil_error_is_smallest(self, image, accurate_output):
        stencil = self._error(
            image,
            accurate_output[0],
            [LocalPrefetchPass(), PerforationPass("stencil"), ReconstructionPass(NEAREST_NEIGHBOR)],
        )
        rows1 = self._error(
            image,
            accurate_output[0],
            [LocalPrefetchPass(), PerforationPass("rows", 2), ReconstructionPass(NEAREST_NEIGHBOR)],
        )
        assert stencil <= rows1

    def test_inversion_rows_pipeline(self, image):
        accurate, _, _ = run_program(parse_program(INVERSION), image)
        program = transform(
            INVERSION,
            [LocalPrefetchPass(), PerforationPass("rows", 2), ReconstructionPass(NEAREST_NEIGHBOR)],
        )
        output, _, _ = run_program(program, image)
        error = float(np.mean(np.abs(output - accurate)))
        assert 0 < error < 30.0

    def test_transform_context_notes(self):
        program = parse_program(GAUSSIAN)
        kernel = program.kernel()
        manager = PassManager(
            [LocalPrefetchPass(), PerforationPass("rows", 2), ReconstructionPass(NEAREST_NEIGHBOR)]
        )
        context = manager.run(kernel, 8, 8)
        assert any("rows perforation" in note for note in context.notes)
        assert any("nearest-neighbor reconstruction" in note for note in context.notes)
        assert context.plans["input"].perforated
