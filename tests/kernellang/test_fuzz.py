"""Property-based fuzzing of the kernellang lexer and parser.

The seed's lexer hung forever on integer-suffix literals at end-of-input
(``tokenize("7u")``): ``peek()`` returns ``""`` at EOF and ``"" in "uUlL"``
is ``True``.  These tests catch that whole *class* of regression by
construction: every lexer/parser invocation runs under a hard wall-clock
timeout, and random token streams assert the front end either succeeds or
raises a :class:`KernelLangError` — never hangs, never leaks a foreign
exception.
"""

import signal
from contextlib import contextmanager

from hypothesis import given, settings, strategies as st

from repro.kernellang.errors import KernelLangError
from repro.kernellang.lexer import tokenize
from repro.kernellang.parser import parse_program

#: Wall-clock budget for a single lexer/parser invocation.  Generous: real
#: runs take microseconds; only an infinite loop can exhaust it.
TIMEOUT_SECONDS = 5.0


@contextmanager
def deadline(seconds: float = TIMEOUT_SECONDS):
    """Fail the test (instead of hanging CI) if the block does not finish."""

    def _alarm(signum, frame):
        raise TimeoutError(f"lexer/parser did not finish within {seconds}s")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def lex(source: str):
    with deadline():
        return tokenize(source)


def parse(source: str):
    with deadline():
        return parse_program(source)


#: Integer-literal suffixes OpenCL C allows (including the empty one).
SUFFIXES = st.sampled_from(
    ["", "u", "U", "l", "L", "ul", "uL", "Ul", "UL", "lu", "LU", "ll", "ull"]
)


class TestLexerFuzz:
    @given(value=st.integers(min_value=0, max_value=2**63 - 1), suffix=SUFFIXES)
    @settings(max_examples=200, deadline=None)
    def test_integer_suffix_literal_at_eof_terminates(self, value, suffix):
        """The regression class of the seed hang: a suffixed literal as the
        very last characters of the input (no trailing whitespace)."""
        tokens = lex(f"{value}{suffix}")
        assert tokens[0].text == f"{value}{suffix}"

    @given(value=st.integers(min_value=0, max_value=10**6), suffix=SUFFIXES)
    @settings(max_examples=100, deadline=None)
    def test_suffix_literal_inside_expressions(self, value, suffix):
        tokens = lex(f"int x = {value}{suffix};")
        assert any(token.text == f"{value}{suffix}" for token in tokens)

    @given(source=st.text(max_size=120))
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_text_terminates_or_raises_lex_error(self, source):
        """Any input either tokenizes or raises a KernelLangError quickly."""
        try:
            lex(source)
        except KernelLangError:
            pass

    @given(
        chunks=st.lists(
            st.sampled_from(
                [
                    "7u", "0", "1e", "1e+", "0x", ".", "..", "...",
                    "float", "int", "__kernel", "__local", "barrier",
                    "identifier", "_", "+", "-", "*", "/", "%", "<<", ">>",
                    "&&", "||", "<=", ">=", "==", "!=", "(", ")", "{", "}",
                    "[", "]", ";", ",", "?", ":", "1.5f", "2.0", "'",
                ]
            ),
            max_size=25,
        )
    )
    @settings(max_examples=300, deadline=None)
    def test_random_token_streams_terminate(self, chunks):
        """Token soup, joined without whitespace: EOF can fall anywhere
        inside a token, which is exactly where the seed bug lived."""
        try:
            lex("".join(chunks))
        except KernelLangError:
            pass

    def test_seed_hang_examples(self):
        """The literal reproducer of the seed bug and its close cousins."""
        for source in ("7u", "7U", "7l", "7L", "7ul", "123u", "0u", "7u ", "x=7u"):
            lex(source)


class TestParserFuzz:
    @given(
        tokens=st.lists(
            st.sampled_from(
                [
                    "__kernel", "void", "float", "int", "f", "x", "(", ")",
                    "{", "}", ";", ",", "=", "+", "1", "2.0f", "7u",
                    "return", "if", "for", "while", "[", "]", "*",
                ]
            ),
            max_size=30,
        )
    )
    @settings(max_examples=300, deadline=None)
    def test_random_token_streams_parse_or_raise(self, tokens):
        try:
            parse(" ".join(tokens))
        except KernelLangError:
            pass

    @given(suffix=SUFFIXES)
    @settings(max_examples=20, deadline=None)
    def test_kernel_with_suffixed_literals_parses(self, suffix):
        program = parse(
            f"""
            __kernel void k(__global float* output, int width, int height) {{
                int x = get_global_id(0);
                int y = get_global_id(1);
                output[y * width + x] = 2.0f * {7}{suffix};
            }}
            """
        )
        assert program.kernel("k").name == "k"

    def test_truncated_kernel_sources_raise_cleanly(self):
        """Every prefix of a valid kernel either parses or raises ParseError
        (EOF mid-construct must not hang or crash differently)."""
        source = (
            "__kernel void k(__global float* o, int w, int h) "
            "{ int x = get_global_id(0); o[x] = 1.0f; }"
        )
        for cut in range(len(source)):
            try:
                parse(source[:cut])
            except KernelLangError:
                pass
