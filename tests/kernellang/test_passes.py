"""Unit tests for the shared lowering passes (:mod:`repro.kernellang.passes`).

The cross-backend conformance suites pin whole-backend parity over the
bundled applications; this module pins each pass's contract in isolation:

* the IR lattices (``join_kind`` / ``promote_dt`` / ``binop_dtype``);
* the uniformity analysis' classification of a kernel body;
* the mask-insertion merge rules and C-semantics arithmetic kernels;
* the memory views' bounds checking and access accounting;
* the batching transform's segment routing and validation;
* golden snapshots of the lowered source for a uniform, a divergent and
  a batched kernel (regenerate with ``REPRO_REGEN_GOLDEN=1``).
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.clsim.memory import Buffer, SegmentedBuffer
from repro.kernellang.codegen import lower_kernel
from repro.kernellang.errors import InterpreterError
from repro.kernellang.ir import (
    LoweringError,
    Scope,
    ScopeView,
    binop_dtype,
    join_kind,
    promote_dt,
)
from repro.kernellang.parser import parse_program
from repro.kernellang.passes.batching import (
    SegGlobalView,
    lane_requests,
    segmented_global_view,
)
from repro.kernellang.passes.masking import (
    FnFlow,
    Flow,
    apply_binary,
    decl_scalar,
    full_assign,
    masked_assign,
    merge_parts,
    uniform_div,
    uniform_mod,
    varying_div,
)
from repro.kernellang.passes.memory import ConstantView, GlobalView, PrivateView
from repro.kernellang.passes.uniformity import classify_kernel

GOLDEN_DIR = Path(__file__).parent / "golden"

UNIFORM_KERNEL = """
__kernel void k(__global const float* input, __global float* output,
                int width, int height) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    float acc = 0.0f;
    for (int dx = -1; dx <= 1; dx++) {
        int cx = clamp(x + dx, 0, width - 1);
        acc += input[y * width + cx];
    }
    output[y * width + x] = acc / 3.0f;
}
"""

DIVERGENT_KERNEL = """
__kernel void k(__global const float* input, __global float* output,
                int width, int height) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    float v = input[y * width + x];
    int n = 0;
    while (v > 0.1f) {
        if (n >= 12) { break; }
        v = v * 0.5f;
        n++;
    }
    output[y * width + x] = (n > 0) ? v : -v;
}
"""


class TestIRLattices:
    def test_join_kind_varying_absorbs(self):
        assert join_kind("u", "u") == "u"
        assert join_kind("u", "v") == "v"
        assert join_kind("v") == "v"
        assert join_kind() == "u"

    def test_promote_dt(self):
        assert promote_dt("i", "i") == "i"
        assert promote_dt("i", "f") == "f"
        assert promote_dt("f", "x") == "x"

    def test_binop_dtype_follows_c_semantics(self):
        assert binop_dtype("<", "f", "f") == "i"  # comparisons are int
        assert binop_dtype("&", "f", "f") == "i"
        assert binop_dtype("/", "i", "i") == "i"  # int/int truncates
        assert binop_dtype("/", "i", "f") == "f"
        assert binop_dtype("%", "i", "x") == "x"  # unknown stays unknown
        assert binop_dtype("+", "i", "f") == "f"

    def test_scope_view_is_a_snapshot(self):
        scope = Scope()
        scope.kind["a"] = "u"
        view = ScopeView(scope)
        view.kind["a"] = "v"
        assert scope.kind["a"] == "u"
        assert view.optimistic


class TestUniformityAnalysis:
    def test_classifies_uniform_and_varying(self):
        program = parse_program(UNIFORM_KERNEL)
        analysis, scope = classify_kernel(program, "k", (4, 4))
        # gid-derived values are varying, scalar params are uniform.
        assert scope.kind["x"] == "v"
        assert scope.kind["y"] == "v"
        assert scope.kind["width"] == "u"
        assert scope.kind["acc"] == "v"
        assert scope.dt["acc"] == "f"
        assert scope.dt["cx"] == "i"
        assert not analysis.has_masked_return

    def test_pointer_params_are_containers(self):
        program = parse_program(UNIFORM_KERNEL)
        _, scope = classify_kernel(program, "k", (4, 4))
        assert scope.space["input"] == "global"
        assert "input" not in scope.kind

    def test_divergent_kernel_has_divergent_decls(self):
        program = parse_program(DIVERGENT_KERNEL)
        analysis, scope = classify_kernel(program, "k", (4, 4))
        assert scope.kind["v"] == "v"
        assert scope.kind["n"] == "v"
        assert not analysis.has_masked_return

    def test_unsupported_construct_raises_lowering_error(self):
        program = parse_program("""
        __kernel void k(__global float* output, int width, int height) {
            int d = width;
            output[get_global_id(d)] = 1.0f;
        }
        """)
        with pytest.raises(LoweringError, match="cannot specialize"):
            classify_kernel(program, "k", (4, 4))


class TestMaskingMergeRules:
    def test_masked_assign_merges_active_lanes(self):
        existing = np.array([1.0, 2.0, 3.0, 4.0])
        mask = np.array([True, False, True, False])
        out = masked_assign(existing, np.full(4, 9.0), mask)
        np.testing.assert_array_equal(out, [9.0, 2.0, 9.0, 4.0])

    def test_masked_assign_keeps_int_slots_int(self):
        existing = np.array([1, 2, 3, 4], dtype=np.int64)
        mask = np.array([True, True, False, False])
        out = masked_assign(existing, np.full(4, 2.9), mask)
        assert out.dtype == np.int64
        np.testing.assert_array_equal(out, [2, 2, 3, 4])  # truncation

    def test_full_assign_truncates_into_int_slot(self):
        out = full_assign(np.array([1, 2], dtype=np.int64), np.array([1.9, -1.9]))
        assert out.dtype == np.int64
        np.testing.assert_array_equal(out, [1, -1])

    def test_decl_scalar_divergent_redeclaration(self):
        existing = np.array([5.0, 6.0])
        mask = np.array([True, False])
        np.testing.assert_array_equal(
            decl_scalar(existing, np.full(2, 0.0), mask), [0.0, 6.0]
        )
        # Full mask or fresh slot: plain rebinding.
        np.testing.assert_array_equal(
            decl_scalar(None, np.full(2, 0.0), mask), [0.0, 0.0]
        )

    def test_merge_parts_promotes_dtype(self):
        parts = [
            (np.array([True, False]), np.array([1, 1], dtype=np.int64)),
            (np.array([False, True]), np.array([0.5, 0.5])),
        ]
        out = merge_parts(2, parts)
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, [1.0, 0.5])


class TestMaskingArithmetic:
    def test_int_division_truncates_toward_zero(self):
        left = np.array([7, -7, 7, -7], dtype=np.int64)
        right = np.array([2, 2, -2, -2], dtype=np.int64)
        out = apply_binary("/", left, right, np.ones(4, dtype=bool))
        np.testing.assert_array_equal(out, [3, -3, -3, 3])

    def test_division_by_zero_only_raises_on_active_lanes(self):
        left = np.array([4, 4], dtype=np.int64)
        right = np.array([2, 0], dtype=np.int64)
        inactive = np.array([True, False])
        out = varying_div(left, right, inactive)
        assert out[0] == 2
        with pytest.raises(InterpreterError, match="integer division by zero"):
            varying_div(left, right, np.array([True, True]))

    def test_uniform_div_matches_c(self):
        assert uniform_div(7, 2) == 3
        assert uniform_div(-7, 2) == -3
        assert uniform_div(7.0, 2) == 3.5
        with pytest.raises(InterpreterError):
            uniform_div(1, 0)

    def test_uniform_mod_fmod_semantics(self):
        assert uniform_mod(-7, 3) == -1  # C fmod, not Python %
        with pytest.raises(InterpreterError):
            uniform_mod(1, 0)

    def test_comparisons_yield_int_lanes(self):
        out = apply_binary("<", np.array([1.0, 3.0]), np.array([2.0, 2.0]),
                           np.ones(2, dtype=bool))
        assert out.dtype == np.int64
        np.testing.assert_array_equal(out, [1, 0])


class TestFlowBookkeeping:
    def test_flow_merges_return_values_per_lane(self):
        flow = Flow(4)
        flow.record_return(np.array([True, False, False, False]), np.full(4, 1.5))
        flow.record_return(np.array([False, True, False, False]), np.full(4, 2.5))
        np.testing.assert_array_equal(flow.returned, [True, True, False, False])
        np.testing.assert_array_equal(flow.return_value, [1.5, 2.5, 0.0, 0.0])

    def test_fnflow_lanes_falling_off_return_int_zero(self):
        fn = FnFlow(2)
        assert fn.result().dtype == np.int64
        fn.record(np.array([True, False]), np.full(2, 7.0))
        np.testing.assert_array_equal(fn.result(), [7.0, 0.0])


class TestMemoryViews:
    def test_global_view_counts_active_lanes(self):
        buf = Buffer(np.arange(8, dtype=np.float64), "b")
        view = GlobalView(buf)
        mask = np.array([True, True, False])
        out = view.loadm(np.array([0, 1, 2]), mask)
        assert buf.counters.reads == 2  # only active lanes counted
        np.testing.assert_array_equal(out[:2], [0.0, 1.0])
        view.storem(np.array([4, 5, 6]), np.full(3, -1.0), mask)
        assert buf.counters.writes == 2
        assert buf.array[6] == 6.0  # inactive lane untouched

    def test_global_view_bounds_error_matches_interpreter(self):
        view = GlobalView(Buffer(np.zeros(4), "b"))
        with pytest.raises(
            InterpreterError, match=r"global buffer 'b': index 9 out of bounds"
        ):
            view.loadm(np.array([0, 9]), np.array([True, True]))
        # Inactive out-of-bounds lanes are not an error.
        view.loadm(np.array([0, 9]), np.array([True, False]))

    def test_private_view_is_per_lane(self):
        view = PrivateView("p", 2, lanes=3)
        mask = np.ones(3, dtype=bool)
        view.storem(np.zeros(3, dtype=np.int64), np.array([1.0, 2.0, 3.0]), mask)
        np.testing.assert_array_equal(view.loadm(np.zeros(3, dtype=np.int64), mask),
                                      [1.0, 2.0, 3.0])

    def test_constant_view_is_read_only(self):
        view = ConstantView("c", np.arange(3, dtype=np.float64))
        with pytest.raises(InterpreterError, match="constant array 'c' is read-only"):
            view.storem(np.zeros(1, dtype=np.int64), np.zeros(1), np.ones(1, dtype=bool))


class TestBatchingTransform:
    def test_lane_requests_routing(self):
        np.testing.assert_array_equal(lane_requests(3, 2), [0, 0, 1, 1, 2, 2])

    def test_segmented_view_isolates_requests(self):
        data = np.arange(8, dtype=np.float64)  # 2 segments of 4
        buf = SegmentedBuffer(data, "b", segment_elements=4, batch=2)
        view = segmented_global_view(buf, 2, lane_requests(2, 2))
        mask = np.ones(4, dtype=bool)
        # All four lanes read logical index 1 -> each request's own element.
        out = view.loadm(np.full(4, 1, dtype=np.int64), mask)
        np.testing.assert_array_equal(out, [1.0, 1.0, 5.0, 5.0])

    def test_segmented_bounds_are_per_segment(self):
        buf = SegmentedBuffer(np.zeros(8), "b", segment_elements=4, batch=2)
        view = segmented_global_view(buf, 2, lane_requests(2, 2))
        with pytest.raises(InterpreterError, match="index 4 out of bounds \\[0, 4\\)"):
            # Index 4 is in range of the *stacked* array but not the segment.
            view.loadm(np.full(4, 4, dtype=np.int64), np.ones(4, dtype=bool))

    def test_validation_rejects_plain_buffers(self):
        with pytest.raises(
            InterpreterError,
            match="batched launch requires every pointer argument to be a "
            "SegmentedBuffer with 2 segments",
        ):
            segmented_global_view(Buffer(np.zeros(4), "b"), 2, lane_requests(2, 2))


class TestGoldenLoweredSource:
    """The lowered source of three representative kernels, pinned byte-for-byte.

    These snapshots are the emission contract of the pass pipeline: an
    edit that changes them changes what every cached on-disk artifact
    contains and must bump ``CODEGEN_FORMAT_VERSION``.  Regenerate with
    ``REPRO_REGEN_GOLDEN=1 pytest tests/kernellang/test_passes.py``.
    """

    CASES = [
        ("uniform", UNIFORM_KERNEL, False),
        ("divergent", DIVERGENT_KERNEL, False),
        ("batched", DIVERGENT_KERNEL, True),
    ]

    @pytest.mark.parametrize("name,source,batched", CASES)
    def test_lowered_source_matches_golden(self, name, source, batched):
        program = parse_program(source)
        lowered = lower_kernel(program, "k", (4, 4), batched)
        golden_path = GOLDEN_DIR / f"{name}_4x4.lowered.py"
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN_DIR.mkdir(exist_ok=True)
            golden_path.write_text(lowered)
        assert golden_path.exists(), (
            f"golden file missing; run REPRO_REGEN_GOLDEN=1 pytest {__file__}"
        )
        assert lowered == golden_path.read_text()
