# repro-codegen artifact (format v2)
# kernel: k  local_size=(4, 4)  batched=True

def kernel_group(rt):
    L = rt.L
    M0 = rt.M0
    _Z = rt.Z
    _b = 0
    g0 = rt.gid[0]
    g1 = rt.gid[1]
    c_input = rt.c['input']
    c_output = rt.c['output']
    v_width = rt.s['width']
    v_height = rt.s['height']
    v1_x = _np.asarray(g0).astype(_I)
    v2_y = _np.asarray(g1).astype(_I)
    v3_v = c_input.loadf(((((v2_y) * (v_width))) + (v1_x)))
    v4_n = _np.full(L, int(0))
    _ma5 = M0
    while _ma5.any():
        _ma5 = _ma5 & (((((v3_v) > (0.1)).astype(_I))) != 0)
        if not _ma5.any():
            break
        _mc6 = _Z
        _mx7 = _ma5
        _c8 = ((((v4_n) >= (12)).astype(_I))) != 0
        _m9 = _mx7 & _c8
        _m10 = _mx7 & ~_c8
        if _m9.any():
            _m9 = _Z
        _m11 = _m9 | _m10
        if _m11.any():
            _t12 = ((v3_v) * (0.5))
            v3_v = _amask(v3_v, _t12, _m11)
            _t13 = v4_n
            _t14 = _t13 + (1)
            v4_n = _amask(v4_n, _t14, _m11)
        _mx7 = _m11
        _ma5 = _mx7 | _mc6
    _c15 = (((((v4_n) > (0)).astype(_I))) != 0)
    _m16 = M0 & _c15
    _m17 = M0 & ~_c15
    _p18 = []
    if _m16.any():
        _p18.append((_m16, v3_v))
    if _m17.any():
        _p18.append((_m17, (-(v3_v))))
    _t19 = _merge_parts(L, _p18)
    c_output.storef(((((v2_y) * (v_width))) + (v1_x)), _t19)
    return _b
