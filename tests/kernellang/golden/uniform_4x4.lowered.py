# repro-codegen artifact (format v2)
# kernel: k  local_size=(4, 4)  batched=False
_vb_clamp = _VB['clamp']

def kernel_group(rt):
    L = rt.L
    M0 = rt.M0
    _Z = rt.Z
    _b = 0
    g0 = rt.gid[0]
    g1 = rt.gid[1]
    c_input = rt.c['input']
    c_output = rt.c['output']
    v_width = rt.s['width']
    v_height = rt.s['height']
    v1_x = _np.asarray(g0).astype(_I)
    v2_y = _np.asarray(g1).astype(_I)
    v3_acc = _np.full(L, 0.0)
    v4_dx = int((-(1)))
    while True:
        if not (int((v4_dx) <= (1))):
            break
        v5_cx = _np.asarray(_vb_clamp(M0, ((v1_x) + (v4_dx)), 0, ((v_width) - (1)))).astype(_I)
        _t6 = ((v3_acc) + (c_input.loadf(((((v2_y) * (v_width))) + (v5_cx)))))
        v3_acc = _t6
        _t7 = v4_dx
        _t8 = _t7 + (1)
        v4_dx = _t8
    _t9 = _vdiv(v3_acc, 3.0, M0)
    c_output.storef(((((v2_y) * (v_width))) + (v1_x)), _t9)
    return _b
