"""Tests for the OpenCL C code generator (repro.kernellang.clgen)."""

import numpy as np
import pytest

from repro.clsim import Buffer, Executor, NDRange
from repro.kernellang import ast, generate, parse_program
from repro.kernellang.interpreter import KernelInterpreter


pytestmark = pytest.mark.slow

SOURCE = """
__constant float coeff[3] = {0.25f, 0.5f, 0.25f};

float helper(float v) { return v * v; }

__kernel void smooth(__global const float* input, __global float* output, int width, int height) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    float acc = 0.0f;
    for (int dx = -1; dx <= 1; dx++) {
        int xx = clamp(x + dx, 0, width - 1);
        acc += input[y * width + xx] * coeff[dx + 1];
    }
    if (acc > 100.0f) { acc = helper(acc) / acc; } else { acc = acc + 0.0f; }
    output[y * width + x] = acc;
}
"""


def execute(program, image, local=(8, 8)):
    executor = Executor()
    kernel = KernelInterpreter(program).as_clsim_kernel()
    height, width = image.shape
    inb, outb = Buffer(image, "in"), Buffer(np.zeros_like(image), "out")
    executor.run(
        kernel,
        NDRange((width, height), local),
        {"input": inb, "output": outb, "width": width, "height": height},
    )
    return outb.array


class TestRoundTrip:
    def test_generated_source_reparses(self):
        program = parse_program(SOURCE)
        regenerated = generate(program)
        reparsed = parse_program(regenerated)
        assert reparsed.kernel().name == "smooth"
        assert len(reparsed.functions) == 2
        assert len(reparsed.globals) == 1

    def test_round_trip_preserves_semantics(self, rng):
        image = rng.random((16, 16)) * 200
        original = parse_program(SOURCE)
        round_tripped = parse_program(generate(original))
        np.testing.assert_allclose(execute(original, image), execute(round_tripped, image))

    def test_double_round_trip_is_stable(self):
        once = generate(parse_program(SOURCE))
        twice = generate(parse_program(once))
        assert once == twice


class TestFormatting:
    def test_kernel_qualifier_and_address_spaces_emitted(self):
        text = generate(parse_program(SOURCE))
        assert "__kernel void smooth" in text
        assert "__global const float* input" in text
        assert "__constant float coeff[3]" in text
        assert "barrier" not in text

    def test_float_literals_have_f_suffix(self):
        text = generate(parse_program(SOURCE))
        assert "0.25f" in text
        assert "100.0f" in text

    def test_expression_generation(self):
        expr = ast.BinaryOp("+", ast.Identifier("a"), ast.IntLiteral(2))
        assert generate(expr) == "a + 2"
        ternary = ast.Ternary(ast.Identifier("c"), ast.IntLiteral(1), ast.IntLiteral(0))
        assert generate(ternary) == "(c ? 1 : 0)"

    def test_statement_generation(self):
        stmt = ast.IfStmt(
            condition=ast.BinaryOp(">", ast.Identifier("x"), ast.IntLiteral(0)),
            then_body=ast.Block([ast.ExprStmt(ast.Assignment("=", ast.Identifier("y"), ast.IntLiteral(1)))]),
            else_body=ast.Block([ast.ExprStmt(ast.Assignment("=", ast.Identifier("y"), ast.IntLiteral(2)))]),
        )
        text = generate(stmt)
        assert "if (x > 0) {" in text
        assert "} else {" in text

    def test_nested_binary_ops_parenthesised(self):
        expr = ast.BinaryOp(
            "*",
            ast.BinaryOp("+", ast.Identifier("a"), ast.Identifier("b")),
            ast.Identifier("c"),
        )
        assert generate(expr) == "(a + b) * c"

    def test_for_loop_formatting(self):
        program = parse_program(SOURCE)
        text = generate(program.kernel())
        assert "for (int dx = -1; dx <= 1; dx++) {" in text

    def test_unknown_node_rejected(self):
        with pytest.raises(Exception):
            generate(object())  # type: ignore[arg-type]
