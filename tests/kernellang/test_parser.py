"""Tests for the parser."""

import pytest

from repro.kernellang import ParseError, ast, parse_kernel, parse_program
from repro.kernellang.types import PointerType, ScalarType


pytestmark = pytest.mark.slow

GAUSSIAN_LIKE = """
__constant float coeff[4] = {1.0f, 2.0f, 3.0f, 4.0f};

__kernel void blur(__global const float* input, __global float* output, int width, int height) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    float sum = 0.0f;
    for (int dx = -1; dx <= 1; dx++) {
        sum += input[y * width + clamp(x + dx, 0, width - 1)] * coeff[dx + 1];
    }
    output[y * width + x] = sum;
}
"""


class TestTopLevel:
    def test_kernel_and_constant_parsed(self):
        program = parse_program(GAUSSIAN_LIKE)
        assert len(program.globals) == 1
        assert len(program.functions) == 1
        kernel = program.kernel()
        assert kernel.name == "blur"
        assert kernel.is_kernel

    def test_kernel_lookup_by_name(self):
        program = parse_program(GAUSSIAN_LIKE)
        assert program.kernel("blur").name == "blur"
        with pytest.raises(ValueError):
            program.kernel("missing")

    def test_multiple_kernels_require_name(self):
        source = """
        __kernel void a(__global float* o, int width, int height) { o[0] = 1.0f; }
        __kernel void b(__global float* o, int width, int height) { o[0] = 2.0f; }
        """
        program = parse_program(source)
        with pytest.raises(ValueError):
            program.kernel()
        assert program.kernel("b").name == "b"

    def test_helper_function_not_marked_kernel(self):
        source = """
        float square(float v) { return v * v; }
        __kernel void k(__global float* o, int width, int height) { o[0] = square(2.0f); }
        """
        program = parse_program(source)
        assert [f.is_kernel for f in program.functions] == [False, True]

    def test_parameter_types(self):
        kernel = parse_kernel(GAUSSIAN_LIKE)
        input_param, output_param, width_param = kernel.params[0], kernel.params[1], kernel.params[2]
        assert isinstance(input_param.param_type, PointerType)
        assert input_param.param_type.address_space == "global"
        assert input_param.param_type.is_const
        assert isinstance(output_param.param_type, PointerType)
        assert not output_param.param_type.is_const
        assert isinstance(width_param.param_type, ScalarType)

    def test_constant_array_declaration(self):
        program = parse_program(GAUSSIAN_LIKE)
        decl = program.globals[0].declarations[0]
        assert decl.name == "coeff"
        assert decl.address_space == "constant"
        assert isinstance(decl.init, ast.InitList)
        assert len(decl.init.values) == 4


class TestStatements:
    def test_for_loop_structure(self):
        kernel = parse_kernel(GAUSSIAN_LIKE)
        loops = ast.find_all(kernel, ast.ForStmt)
        assert len(loops) == 1
        loop = loops[0]
        assert isinstance(loop.init, ast.DeclStmt)
        assert isinstance(loop.condition, ast.BinaryOp)
        assert isinstance(loop.step, ast.UnaryOp)

    def test_if_else(self):
        source = """
        __kernel void k(__global float* o, int width, int height) {
            int x = get_global_id(0);
            if (x > 1) { o[x] = 1.0f; } else o[x] = 2.0f;
        }
        """
        kernel = parse_kernel(source)
        branches = ast.find_all(kernel, ast.IfStmt)
        assert len(branches) == 1
        assert branches[0].else_body is not None

    def test_while_and_do_while(self):
        source = """
        __kernel void k(__global float* o, int width, int height) {
            int i = 0;
            while (i < 4) { i++; }
            do { i--; } while (i > 0);
            o[0] = (float)(i);
        }
        """
        kernel = parse_kernel(source)
        assert len(ast.find_all(kernel, ast.WhileStmt)) == 1
        assert len(ast.find_all(kernel, ast.DoWhileStmt)) == 1

    def test_break_continue_return(self):
        source = """
        __kernel void k(__global float* o, int width, int height) {
            for (int i = 0; i < 8; i++) {
                if (i == 2) { continue; }
                if (i == 5) { break; }
            }
            return;
        }
        """
        kernel = parse_kernel(source)
        assert len(ast.find_all(kernel, ast.BreakStmt)) == 1
        assert len(ast.find_all(kernel, ast.ContinueStmt)) == 1
        assert len(ast.find_all(kernel, ast.ReturnStmt)) == 1

    def test_local_array_declaration(self):
        source = """
        __kernel void k(__global float* o, int width, int height) {
            __local float tile[64];
            tile[get_local_id(0)] = 1.0f;
            barrier(CLK_LOCAL_MEM_FENCE);
            o[get_global_id(0)] = tile[0];
        }
        """
        kernel = parse_kernel(source)
        decls = [d for d in ast.find_all(kernel, ast.VarDecl) if d.name == "tile"]
        assert decls[0].address_space == "local"
        assert decls[0].array_size is not None

    def test_multiple_declarators(self):
        source = """
        __kernel void k(__global float* o, int width, int height) {
            int a = 1, b = 2;
            o[0] = (float)(a + b);
        }
        """
        kernel = parse_kernel(source)
        decl_stmt = kernel.body.statements[0]
        assert isinstance(decl_stmt, ast.DeclStmt)
        assert [d.name for d in decl_stmt.declarations] == ["a", "b"]


class TestExpressions:
    def parse_expr(self, text):
        source = f"__kernel void k(__global float* o, int width, int height) {{ o[0] = {text}; }}"
        kernel = parse_kernel(source)
        stmt = kernel.body.statements[0]
        return stmt.expr.value

    def test_precedence_multiplication_over_addition(self):
        expr = self.parse_expr("1.0f + 2.0f * 3.0f")
        assert isinstance(expr, ast.BinaryOp)
        assert expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp)
        assert expr.right.op == "*"

    def test_parentheses_override_precedence(self):
        expr = self.parse_expr("(1.0f + 2.0f) * 3.0f")
        assert expr.op == "*"
        assert isinstance(expr.left, ast.BinaryOp)

    def test_ternary(self):
        expr = self.parse_expr("x > 0 ? 1.0f : 2.0f")
        assert isinstance(expr, ast.Ternary)

    def test_unary_and_cast(self):
        expr = self.parse_expr("-(float)(3)")
        assert isinstance(expr, ast.UnaryOp)
        assert isinstance(expr.operand, ast.Cast)

    def test_call_with_multiple_args(self):
        expr = self.parse_expr("clamp(x, 0, width - 1)")
        assert isinstance(expr, ast.Call)
        assert len(expr.args) == 3

    def test_nested_indexing(self):
        expr = self.parse_expr("o[o[0]]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.index, ast.Index)

    def test_compound_assignment(self):
        source = """
        __kernel void k(__global float* o, int width, int height) { o[0] += 2.0f; }
        """
        kernel = parse_kernel(source)
        expr = kernel.body.statements[0].expr
        assert isinstance(expr, ast.Assignment)
        assert expr.op == "+="

    def test_logical_operators(self):
        expr = self.parse_expr("x > 0 && y < 2 || z == 3")
        assert isinstance(expr, ast.BinaryOp)
        assert expr.op == "||"


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("__kernel void k(__global float* o) { o[0] = 1.0f }")

    def test_unbalanced_braces(self):
        with pytest.raises(ParseError):
            parse_program("__kernel void k(__global float* o) { o[0] = 1.0f;")

    def test_bad_parameter(self):
        with pytest.raises(ParseError):
            parse_program("__kernel void k(global float 3badname) { }")

    def test_non_constant_array_size_in_param(self):
        with pytest.raises(ParseError):
            parse_program("__kernel void k(float w[n]) { }")


class TestAstUtilities:
    def test_clone_is_deep(self):
        kernel = parse_kernel(GAUSSIAN_LIKE)
        clone = kernel.clone()
        clone.body.statements.clear()
        assert len(kernel.body.statements) > 0

    def test_walk_visits_children(self):
        kernel = parse_kernel(GAUSSIAN_LIKE)
        nodes = list(kernel.walk())
        assert any(isinstance(n, ast.Call) and n.name == "clamp" for n in nodes)

    def test_node_visitor_dispatch(self):
        class CallCounter(ast.NodeVisitor):
            def __init__(self):
                self.calls = 0

            def visit_Call(self, node):
                self.calls += 1
                self.generic_visit(node)

        counter = CallCounter()
        counter.visit(parse_kernel(GAUSSIAN_LIKE))
        assert counter.calls >= 3  # get_global_id x2 + clamp
