"""Tests for the lexer."""

import pytest

from repro.kernellang import LexError, tokenize
from repro.kernellang.tokens import TokenKind


pytestmark = pytest.mark.slow


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source_gives_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifiers_and_keywords(self):
        tokens = tokenize("__kernel void foo(int bar)")
        assert [t.kind for t in tokens[:2]] == [TokenKind.KEYWORD, TokenKind.KEYWORD]
        assert tokens[2].kind is TokenKind.IDENT
        assert tokens[2].text == "foo"

    def test_punctuators_longest_match(self):
        assert texts("a <<= b >> c != d") == ["a", "<<=", "b", ">>", "c", "!=", "d"]
        assert texts("i++ + ++j") == ["i", "++", "+", "++", "j"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("int a;\nfloat b;")
        float_token = [t for t in tokens if t.text == "float"][0]
        assert float_token.location.line == 2
        assert float_token.location.column == 1

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("int a = `b`;")


class TestNumbers:
    def test_integer_literals(self):
        tokens = tokenize("0 42 0x1F 7u 100L")
        assert all(t.kind is TokenKind.INT_LITERAL for t in tokens[:-1])
        assert tokens[2].int_value == 31

    def test_float_literals(self):
        tokens = tokenize("1.0 2.5f .5f 1e3 2.0e-2f 3.f")
        assert all(t.kind is TokenKind.FLOAT_LITERAL for t in tokens[:-1])
        assert tokens[1].float_value == pytest.approx(2.5)
        assert tokens[3].float_value == pytest.approx(1000.0)
        assert tokens[4].float_value == pytest.approx(0.02)

    def test_float_vs_member_access(self):
        # "1.0f" is one token; "a.b" stays three tokens.
        assert texts("a . b") == ["a", ".", "b"]


class TestComments:
    def test_line_comments_skipped(self):
        assert texts("int a; // comment here\nint b;") == ["int", "a", ";", "int", "b", ";"]

    def test_block_comments_skipped(self):
        assert texts("int /* hi \n there */ a;") == ["int", "a", ";"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("int a; /* never closed")

    def test_preprocessor_lines_skipped(self):
        source = "#define FOO 1\nint a;"
        assert texts(source) == ["int", "a", ";"]


class TestTokenHelpers:
    def test_is_punct_and_is_keyword(self):
        tokens = tokenize("if (x) { }")
        assert tokens[0].is_keyword("if")
        assert tokens[1].is_punct("(")
        assert not tokens[1].is_punct(")")
