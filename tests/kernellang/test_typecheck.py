"""Tests for the semantic analyser."""

import pytest

from repro.kernellang import SymbolError, TypeError_, check_program, parse_program
from repro.kernellang.symbols import Scope, Symbol, SymbolTable
from repro.kernellang.types import FLOAT, INT


pytestmark = pytest.mark.slow


def check(source):
    return check_program(parse_program(source))


VALID = """
__kernel void k(__global const float* input, __global float* output, int width, int height) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    float value = input[y * width + x];
    output[y * width + x] = value * 2.0f;
}
"""


class TestValidPrograms:
    def test_valid_kernel_passes(self):
        result = check(VALID)
        assert result.kernel_names == ["k"]

    def test_helper_function_call(self):
        source = """
        float twice(float v) { return v * 2.0f; }
        __kernel void k(__global float* o, int width, int height) {
            o[get_global_id(0)] = twice(1.5f);
        }
        """
        assert check(source).kernel_names == ["k"]

    def test_builtin_constants_usable(self):
        source = """
        __kernel void k(__global float* o, int width, int height) {
            barrier(CLK_LOCAL_MEM_FENCE);
            o[0] = 1.0f;
        }
        """
        check(source)

    def test_local_array_indexing(self):
        source = """
        __kernel void k(__global float* o, int width, int height) {
            __local float tile[32];
            tile[get_local_id(0)] = 1.0f;
            o[get_global_id(0)] = tile[get_local_id(0)];
        }
        """
        check(source)


class TestErrors:
    def test_undefined_variable(self):
        source = """
        __kernel void k(__global float* o, int width, int height) { o[0] = missing; }
        """
        with pytest.raises(SymbolError):
            check(source)

    def test_undefined_function(self):
        source = """
        __kernel void k(__global float* o, int width, int height) { o[0] = mystery(1.0f); }
        """
        with pytest.raises(SymbolError):
            check(source)

    def test_wrong_builtin_arity(self):
        source = """
        __kernel void k(__global float* o, int width, int height) { o[0] = clamp(1.0f); }
        """
        with pytest.raises(TypeError_):
            check(source)

    def test_wrong_user_function_arity(self):
        source = """
        float add(float a, float b) { return a + b; }
        __kernel void k(__global float* o, int width, int height) { o[0] = add(1.0f); }
        """
        with pytest.raises(TypeError_):
            check(source)

    def test_redefinition_in_same_scope(self):
        source = """
        __kernel void k(__global float* o, int width, int height) {
            int a = 1;
            float a = 2.0f;
            o[0] = a;
        }
        """
        with pytest.raises(SymbolError):
            check(source)

    def test_shadowing_in_inner_scope_is_allowed(self):
        source = """
        __kernel void k(__global float* o, int width, int height) {
            int a = 1;
            for (int i = 0; i < 2; i++) { int a = 2; o[a] = 0.0f; }
            o[a] = 1.0f;
        }
        """
        check(source)

    def test_kernel_must_return_void(self):
        source = """
        __kernel int k(__global float* o, int width, int height) { return 1; }
        """
        with pytest.raises(TypeError_):
            check(source)

    def test_assignment_to_rvalue(self):
        source = """
        __kernel void k(__global float* o, int width, int height) { (1 + 2) = 3; }
        """
        with pytest.raises(TypeError_):
            check(source)

    def test_indexing_scalar(self):
        source = """
        __kernel void k(__global float* o, int width, int height) {
            float v = 1.0f;
            o[0] = v[1];
        }
        """
        with pytest.raises(TypeError_):
            check(source)

    def test_float_index_rejected(self):
        source = """
        __kernel void k(__global float* o, int width, int height) { o[1.5f] = 0.0f; }
        """
        with pytest.raises(TypeError_):
            check(source)

    def test_void_function_returning_value(self):
        source = """
        __kernel void k(__global float* o, int width, int height) { return 5; }
        """
        with pytest.raises(TypeError_):
            check(source)


class TestSymbolTable:
    def test_define_and_lookup(self):
        table = SymbolTable()
        table.define(Symbol("a", INT))
        assert table.lookup("a").sym_type is INT

    def test_nested_scope_lookup(self):
        table = SymbolTable()
        table.define(Symbol("a", INT))
        table.push("inner")
        table.define(Symbol("b", FLOAT))
        assert table.lookup("a").sym_type is INT
        assert table.lookup("b").sym_type is FLOAT
        table.pop()
        with pytest.raises(SymbolError):
            table.lookup("b")

    def test_duplicate_definition_rejected(self):
        scope = Scope()
        scope.define(Symbol("x", INT))
        with pytest.raises(SymbolError):
            scope.define(Symbol("x", FLOAT))

    def test_cannot_pop_global_scope(self):
        table = SymbolTable()
        with pytest.raises(SymbolError):
            table.pop()

    def test_is_defined_helpers(self):
        table = SymbolTable()
        table.define(Symbol("a", INT))
        table.push()
        assert table.is_defined("a")
        assert not table.current.is_defined_locally("a")
        assert table.depth() == 2
