"""Tests for the AST interpreter running on the clsim executor."""

import numpy as np
import pytest

from repro.clsim import Buffer, Executor, NDRange
from repro.kernellang import InterpreterError, compile_kernel, parse_program
from repro.kernellang.interpreter import KernelInterpreter


pytestmark = pytest.mark.slow


def run_kernel(source, width, height, inputs, extra_args=None, local=(8, 8), kernel_name=None):
    """Helper: execute a 2D kernel with an input and output image buffer."""
    executor = Executor()
    kernel = compile_kernel(source, kernel_name)
    input_buffer = Buffer(np.asarray(inputs, dtype=np.float64), "input")
    output_buffer = Buffer(np.zeros((height, width)), "output")
    args = {"input": input_buffer, "output": output_buffer, "width": width, "height": height}
    if extra_args:
        args.update(extra_args)
        kernel_args = {name: args[name] for name in kernel.arg_names}
    else:
        kernel_args = {name: args[name] for name in kernel.arg_names}
    executor.run(kernel, NDRange((width, height), local), kernel_args)
    return output_buffer.array


class TestSimpleKernels:
    def test_identity_kernel(self, rng):
        source = """
        __kernel void ident(__global const float* input, __global float* output, int width, int height) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            output[y * width + x] = input[y * width + x];
        }
        """
        image = rng.random((16, 16))
        result = run_kernel(source, 16, 16, image)
        np.testing.assert_allclose(result, image)

    def test_inversion_kernel(self, rng):
        source = """
        __kernel void inv(__global const float* input, __global float* output, int width, int height) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            output[y * width + x] = 255.0f - input[y * width + x];
        }
        """
        image = rng.random((16, 16)) * 255
        result = run_kernel(source, 16, 16, image)
        np.testing.assert_allclose(result, 255.0 - image)

    def test_loops_and_conditionals(self):
        source = """
        __kernel void count(__global const float* input, __global float* output, int width, int height) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            int total = 0;
            for (int i = 0; i < 10; i++) {
                if (i % 2 == 0) { total += 2; } else { total += 1; }
            }
            output[y * width + x] = (float)(total);
        }
        """
        result = run_kernel(source, 8, 8, np.zeros((8, 8)))
        np.testing.assert_allclose(result, 15.0)

    def test_while_break_continue(self):
        source = """
        __kernel void wbc(__global const float* input, __global float* output, int width, int height) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            int i = 0;
            int acc = 0;
            while (true) {
                i++;
                if (i > 20) { break; }
                if (i % 2 == 0) { continue; }
                acc += i;
            }
            output[y * width + x] = (float)(acc);
        }
        """
        result = run_kernel(source, 4, 4, np.zeros((4, 4)), local=(4, 4))
        np.testing.assert_allclose(result, 100.0)  # 1+3+...+19

    def test_private_array_and_sort(self):
        source = """
        __kernel void sort3(__global const float* input, __global float* output, int width, int height) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            float values[3];
            values[0] = 3.0f; values[1] = 1.0f; values[2] = 2.0f;
            for (int i = 1; i < 3; i++) {
                float key = values[i];
                int j = i - 1;
                while (j >= 0 && values[j] > key) {
                    values[j + 1] = values[j];
                    j = j - 1;
                }
                values[j + 1] = key;
            }
            output[y * width + x] = values[1];
        }
        """
        result = run_kernel(source, 4, 4, np.zeros((4, 4)), local=(4, 4))
        np.testing.assert_allclose(result, 2.0)

    def test_helper_function_call(self):
        source = """
        float relu(float v) {
            if (v < 0.0f) { return 0.0f; }
            return v;
        }
        __kernel void apply(__global const float* input, __global float* output, int width, int height) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            output[y * width + x] = relu(input[y * width + x] - 0.5f);
        }
        """
        image = np.linspace(0, 1, 64).reshape(8, 8)
        result = run_kernel(source, 8, 8, image)
        np.testing.assert_allclose(result, np.maximum(image - 0.5, 0.0), atol=1e-12)

    def test_constant_array(self):
        source = """
        __constant float weights[3] = {0.25f, 0.5f, 0.25f};
        __kernel void use(__global const float* input, __global float* output, int width, int height) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            output[y * width + x] = weights[0] + weights[1] + weights[2];
        }
        """
        result = run_kernel(source, 4, 4, np.zeros((4, 4)), local=(4, 4))
        np.testing.assert_allclose(result, 1.0)

    def test_ternary_and_builtins(self):
        source = """
        __kernel void tb(__global const float* input, __global float* output, int width, int height) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            float v = input[y * width + x];
            output[y * width + x] = v > 0.5f ? sqrt(v) : fabs(v - 0.25f);
        }
        """
        image = np.linspace(0, 1, 64).reshape(8, 8)
        result = run_kernel(source, 8, 8, image)
        expected = np.where(image > 0.5, np.sqrt(image), np.abs(image - 0.25))
        np.testing.assert_allclose(result, expected, atol=1e-12)


class TestLocalMemoryAndBarriers:
    def test_local_tile_with_barrier(self, rng):
        source = """
        __kernel void shift(__global const float* input, __global float* output, int width, int height) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            int lx = get_local_id(0);
            int ly = get_local_id(1);
            __local float tile[64];
            tile[ly * 8 + lx] = input[y * width + x];
            barrier(CLK_LOCAL_MEM_FENCE);
            int neighbor = (lx + 1) % 8;
            output[y * width + x] = tile[ly * 8 + neighbor];
        }
        """
        image = rng.random((16, 16))
        result = run_kernel(source, 16, 16, image)
        expected = np.concatenate([image[:, 1:8], image[:, 0:1]], axis=1)
        np.testing.assert_allclose(result[:, 0:7], expected[:, 0:7])

    def test_barrier_in_expression_position_rejected(self):
        source = """
        __kernel void bad(__global const float* input, __global float* output, int width, int height) {
            output[0] = barrier(CLK_LOCAL_MEM_FENCE);
        }
        """
        with pytest.raises(Exception):
            run_kernel(source, 4, 4, np.zeros((4, 4)), local=(4, 4))


class TestErrorHandling:
    def test_out_of_bounds_global_access(self):
        source = """
        __kernel void oob(__global const float* input, __global float* output, int width, int height) {
            output[width * height + 5] = 1.0f;
        }
        """
        with pytest.raises(Exception):
            run_kernel(source, 4, 4, np.zeros((4, 4)), local=(4, 4))

    def test_division_by_zero(self):
        source = """
        __kernel void div(__global const float* input, __global float* output, int width, int height) {
            int x = get_global_id(0);
            output[x] = 1.0f / (float)(x - x);
        }
        """
        with pytest.raises(Exception):
            run_kernel(source, 4, 4, np.zeros((4, 4)), local=(4, 4))

    def test_pointer_arg_must_be_buffer(self):
        source = """
        __kernel void k(__global const float* input, __global float* output, int width, int height) {
            output[0] = input[0];
        }
        """
        executor = Executor()
        kernel = compile_kernel(source)
        with pytest.raises(Exception):
            executor.run(
                kernel,
                NDRange((4, 4), (4, 4)),
                {"input": 3.0, "output": Buffer(np.zeros((4, 4))), "width": 4, "height": 4},
            )

    def test_constant_array_is_read_only(self):
        source = """
        __constant float weights[2] = {1.0f, 2.0f};
        __kernel void k(__global const float* input, __global float* output, int width, int height) {
            weights[0] = 5.0f;
            output[0] = weights[0];
        }
        """
        with pytest.raises(Exception):
            run_kernel(source, 4, 4, np.zeros((4, 4)), local=(4, 4))

    def test_file_scope_initializer_required(self):
        source = """
        __constant float weights[2];
        __kernel void k(__global const float* input, __global float* output, int width, int height) {
            output[0] = 1.0f;
        }
        """
        program = parse_program(source)
        with pytest.raises(InterpreterError):
            KernelInterpreter(program)


class TestAccessCounting:
    def test_global_access_counts_match_kernel_structure(self, rng):
        source = """
        __kernel void sum3(__global const float* input, __global float* output, int width, int height) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            float acc = 0.0f;
            for (int dx = -1; dx <= 1; dx++) {
                acc += input[y * width + clamp(x + dx, 0, width - 1)];
            }
            output[y * width + x] = acc;
        }
        """
        executor = Executor()
        kernel = compile_kernel(source)
        image = rng.random((8, 8))
        inb, outb = Buffer(image, "in"), Buffer(np.zeros_like(image), "out")
        stats = executor.run(
            kernel, NDRange((8, 8), (4, 4)), {"input": inb, "output": outb, "width": 8, "height": 8}
        )
        assert inb.counters.reads == 64 * 3
        assert outb.counters.writes == 64
        assert stats.work_items == 64
