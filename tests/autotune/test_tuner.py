"""Tuner facade: fronts, ladders, database persistence, session fast path.

Pins two acceptance criteria of the subsystem:

* a warm TuningDB makes a second tune / ``Session.autotune`` perform
  **zero** kernel evaluations (the application's ``approximate`` and
  ``reference`` are never called);
* database-backed calibration entries are bit-identical to in-process
  :meth:`Session.calibrate` results.
"""

import pytest

from repro.api import PerforationEngine
from repro.autotune import Tuner, TuningDB, TuningResult, default_space
from repro.autotune.space import config_key
from repro.core.errors import TuningError
from repro.data import generate_image

SIZE = 64


@pytest.fixture(scope="module")
def image():
    return generate_image("natural", size=SIZE, seed=7)


def _forbid_evaluation(monkeypatch, engine, app_name="gaussian"):
    """Make any kernel evaluation on ``engine``'s app an error."""
    app_type = type(engine.resolve_app(app_name))

    def boom(*args, **kwargs):  # pragma: no cover - the point is it never runs
        raise AssertionError("kernel evaluation must not happen on the warm path")

    monkeypatch.setattr(app_type, "approximate", boom)
    monkeypatch.setattr(app_type, "reference", boom)


def _observation_tuples(result: TuningResult):
    return [(o.key, o.fidelity, o.error, o.speedup, o.runtime_s) for o in result.observations]


class TestTune:
    def test_front_and_budget_ladder(self, image):
        tuner = Tuner(PerforationEngine(), db=False)
        result = tuner.tune("gaussian", image, strategy="grid")
        front = result.front()
        assert front
        speedups = [o.speedup for o in front]
        assert speedups == sorted(speedups)
        # Budget-indexed ladder: looser budgets never select slower configs.
        ladder = result.budget_ladder((0.01, 0.05, 0.10))
        chosen = [ladder[b] for b in (0.01, 0.05, 0.10)]
        by_key = {o.key: o for o in result.full_observations()}
        last = 0.0
        for config in chosen:
            if config is None:
                continue
            speedup = by_key[config_key(config)].speedup
            assert speedup >= last
            last = speedup

    def test_incremental_fronts_grow_monotonically_in_evals(self, image):
        tuner = Tuner(PerforationEngine(), db=False)
        result = tuner.tune("gaussian", image, strategy="grid")
        trajectory = list(result.incremental_fronts())
        assert trajectory[0][0] == 1
        assert trajectory[-1][0] == result.full_evaluations
        final_front = {(o.key) for o in trajectory[-1][1]}
        assert final_front == {o.key for o in result.front()}
        assert result.evaluations_to_front(result.front()) <= result.full_evaluations

    def test_best_for_budget_validates(self, image):
        tuner = Tuner(PerforationEngine(), db=False)
        result = tuner.tune("gaussian", image, strategy="grid", max_evals=5)
        with pytest.raises(TuningError):
            result.best_for_budget(0.0)

    def test_max_evals_budget_is_respected(self, image):
        tuner = Tuner(PerforationEngine(), db=False)
        result = tuner.tune("gaussian", image, max_evals=10)
        assert result.evaluations <= 10


class TestDatabase:
    def test_cold_then_warm_round_trip_is_bit_identical(self, tmp_path, image):
        db = TuningDB(tmp_path / "db")
        tuner = Tuner(PerforationEngine(), db=db)
        cold = tuner.tune("gaussian", image)
        warm = tuner.tune("gaussian", image)
        assert not cold.from_db and warm.from_db
        assert _observation_tuples(warm) == _observation_tuples(cold)
        assert [o.key for o in warm.front()] == [o.key for o in cold.front()]

    def test_warm_db_performs_zero_kernel_evaluations(
        self, tmp_path, image, monkeypatch
    ):
        db_path = tmp_path / "db"
        cold = Tuner(PerforationEngine(), db=TuningDB(db_path)).tune("gaussian", image)
        # A fresh engine models a fresh process: no memoization carries over.
        engine = PerforationEngine()
        _forbid_evaluation(monkeypatch, engine)
        warm = Tuner(engine, db=TuningDB(db_path)).tune("gaussian", image)
        assert warm.from_db
        assert _observation_tuples(warm) == _observation_tuples(cold)

    def test_key_ingredients_miss_instead_of_alias(self, tmp_path, image):
        db = TuningDB(tmp_path / "db")
        engine = PerforationEngine()
        tuner = Tuner(engine, db=db)
        tuner.tune("gaussian", image)
        # Different input content, seed, strategy or space -> fresh tune.
        other_image = generate_image("natural", size=SIZE, seed=8)
        assert not tuner.tune("gaussian", other_image).from_db
        assert not tuner.tune("gaussian", image, seed=1).from_db
        assert not tuner.tune("gaussian", image, strategy="grid").from_db
        smaller = default_space()
        smaller = type(smaller)(
            schemes=smaller.schemes[:2],
            reconstructions=smaller.reconstructions,
            work_groups=smaller.work_groups,
        )
        assert not tuner.tune("gaussian", image, space=smaller).from_db


class TestCalibrationFastPath:
    def test_entries_bit_identical_to_session_calibrate(self, tmp_path, image):
        reference = (
            PerforationEngine()
            .session("gaussian", error_budget=0.05)
            .calibrate([image])
        )
        engine = PerforationEngine()
        tuner = Tuner(engine, db=TuningDB(tmp_path / "db"))
        assert tuner.calibration_entries("gaussian", [image]) == reference
        # Warm replay: still bit-identical.
        assert tuner.calibration_entries("gaussian", [image]) == reference

    def test_bit_identity_holds_for_label_colliding_configs(self, tmp_path, image):
        """Configs differing only in work group share a figure label;
        both calibration paths must keep them as separate entries."""
        from repro.core.config import ROWS1_NN

        configs = [ROWS1_NN.with_work_group((8, 8)), ROWS1_NN.with_work_group((32, 8))]
        plain = PerforationEngine().session("gaussian", error_budget=0.05)
        reference = plain.with_configs(configs).calibrate([image])
        assert len(reference) == 2
        engine = PerforationEngine()
        tuner = Tuner(engine, db=TuningDB(tmp_path / "db"))
        assert tuner.calibration_entries("gaussian", [image], configs) == reference

    def test_session_autotune_tuner_path_matches_plain(self, tmp_path, image):
        plain = PerforationEngine().session("gaussian", error_budget=0.05)
        plain.autotune(calibration_inputs=[image])

        engine = PerforationEngine()
        tuner = Tuner(engine, db=TuningDB(tmp_path / "db"))
        tuned = engine.session("gaussian", error_budget=0.05)
        tuned.autotune(calibration_inputs=[image], tuner=tuner)
        assert tuned.calibration == plain.calibration
        assert tuned.selected == plain.selected

    def test_second_session_autotune_zero_kernel_launches(
        self, tmp_path, image, monkeypatch
    ):
        db_path = tmp_path / "db"
        first_engine = PerforationEngine()
        first = first_engine.session("gaussian", error_budget=0.05)
        first.autotune(
            calibration_inputs=[image], tuner=Tuner(first_engine, db=TuningDB(db_path))
        )

        engine = PerforationEngine()
        _forbid_evaluation(monkeypatch, engine)
        session = engine.session("gaussian", error_budget=0.05)
        session.autotune(
            calibration_inputs=[image], tuner=Tuner(engine, db=TuningDB(db_path))
        )
        assert session.calibration == first.calibration
        assert session.selected == first.selected

    def test_session_tuner_true_builds_default_tuner(self, image, monkeypatch, tmp_path):
        from repro.autotune import db as db_module

        monkeypatch.setenv(db_module.ENV_DB_DIR, str(tmp_path / "envdb"))
        engine = PerforationEngine()
        session = engine.session("gaussian", error_budget=0.05)
        session.autotune(calibration_inputs=[image], tuner=True)
        assert session.calibration
        assert (tmp_path / "envdb").exists()

    def test_tuner_must_share_the_engine(self, image):
        engine = PerforationEngine()
        other = PerforationEngine()
        session = engine.session("gaussian", error_budget=0.05)
        with pytest.raises(TuningError):
            session.autotune(calibration_inputs=[image], tuner=Tuner(other, db=False))
