"""Search-space model: enumeration, validity filtering, signatures."""

import pytest

from repro.autotune import SearchSpace, default_space
from repro.autotune.space import (
    config_from_dict,
    config_key,
    config_to_dict,
    scheme_from_dict,
    scheme_to_dict,
)
from repro.clsim.device import get_device
from repro.core.config import FIGURE8_CONFIGS, ApproximationConfig
from repro.core.errors import ConfigurationError
from repro.core.reconstruction import NEAREST_NEIGHBOR
from repro.core.schemes import (
    ACCURATE,
    COLS1,
    ROWS1,
    ROWS2,
    STENCIL1,
    RandomPerforation,
    RowPerforation,
)


class TestEnumeration:
    def test_default_space_is_strictly_larger_than_the_papers_ladder(self):
        space = default_space()
        configs = space.configurations(halo=2)
        # The paper's evaluation: 4 configurations x 10 work groups.
        assert len(configs) > 4 * 10
        labels = {c.label for c in configs}
        for paper_config in FIGURE8_CONFIGS:
            assert paper_config.label in labels

    def test_enumeration_order_is_deterministic(self):
        space = default_space()
        a = [config_key(c) for c in space.configurations(halo=2)]
        b = [config_key(c) for c in space.configurations(halo=2)]
        assert a == b

    def test_stencil_requires_halo(self):
        space = default_space()
        kinds = {c.scheme.kind for c in space.configurations(halo=0)}
        assert "stencil" not in kinds
        kinds = {c.scheme.kind for c in space.configurations(halo=1)}
        assert "stencil" in kinds

    def test_stencil_reconstruction_variants_collapse(self):
        space = default_space()
        stencil = [
            c for c in space.configurations(halo=2) if c.scheme.kind == "stencil"
        ]
        assert stencil  # present
        assert all(c.reconstruction == NEAREST_NEIGHBOR for c in stencil)

    def test_accurate_scheme_is_not_a_candidate(self):
        space = SearchSpace(schemes=(ACCURATE, ROWS1))
        assert all(not c.is_accurate for c in space.configurations(halo=1))

    def test_work_groups_filtered_by_global_size_and_device(self):
        space = default_space()
        device = get_device()
        configs = space.configurations(halo=2, global_size=(64, 64), device=device)
        for config in configs:
            wx, wy = config.work_group
            assert 64 % wx == 0 and 64 % wy == 0
            assert wx * wy <= device.max_work_group_size

    def test_empty_axes_rejected(self):
        with pytest.raises(ConfigurationError):
            SearchSpace(schemes=())


class TestSignature:
    def test_signature_changes_with_axes(self):
        base = default_space()
        smaller = SearchSpace(
            schemes=base.schemes[:-1],
            reconstructions=base.reconstructions,
            work_groups=base.work_groups,
        )
        assert base.signature() != smaller.signature()
        assert base.signature() == default_space().signature()

    def test_from_configs_signature_is_order_stable(self):
        space = SearchSpace.from_configs(FIGURE8_CONFIGS)
        again = SearchSpace.from_configs(FIGURE8_CONFIGS)
        assert space.signature() == again.signature()


class TestSerialization:
    @pytest.mark.parametrize(
        "scheme", [ACCURATE, ROWS1, ROWS2, COLS1, STENCIL1, RowPerforation(step=8),
                   RandomPerforation(fraction=0.25, seed=7)]
    )
    def test_scheme_round_trip(self, scheme):
        assert scheme_from_dict(scheme_to_dict(scheme)) == scheme

    def test_config_round_trip(self):
        for config in default_space().configurations(halo=2):
            assert config_from_dict(config_to_dict(config)) == config

    def test_config_key_distinguishes_what_labels_collapse(self):
        a = ApproximationConfig(scheme=ROWS1, work_group=(8, 8))
        b = ApproximationConfig(scheme=ROWS1, work_group=(16, 16))
        assert a.label == b.label
        assert config_key(a) != config_key(b)

    def test_config_key_distinguishes_random_scheme_parameters(self):
        """Random schemes share a *name* (and label) across seeds and
        nearby fractions; the identity key must not collide."""
        by_seed = [
            ApproximationConfig(scheme=RandomPerforation(fraction=0.5, seed=s))
            for s in (0, 1)
        ]
        assert by_seed[0].scheme.name == by_seed[1].scheme.name
        assert config_key(by_seed[0]) != config_key(by_seed[1])
        near = [
            ApproximationConfig(scheme=RandomPerforation(fraction=f))
            for f in (0.501, 0.504)  # both name themselves 'random50'
        ]
        assert near[0].scheme.name == near[1].scheme.name
        assert config_key(near[0]) != config_key(near[1])

    def test_spaces_with_seed_varied_random_schemes_keep_all_candidates(self):
        space = SearchSpace(
            schemes=(
                RandomPerforation(fraction=0.5, seed=0),
                RandomPerforation(fraction=0.5, seed=1),
            ),
            reconstructions=(NEAREST_NEIGHBOR,),
            work_groups=((16, 16),),
        )
        assert len(space.configurations(halo=1)) == 2


class TestNeighbors:
    def test_neighbors_change_exactly_one_axis(self):
        space = default_space()
        configs = space.configurations(halo=2, global_size=(128, 128))
        config = configs[len(configs) // 2]
        for neighbor in space.neighbors(config, halo=2, global_size=(128, 128)):
            differences = sum(
                [
                    neighbor.scheme != config.scheme,
                    neighbor.reconstruction != config.reconstruction,
                    neighbor.work_group != config.work_group,
                ]
            )
            assert differences == 1

    def test_neighbors_are_valid_and_deterministic(self):
        space = default_space()
        config = space.configurations(halo=2, global_size=(64, 64))[0]
        once = space.neighbors(config, halo=2, global_size=(64, 64))
        twice = space.neighbors(config, halo=2, global_size=(64, 64))
        assert [config_key(c) for c in once] == [config_key(c) for c in twice]
        valid = {config_key(c) for c in space.configurations(halo=2, global_size=(64, 64))}
        assert all(config_key(c) in valid for c in once)
