"""Strategy semantics and the determinism guarantee.

Every strategy with a fixed seed must yield an identical evaluation
sequence and an identical final front across repeated runs and across
``workers`` settings (parallel == serial, matching the PR 1 engine
guarantee).
"""

import pytest

from repro.api import PerforationEngine
from repro.autotune import (
    GridStrategy,
    SuccessiveHalvingStrategy,
    Tuner,
    TuningTask,
    available_strategies,
    default_space,
    resolve_strategy,
)
from repro.autotune.strategies import nondominated_layers
from repro.core.errors import TuningError
from repro.core.pareto import pareto_front
from repro.data import generate_image

SIZE = 64
ALL_STRATEGIES = available_strategies()


@pytest.fixture(scope="module")
def image():
    return generate_image("natural", size=SIZE, seed=7)


def _trace(workers, strategy, image, seed=3, app="gaussian"):
    """Evaluation sequence + front of one tuning run, as comparable keys."""
    with PerforationEngine(workers=workers) as engine:
        result = Tuner(engine, db=False, seed=seed).tune(app, image, strategy=strategy)
    sequence = [
        (o.key, o.fidelity, o.error, o.speedup, o.runtime_s) for o in result.observations
    ]
    front = [(o.key, o.error, o.speedup) for o in result.front()]
    return sequence, front


class TestDeterminism:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_identical_across_runs(self, strategy, image):
        assert _trace(1, strategy, image) == _trace(1, strategy, image)

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_parallel_equals_serial(self, strategy, image):
        serial = _trace(1, strategy, image)
        for workers in (2, 5):
            assert _trace(workers, strategy, image) == serial

    @pytest.mark.parametrize("strategy", ["random", "hill-climb"])
    def test_seed_changes_the_sequence(self, strategy, image):
        a, _ = _trace(1, strategy, image, seed=3)
        b, _ = _trace(1, strategy, image, seed=4)
        assert a != b  # seeded strategies actually consume the seed


class TestResolve:
    def test_resolve_by_name_and_instance(self):
        assert isinstance(resolve_strategy("grid"), GridStrategy)
        instance = SuccessiveHalvingStrategy(eta=3.0)
        assert resolve_strategy(instance) is instance
        assert isinstance(resolve_strategy(None), SuccessiveHalvingStrategy)

    def test_unknown_name_rejected(self):
        with pytest.raises(TuningError):
            resolve_strategy("simulated-annealing")


class TestTask:
    def test_candidates_are_validity_filtered(self, image):
        engine = PerforationEngine()
        task = TuningTask(engine, "gaussian", image, default_space())
        for config in task.candidates():
            wx, wy = config.work_group
            assert SIZE % wx == 0 and SIZE % wy == 0
            assert wx * wy <= engine.device.max_work_group_size

    def test_memoization_never_reevaluates(self, image):
        engine = PerforationEngine()
        task = TuningTask(engine, "gaussian", image, default_space())
        batch = task.candidates()[:5]
        first = task.evaluate_batch(batch, 1.0)
        evaluations = task.evaluations
        second = task.evaluate_batch(batch, 1.0)
        assert task.evaluations == evaluations  # all memo hits
        assert first == second

    def test_budget_truncates_deterministically(self, image):
        engine = PerforationEngine()
        task = TuningTask(engine, "gaussian", image, default_space(), max_evals=3)
        observed = task.evaluate_batch(task.candidates()[:10], 1.0)
        assert len(observed) == 3
        assert task.exhausted
        assert task.evaluate_batch(task.candidates()[10:], 1.0) == []

    def test_screening_uses_downscaled_input_but_full_size_speedup(self, image):
        engine = PerforationEngine()
        task = TuningTask(engine, "gaussian", image, default_space())
        fidelities = task.screening_fidelities()
        assert fidelities  # 64 is divisible by 4 and 2
        config = task.candidates()[0]
        low = task.evaluate_batch([config], fidelities[0])[0]
        full = task.evaluate_batch([config], 1.0)[0]
        assert low.fidelity < 1.0 and not low.is_full_fidelity
        # Speedup comes from the full-size timing model at every fidelity.
        assert low.speedup == full.speedup
        assert low.runtime_s == full.runtime_s

    def test_screening_unsupported_inputs_degrade_gracefully(self):
        engine = PerforationEngine()
        odd = generate_image("natural", size=66, seed=1)  # 66 % 4 != 0
        task = TuningTask(engine, "gaussian", odd, default_space())
        assert 0.25 not in task.screening_fidelities()


class TestSuccessiveHalving:
    def test_reproduces_grid_front_with_fewer_full_evaluations(self, image):
        engine = PerforationEngine(workers=2)
        tuner = Tuner(engine, db=False)
        grid = tuner.tune("gaussian", image, strategy="grid")
        halving = tuner.tune("gaussian", image, strategy="successive-halving")
        assert {o.key for o in halving.front()} == {o.key for o in grid.front()}
        assert halving.full_evaluations < grid.full_evaluations
        # The CI benchmark pins <= 40%; keep a looser structural floor here.
        assert halving.full_evaluations <= grid.full_evaluations / 2

    def test_screened_errors_measured_on_small_input(self, image):
        engine = PerforationEngine()
        tuner = Tuner(engine, db=False)
        result = tuner.tune("gaussian", image, strategy="successive-halving")
        fidelities = {o.fidelity for o in result.observations}
        assert fidelities >= {0.25, 0.5, 1.0}


class TestNondominatedLayers:
    def test_layers_partition_and_order(self, image):
        engine = PerforationEngine()
        task = TuningTask(engine, "gaussian", image, default_space())
        observations = task.evaluate_batch(task.candidates()[:12], 1.0)
        layers = nondominated_layers(observations)
        flattened = [o for layer in layers for o in layer]
        assert sorted(o.key for o in flattened) == sorted(o.key for o in observations)
        front_keys = {(o.speedup, o.error) for o in pareto_front(observations)}
        assert {(o.speedup, o.error) for o in layers[0]} == front_keys
