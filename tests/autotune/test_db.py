"""TuningDB semantics: keys, round-trips, corruption recovery, env default."""

import json

import pytest

from repro.autotune import TuningDB, default_db, input_signature, resolve_db
from repro.autotune.db import (
    DB_HEADER,
    DEFAULT_DB_MAX,
    ENV_DB_DIR,
    ENV_DB_MAX,
    tuning_key,
)
from repro.data import generate_image


@pytest.fixture()
def db(tmp_path):
    return TuningDB(tmp_path / "tuning", max_entries=4)


def _key(n: int) -> str:
    return f"{n:064x}"


class TestRecords:
    def test_round_trip(self, db):
        record = {"app": "gaussian", "entries": [{"speedup": 1.25, "error": 0.01}]}
        assert db.get(_key(1)) is None
        assert db.put(_key(1), record)
        assert db.get(_key(1)) == record
        assert db.stats().hits == 1
        assert db.stats().misses == 1

    def test_floats_round_trip_bit_exactly(self, db):
        values = [0.1 + 0.2, 1.0 / 3.0, 2.0**-1074, 1e308, 36.973808237]
        db.put(_key(2), {"values": values})
        assert db.get(_key(2))["values"] == values

    def test_corrupt_body_is_dropped(self, db):
        db.put(_key(3), {"ok": True})
        path = db.store._path(_key(3))
        path.write_text(DB_HEADER + "\n{torn json", encoding="utf-8")
        assert db.get(_key(3)) is None
        assert len(db) == 0  # entry removed

    def test_wrong_header_is_dropped(self, db):
        db.put(_key(4), {"ok": True})
        db.store._path(_key(4)).write_text("not a record", encoding="utf-8")
        assert db.get(_key(4)) is None

    def test_non_dict_body_is_dropped(self, db):
        db.store.put(_key(5), DB_HEADER + "\n[1, 2, 3]\n")
        assert db.get(_key(5)) is None

    def test_lru_bound(self, db):
        import os

        for n in range(6):
            db.put(_key(n), {"n": n})
            os.utime(db.store._path(_key(n)), (n, n))
        db.store._evict()
        assert len(db) == 4
        assert db.stats().evictions >= 2


class TestReadOnly:
    """Fleet workers open one shared database read-only: every handle can
    read the warm records, none can write or disturb the LRU state."""

    def test_readonly_passthrough(self, db):
        db.put(_key(1), {"app": "gaussian"})
        reader = TuningDB(db.root, readonly=True)
        assert reader.readonly is True
        assert db.readonly is False
        assert reader.get(_key(1)) == {"app": "gaussian"}
        assert reader.put(_key(2), {"x": 1}) is False
        assert reader.get(_key(2)) is None
        assert reader.clear() == 0
        reader.invalidate(_key(1))
        assert db.get(_key(1)) == {"app": "gaussian"}  # still there

    def test_corrupt_record_left_for_the_writer(self, db):
        db.put(_key(3), {"ok": True})
        db.store._path(_key(3)).write_text(DB_HEADER + "\n{torn", encoding="utf-8")
        reader = TuningDB(db.root, readonly=True)
        assert reader.get(_key(3)) is None  # reported as a miss...
        assert db.store._path(_key(3)).exists()  # ...but not deleted

    def test_concurrent_readers_see_identical_records(self, db):
        from concurrent.futures import ThreadPoolExecutor

        records = {_key(n): {"n": n, "v": [0.1 * n]} for n in range(4)}
        for key, record in records.items():
            db.put(key, record)
        readers = [TuningDB(db.root, readonly=True) for _ in range(6)]

        def sweep(reader):
            return {key: reader.get(key) for key in records}

        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(pool.map(sweep, readers))
        assert all(result == records for result in results)
        assert len(db) == 4


class TestKeys:
    def test_tuning_key_is_canonical(self):
        a = tuning_key(app="gaussian", seed=0, space="abc")
        b = tuning_key(space="abc", seed=0, app="gaussian")
        assert a == b
        assert a != tuning_key(app="gaussian", seed=1, space="abc")
        assert json.loads('"x"') == "x"  # sanity: canonical via json

    def test_input_signature_is_content_based(self):
        a = generate_image("natural", size=16, seed=3)
        b = generate_image("natural", size=16, seed=3)
        c = generate_image("natural", size=16, seed=4)
        assert input_signature(a) == input_signature(b)  # equal content, new array
        assert input_signature(a) != input_signature(c)
        assert input_signature([a, b]) != input_signature([a])
        assert input_signature(a) != input_signature(a.astype("float32"))


class TestDefaults:
    def test_env_override_and_shared_instance(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_DB_DIR, str(tmp_path / "db"))
        monkeypatch.delenv(ENV_DB_MAX, raising=False)
        db = default_db()
        assert db is not None
        assert str(db.root) == str(tmp_path / "db")
        assert default_db() is db

    def test_disabled_values(self, monkeypatch):
        for value in ("0", "off", "NONE", " disabled "):
            monkeypatch.setenv(ENV_DB_DIR, value)
            assert default_db() is None

    def test_max_entries_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_DB_DIR, str(tmp_path / "db"))
        monkeypatch.setenv(ENV_DB_MAX, "9")
        assert default_db().store.max_entries == 9
        monkeypatch.setenv(ENV_DB_MAX, "bogus")
        assert default_db().store.max_entries == DEFAULT_DB_MAX

    def test_resolve_db(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_DB_DIR, "off")
        assert resolve_db(None) is None  # environment disables the default
        assert resolve_db(False) is None
        assert resolve_db("off") is None
        db = TuningDB(tmp_path / "x")
        assert resolve_db(db) is db
        opened = resolve_db(tmp_path / "y")
        assert isinstance(opened, TuningDB)
        assert str(opened.root) == str(tmp_path / "y")
