"""Serve result cache (bounded LRU) and metrics accounting."""

import math

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.serve import ServeMetrics, ServeResponse, ServeResultCache
from repro.serve.metrics import LatencySummary, percentile


class TestServeResultCache:
    def test_hit_after_put(self):
        cache = ServeResultCache(capacity=4)
        image = np.arange(9.0).reshape(3, 3)
        key = cache.key("gaussian", "Rows1:NN", image)
        assert cache.get(key) is None
        cache.put(key, np.ones((3, 3)), 0.01)
        output, error = cache.get(key)
        np.testing.assert_array_equal(output, np.ones((3, 3)))
        assert error == 0.01
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_key_distinguishes_app_config_and_content(self):
        cache = ServeResultCache()
        image = np.ones((3, 3))
        base = cache.key("gaussian", "Rows1:NN", image)
        assert cache.key("sobel3", "Rows1:NN", image) != base
        assert cache.key("gaussian", "Rows2:NN", image) != base
        assert cache.key("gaussian", "Rows1:NN", 2 * image) != base
        assert cache.key("gaussian", "Rows1:NN", image.copy()) == base

    def test_lru_eviction_order(self):
        cache = ServeResultCache(capacity=2)
        keys = [cache.key("a", "c", np.full((2, 2), i, dtype=float)) for i in range(3)]
        cache.put(keys[0], np.zeros(1), None)
        cache.put(keys[1], np.zeros(1), None)
        assert cache.get(keys[0]) is not None  # refresh key 0
        cache.put(keys[2], np.zeros(1), None)  # evicts key 1 (LRU)
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) is not None
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_cached_outputs_are_read_only(self):
        cache = ServeResultCache()
        key = cache.key("a", "c", np.zeros((2, 2)))
        cache.put(key, np.zeros((2, 2)), None)
        output, _ = cache.get(key)
        with pytest.raises(ValueError):
            output[0, 0] = 1.0

    def test_unfingerprintable_inputs_bypass(self):
        cache = ServeResultCache()
        key = cache.key("a", "c", object())
        assert key is None
        assert cache.get(key) is None  # counted as a miss
        cache.put(key, np.zeros(1), None)  # no-op
        assert len(cache) == 0

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            ServeResultCache(capacity=0)


def _response(request_id=0, app="gaussian", label="Rows1:NN", error=0.01, **kw):
    defaults = dict(
        output=np.zeros(1),
        within_budget=True,
        batch_size=2,
        queue_delay_ms=10.0,
        service_time_ms=5.0,
    )
    defaults.update(kw)
    return ServeResponse(
        request_id=request_id, app=app, config_label=label, error=error, **defaults
    )


class TestServeMetrics:
    def test_percentiles_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 1.0) == 100.0
        assert math.isnan(percentile([], 0.5))
        summary = LatencySummary.from_values([1.0, 2.0, 3.0, 4.0])
        assert summary.p50_ms == 2.0 and summary.max_ms == 4.0

    def test_counters_and_snapshot(self):
        metrics = ServeMetrics()
        metrics.record_batch(2)
        metrics.record_response(_response(0, error=0.01), budget=0.05)
        metrics.record_response(
            _response(1, app="sobel3", label="Accurate", error=0.0, cache_hit=True),
            budget=0.05,
        )
        metrics.record_violation()
        metrics.finish(wall_time_s=0.5)

        assert metrics.completed == 2
        assert metrics.cache_hits == 1
        assert metrics.violations == 1
        assert metrics.throughput_rps == pytest.approx(4.0)
        assert metrics.mean_batch_size == pytest.approx(2.0)
        assert metrics.worst_budget_fraction == pytest.approx(0.2)

        snapshot = metrics.deterministic_snapshot()
        assert snapshot["per_app"] == {"gaussian": 1, "sobel3": 1}
        assert snapshot["per_config"] == {"Accurate": 1, "Rows1:NN": 1}
        assert snapshot["batch_sizes"] == {2: 1}
        assert "wall" not in snapshot  # no wall-clock quantities

        text = metrics.describe()
        assert "throughput" in text and "Rows1:NN=1" in text

    def test_unmonitored_responses_have_no_error_stats(self):
        metrics = ServeMetrics()
        metrics.record_batch(1)
        metrics.record_response(_response(0, error=None), budget=0.05)
        assert metrics.errors == []
        assert metrics.violations == 0
        assert metrics.worst_budget_fraction == 0.0

    def test_shed_counter(self):
        metrics = ServeMetrics()
        metrics.record_shed()
        metrics.record_shed()
        assert metrics.shed == 2
        assert metrics.completed == 0  # shed requests are never completed
        assert metrics.deterministic_snapshot()["shed"] == 2
        assert "2 requests shed" in metrics.describe()

    def test_resilience_counters(self):
        import json

        metrics = ServeMetrics()
        metrics.record_failed()
        metrics.record_failed()
        metrics.worker_failures = 1
        metrics.replayed = 3
        assert metrics.failed == 2
        assert metrics.completed == 0  # failed requests are never completed
        assert metrics.deterministic_snapshot()["failed"] == 2
        assert (
            "resilience: 1 worker failures, 3 requests replayed, 2 failed"
            in metrics.describe()
        )

        rebuilt = ServeMetrics.from_dict(json.loads(json.dumps(metrics.to_dict())))
        assert rebuilt.failed == 2
        assert rebuilt.worker_failures == 1
        assert rebuilt.replayed == 3

        other = ServeMetrics()
        other.record_failed()
        other.worker_failures = 2
        other.replayed = 1
        metrics.merge(other)
        assert metrics.failed == 3
        assert metrics.worker_failures == 3
        assert metrics.replayed == 4

    def test_resilience_counters_absent_in_clean_runs(self):
        # Pre-fleet snapshots lack the keys entirely; clean runs omit the
        # describe() line.
        legacy = ServeMetrics.from_dict({"completed": 1})
        assert legacy.failed == 0
        assert legacy.worker_failures == 0
        assert legacy.replayed == 0
        assert "resilience" not in ServeMetrics().describe()


def _populated_metrics(offset=0, wall=0.5):
    metrics = ServeMetrics()
    metrics.record_batch(2)
    metrics.record_batch(1)
    metrics.record_response(_response(offset, error=0.01), budget=0.05)
    metrics.record_response(
        _response(offset + 1, app="sobel3", label="Accurate", error=0.0, cache_hit=True),
        budget=0.05,
    )
    metrics.record_violation()
    metrics.record_shed()
    metrics.finish(wall_time_s=wall)
    return metrics


class TestServeMetricsSerialization:
    def test_to_dict_round_trips_through_json(self):
        import json

        metrics = _populated_metrics()
        data = json.loads(json.dumps(metrics.to_dict()))
        rebuilt = ServeMetrics.from_dict(data)
        # The round trip is exact: same snapshot, same distributions, same wall.
        assert rebuilt.to_dict() == metrics.to_dict()
        assert rebuilt.deterministic_snapshot() == metrics.deterministic_snapshot()
        assert rebuilt.batch_sizes == metrics.batch_sizes  # int keys restored
        assert rebuilt.wall_time_s == metrics.wall_time_s
        assert rebuilt.shed == metrics.shed

    def test_from_dict_defaults_missing_fields(self):
        rebuilt = ServeMetrics.from_dict({})
        assert rebuilt.completed == 0
        assert rebuilt.wall_time_s is None
        assert rebuilt.to_dict() == ServeMetrics().to_dict()

    def test_merge_adds_counters_and_concatenates_distributions(self):
        left = _populated_metrics(offset=0, wall=0.5)
        right = _populated_metrics(offset=10, wall=0.8)
        right.worst_budget_fraction = 0.9
        merged = left.merge(right)
        assert merged is left  # in place, returns self
        assert merged.completed == 4
        assert merged.batches == 4
        assert merged.violations == 2  # one explicit record_violation per side
        assert merged.shed == 2
        assert merged.cache_hits == 2
        assert merged.per_app == {"gaussian": 2, "sobel3": 2}
        assert merged.batch_sizes == {2: 2, 1: 2}
        assert len(merged.latencies_ms) == 4
        assert merged.worst_budget_fraction == 0.9  # max, not sum
        assert merged.wall_time_s == 0.8  # concurrent processes: slowest bounds

    def test_merge_is_deterministic_in_order(self):
        parts = [_populated_metrics(offset=10 * i, wall=0.1 * (i + 1)) for i in range(3)]
        merged = ServeMetrics()
        for part in parts:
            merged.merge(part)
        again = ServeMetrics()
        for part in [_populated_metrics(offset=10 * i, wall=0.1 * (i + 1)) for i in range(3)]:
            again.merge(part)
        assert merged.to_dict() == again.to_dict()

    def test_merge_empty_keeps_wall_none(self):
        merged = ServeMetrics().merge(ServeMetrics())
        assert merged.wall_time_s is None
        assert merged.completed == 0
