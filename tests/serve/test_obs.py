"""Serving-layer observability: request spans, metrics registry, off-by-default."""

import pytest

from repro.api import PerforationEngine
from repro.obs import trace as obs_trace
from repro.serve import PerforationServer, TraceSpec, generate_trace

SPEC = TraceSpec(requests=10, size=32, inputs_per_app=2, seed=19)


def _calibration_inputs(size=32):
    from repro.data import generate_image, hotspot_single

    inputs = {}
    for app in SPEC.apps:
        if app == "hotspot":
            inputs[app] = [hotspot_single(size=size, seed=77)]
        else:
            inputs[app] = [generate_image("natural", size=size, seed=77)]
    return inputs


def _server():
    return PerforationServer(
        engine=PerforationEngine(backend="vectorized"),
        backend="vectorized",
        max_batch=4,
        calibration_inputs=_calibration_inputs(),
    )


@pytest.fixture()
def traced():
    tracer = obs_trace.install(process="test-serve")
    server = _server()
    responses = server.run_trace(generate_trace(SPEC))
    yield tracer, server, responses
    obs_trace.disable()


class TestServeSpans:
    def test_every_request_gets_a_span_with_trace_id(self, traced):
        tracer, server, responses = traced
        requests = [s for s in tracer.spans() if s.name == "serve.request"]
        assert len(requests) == len(responses)
        assert {s.trace_id for s in requests} == {f"r{r.request_id}" for r in responses}
        for span in requests:
            assert span.category == "serve"
            assert span.attrs["app"] in SPEC.apps
            assert "config" in span.attrs
            assert span.attrs["batch_id"] >= 1
            assert span.duration_ns >= 0

    def test_batch_spans_parent_launches(self, traced):
        tracer, _, _ = traced
        spans = tracer.spans()
        batches = {s.span_id: s for s in spans if s.name == "serve.batch"}
        assert batches
        launches = [s for s in spans if s.name == "clsim.launch"]
        assert launches, "executor launches should be traced under serve batches"
        for launch in launches:
            assert launch.parent_id in batches
        requests = [s for s in spans if s.name == "serve.request"]
        for request in requests:
            assert request.parent_id in batches

    def test_batch_spans_carry_cache_split(self, traced):
        tracer, server, _ = traced
        batches = [s for s in tracer.spans() if s.name == "serve.batch"]
        assert sum(s.attrs["size"] for s in batches) == server.metrics.completed
        assert sum(s.attrs["cache_hits"] for s in batches) == server.metrics.cache_hits

    def test_calibration_sweeps_traced(self, traced):
        tracer, _, responses = traced
        calibrations = [s for s in tracer.spans() if s.name == "session.calibrate"]
        # Calibration is lazy: only apps the trace actually exercised.
        assert {s.attrs["app"] for s in calibrations} == {r.app for r in responses}
        assert all(s.category == "calibrate" for s in calibrations)
        assert all(s.attrs["configs"] > 0 for s in calibrations)


class TestObservabilityRegistry:
    def test_registry_mirrors_serve_metrics(self, traced):
        _, server, responses = traced
        registry = server.observability()
        snap = registry.snapshot()
        assert snap["serve.completed"] == len(responses)
        assert snap["serve.batches"] >= 1
        assert snap["serve.latency_ms.count"] == len(responses)
        assert snap["serve.cache_hits"] == server.metrics.cache_hits
        assert "serve.result_cache.hit_rate" in snap
        assert "engine.result_cache.hits" in snap
        # Wire round-trip (what fleet metrics frames ship).
        from repro.obs.metrics import MetricsRegistry

        back = MetricsRegistry.from_dict(registry.to_dict())
        assert back.snapshot() == snap


class TestDisabledByDefault:
    def test_no_spans_without_install(self):
        obs_trace.disable()
        server = _server()
        responses = server.run_trace(generate_trace(SPEC))
        assert len(responses) == SPEC.requests
        assert obs_trace.get_tracer().spans() == []

    def test_results_identical_with_and_without_tracing(self):
        obs_trace.disable()
        plain = _server().run_trace(generate_trace(SPEC))
        obs_trace.install(process="t")
        try:
            traced = _server().run_trace(generate_trace(SPEC))
        finally:
            obs_trace.disable()
        assert [r.request_id for r in plain] == [r.request_id for r in traced]
        for a, b in zip(plain, traced):
            assert a.error == b.error
            assert a.config_label == b.config_label
