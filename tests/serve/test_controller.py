"""Online controller: ladder construction, tighten/loosen policy."""

import pytest

from repro.api import PerforationEngine
from repro.core.config import ACCURATE_CONFIG, ROWS1_NN, ROWS2_NN
from repro.core.errors import TuningError
from repro.data import generate_image
from repro.serve import ControllerPolicy, OnlineController
from repro.serve.controller import LadderEntry


@pytest.fixture(scope="module")
def engine():
    return PerforationEngine()


def _fake_controller(engine, policy=None):
    """Controller with an injected ladder (no calibration sweep)."""
    controller = OnlineController(engine, policy=policy)
    controller._ladders["fake"] = [
        LadderEntry(config=ROWS2_NN, mean_error=0.04, speedup=3.0),
        LadderEntry(config=ROWS1_NN, mean_error=0.02, speedup=2.0),
        LadderEntry(config=ACCURATE_CONFIG, mean_error=0.0, speedup=1.0),
    ]
    return controller


class TestLadder:
    def test_calibrated_ladder_ends_accurate(self, engine):
        controller = OnlineController(
            engine,
            calibration_inputs={"gaussian": [generate_image("natural", size=32, seed=3)]},
        )
        ladder = controller.ladder("gaussian")
        assert ladder[-1].config.label == "Accurate"
        assert ladder[-1].mean_error == 0.0
        # fastest-first among the calibrated rungs
        speeds = [entry.speedup for entry in ladder[:-1]]
        assert speeds == sorted(speeds, reverse=True)
        # computed once
        assert controller.ladder("gaussian") is ladder

    def test_initial_choice_is_first_admissible(self, engine):
        controller = _fake_controller(engine)
        # 0.04 * 1.25 = 0.05 <= 0.06 → the fastest rung qualifies
        assert controller.choose("fake", 0.06).label == "Rows2:NN"
        # only ROWS1_NN (0.02 * 1.25 = 0.025) fits a 0.03 budget
        assert controller.choose("fake", 0.03).label == "Rows1:NN"
        # nothing admissible → accurate
        assert controller.choose("fake", 0.001).label == "Accurate"

    def test_budget_must_be_positive(self, engine):
        controller = _fake_controller(engine)
        with pytest.raises(TuningError):
            controller.choose("fake", 0.0)


class TestAdaptation:
    def test_tightens_when_error_drifts_above_budget(self, engine):
        controller = _fake_controller(engine)
        assert controller.choose("fake", 0.06).label == "Rows2:NN"
        controller.observe("fake", 0.06, 0.09)  # ewma jumps above budget
        assert controller.choose("fake", 0.06).label == "Rows1:NN"
        controller.observe("fake", 0.06, 0.09)
        assert controller.choose("fake", 0.06).label == "Accurate"
        # the accurate rung cannot tighten further
        controller.observe("fake", 0.06, 0.09)
        assert controller.choose("fake", 0.06).label == "Accurate"

    def test_ewma_smoothing_delays_tightening(self, engine):
        policy = ControllerPolicy(ewma_alpha=0.25)
        controller = _fake_controller(engine, policy)
        controller.choose("fake", 0.06)
        controller.observe("fake", 0.06, 0.07)  # one bad request: ewma 0.07 > budget?
        # first observation seeds the EWMA directly, so this tightens…
        assert controller.choose("fake", 0.06).label == "Rows1:NN"
        # …but after a switch the window is fresh: one small error keeps it
        controller.observe("fake", 0.06, 0.01)
        controller.observe("fake", 0.06, 0.08)  # ewma = 0.25*0.08 + 0.75*0.01 < 0.06
        assert controller.choose("fake", 0.06).label == "Rows1:NN"

    def test_loosens_with_headroom_after_dwell(self, engine):
        policy = ControllerPolicy(min_dwell=3, loosen_headroom=0.5)
        controller = _fake_controller(engine, policy)
        assert controller.choose("fake", 0.06).label == "Rows2:NN"
        controller.observe("fake", 0.06, 0.09)  # tighten to Rows1:NN
        assert controller.choose("fake", 0.06).label == "Rows1:NN"
        for _ in range(2):
            controller.observe("fake", 0.06, 0.005)
        # dwell not reached yet
        assert controller.choose("fake", 0.06).label == "Rows1:NN"
        controller.observe("fake", 0.06, 0.005)
        # 3 observations with ewma < 0.03 → back to the faster rung
        assert controller.choose("fake", 0.06).label == "Rows2:NN"

    def test_never_loosens_to_inadmissible_rung(self, engine):
        policy = ControllerPolicy(min_dwell=1, loosen_headroom=0.9)
        controller = _fake_controller(engine, policy)
        # budget 0.03: Rows2:NN (0.04*1.25) is inadmissible, start at Rows1:NN
        assert controller.choose("fake", 0.03).label == "Rows1:NN"
        for _ in range(5):
            controller.observe("fake", 0.03, 0.0001)
        assert controller.choose("fake", 0.03).label == "Rows1:NN"

    def test_streams_are_independent(self, engine):
        controller = _fake_controller(engine)
        controller.choose("fake", 0.06)
        controller.choose("fake", 0.03)
        controller.observe("fake", 0.06, 0.09)
        assert controller.choose("fake", 0.06).label == "Rows1:NN"
        assert controller.choose("fake", 0.03).label == "Rows1:NN"  # untouched
        snapshot = controller.snapshot()
        assert snapshot["fake@0.06"]["tightened"] == 1
        assert snapshot["fake@0.03"]["tightened"] == 0

    def test_policy_validation(self):
        with pytest.raises(TuningError):
            ControllerPolicy(ewma_alpha=0.0)
        with pytest.raises(TuningError):
            ControllerPolicy(loosen_headroom=1.0)
        with pytest.raises(TuningError):
            ControllerPolicy(min_dwell=0)


class TestTunerSeededLadders:
    """Acceptance: controller ladders seeded from the TuningDB are
    bit-identical to ladders from in-process calibration."""

    @staticmethod
    def _image():
        return generate_image("natural", size=32, seed=3)

    def test_db_seeded_ladder_bit_identical_to_calibration(self, tmp_path):
        from repro.autotune import Tuner, TuningDB

        image = self._image()
        plain_engine = PerforationEngine()
        plain = OnlineController(
            plain_engine, calibration_inputs={"gaussian": [image]}
        )
        reference = plain.ladder("gaussian")

        # Cold database, separate engine: same floats, computed via the
        # tuner path and persisted.
        db_path = tmp_path / "db"
        cold_engine = PerforationEngine()
        cold = OnlineController(
            cold_engine,
            calibration_inputs={"gaussian": [image]},
            tuner=Tuner(cold_engine, db=TuningDB(db_path)),
        )
        assert cold.ladder("gaussian") == reference

        # Warm database, third engine: the ladder is restored without any
        # calibration sweep (Session.calibrate would need an error budget
        # and an engine sweep; the DB answers first).
        warm_engine = PerforationEngine(cache=False)
        warm = OnlineController(
            warm_engine,
            calibration_inputs={"gaussian": [image]},
            tuner=Tuner(warm_engine, db=TuningDB(db_path)),
        )
        assert warm.ladder("gaussian") == reference

    def test_warm_ladder_needs_no_kernel_evaluations(self, tmp_path, monkeypatch):
        from repro.autotune import Tuner, TuningDB

        image = self._image()
        db_path = tmp_path / "db"
        seed_engine = PerforationEngine()
        OnlineController(
            seed_engine,
            calibration_inputs={"gaussian": [image]},
            tuner=Tuner(seed_engine, db=TuningDB(db_path)),
        ).ladder("gaussian")

        engine = PerforationEngine()
        app_type = type(engine.resolve_app("gaussian"))

        def boom(*args, **kwargs):
            raise AssertionError("warm ladder must not evaluate kernels")

        monkeypatch.setattr(app_type, "approximate", boom)
        monkeypatch.setattr(app_type, "reference", boom)
        controller = OnlineController(
            engine,
            calibration_inputs={"gaussian": [image]},
            tuner=Tuner(engine, db=TuningDB(db_path)),
        )
        ladder = controller.ladder("gaussian")
        assert ladder[-1].config.label == "Accurate"
        assert len(ladder) > 1
