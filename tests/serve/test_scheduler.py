"""Micro-batch scheduler: composition, deadlines, priorities, determinism."""

import numpy as np
import pytest

from repro.core import ROWS1_NN, ROWS2_NN
from repro.core.errors import ConfigurationError
from repro.serve import MicroBatchScheduler, ServeRequest, TraceSpec, generate_trace


def _request(request_id, app="gaussian", arrival_ms=0.0, priority=0, budget=0.05, latency=None):
    return ServeRequest(
        request_id=request_id,
        app=app,
        inputs=np.zeros((4, 4)),
        error_budget=budget,
        arrival_ms=arrival_ms,
        latency_budget_ms=latency,
        priority=priority,
    )


SIZE = (16, 16)


class TestBatchComposition:
    def test_full_batch_flushes_immediately(self):
        scheduler = MicroBatchScheduler(max_batch=2, max_delay_ms=100.0)
        scheduler.submit(_request(0), ROWS1_NN, "vectorized", SIZE)
        assert scheduler.ready(now_ms=0.0) == []
        scheduler.submit(_request(1, arrival_ms=1.0), ROWS1_NN, "vectorized", SIZE)
        [batch] = scheduler.ready(now_ms=1.0)
        assert [r.request_id for r in batch.requests] == [0, 1]
        assert scheduler.pending == 0

    def test_incompatible_requests_do_not_batch(self):
        scheduler = MicroBatchScheduler(max_batch=4, max_delay_ms=0.0)
        scheduler.submit(_request(0, app="gaussian"), ROWS1_NN, "vectorized", SIZE)
        scheduler.submit(_request(1, app="sobel3"), ROWS1_NN, "vectorized", SIZE)
        scheduler.submit(_request(2, app="gaussian"), ROWS2_NN, "vectorized", SIZE)
        scheduler.submit(_request(3, app="gaussian"), ROWS1_NN, "interpreter", SIZE)
        scheduler.submit(_request(4, app="gaussian"), ROWS1_NN, "vectorized", (32, 32))
        batches = scheduler.ready(now_ms=1000.0)
        assert sorted(len(b) for b in batches) == [1, 1, 1, 1, 1]
        keys = {b.key for b in batches}
        assert len(keys) == 5

    def test_deadline_flushes_partial_batch(self):
        scheduler = MicroBatchScheduler(max_batch=8, max_delay_ms=50.0)
        scheduler.submit(_request(0, arrival_ms=0.0), ROWS1_NN, "vectorized", SIZE)
        assert scheduler.ready(now_ms=49.0) == []
        [batch] = scheduler.ready(now_ms=50.0)
        assert [r.request_id for r in batch.requests] == [0]

    def test_same_label_different_work_group_does_not_batch(self):
        """The label omits the work group, but outputs depend on it."""
        scheduler = MicroBatchScheduler(max_batch=4, max_delay_ms=0.0)
        shaped = ROWS1_NN.with_work_group((8, 8))
        assert shaped.label == ROWS1_NN.label
        scheduler.submit(_request(0), ROWS1_NN, "vectorized", SIZE)
        scheduler.submit(_request(1), shaped, "vectorized", SIZE)
        batches = scheduler.ready(now_ms=0.0)
        assert len(batches) == 2
        assert {b.config.work_group for b in batches} == {(16, 16), (8, 8)}

    def test_late_poll_stamps_deadline_not_poll_time(self):
        """Sparse traces: a deadline flush is stamped with the deadline, so
        reported queue delays stay within the configured bound."""
        scheduler = MicroBatchScheduler(max_batch=8, max_delay_ms=50.0)
        scheduler.submit(
            _request(0, arrival_ms=0.0, latency=10.0), ROWS1_NN, "vectorized", SIZE
        )
        [batch] = scheduler.ready(now_ms=10_000.0)
        assert batch.formed_ms == 10.0
        # full-batch flushes keep the poll time (the fill instant is exact)
        scheduler2 = MicroBatchScheduler(max_batch=1, max_delay_ms=50.0)
        scheduler2.submit(_request(1, arrival_ms=3.0), ROWS1_NN, "vectorized", SIZE)
        [batch2] = scheduler2.ready(now_ms=3.0)
        assert batch2.formed_ms == 3.0

    def test_flush_clamps_to_expired_deadlines(self):
        scheduler = MicroBatchScheduler(max_batch=8, max_delay_ms=20.0)
        scheduler.submit(_request(0, arrival_ms=0.0), ROWS1_NN, "vectorized", SIZE)
        [batch] = scheduler.flush(now_ms=500.0)
        assert batch.formed_ms == 20.0

    def test_latency_budget_shortens_the_deadline(self):
        scheduler = MicroBatchScheduler(max_batch=8, max_delay_ms=50.0)
        scheduler.submit(
            _request(0, arrival_ms=0.0, latency=10.0), ROWS1_NN, "vectorized", SIZE
        )
        assert scheduler.ready(now_ms=9.0) == []
        [batch] = scheduler.ready(now_ms=10.0)
        assert len(batch) == 1

    def test_priority_orders_within_batch_and_overflow(self):
        scheduler = MicroBatchScheduler(max_batch=2, max_delay_ms=0.0)
        scheduler.submit(_request(0, priority=0, arrival_ms=0.0), ROWS1_NN, "vectorized", SIZE)
        scheduler.submit(_request(1, priority=1, arrival_ms=1.0), ROWS1_NN, "vectorized", SIZE)
        scheduler.submit(_request(2, priority=1, arrival_ms=2.0), ROWS1_NN, "vectorized", SIZE)
        batches = scheduler.ready(now_ms=5.0)
        assert [r.request_id for r in batches[0].requests] == [1, 2]
        assert [r.request_id for r in batches[1].requests] == [0]

    def test_flush_empties_every_queue(self):
        scheduler = MicroBatchScheduler(max_batch=8, max_delay_ms=1e9)
        for i in range(3):
            scheduler.submit(_request(i, app="gaussian"), ROWS1_NN, "vectorized", SIZE)
        scheduler.submit(_request(9, app="sobel3"), ROWS1_NN, "vectorized", SIZE)
        batches = scheduler.flush(now_ms=0.0)
        assert sorted(len(b) for b in batches) == [1, 3]
        assert scheduler.pending == 0

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            MicroBatchScheduler(max_batch=0)
        with pytest.raises(ConfigurationError):
            MicroBatchScheduler(max_delay_ms=-1.0)


class TestDeterminism:
    def _run(self, trace, max_batch=4, max_delay_ms=30.0):
        scheduler = MicroBatchScheduler(max_batch=max_batch, max_delay_ms=max_delay_ms)
        composition = []
        for request in sorted(trace, key=lambda r: (r.arrival_ms, r.request_id)):
            for batch in scheduler.ready(request.arrival_ms):
                composition.append((batch.key, tuple(r.request_id for r in batch.requests)))
            scheduler.submit(request, ROWS1_NN, "vectorized", SIZE)
        for batch in scheduler.flush(now_ms=trace[-1].arrival_ms):
            composition.append((batch.key, tuple(r.request_id for r in batch.requests)))
        return composition

    def test_same_trace_same_batches(self):
        spec = TraceSpec(requests=30, size=16, seed=99, inputs_per_app=2)
        first = self._run(generate_trace(spec))
        second = self._run(generate_trace(spec))
        assert first == second
        assert sum(len(ids) for _, ids in first) == 30

    def test_different_seed_different_trace(self):
        a = generate_trace(TraceSpec(requests=20, size=16, seed=1))
        b = generate_trace(TraceSpec(requests=20, size=16, seed=2))
        assert [r.app for r in a] != [r.app for r in b] or [
            r.arrival_ms for r in a
        ] != [r.arrival_ms for r in b]

    def test_trace_is_reproducible(self):
        spec = TraceSpec(requests=15, size=16, seed=42)
        a = generate_trace(spec)
        b = generate_trace(spec)
        assert [(r.app, r.arrival_ms, r.error_budget, r.priority) for r in a] == [
            (r.app, r.arrival_ms, r.error_budget, r.priority) for r in b
        ]
        for first, second in zip(a, b):
            if first.app == "hotspot":
                np.testing.assert_array_equal(
                    first.inputs.temperature, second.inputs.temperature
                )
            else:
                np.testing.assert_array_equal(first.inputs, second.inputs)
