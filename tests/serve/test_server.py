"""End-to-end serving: budgets, batching parity, fallback, determinism."""

import numpy as np
import pytest

from repro.api import PerforationEngine
from repro.data import generate_image
from repro.serve import (
    ControllerPolicy,
    PerforationServer,
    ServeRequest,
    TraceSpec,
    generate_trace,
)

SPEC = TraceSpec(requests=14, size=32, inputs_per_app=2, seed=31)


def _calibration_inputs(size=32):
    from repro.data import hotspot_single

    inputs = {}
    for app in SPEC.apps:
        if app == "hotspot":
            inputs[app] = [hotspot_single(size=size, seed=77)]
        else:
            inputs[app] = [generate_image("natural", size=size, seed=77)]
    return inputs


def _server(**kw):
    defaults = dict(
        engine=PerforationEngine(backend="vectorized"),
        backend="vectorized",
        max_batch=4,
        calibration_inputs=_calibration_inputs(),
    )
    defaults.update(kw)
    return PerforationServer(**defaults)


@pytest.fixture(scope="module")
def served():
    server = _server()
    responses = server.run_trace(generate_trace(SPEC))
    return server, responses


class TestServing:
    def test_every_request_completes_within_budget(self, served):
        server, responses = served
        trace = generate_trace(SPEC)
        assert sorted(r.request_id for r in responses) == [r.request_id for r in trace]
        budgets = {r.request_id: r.error_budget for r in trace}
        for response in responses:
            assert response.within_budget
            assert response.error is not None
            assert response.error <= budgets[response.request_id]
        assert server.metrics.completed == len(trace)

    def test_micro_batches_form(self, served):
        server, responses = served
        assert server.metrics.batches < server.metrics.completed
        assert max(r.batch_size for r in responses) > 1

    def test_served_outputs_match_direct_execution(self, served):
        """A non-fallback response equals run_compiled with the batch's config."""
        server, responses = served
        trace = {r.request_id: r for r in generate_trace(SPEC)}
        engine = PerforationEngine(backend="vectorized")
        checked = 0
        for response in responses:
            if response.fallback:
                continue
            request = trace[response.request_id]
            config = next(
                entry.config
                for entry in server.controller.ladder(response.app)
                if entry.config.label == response.config_label
            )
            expected = engine.run_compiled(response.app, request.inputs, config)
            np.testing.assert_array_equal(expected, response.output)
            checked += 1
            if checked >= 4:  # a sample is enough; parity has its own suite
                break
        assert checked > 0

    def test_deterministic_replay(self, served):
        server, responses = served
        replay = _server()
        replayed = replay.run_trace(generate_trace(SPEC))
        assert (
            server.metrics.deterministic_snapshot()
            == replay.metrics.deterministic_snapshot()
        )
        by_id = {r.request_id: r for r in responses}
        for response in replayed:
            first = by_id[response.request_id]
            assert response.config_label == first.config_label
            assert response.batch_size == first.batch_size
            assert response.cache_hit == first.cache_hit
            np.testing.assert_array_equal(response.output, first.output)


class TestCachingAndFallback:
    def test_repeated_input_hits_the_cache(self):
        server = _server(max_batch=1)
        image = generate_image("natural", size=32, seed=5)
        first = server.submit(
            ServeRequest(0, "gaussian", image, error_budget=0.05, arrival_ms=0.0)
        ) + server.drain(0.0)
        second = server.submit(
            ServeRequest(1, "gaussian", image, error_budget=0.05, arrival_ms=1.0)
        ) + server.drain(1.0)
        assert not first[0].cache_hit
        assert second[0].cache_hit
        np.testing.assert_array_equal(first[0].output, second[0].output)
        assert server.cache.stats.hits == 1

    def test_strict_mode_falls_back_to_accurate(self):
        """An unsatisfiable budget forces the accurate reference output."""
        server = _server(
            max_batch=1,
            policy=ControllerPolicy(min_dwell=100),
        )
        # Make the controller believe a violating config is fine, so the
        # *measured* error exceeds the tiny budget at serving time.
        from repro.core.config import ROWS2_NN
        from repro.serve.controller import LadderEntry

        budget = 1e-9
        server.controller._ladders["gaussian"] = [
            LadderEntry(config=ROWS2_NN, mean_error=0.0, speedup=3.0),
        ]
        image = generate_image("natural", size=32, seed=5)
        [response] = server.submit(
            ServeRequest(0, "gaussian", image, error_budget=budget)
        ) + server.drain(0.0)
        assert response.fallback
        assert response.within_budget
        assert response.error == 0.0
        reference = server.engine.reference("gaussian", image)
        np.testing.assert_array_equal(response.output, reference)
        assert server.metrics.violations == 1
        assert server.metrics.fallbacks == 1

    def test_monitoring_off_serves_unchecked(self):
        server = _server(max_batch=1, monitor=False)
        image = generate_image("natural", size=32, seed=5)
        [response] = server.submit(
            ServeRequest(0, "gaussian", image, error_budget=1e-9)
        ) + server.drain(0.0)
        assert response.error is None
        assert response.within_budget  # vacuously: nothing was measured
        assert not response.fallback

    def test_intra_batch_duplicates_execute_once(self):
        """Identical inputs in one micro-batch run as a single stacked lane set."""
        server = _server(max_batch=4)
        launched = []
        real = server.engine.run_compiled_batch

        def spy(app, inputs_batch, *args, **kwargs):
            launched.append(len(list(inputs_batch)))
            return real(app, inputs_batch, *args, **kwargs)

        server.engine.run_compiled_batch = spy
        image = generate_image("natural", size=32, seed=5)
        requests = [
            ServeRequest(i, "gaussian", image, error_budget=0.05, arrival_ms=float(i))
            for i in range(3)
        ]
        responses = server.run_trace(requests)
        assert len(responses) == 3
        assert launched == [1]  # one distinct input executed, fanned out
        assert all(r.batch_size == 3 for r in responses)
        for response in responses[1:]:
            np.testing.assert_array_equal(response.output, responses[0].output)

    def test_cache_disabled(self):
        server = _server(max_batch=1, cache_capacity=0)
        assert server.cache is None
        image = generate_image("natural", size=32, seed=5)
        for request_id in range(2):
            [response] = server.submit(
                ServeRequest(request_id, "gaussian", image, error_budget=0.05)
            ) + server.drain(0.0)
            assert not response.cache_hit
