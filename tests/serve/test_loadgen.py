"""Synthetic load generator: arrival processes and determinism."""

import dataclasses

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.serve.loadgen import ARRIVAL_PROCESSES, TraceSpec, generate_trace

SMALL = dict(apps=("gaussian", "sobel3"), requests=40, size=32, inputs_per_app=2, seed=99)


def _gaps(trace):
    arrivals = [r.arrival_ms for r in trace]
    return np.diff(np.asarray(arrivals))


class TestArrivalProcesses:
    @pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
    def test_same_spec_same_trace(self, process):
        spec = TraceSpec(arrival_process=process, **SMALL)
        first = generate_trace(spec)
        second = generate_trace(spec)
        assert len(first) == spec.requests
        for a, b in zip(first, second):
            assert a.request_id == b.request_id
            assert a.app == b.app
            assert a.arrival_ms == b.arrival_ms  # bit-identical, not approx
            assert a.error_budget == b.error_budget
            assert a.priority == b.priority
            assert np.array_equal(np.asarray(a.inputs), np.asarray(b.inputs))

    @pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
    def test_arrivals_sorted_and_positive(self, process):
        trace = generate_trace(TraceSpec(arrival_process=process, **SMALL))
        arrivals = [r.arrival_ms for r in trace]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0.0

    @pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
    def test_seed_changes_trace(self, process):
        base = dict(SMALL)
        spec_a = TraceSpec(arrival_process=process, **base)
        base["seed"] = 100
        spec_b = TraceSpec(arrival_process=process, **base)
        a = [r.arrival_ms for r in generate_trace(spec_a)]
        b = [r.arrival_ms for r in generate_trace(spec_b)]
        assert a != b

    def test_processes_produce_distinct_arrival_patterns(self):
        arrivals = {
            process: [
                r.arrival_ms
                for r in generate_trace(TraceSpec(arrival_process=process, **SMALL))
            ]
            for process in ARRIVAL_PROCESSES
        }
        assert arrivals["poisson"] != arrivals["diurnal"]
        assert arrivals["poisson"] != arrivals["bursty"]
        assert arrivals["diurnal"] != arrivals["bursty"]

    def test_bursty_clusters_arrivals(self):
        """Bursty traffic has many short intra-burst gaps and a long tail."""
        spec = TraceSpec(arrival_process="bursty", burst_factor=50.0, **SMALL)
        gaps = _gaps(generate_trace(spec))
        poisson_gaps = _gaps(generate_trace(TraceSpec(**SMALL)))
        mean_gap = float(np.mean(poisson_gaps))
        # At least half the bursty gaps are much shorter than the Poisson
        # mean (inside a burst), while the largest gap (between bursts) is
        # much longer.
        assert np.mean(gaps < 0.2 * mean_gap) >= 0.5
        assert float(np.max(gaps)) > 2.0 * mean_gap

    def test_diurnal_rate_varies_across_the_cycle(self):
        """Peak-phase arrivals are denser than trough-phase arrivals."""
        spec = TraceSpec(
            arrival_process="diurnal",
            diurnal_amplitude=0.9,
            diurnal_period_s=0.5,
            apps=("gaussian",),
            requests=400,
            size=32,
            inputs_per_app=1,
            seed=5,
        )
        trace = generate_trace(spec)
        period_ms = spec.diurnal_period_s * 1000.0
        # sin > 0 in the first half of each cycle (the high-rate phase).
        phases = np.asarray([r.arrival_ms % period_ms for r in trace])
        peak = int(np.sum(phases < period_ms / 2))
        trough = len(phases) - peak
        assert peak > 1.5 * trough

    def test_poisson_path_unchanged_by_new_fields(self):
        """The default process ignores the diurnal/bursty knobs entirely."""
        spec = TraceSpec(**SMALL)
        tweaked = dataclasses.replace(
            spec, diurnal_amplitude=0.1, burst_factor=3.0, burst_mean_size=2.0
        )
        assert [r.arrival_ms for r in generate_trace(spec)] == [
            r.arrival_ms for r in generate_trace(tweaked)
        ]


class TestSpecValidation:
    def test_unknown_process_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceSpec(arrival_process="fractal", **SMALL)

    @pytest.mark.parametrize(
        "field, value",
        [
            ("diurnal_amplitude", 1.0),
            ("diurnal_amplitude", -0.1),
            ("diurnal_period_s", 0.0),
            ("burst_factor", 0.5),
            ("burst_mean_size", 0.9),
        ],
    )
    def test_arrival_knobs_validated(self, field, value):
        with pytest.raises(ConfigurationError):
            TraceSpec(**{field: value}, **SMALL)
