#!/usr/bin/env python
"""Documentation checker: links, anchors, referenced paths, README smoke test.

Checks, over ``README.md`` and every ``docs/*.md``:

1. every relative markdown link ``[text](target)`` points at a file that
   exists (external ``http(s)://`` links are skipped — CI must not depend
   on the network);
2. every ``#fragment`` in an internal link resolves to a heading in the
   target file (GitHub-style slugs);
3. every backtick code span that names a repo path under a known
   top-level directory (``tests/``, ``src/``, ``docs/``, ``benchmarks/``,
   ``examples/``, ``tools/``, ``.github/``) exists, so prose references
   cannot go stale silently;
4. unless ``--no-smoke``: the first ``python`` code block in
   ``README.md`` (the quickstart) actually runs.

Exit status 0 when everything passes, 1 otherwise.  Run from anywhere:

    python tools/check_docs.py [--no-smoke]
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Backtick spans starting with these prefixes must exist from the repo
# root; anything else in backticks (module dotted paths, shell commands,
# paths relative to some package directory) is not checked.
PATH_PREFIXES = ("tests/", "src/", "docs/", "benchmarks/", "examples/", "tools/", ".github/")

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*$", re.MULTILINE)
_CODE_SPAN_RE = re.compile(r"`([^`\n]+)`")
_FENCE_RE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)
_PY_BLOCK_RE = re.compile(r"^```python\n(.*?)^```", re.MULTILINE | re.DOTALL)


def doc_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces to dashes."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    text = _FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    for match in _HEADING_RE.finditer(text):
        slug = github_slug(match.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_links(doc: Path, errors: list[str]) -> None:
    text = doc.read_text(encoding="utf-8")
    rel = doc.relative_to(REPO_ROOT)
    for match in _LINK_RE.finditer(_FENCE_RE.sub("", text)):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        if path_part:
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(f"{rel}: broken link target {target!r}")
                continue
        else:
            resolved = doc
        if fragment:
            if resolved.suffix != ".md":
                continue
            if fragment not in heading_slugs(resolved):
                errors.append(f"{rel}: broken anchor {target!r}")


def check_code_span_paths(doc: Path, errors: list[str]) -> None:
    rel = doc.relative_to(REPO_ROOT)
    for match in _CODE_SPAN_RE.finditer(doc.read_text(encoding="utf-8")):
        span = match.group(1).strip()
        if not span.startswith(PATH_PREFIXES):
            continue
        # Keep only a leading path-looking token ("tests/foo.py::TestBar" -> file).
        token = span.split("::")[0].split()[0]
        if not re.fullmatch(r"[\w./\-]+", token):
            continue
        if not (REPO_ROOT / token).exists():
            errors.append(f"{rel}: referenced path `{span}` does not exist")


def run_readme_smoke(errors: list[str]) -> None:
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    match = _PY_BLOCK_RE.search(readme)
    if not match:
        errors.append("README.md: no ```python quickstart block found")
        return
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-"],
        input=match.group(1),
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=300,
    )
    if proc.returncode != 0:
        tail = (proc.stderr or proc.stdout).strip().splitlines()[-15:]
        errors.append("README.md: quickstart block failed:\n    " + "\n    ".join(tail))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--no-smoke",
        action="store_true",
        help="skip executing the README quickstart block (links/paths only)",
    )
    opts = parser.parse_args(argv)

    errors: list[str] = []
    docs = doc_files()
    for doc in docs:
        check_links(doc, errors)
        check_code_span_paths(doc, errors)
    if not opts.no_smoke:
        run_readme_smoke(errors)

    if errors:
        print(f"check_docs: {len(errors)} problem(s) in {len(docs)} file(s):")
        for err in errors:
            print(f"  - {err}")
        return 1
    smoke = "skipped" if opts.no_smoke else "passed"
    print(f"check_docs: {len(docs)} files clean, README smoke test {smoke}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
