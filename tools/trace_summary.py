#!/usr/bin/env python
"""Offline summary of an exported observability trace.

Reads a Chrome trace-event JSON written by ``repro.obs`` (the ``--trace``
flag of ``python -m repro.experiments``, or ``REPRO_TRACE``) and prints

1. a per-layer time breakdown — where the wall went, by span category
   (``lowering`` vs ``launch`` vs ``calibrate`` vs ``serve`` vs ``fleet``)
   and per process (front-end vs each fleet worker);
2. the top-N slowest requests (``serve.request``/``fleet.request`` spans),
   with their trace ids, configs and batch ids.

Validation flags for CI smoke steps:

* ``--expect-workers N`` — exit 1 unless spans from at least N distinct
  fleet worker processes are present (proves the cross-process merge);
* ``--expect-spans N`` — exit 1 with fewer than N spans total.

Exit status 0 when the trace parses (and expectations hold), 1 otherwise::

    python tools/trace_summary.py out.json [--top 10] [--expect-workers 2]
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict

#: Span names treated as "one request" rows for the top-N table.
REQUEST_SPANS = ("serve.request", "fleet.request")


def load_events(path: str) -> list[dict]:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError(f"{path}: not a Chrome trace-event document")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError(f"{path}: traceEvents must be a list")
    return events


def process_names(events: list[dict]) -> dict[int, str]:
    """pid → process name, from the ``ph: "M"`` metadata events."""
    names: dict[int, str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "process_name":
            names[event.get("pid", 0)] = str(event.get("args", {}).get("name", "?"))
    return names


def spans_of(events: list[dict]) -> list[dict]:
    return [e for e in events if e.get("ph") == "X"]


def summarize(events: list[dict], top: int) -> str:
    spans = spans_of(events)
    names = process_names(events)
    lines: list[str] = []

    by_category: dict[str, list[float]] = defaultdict(list)
    by_process: dict[str, float] = defaultdict(float)
    for span in spans:
        duration = float(span.get("dur", 0.0))
        by_category[str(span.get("cat", "?"))].append(duration)
        process = names.get(span.get("pid", 0), f"pid-{span.get('pid', 0)}")
        by_process[process] += duration

    lines.append(f"spans: {len(spans)}  processes: {len(by_process)}")
    lines.append("")
    lines.append("per-layer breakdown (span time, not exclusive):")
    total = sum(sum(values) for values in by_category.values()) or 1.0
    for category in sorted(by_category, key=lambda c: -sum(by_category[c])):
        values = by_category[category]
        subtotal = sum(values)
        lines.append(
            f"  {category:<12} {subtotal / 1000.0:10.2f} ms "
            f"({100.0 * subtotal / total:5.1f}%)  spans {len(values):5d}  "
            f"mean {subtotal / len(values) / 1000.0:8.3f} ms"
        )
    lines.append("")
    lines.append("per-process span time:")
    for process in sorted(by_process):
        lines.append(f"  {process:<16} {by_process[process] / 1000.0:10.2f} ms")

    requests = [s for s in spans if s.get("name") in REQUEST_SPANS]
    if requests:
        lines.append("")
        lines.append(f"top {top} slowest requests:")
        requests.sort(key=lambda s: -float(s.get("dur", 0.0)))
        for span in requests[:top]:
            args = span.get("args", {})
            process = names.get(span.get("pid", 0), "?")
            detail = ", ".join(
                f"{key}={args[key]}"
                for key in ("app", "config", "batch_id", "worker", "cache_hit")
                if key in args
            )
            lines.append(
                f"  {float(span.get('dur', 0.0)) / 1000.0:10.3f} ms  "
                f"{args.get('trace_id', '?'):<8} {span.get('name'):<14} "
                f"[{process}] {detail}"
            )
    return "\n".join(lines)


def count_worker_processes(events: list[dict]) -> int:
    names = process_names(events)
    traced_pids = {span.get("pid", 0) for span in spans_of(events)}
    return sum(
        1
        for pid, name in names.items()
        if pid in traced_pids and name.startswith("worker-")
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace-event JSON (repro.obs export)")
    parser.add_argument("--top", type=int, default=10, help="how many slow requests to list")
    parser.add_argument(
        "--expect-workers",
        type=int,
        default=None,
        metavar="N",
        help="fail unless spans from >= N distinct fleet worker processes exist",
    )
    parser.add_argument(
        "--expect-spans",
        type=int,
        default=None,
        metavar="N",
        help="fail with fewer than N spans total",
    )
    args = parser.parse_args(argv)

    try:
        events = load_events(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    print(summarize(events, args.top))

    if args.expect_spans is not None and len(spans_of(events)) < args.expect_spans:
        print(
            f"error: expected >= {args.expect_spans} spans, "
            f"got {len(spans_of(events))}",
            file=sys.stderr,
        )
        return 1
    if args.expect_workers is not None:
        workers = count_worker_processes(events)
        if workers < args.expect_workers:
            print(
                f"error: expected spans from >= {args.expect_workers} fleet "
                f"workers, got {workers}",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
