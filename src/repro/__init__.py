"""Local memory-aware kernel perforation — reproduction library.

Reproduction of *Local Memory-Aware Kernel Perforation* (Maier, Cosenza,
Juurlink; CGO 2018).  The library contains:

* :mod:`repro.clsim` — an OpenCL-like GPU simulator (functional executor +
  analytical timing model, FirePro-W5100-like device profile);
* :mod:`repro.kernellang` — an OpenCL C subset compiler: parser, type
  checker, interpreter, code generator, analyses and the perforation
  passes;
* :mod:`repro.core` — the paper's contribution: perforation schemes,
  local-memory reconstruction, the kernel perforator, quality metrics,
  tuning, Pareto analysis and a quality-aware runtime;
* :mod:`repro.baselines` — Paraprox-style output approximation and classic
  loop perforation;
* :mod:`repro.apps` — the six benchmark applications (Gaussian, Inversion,
  Median, Hotspot, Sobel3, Sobel5);
* :mod:`repro.data` — synthetic input generators standing in for the
  USC-SIPI image database and the Rodinia Hotspot inputs;
* :mod:`repro.experiments` — one harness per table/figure of the paper;
* :mod:`repro.api` — the unified session API: the
  :class:`~repro.api.engine.PerforationEngine` facade with registries,
  result caching and parallel sweeps;
* :mod:`repro.serve` — quality-aware batch serving: micro-batched
  vectorized launches, an online perforation controller, a bounded result
  cache and serving metrics (``docs/serving.md``);
* :mod:`repro.autotune` — adaptive multi-fidelity autotuning: a
  declarative search space, seeded strategies (grid, random, hill-climb,
  successive-halving) and a persistent cross-session tuning database
  (``docs/autotuning.md``).
"""

__version__ = "1.1.0"

__all__ = [
    "PerforationEngine",
    "api",
    "apps",
    "autotune",
    "baselines",
    "clsim",
    "core",
    "data",
    "experiments",
    "kernellang",
    "serve",
]


def __getattr__(name: str):
    # Convenience: ``from repro import PerforationEngine`` without making
    # ``import repro`` pull in the whole evaluation stack.
    if name == "PerforationEngine":
        from .api.engine import PerforationEngine

        return PerforationEngine
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
