"""Fleet worker: one process, one warm-started :class:`PerforationServer`.

A worker is spawned by the front-end with a :class:`WorkerSpec`, binds its
listening socket, accepts exactly one connection (the front-end), and then
speaks the length-prefixed JSON protocol (:mod:`repro.fleet.protocol`):

``hello``
    Sent once after accept: worker index, pid, **generation** (0 for the
    initial spawn, incremented by every front-end respawn), and the
    warm-start report — which applications were calibrated eagerly and the
    tuning-database hit/miss/put counters.  A correctly warm-started worker
    reports zero misses and zero puts: every ladder came straight out of
    the replicated :class:`~repro.autotune.db.TuningDB`, no calibration
    sweep ran.
``serve`` → ``completed``
    One request in (virtual arrival time drives the scheduler), the
    responses of every micro-batch that became due back out.
``drain`` → ``drained``
    Flush everything still queued (end of trace) and finalise the metrics
    wall clock.  The front-end tags each drain with a ``seq`` number and
    the worker echoes it, so a front-end replaying history after a respawn
    can tell a historical drain's echo from the current trace's.
``metrics`` → ``metrics``
    The worker's :meth:`ServeMetrics.to_dict` snapshot plus the online
    controller's per-stream state.
``shutdown`` → ``bye``
    Clean exit.
``error``
    Failures are **request-scoped** where possible: an exception while
    serving one request produces an ``error`` frame carrying that
    request's id, and the worker keeps serving.  Frame-level failures
    (undecodable input, a failed drain) produce an ``error`` frame
    without a request id — the front-end treats those as fatal for this
    worker and starts recovery.

If :func:`build_server` itself raises (bad tuning-database path, an
application the registry does not know), the worker still accepts the
front-end's connection and reports the failure as an ``error`` frame in
place of ``hello`` — the front-end fails fast with the real cause instead
of spinning its connect loop until the spawn timeout.

Warm start is what makes fleet scaling honest: the front-end calibrates
each application once into a content-addressed tuning database, and every
worker opens that database **read-only** (no LRU writes, no lock
contention — :class:`repro.api.store.DiskStore` ``readonly`` mode) so a
cold process restores its controller ladders with zero kernel
evaluations.  The codegen artifact cache path is replicated the same way
via ``REPRO_CODEGEN_CACHE``.  Respawned workers warm-start the same way,
which is half of why recovery preserves bit-identity (the other half is
the front-end replaying the worker's exact observation subsequence).

Deterministic fault injection lives in the spec: ``fail_after=N`` makes
the worker hard-exit (``os._exit``, no cleanup — a simulated crash) right
after handling its N-th ``serve`` frame, and ``error_on`` makes it answer
the listed request ids with request-scoped ``error`` frames instead of
serving them.  Both drive the chaos suite in
``tests/fleet/test_recovery.py``.

:func:`build_server` is separate from :func:`worker_main` so tests can
construct the exact worker-side server in process (e.g. to prove the
zero-evaluation property with monkeypatched kernels).
"""

from __future__ import annotations

import math
import os
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..obs import trace as obs_trace
from ..serve.controller import ControllerPolicy
from ..serve.server import PerforationServer
from .protocol import (
    ProtocolError,
    error_frame,
    read_frame,
    request_from_wire,
    response_to_wire,
    write_frame,
)

#: How long a worker waits for the front-end to connect before giving up.
ACCEPT_TIMEOUT_S = 120.0

#: Per-frame socket timeout once connected (a stuck front-end kills the worker).
FRAME_TIMEOUT_S = 600.0


@dataclass(frozen=True)
class WorkerSpec:
    """Everything one worker needs, shipped picklable at spawn time."""

    index: int
    #: Unix-socket path (``transport="unix"``) or ``(host, port)`` tuple.
    address: Any
    transport: str = "unix"
    backend: str = "vectorized"
    device: str | None = None
    max_batch: int = 8
    max_delay_ms: float = 50.0
    policy: ControllerPolicy | None = None
    #: Application name → representative calibration inputs (replicated to
    #: every worker so tuning-database keys match the front-end's warm-up).
    calibration_inputs: Mapping[str, Any] | None = None
    #: Applications whose controller ladders are built eagerly at startup.
    warm_apps: tuple[str, ...] = ()
    #: Replicated tuning-database directory (``None`` disables warm start).
    tuning_db: str | None = None
    tuning_db_readonly: bool = True
    #: Replicated codegen artifact-cache directory (``REPRO_CODEGEN_CACHE``).
    codegen_cache: str | None = None
    cache_capacity: int = 256
    monitor: bool = True
    strict: bool = True
    #: Record observability spans in-process and ship them back on
    #: ``drained``/``metrics`` frames (set when the front-end traces).
    trace: bool = False
    #: 0 for the initial spawn; each front-end respawn increments it.
    generation: int = 0
    #: Chaos hook: hard-exit (simulated crash) after handling this many
    #: ``serve`` frames; ``None`` disables.
    fail_after: int | None = None
    #: Chaos hook: answer these request ids with request-scoped ``error``
    #: frames instead of serving them.
    error_on: tuple[int, ...] = ()
    #: Chaos hook: hang (sleep) instead of serving these request ids — a
    #: simulated stuck worker, detected only by the front-end's
    #: per-request response timeout.
    hang_on: tuple[int, ...] = ()
    extra_env: Mapping[str, str] = field(default_factory=dict)


def build_server(spec: WorkerSpec) -> tuple[PerforationServer, dict]:
    """Construct the worker's warm-started server and its hello report.

    Importable and callable in process — the cross-process path and the
    tests exercise the same construction.
    """
    if spec.codegen_cache is not None:
        os.environ["REPRO_CODEGEN_CACHE"] = spec.codegen_cache
    for key, value in dict(spec.extra_env).items():
        os.environ[key] = value

    # Workers record spans in memory only and ship them back on
    # ``drained``/``metrics`` frames; the front-end writes the one merged
    # trace file, so a worker never honours ``REPRO_TRACE``'s export path.
    if spec.trace or obs_trace.env_trace_path() is not None:
        obs_trace.install(
            process=f"worker-{spec.index}"
            + (f".g{spec.generation}" if spec.generation else "")
        )

    from ..api.engine import PerforationEngine

    engine = PerforationEngine(device=spec.device, backend=spec.backend)
    tuner = None
    if spec.tuning_db is not None:
        from ..autotune import Tuner, TuningDB

        tuner = Tuner(
            engine, db=TuningDB(spec.tuning_db, readonly=spec.tuning_db_readonly)
        )
    server = PerforationServer(
        engine=engine,
        backend=spec.backend,
        max_batch=spec.max_batch,
        max_delay_ms=spec.max_delay_ms,
        policy=spec.policy,
        calibration_inputs=spec.calibration_inputs,
        tuner=tuner,
        cache_capacity=spec.cache_capacity,
        monitor=spec.monitor,
        strict=spec.strict,
    )
    for app in spec.warm_apps:
        server.controller.ladder(app)
    db_stats = None
    if tuner is not None and tuner.db is not None:
        stats = tuner.db.stats()
        db_stats = {"hits": stats.hits, "misses": stats.misses, "puts": stats.puts}
    report = {
        "worker": spec.index,
        "pid": os.getpid(),
        "generation": spec.generation,
        "backend": server.backend.name,
        "calibrated_apps": list(spec.warm_apps),
        "db": db_stats,
    }
    return server, report


def _bind(spec: WorkerSpec) -> socket.socket:
    if spec.transport == "unix":
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(spec.address))
    elif spec.transport == "tcp":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        host, port = spec.address
        listener.bind((str(host), int(port)))
    else:
        raise ProtocolError(f"unknown transport {spec.transport!r}")
    listener.listen(1)
    return listener


def serve_connection(
    stream, server: PerforationServer, report: dict, spec: WorkerSpec | None = None
) -> None:
    """The worker's frame loop over one established connection."""
    write_frame(stream, {"type": "hello", **report})
    fail_after = None if spec is None else spec.fail_after
    error_on = () if spec is None else tuple(spec.error_on)
    hang_on = () if spec is None else tuple(spec.hang_on)
    served = 0
    wall_start: float | None = None
    while True:
        frame = read_frame(stream)
        if frame is None:
            break  # front-end went away: drain nothing, just exit
        kind = frame.get("type")
        request_id: int | None = None
        try:
            if kind == "serve":
                if wall_start is None:
                    wall_start = time.perf_counter()
                request = request_from_wire(frame["request"])
                request_id = request.request_id
                if request.request_id in hang_on:
                    # Simulated stuck worker: neither a response nor an EOF
                    # ever arrives — only the front-end's response timeout
                    # can detect this.
                    time.sleep(ACCEPT_TIMEOUT_S * 10)
                if request.request_id in error_on:
                    write_frame(
                        stream,
                        error_frame(
                            "chaos: injected request failure",
                            request_id=request.request_id,
                        ),
                    )
                    continue
                responses = server.submit(request)
                write_frame(
                    stream,
                    {
                        "type": "completed",
                        "responses": [response_to_wire(r) for r in responses],
                    },
                )
                served += 1
                if fail_after is not None and served >= fail_after:
                    # Simulated crash: no cleanup, no goodbye — exactly what
                    # a SIGKILL mid-trace looks like to the front-end.
                    os._exit(17)
            elif kind == "drain":
                now_ms = frame.get("now_ms")
                responses = server.drain(math.inf if now_ms is None else float(now_ms))
                elapsed = 0.0 if wall_start is None else time.perf_counter() - wall_start
                server.metrics.finish(elapsed)
                drained: dict = {
                    "type": "drained",
                    "seq": frame.get("seq"),
                    "responses": [response_to_wire(r) for r in responses],
                }
                tracer = obs_trace.get_tracer()
                if tracer.enabled:
                    drained["spans"] = tracer.drain()
                write_frame(stream, drained)
            elif kind == "metrics":
                answer: dict = {
                    "type": "metrics",
                    "metrics": server.metrics.to_dict(),
                    "controller": server.controller.snapshot(),
                    "obs": server.observability().to_dict(),
                }
                tracer = obs_trace.get_tracer()
                if tracer.enabled:
                    answer["spans"] = tracer.drain()
                write_frame(stream, answer)
            elif kind == "shutdown":
                write_frame(stream, {"type": "bye"})
                break
            else:
                write_frame(stream, error_frame(f"unknown frame {kind!r}"))
        except ProtocolError:
            raise
        except Exception as exc:  # surface worker-side failures to the front-end
            # Scoped to the triggering request where one is known, so a
            # single bad request no longer takes the whole trace down.
            write_frame(
                stream,
                error_frame(f"{type(exc).__name__}: {exc}", request_id=request_id),
            )


def worker_main(spec: WorkerSpec, ready=None) -> None:
    """Process entry point: bind, accept the front-end, serve frames.

    ``ready`` is an optional :mod:`multiprocessing` pipe connection; the
    bound address is sent through it right after the listener exists (for
    TCP the kernel-assigned port is only known then), so the front-end can
    start connecting while the worker builds its server.  If building the
    server fails, the worker still accepts the connection and reports the
    failure as an ``error`` frame in place of ``hello``, so the front-end
    fails fast with the real cause.
    """
    listener = _bind(spec)
    try:
        listener.settimeout(ACCEPT_TIMEOUT_S)
        if ready is not None:
            address = listener.getsockname() if spec.transport == "tcp" else str(spec.address)
            try:
                ready.send(address)
            finally:
                ready.close()
        server = None
        startup_error: str | None = None
        try:
            server, report = build_server(spec)
        except Exception as exc:
            startup_error = f"startup failed: {type(exc).__name__}: {exc}"
        conn, _ = listener.accept()
        try:
            conn.settimeout(FRAME_TIMEOUT_S)
            stream = conn.makefile("rwb")
            try:
                if startup_error is not None or server is None:
                    write_frame(stream, error_frame(startup_error or "startup failed"))
                else:
                    serve_connection(stream, server, report, spec)
            finally:
                stream.close()
        finally:
            conn.close()
    finally:
        listener.close()
        if spec.transport == "unix":
            try:
                os.unlink(str(spec.address))
            except OSError:
                pass
