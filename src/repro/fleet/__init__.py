"""Multi-process serving fleet.

Scales the single-process :class:`~repro.serve.server.PerforationServer`
horizontally: an asyncio front-end (:class:`PerforationFleet`) routes
requests by the scheduler's batch-compat key to N worker processes, each
a full server warm-started from a replicated tuning database — see
``docs/fleet.md`` for the design and its determinism guarantees.
"""

from .frontend import FleetError, PerforationFleet, failed_response, rejected_response
from .protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    encode_frame,
    error_frame,
    from_wire,
    read_frame,
    read_frame_async,
    request_from_wire,
    request_to_wire,
    response_from_wire,
    response_to_wire,
    to_wire,
    write_frame,
    write_frame_async,
)
from .sharding import ShardKey, ShardMap, assign_shard, shard_key, stable_shard_hash
from .worker import WorkerSpec, build_server, worker_main

__all__ = [
    "FleetError",
    "MAX_FRAME_BYTES",
    "PerforationFleet",
    "ProtocolError",
    "ShardKey",
    "ShardMap",
    "WorkerSpec",
    "assign_shard",
    "build_server",
    "encode_frame",
    "error_frame",
    "failed_response",
    "from_wire",
    "read_frame",
    "read_frame_async",
    "rejected_response",
    "request_from_wire",
    "request_to_wire",
    "response_from_wire",
    "response_to_wire",
    "shard_key",
    "stable_shard_hash",
    "to_wire",
    "worker_main",
    "write_frame",
    "write_frame_async",
]
