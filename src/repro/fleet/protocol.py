"""Length-prefixed JSON wire protocol of the serving fleet.

Every message is one *frame*: a 4-byte big-endian length header followed
by a UTF-8 JSON object.  Frames are self-delimiting, so the same codec
serves both transports (unix-domain sockets and localhost TCP) and both
endpoint styles (the synchronous worker loop reads from a buffered socket
file; the asyncio front-end reads from a :class:`asyncio.StreamReader`).

Values that JSON cannot carry natively are *tagged*:

* :class:`numpy.ndarray` — dtype, shape and the raw bytes (base64).  The
  byte round trip is exact, which is what makes fleet outputs
  **bit-identical** to single-process serving;
* :class:`~repro.data.hotspot.HotspotInput` — its two grids plus size/name;
* tuples — distinguished from lists so request inputs survive untouched.

Floats ride as JSON numbers: Python's ``json`` emits ``repr`` shortest
round-trip literals, so measured errors and virtual timestamps are exact
too.  The protocol is for co-operating local processes spawned by the
front-end — it is not hardened against adversarial peers beyond frame
length and JSON well-formedness checks.

Frame vocabulary (the ``type`` key): ``hello`` (worker warm-start report,
including the worker's respawn ``generation``), ``serve``/``completed``,
``drain``/``drained`` (drains carry a front-end ``seq`` tag the worker
echoes, so replayed historical drains are distinguishable from the
current trace's), ``metrics``, ``shutdown``/``bye``, and ``error``.
Error frames come in two scopes — see :func:`error_frame`: with a
``request_id`` they fail exactly one request and the trace continues;
without one they are fatal for the worker and trigger the front-end's
failure recovery (respawn and replay).
"""

from __future__ import annotations

import asyncio
import base64
import json
import struct
from typing import Any, BinaryIO

import numpy as np

from ..core.errors import ConfigurationError
from ..data.hotspot import HotspotInput
from ..serve.requests import ServeRequest, ServeResponse

#: 4-byte big-endian unsigned frame length.
FRAME_HEADER = struct.Struct(">I")

#: Upper bound on one frame (64 MiB): a torn or foreign stream fails fast
#: instead of allocating an absurd buffer.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class ProtocolError(ConfigurationError):
    """A malformed, truncated or oversized frame."""


# ---------------------------------------------------------------------------
# Value codec
# ---------------------------------------------------------------------------
def to_wire(value: Any) -> Any:
    """Encode ``value`` into JSON-representable form (tagged where needed)."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, np.ndarray):
        array = np.ascontiguousarray(value)
        return {
            "__kind__": "ndarray",
            "dtype": str(array.dtype),
            "shape": list(array.shape),
            "data": base64.b64encode(array.tobytes()).decode("ascii"),
        }
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, HotspotInput):
        return {
            "__kind__": "hotspot",
            "size": value.size,
            "name": value.name,
            "temperature": to_wire(value.temperature),
            "power": to_wire(value.power),
        }
    if isinstance(value, tuple):
        return {"__kind__": "tuple", "items": [to_wire(item) for item in value]}
    if isinstance(value, list):
        return [to_wire(item) for item in value]
    if isinstance(value, dict):
        encoded = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise ProtocolError(f"dict keys must be strings on the wire, got {key!r}")
            if key == "__kind__":
                raise ProtocolError("dict key '__kind__' is reserved by the protocol")
            encoded[key] = to_wire(item)
        return encoded
    raise ProtocolError(f"cannot encode {type(value).__name__} value for the wire")


def from_wire(value: Any) -> Any:
    """Decode a :func:`to_wire` value (inverse; arrays come back writable)."""
    if isinstance(value, list):
        return [from_wire(item) for item in value]
    if isinstance(value, dict):
        kind = value.get("__kind__")
        if kind is None:
            return {key: from_wire(item) for key, item in value.items()}
        if kind == "ndarray":
            data = base64.b64decode(value["data"])
            array = np.frombuffer(data, dtype=np.dtype(value["dtype"]))
            return array.reshape([int(n) for n in value["shape"]]).copy()
        if kind == "hotspot":
            return HotspotInput(
                size=int(value["size"]),
                temperature=from_wire(value["temperature"]),
                power=from_wire(value["power"]),
                name=str(value["name"]),
            )
        if kind == "tuple":
            return tuple(from_wire(item) for item in value["items"])
        raise ProtocolError(f"unknown wire tag {kind!r}")
    return value


# ---------------------------------------------------------------------------
# Request / response codec
# ---------------------------------------------------------------------------
def request_to_wire(request: ServeRequest) -> dict:
    wire = {
        "request_id": request.request_id,
        "app": request.app,
        "inputs": to_wire(request.inputs),
        "error_budget": request.error_budget,
        "arrival_ms": request.arrival_ms,
        "latency_budget_ms": request.latency_budget_ms,
        "priority": request.priority,
    }
    if request.trace_id is not None:
        # Observability correlation id: out-of-band, omitted when unset so
        # untraced frames are byte-identical to the pre-tracing protocol.
        wire["trace_id"] = request.trace_id
    return wire


def request_from_wire(data: dict) -> ServeRequest:
    return ServeRequest(
        request_id=int(data["request_id"]),
        app=str(data["app"]),
        inputs=from_wire(data["inputs"]),
        error_budget=float(data["error_budget"]),
        arrival_ms=float(data["arrival_ms"]),
        latency_budget_ms=(
            None if data.get("latency_budget_ms") is None else float(data["latency_budget_ms"])
        ),
        priority=int(data.get("priority", 0)),
        trace_id=None if data.get("trace_id") is None else str(data["trace_id"]),
    )


def response_to_wire(response: ServeResponse) -> dict:
    return {
        "request_id": response.request_id,
        "app": response.app,
        "config_label": response.config_label,
        "output": None if response.output is None else to_wire(response.output),
        "error": response.error,
        "within_budget": response.within_budget,
        "rejected": response.rejected,
        "fallback": response.fallback,
        "cache_hit": response.cache_hit,
        "batch_size": response.batch_size,
        "queue_delay_ms": response.queue_delay_ms,
        "service_time_ms": response.service_time_ms,
        "completed_ms": response.completed_ms,
        "metadata": to_wire(response.metadata),
    }


def response_from_wire(data: dict) -> ServeResponse:
    output = data.get("output")
    return ServeResponse(
        request_id=int(data["request_id"]),
        app=str(data["app"]),
        config_label=str(data["config_label"]),
        output=None if output is None else from_wire(output),
        error=None if data.get("error") is None else float(data["error"]),
        within_budget=bool(data["within_budget"]),
        rejected=bool(data.get("rejected", False)),
        fallback=bool(data.get("fallback", False)),
        cache_hit=bool(data.get("cache_hit", False)),
        batch_size=int(data.get("batch_size", 1)),
        queue_delay_ms=float(data.get("queue_delay_ms", 0.0)),
        service_time_ms=float(data.get("service_time_ms", 0.0)),
        completed_ms=float(data.get("completed_ms", 0.0)),
        metadata=from_wire(data.get("metadata", {})),
    )


def error_frame(message: str, request_id: int | None = None) -> dict:
    """An ``error`` frame, request-scoped when ``request_id`` is given.

    A request-scoped error fails exactly that request (the front-end
    answers it with an explicit failed response and keeps the trace
    going); an unscoped error is fatal for the worker that sent it and
    triggers recovery (respawn and replay) on the front-end.
    """
    frame: dict = {"type": "error", "error": str(message)}
    if request_id is not None:
        frame["request_id"] = int(request_id)
    return frame


# ---------------------------------------------------------------------------
# Frame codec
# ---------------------------------------------------------------------------
def encode_frame(message: dict) -> bytes:
    """One wire frame: length header plus compact JSON body."""
    body = json.dumps(message, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return FRAME_HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(f"frame body must be a JSON object, got {type(message).__name__}")
    return message


def _read_exact(stream: BinaryIO, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on immediate EOF, error mid-read."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if remaining == n:
                return None
            raise ProtocolError(f"stream truncated {remaining} bytes short of a frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(stream: BinaryIO) -> dict | None:
    """Read one frame from a blocking binary stream (``None`` on clean EOF)."""
    header = _read_exact(stream, FRAME_HEADER.size)
    if header is None:
        return None
    (length,) = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    body = _read_exact(stream, length)
    if body is None:
        raise ProtocolError("stream truncated between frame header and body")
    return decode_body(body)


def write_frame(stream: BinaryIO, message: dict) -> None:
    """Write one frame to a blocking binary stream and flush it."""
    stream.write(encode_frame(message))
    stream.flush()


async def read_frame_async(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame from an asyncio stream (``None`` on clean EOF)."""
    try:
        header = await reader.readexactly(FRAME_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("stream truncated inside a frame header") from None
    (length,) = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("stream truncated between frame header and body") from None
    return decode_body(body)


async def write_frame_async(writer: asyncio.StreamWriter, message: dict) -> None:
    """Write one frame to an asyncio stream and drain the transport."""
    writer.write(encode_frame(message))
    await writer.drain()
