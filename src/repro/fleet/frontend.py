"""Asyncio front-end of the serving fleet.

:class:`PerforationFleet` scales the single-process
:class:`~repro.serve.server.PerforationServer` horizontally: N worker
processes, each a full warm-started server, behind one asyncio front-end
that routes requests by the scheduler's batch-compat key
(:mod:`repro.fleet.sharding`) and aggregates per-worker
:class:`~repro.serve.metrics.ServeMetrics` into one fleet-level view.

The design preserves the serve subsystem's determinism guarantees:

**Routing is a pure function of the request.**  Every request of an
(application, backend, size) stream lands on the same worker, so that
worker's scheduler and online controller see exactly the observation
subsequence the single-process server would see and reproduce its
decisions — and therefore its outputs — bit-identically (pinned by
``tests/fleet/test_fleet.py``).

**Workers start warm.**  The front-end calibrates every application once
into a tuning database under its runtime directory, then ships the path
to the workers, which open it **read-only**: a cold worker restores its
controller ladders with zero kernel evaluations (the ``hello`` report
proves it — zero DB misses, zero puts).

**Admission control is explicit.**  Each shard tolerates at most
``max_pending`` outstanding (sent but unserved) requests; beyond that the
front-end sheds the request and returns an explicit ``rejected`` response
instead of queueing without bound.

**Worker failure is survivable.**  The front-end keeps, per worker, the
exact ordered log of everything it sent (the worker's *observation
subsequence*).  When a worker fails — its connection reaches EOF, it
sends a fatal ``error`` frame, or no frame arrives within
``request_timeout_s`` while work is outstanding — the front-end respawns
it from the same :class:`WorkerSpec` (bumping the spec's ``generation``)
with bounded backoff and replays the log.  Because the respawned worker
warm-starts read-only from the same tuning database and then observes the
same subsequence in the same order, it reproduces the dead worker's
scheduler and controller decisions — and therefore the trace's outputs —
**bit-identically**; re-delivered responses simply overwrite their
identical predecessors.  After ``max_respawns`` failures of the same
shard the front-end degrades gracefully instead of hanging: the shard's
outstanding and future requests are answered with explicit *failed*
responses.  Accounting stays exact throughout:
``completed + shed + failed == len(trace)``.

Internals that make replay sound: the front-end assigns every request a
globally unique *wire id* (a monotone sequence number, mapped back before
responses are returned), so a replayed response from an earlier trace can
never collide with a current request id; drain frames carry a sequence
tag the worker echoes, so a historical drain's echo is distinguishable
from the current trace's.  The wire-id rewrite is order-preserving, which
is why it cannot perturb the scheduler's deterministic tie-breaking.

Per worker the front-end runs one sender task (feeding a per-shard
:class:`asyncio.Queue`) and one reader task (draining responses as the
worker produces them), so a slow shard never head-of-line blocks the
others.  A per-worker lock serialises the sender against recovery: a
request is appended to the replay log *before* its frame is written, so
every request is delivered exactly once per worker generation — by the
original write or by the replay, never both.  Transports: unix-domain
sockets (default) or localhost TCP — same length-prefixed JSON frames
(:mod:`repro.fleet.protocol`) either way.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import shutil
import tempfile
import time
from dataclasses import replace
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from ..clsim.backends import resolve_backend
from ..core.errors import PerforationError
from ..obs import metrics as obs_metrics
from ..obs.trace import get_tracer
from ..serve.controller import ControllerPolicy, OnlineController
from ..serve.metrics import ServeMetrics
from ..serve.requests import ServeRequest, ServeResponse
from .protocol import (
    read_frame_async,
    request_to_wire,
    response_from_wire,
    write_frame_async,
)
from .sharding import ShardMap, shard_key
from .worker import WorkerSpec, worker_main

#: Supported transports of the fleet.
TRANSPORTS = ("unix", "tcp")

#: How long to wait for a worker to bind, connect and say hello.
SPAWN_TIMEOUT_S = 120.0

#: How long shutdown waits per worker before escalating to terminate().
SHUTDOWN_TIMEOUT_S = 10.0

#: Respawn backoff: base * 2**(attempt-1), bounded by the cap.
RESPAWN_BACKOFF_S = 0.05
RESPAWN_BACKOFF_MAX_S = 2.0

#: Wire ids of one trace occupy a stride so multi-trace ids never collide.
_SERVE = "serve"
_DRAIN = "drain"


class FleetError(PerforationError):
    """A fleet worker failed unrecoverably, or the fleet is in an unusable state."""


def _unserved_response(request: ServeRequest, reason: str) -> ServeResponse:
    return ServeResponse(
        request_id=request.request_id,
        app=request.app,
        config_label="",
        output=None,
        error=None,
        within_budget=False,
        rejected=True,
        batch_size=0,
        completed_ms=request.arrival_ms,
        metadata={"reason": reason},
    )


def rejected_response(request: ServeRequest) -> ServeResponse:
    """The explicit response of a load-shed request (it never executed)."""
    return _unserved_response(request, "admission-control")


def failed_response(request: ServeRequest, reason: str = "worker-failure") -> ServeResponse:
    """The explicit response of a request failed by the fleet.

    Produced when a worker reports a request-scoped error
    (``reason="worker-error"``), when a shard exhausts its respawn budget
    with the request outstanding (``"worker-failure"``), or when a request
    routes to a shard already degraded (``"shard-degraded"``).  Like a
    shed request it carries ``rejected=True`` — it never completed — but
    is counted separately (:attr:`ServeMetrics.failed`) so the exact
    accounting invariant ``completed + shed + failed == len(trace)``
    distinguishes overload from failure.
    """
    return _unserved_response(request, reason)


class PerforationFleet:
    """N warm-started server processes behind one asyncio front-end.

    Parameters
    ----------
    workers:
        Number of worker processes (each a full
        :class:`~repro.serve.server.PerforationServer`).
    backend / device / max_batch / max_delay_ms / policy / cache_capacity /
    monitor / strict:
        Forwarded to every worker's server (same meaning as the
        single-process constructor).
    calibration_inputs:
        Application name → representative calibration inputs.  The
        front-end calibrates these applications once into the shared
        tuning database before spawning workers, so every worker
        warm-starts with zero kernel evaluations.
    warm_apps:
        Applications to warm eagerly (default: the calibration-input keys,
        sorted).
    warm:
        Set ``False`` to skip the front-end calibration pass (workers then
        calibrate lazily in-process — useful for cold-start experiments).
    max_pending:
        Admission-control bound: maximum outstanding (sent but unserved)
        requests per shard before the front-end sheds.
    transport:
        ``"unix"`` (default) or ``"tcp"`` (localhost).
    tuning_db / codegen_cache:
        Override the replicated store locations (defaults live under the
        fleet's runtime directory / the process environment).  A
        ``codegen_cache`` override is exported as ``REPRO_CODEGEN_CACHE``
        for the spawned workers; the prior value is restored on
        :meth:`close`.
    runtime_dir:
        Scratch directory for sockets and the tuning database; a private
        ``repro-fleet-*`` temp dir (removed on close) when not given.
        Unix-socket paths must stay short (the kernel limit is ~108
        bytes), which is why the default is :func:`tempfile.mkdtemp`
        rather than anything test-framework-provided.
    request_timeout_s:
        Failure detector: if no frame arrives from a worker within this
        many seconds while it has outstanding work, the worker is treated
        as hung and recovered.  Must comfortably exceed the worst-case
        micro-batch service time — a worker that is merely slow would be
        killed and replayed (correct, but wasted work).  ``None``
        (default) disables the timeout; EOF and fatal error frames are
        always detected.
    max_respawns:
        Recovery budget per worker slot.  Failure ``k`` of a slot
        triggers respawn-and-replay while ``k <= max_respawns``; beyond
        that the shard degrades gracefully — outstanding and future
        requests are answered with explicit failed responses instead of
        hanging the trace.
    replay:
        ``False`` disables recovery entirely: the first failure of a
        shard degrades it (as if its budget were exhausted).  Recovery
        replays the worker's full observation subsequence, so its cost —
        and the front-end's memory for the log — grows with everything
        the fleet has served; long-lived fleets that cannot afford that
        can opt out.
    fail_after / error_on / hang_on / chaos_persistent:
        Deterministic fault injection for the chaos suite and
        ``serve-bench --chaos``: ``fail_after`` maps worker index → crash
        the worker (hard exit) after it handled that many requests;
        ``error_on`` lists wire request ids the workers answer with
        request-scoped error frames; ``hang_on`` lists wire request ids
        the workers hang on instead of serving (detectable only by
        ``request_timeout_s``).  Wire ids are assigned in arrival order
        starting at 0 for the fleet's first trace.  Respawned workers
        drop ``fail_after``/``hang_on`` unless ``chaos_persistent=True``
        (which makes the fault recur until the respawn budget runs out).
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        backend: str = "vectorized",
        device: str | None = None,
        max_batch: int = 8,
        max_delay_ms: float = 50.0,
        policy: ControllerPolicy | None = None,
        calibration_inputs: Mapping[str, Sequence] | None = None,
        warm_apps: Sequence[str] | None = None,
        warm: bool = True,
        max_pending: int = 256,
        transport: str = "unix",
        tuning_db: str | os.PathLike | None = None,
        codegen_cache: str | os.PathLike | None = None,
        cache_capacity: int = 256,
        monitor: bool = True,
        strict: bool = True,
        runtime_dir: str | os.PathLike | None = None,
        request_timeout_s: float | None = None,
        max_respawns: int = 2,
        replay: bool = True,
        fail_after: Mapping[int, int] | None = None,
        error_on: Sequence[int] | None = None,
        hang_on: Sequence[int] | None = None,
        chaos_persistent: bool = False,
    ) -> None:
        if workers < 1:
            raise FleetError(f"workers must be >= 1, got {workers}")
        if transport not in TRANSPORTS:
            raise FleetError(f"transport must be one of {TRANSPORTS}, got {transport!r}")
        if max_pending < 1:
            raise FleetError(f"max_pending must be >= 1, got {max_pending}")
        if request_timeout_s is not None and request_timeout_s <= 0:
            raise FleetError(
                f"request_timeout_s must be positive or None, got {request_timeout_s}"
            )
        if max_respawns < 0:
            raise FleetError(f"max_respawns must be >= 0, got {max_respawns}")
        self.workers = int(workers)
        self.backend_arg = backend
        self.backend_name = resolve_backend(backend).name
        self.device = device
        self.max_batch = int(max_batch)
        self.max_delay_ms = float(max_delay_ms)
        self.policy = policy
        self.calibration_inputs = dict(calibration_inputs or {})
        self.warm = bool(warm)
        self.warm_apps = (
            tuple(warm_apps)
            if warm_apps is not None
            else tuple(sorted(self.calibration_inputs))
        )
        self.max_pending = int(max_pending)
        self.transport = transport
        self.cache_capacity = cache_capacity
        self.monitor = monitor
        self.strict = strict
        self.request_timeout_s = request_timeout_s
        self.max_respawns = int(max_respawns)
        self.replay = bool(replay)
        self.fail_after = dict(fail_after or {})
        self.error_on = tuple(error_on or ())
        self.hang_on = tuple(hang_on or ())
        self.chaos_persistent = bool(chaos_persistent)
        self._owns_runtime_dir = runtime_dir is None
        self.runtime_dir = (
            Path(tempfile.mkdtemp(prefix="repro-fleet-"))
            if runtime_dir is None
            else Path(runtime_dir)
        )
        self.runtime_dir.mkdir(parents=True, exist_ok=True)
        self.tuning_db_path = (
            Path(tuning_db) if tuning_db is not None else self.runtime_dir / "tuning-db"
        )
        self.codegen_cache_path = None if codegen_cache is None else Path(codegen_cache)
        #: Per-worker hello frames (pid, generation, calibrated apps, DB counters).
        self.warm_reports: list[dict] = []
        #: Hello frames of respawned workers (recovery warm starts).
        self.respawn_reports: list[dict] = []
        #: DB counters of the front-end's own calibration pass.
        self.parent_db_stats: dict | None = None
        self._specs: list[WorkerSpec] = []
        self._procs: list = []
        self._readers: list[asyncio.StreamReader] = []
        self._writers: list[asyncio.StreamWriter] = []
        self._send_locks: list[asyncio.Lock] = []
        #: Per worker, the ordered log of every frame-worth of work sent —
        #: the worker's exact observation subsequence, replayed on respawn.
        self._sent_log: list[list[tuple]] = []
        #: Per worker, (output-stripped response, error budget) of every
        #: first-delivered response — reconstructs a dead shard's metrics.
        self._delivered: list[list[tuple[ServeResponse, float]]] = []
        self._dead: list[bool] = []
        self._failures: list[int] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started = False
        self._closed = False
        self._env_applied = False
        self._prior_codegen_cache: str | None = None
        self._wire_seq = 0
        self._drain_seq = 0
        self._wire_to_request: dict[int, ServeRequest] = {}
        self._shed_total = 0
        self._failed_total = 0
        self._replayed_total = 0
        self._worker_failures_total = 0
        self._fleet_wall: float | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "PerforationFleet":
        """Warm the tuning database, spawn the workers, connect to them.

        Partial startup failures (a worker dying before reporting its
        address, a worker whose server fails to build) tear the fleet
        down completely: already-spawned workers are terminated, the
        runtime directory is removed, and the process environment is
        restored before the error propagates.
        """
        if self._closed:
            raise FleetError("fleet is closed")
        if self._started:
            return self
        self._apply_env()
        try:
            if self.warm and self.warm_apps:
                self._warm_database()
            self._specs = [self._worker_spec(index) for index in range(self.workers)]
            addresses = self._spawn_workers()
            self._loop = asyncio.new_event_loop()
            self._loop.run_until_complete(self._connect_all(addresses))
        except BaseException:
            self.close()
            raise
        self._send_locks = [asyncio.Lock() for _ in range(self.workers)]
        self._sent_log = [[] for _ in range(self.workers)]
        self._delivered = [[] for _ in range(self.workers)]
        self._dead = [False] * self.workers
        self._failures = [0] * self.workers
        self._started = True
        return self

    def _apply_env(self) -> None:
        """Export the codegen-cache override, remembering the prior value."""
        if self.codegen_cache_path is None or self._env_applied:
            return
        self._prior_codegen_cache = os.environ.get("REPRO_CODEGEN_CACHE")
        os.environ["REPRO_CODEGEN_CACHE"] = str(self.codegen_cache_path)
        self._env_applied = True

    def _restore_env(self) -> None:
        if not self._env_applied:
            return
        if self._prior_codegen_cache is None:
            os.environ.pop("REPRO_CODEGEN_CACHE", None)
        else:
            os.environ["REPRO_CODEGEN_CACHE"] = self._prior_codegen_cache
        self._env_applied = False

    def _warm_database(self) -> None:
        """Calibrate every warm application once into the shared tuning DB."""
        from ..api.engine import PerforationEngine
        from ..autotune import Tuner, TuningDB

        engine = PerforationEngine(device=self.device, backend=self.backend_arg)
        db = TuningDB(self.tuning_db_path)
        tuner = Tuner(engine, db=db)
        controller = OnlineController(
            engine,
            policy=self.policy,
            calibration_inputs=self.calibration_inputs,
            tuner=tuner,
        )
        for app in self.warm_apps:
            controller.ladder(app)
        stats = db.stats()
        self.parent_db_stats = {
            "hits": stats.hits,
            "misses": stats.misses,
            "puts": stats.puts,
        }

    def _worker_spec(self, index: int, generation: int = 0) -> WorkerSpec:
        if self.transport == "unix":
            # A fresh socket path per generation: a crashed worker cannot
            # unlink its socket (no cleanup runs), so respawns must not
            # re-bind the stale path.
            name = (
                f"worker-{index}.sock"
                if generation == 0
                else f"worker-{index}.g{generation}.sock"
            )
            address: object = str(self.runtime_dir / name)
        else:
            address = ("127.0.0.1", 0)
        chaos_fail = self.fail_after.get(index)
        chaos_hang = self.hang_on
        if generation > 0 and not self.chaos_persistent:
            chaos_fail = None
            chaos_hang = ()
        return WorkerSpec(
            index=index,
            address=address,
            transport=self.transport,
            backend=self.backend_arg,
            device=self.device,
            max_batch=self.max_batch,
            max_delay_ms=self.max_delay_ms,
            policy=self.policy,
            calibration_inputs=self.calibration_inputs,
            warm_apps=self.warm_apps,
            tuning_db=str(self.tuning_db_path),
            tuning_db_readonly=True,
            codegen_cache=(
                None if self.codegen_cache_path is None else str(self.codegen_cache_path)
            ),
            cache_capacity=self.cache_capacity,
            monitor=self.monitor,
            strict=self.strict,
            generation=generation,
            # Workers trace when the front-end traces (at spawn time), so
            # their spans come back on drained/metrics frames and merge
            # into the front-end's single trace.
            trace=get_tracer().enabled,
            fail_after=chaos_fail,
            error_on=self.error_on,
            hang_on=chaos_hang,
        )

    def _spawn_one(self, spec: WorkerSpec):
        ctx = multiprocessing.get_context("spawn")
        receiver, sender = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=worker_main,
            args=(spec, sender),
            name=f"repro-fleet-worker-{spec.index}",
            daemon=True,
        )
        proc.start()
        sender.close()
        return proc, receiver

    def _spawn_workers(self) -> list:
        readies = []
        for index in range(self.workers):
            proc, receiver = self._spawn_one(self._specs[index])
            self._procs.append(proc)
            readies.append(receiver)
        addresses = []
        for index, receiver in enumerate(readies):
            try:
                if not receiver.poll(SPAWN_TIMEOUT_S):
                    raise FleetError(
                        f"worker {index} did not report its address "
                        f"within {SPAWN_TIMEOUT_S:.0f}s"
                    )
                addresses.append(receiver.recv())
            except (EOFError, OSError):
                raise FleetError(f"worker {index} died before reporting its address") from None
            finally:
                receiver.close()
        return addresses

    async def _connect_all(self, addresses: list) -> None:
        connected = await asyncio.gather(
            *(self._connect_one(index, address) for index, address in enumerate(addresses))
        )
        for reader, writer, hello in connected:  # gather preserves worker order
            self._readers.append(reader)
            self._writers.append(writer)
            self.warm_reports.append(hello)

    async def _connect_one(self, index: int, address):
        deadline = time.monotonic() + SPAWN_TIMEOUT_S
        while True:
            try:
                if self.transport == "unix":
                    reader, writer = await asyncio.open_unix_connection(str(address))
                else:
                    host, port = address
                    reader, writer = await asyncio.open_connection(str(host), int(port))
                break
            except OSError:
                if time.monotonic() > deadline:
                    raise FleetError(
                        f"cannot connect to worker {index} at {address!r}"
                    ) from None
                await asyncio.sleep(0.05)
        hello = await asyncio.wait_for(read_frame_async(reader), timeout=SPAWN_TIMEOUT_S)
        if hello is not None and hello.get("type") == "error":
            # The worker bound its socket but could not build its server;
            # it reported why instead of saying hello.  Fail fast with the
            # real cause rather than spinning out the spawn timeout.
            writer.close()
            raise FleetError(f"worker {index}: {hello.get('error', 'startup failed')}")
        if hello is None or hello.get("type") != "hello":
            raise FleetError(f"worker {index} did not say hello (got {hello!r})")
        return reader, writer, hello

    def _retire_worker(self, index: int) -> None:
        """Close a failed worker's transport and reap its process."""
        if index < len(self._writers) and self._writers[index] is not None:
            try:
                self._writers[index].close()
            except Exception:
                pass
        proc = self._procs[index] if index < len(self._procs) else None
        if proc is None:
            return
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=2.0)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=2.0)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve_trace(self, trace: Iterable[ServeRequest]) -> list[ServeResponse]:
        """Serve a whole trace across the fleet (virtual arrival order).

        Returns one response per request — served, explicitly rejected
        (shed), or explicitly failed — sorted by request id.  Accounting
        is exact: ``metrics().completed + metrics().shed +
        metrics().failed`` equals the number of requests submitted so far.
        """
        ordered = sorted(trace, key=lambda r: (r.arrival_ms, r.request_id))
        if not ordered:
            return []  # nothing to do — don't even spawn the workers
        self.start()
        return self._run(self._serve_async(ordered))

    def _run(self, coro):
        if self._loop is None or self._closed:
            raise FleetError("fleet is closed")
        return self._loop.run_until_complete(coro)

    async def _serve_async(self, ordered: list[ServeRequest]) -> list[ServeResponse]:
        shards = ShardMap.for_trace(ordered, self.workers, self.backend_name)
        wall_start = time.perf_counter()
        tracer = get_tracer()
        #: wire id → enqueue time, for front-end fleet.request spans.
        enqueued_ns: dict[int, int] = {}
        responses: dict[int, ServeResponse] = {}
        shed: list[ServeRequest] = []
        #: wire id → original request, for the current trace only.
        current_wire: dict[int, ServeRequest] = {}
        pending: list[set[int]] = [set() for _ in range(self.workers)]
        queues: list[asyncio.Queue] = [asyncio.Queue() for _ in range(self.workers)]
        drained = [asyncio.Event() for _ in range(self.workers)]
        drain_seq_expected: list[int | None] = [None] * self.workers
        failures: list[str] = []

        def fail_request(request: ServeRequest, reason: str) -> None:
            if request.request_id in responses:
                return
            responses[request.request_id] = failed_response(request, reason)
            self._failed_total += 1

        def fail_pending(index: int, reason: str) -> None:
            for wire_id in sorted(pending[index]):
                fail_request(self._wire_to_request[wire_id], reason)
            pending[index].clear()

        def degrade(index: int) -> None:
            """Out of respawn budget: fail the shard's work instead of hanging."""
            self._dead[index] = True
            fail_pending(index, "worker-failure")

        def record(index: int, wires: list) -> None:
            for wire in wires:
                response = response_from_wire(wire)
                wire_id = response.request_id
                pending[index].discard(wire_id)
                original = current_wire.get(wire_id)
                if tracer.enabled and original is not None:
                    start_ns = enqueued_ns.pop(wire_id, None)
                    if start_ns is not None:
                        tracer.record(
                            "fleet.request",
                            category="fleet",
                            start_ns=start_ns,
                            duration_ns=time.monotonic_ns() - start_ns,
                            trace_id=original.trace_label,
                            worker=index,
                            app=original.app,
                            wire_id=wire_id,
                        )
                if original is None:
                    # A replayed worker re-delivering an earlier trace's
                    # response (bit-identical to what was already returned).
                    continue
                response = replace(response, request_id=original.request_id)
                existing = responses.get(original.request_id)
                if existing is None:
                    responses[original.request_id] = response
                    self._delivered[index].append(
                        (replace(response, output=None), original.error_budget)
                    )
                elif not existing.rejected:
                    # Replay re-delivery of a response this trace already
                    # saw; identical by construction, so overwriting is a
                    # no-op in value terms.
                    responses[original.request_id] = response

        def frame_for(entry: tuple) -> dict:
            kind, payload = entry
            if kind == _SERVE:
                return {"type": "serve", "request": request_to_wire(payload)}
            now_ms, seq = payload
            return {"type": "drain", "now_ms": now_ms, "seq": seq}

        async def respawn(index: int) -> None:
            """One respawn attempt; raises if the new worker fails too."""
            generation = self._failures[index]
            spec = self._worker_spec(index, generation=generation)
            self._specs[index] = spec
            proc, receiver = self._spawn_one(spec)
            self._procs[index] = proc
            try:
                deadline = time.monotonic() + SPAWN_TIMEOUT_S
                while not receiver.poll(0):
                    if time.monotonic() > deadline:
                        raise FleetError(
                            f"respawned worker {index} (generation {generation}) "
                            "did not report its address"
                        )
                    await asyncio.sleep(0.02)
                address = receiver.recv()
            except (EOFError, OSError):
                raise FleetError(
                    f"respawned worker {index} (generation {generation}) died "
                    "before reporting its address"
                ) from None
            finally:
                receiver.close()
            reader, writer, hello = await self._connect_one(index, address)
            self._readers[index] = reader
            self._writers[index] = writer
            self.respawn_reports.append(hello)

        async def recover(index: int, reason: str) -> bool:
            """Respawn-and-replay worker ``index``; False = shard degraded."""
            tracer.point(
                "fleet.recover", category="fleet", worker=index, reason=reason
            )
            async with self._send_locks[index]:
                if self._dead[index]:
                    return False
                self._retire_worker(index)
                while True:
                    self._failures[index] += 1
                    self._worker_failures_total += 1
                    attempt = self._failures[index]
                    if not self.replay or attempt > self.max_respawns:
                        degrade(index)
                        return False
                    await asyncio.sleep(
                        min(RESPAWN_BACKOFF_S * 2 ** (attempt - 1), RESPAWN_BACKOFF_MAX_S)
                    )
                    try:
                        await respawn(index)
                        recovered = len(pending[index])
                        for entry in self._sent_log[index]:
                            await write_frame_async(
                                self._writers[index], frame_for(entry)
                            )
                    except Exception:
                        # The replacement failed to start or died during
                        # replay; that is the slot's next failure.
                        self._retire_worker(index)
                        continue
                    self._replayed_total += recovered
                    return True

        async def sender(index: int) -> None:
            while True:
                item = await queues[index].get()
                if item is None:
                    return
                async with self._send_locks[index]:
                    if self._dead[index]:
                        continue  # recovery already failed this shard's work
                    self._sent_log[index].append(item)
                    try:
                        await write_frame_async(self._writers[index], frame_for(item))
                    except Exception:
                        # The connection died mid-write.  The entry is in
                        # the log, so reader-driven recovery replays it —
                        # retrying here would deliver it twice.
                        pass

        async def reader(index: int) -> None:
            try:
                while True:
                    expecting = bool(pending[index]) or drain_seq_expected[index] is not None
                    try:
                        if self.request_timeout_s is not None:
                            frame = await asyncio.wait_for(
                                read_frame_async(self._readers[index]),
                                timeout=self.request_timeout_s,
                            )
                        else:
                            frame = await read_frame_async(self._readers[index])
                    except asyncio.TimeoutError:
                        if not expecting:
                            continue  # idle silence is fine; re-arm
                        if await recover(
                            index,
                            f"no frame within {self.request_timeout_s:g}s "
                            f"with {len(pending[index])} outstanding",
                        ):
                            continue
                        return
                    except Exception as exc:
                        if await recover(index, f"{type(exc).__name__}: {exc}"):
                            continue
                        return
                    if frame is None:
                        if await recover(index, "connection closed mid-trace"):
                            continue
                        return
                    kind = frame.get("type")
                    if kind == "error":
                        wire_id = frame.get("request_id")
                        if wire_id is not None:
                            pending[index].discard(int(wire_id))
                            original = current_wire.get(int(wire_id))
                            if original is not None:
                                fail_request(original, "worker-error")
                            continue  # request-scoped: the trace goes on
                        if await recover(index, str(frame.get("error"))):
                            continue
                        return
                    if kind not in ("completed", "drained"):
                        if await recover(index, f"unexpected {kind!r} frame"):
                            continue
                        return
                    record(index, frame.get("responses", []))
                    if kind == "drained":
                        spans = frame.get("spans")
                        if spans:
                            # Worker-side spans ship on the drained frame and
                            # merge into the front-end's single trace (the
                            # worker labelled them with its process name).
                            tracer.ingest(spans)
                        if frame.get("seq") == drain_seq_expected[index]:
                            return
                        # A replayed historical drain's echo — absorb it.
            except Exception as exc:
                failures.append(f"worker {index} reader: {type(exc).__name__}: {exc}")
            finally:
                drained[index].set()

        sender_tasks = [asyncio.ensure_future(sender(i)) for i in range(self.workers)]
        reader_tasks = [asyncio.ensure_future(reader(i)) for i in range(self.workers)]

        for request in ordered:
            target = shards.assign(shard_key(request, self.backend_name))
            # One event-loop pass so the readers can retire responses the
            # workers already produced — pending reflects delivered state.
            await asyncio.sleep(0)
            if self._dead[target]:
                fail_request(request, "shard-degraded")
                continue
            if len(pending[target]) >= self.max_pending:
                shed.append(request)
                continue
            wire_id = self._wire_seq
            self._wire_seq += 1
            self._wire_to_request[wire_id] = request
            current_wire[wire_id] = request
            pending[target].add(wire_id)
            wire_request = replace(request, request_id=wire_id)
            if tracer.enabled:
                # Stamp the correlation id *before* the wire-id rewrite so
                # front-end and worker spans agree on it; untraced frames
                # stay byte-identical to the pre-tracing protocol.
                wire_request = replace(wire_request, trace_id=request.trace_label)
                enqueued_ns[wire_id] = time.monotonic_ns()
            await queues[target].put((_SERVE, wire_request))

        # Drain at the last *global* arrival — exactly the virtual time
        # PerforationServer.run_trace drains at, which is what keeps batch
        # deadline stamps (and therefore outputs) bit-identical.
        last_arrival = ordered[-1].arrival_ms
        for index in range(self.workers):
            if not self._dead[index]:
                self._drain_seq += 1
                drain_seq_expected[index] = self._drain_seq
                await queues[index].put((_DRAIN, (last_arrival, self._drain_seq)))
            await queues[index].put(None)

        await asyncio.gather(*(event.wait() for event in drained))
        for index, result in enumerate(
            await asyncio.gather(*sender_tasks, *reader_tasks, return_exceptions=True)
        ):
            if isinstance(result, BaseException):
                failures.append(f"fleet io task {index}: {result}")
        # Defensive: a reader that returned with work still outstanding
        # (it cannot, short of a worker-side protocol bug) must not cost
        # the caller a response — fail the stragglers explicitly.
        for index in range(self.workers):
            if pending[index]:
                fail_pending(index, "worker-failure")
        if failures:
            raise FleetError("; ".join(failures))

        self._fleet_wall = (self._fleet_wall or 0.0) + (time.perf_counter() - wall_start)
        self._shed_total += len(shed)
        results = [rejected_response(request) for request in shed]
        results.extend(responses.values())
        results.sort(key=lambda response: response.request_id)
        return results

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _reconstructed_metrics(self, index: int) -> ServeMetrics:
        """A degraded shard cannot report; rebuild its metrics from the
        responses it delivered before dying, so fleet-level accounting
        stays exact even after a permanent worker loss."""
        metrics = ServeMetrics()
        batches: dict[tuple, int] = {}
        for response, budget in self._delivered[index]:
            metrics.record_response(response, budget)
            key = (response.app, response.config_label, response.completed_ms)
            batches.setdefault(key, response.batch_size)
        for size in batches.values():
            metrics.record_batch(size)
        return metrics

    def worker_metrics(self) -> list[dict]:
        """Per-worker ``{"metrics": ..., "controller": ...}`` snapshots.

        Degraded (permanently failed) shards report metrics reconstructed
        from their delivered responses, with ``"controller": None`` and
        ``"dead": True``.
        """
        self.start()
        return self._run(self._collect_metrics())

    async def _collect_metrics(self) -> list[dict]:
        snapshots = []
        for index in range(self.workers):
            if self._dead[index]:
                snapshots.append(
                    {
                        "metrics": self._reconstructed_metrics(index).to_dict(),
                        "controller": None,
                        "dead": True,
                    }
                )
                continue
            await write_frame_async(self._writers[index], {"type": "metrics"})
            frame = await asyncio.wait_for(
                read_frame_async(self._readers[index]), timeout=SPAWN_TIMEOUT_S
            )
            if frame is None or frame.get("type") != "metrics":
                raise FleetError(f"worker {index} returned no metrics (got {frame!r})")
            spans = frame.get("spans")
            if spans:
                get_tracer().ingest(spans)
            snapshots.append(
                {
                    "metrics": frame["metrics"],
                    "controller": frame["controller"],
                    "obs": frame.get("obs"),
                }
            )
        return snapshots

    def metrics(self) -> ServeMetrics:
        """Fleet-level metrics: workers merged in index order (deterministic),
        plus the front-end's shed/failed/recovery counters and the fleet
        wall clock (accumulated across traces)."""
        merged = ServeMetrics()
        for snapshot in self.worker_metrics():
            merged.merge(ServeMetrics.from_dict(snapshot["metrics"]))
        merged.shed += self._shed_total
        merged.failed += self._failed_total
        merged.replayed += self._replayed_total
        merged.worker_failures += self._worker_failures_total
        if self._fleet_wall is not None:
            merged.finish(self._fleet_wall)
        return merged

    def observability(self) -> obs_metrics.MetricsRegistry:
        """Fleet-wide :class:`~repro.obs.metrics.MetricsRegistry`.

        Merges every live worker's registry (shipped on its ``metrics``
        frame — serve counters, all cache stats, controller decisions in
        one shape) with the front-end's own shed/failed/recovery counters.
        Collecting also pulls any worker-buffered spans into the
        front-end's tracer as a side effect.
        """
        registry = obs_metrics.MetricsRegistry()
        for snapshot in self.worker_metrics():
            obs = snapshot.get("obs")
            if obs:
                registry.merge(obs_metrics.MetricsRegistry.from_dict(obs))
        registry.counter("fleet.shed").inc(self._shed_total)
        registry.counter("fleet.failed").inc(self._failed_total)
        registry.counter("fleet.replayed").inc(self._replayed_total)
        registry.counter("fleet.worker_failures").inc(self._worker_failures_total)
        registry.gauge("fleet.workers").set(self.workers)
        return registry

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the workers down, close the loop, remove the runtime dir,
        and restore the process environment."""
        if self._closed:
            return
        self._closed = True
        if self._loop is not None and not self._loop.is_closed():
            try:
                self._loop.run_until_complete(self._shutdown())
            except Exception:
                pass
            finally:
                self._loop.close()
        for proc in self._procs:
            if self._started:
                # A started fleet said shutdown above — give workers a
                # moment to say bye; a partially-started one did not, so
                # waiting would just time out.
                proc.join(timeout=SHUTDOWN_TIMEOUT_S)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=SHUTDOWN_TIMEOUT_S)
        self._procs.clear()
        if self._owns_runtime_dir:
            shutil.rmtree(self.runtime_dir, ignore_errors=True)
        self._restore_env()

    async def _shutdown(self) -> None:
        for index, writer in enumerate(self._writers):
            if index < len(self._dead) and self._dead[index]:
                continue  # already retired by recovery
            try:
                await write_frame_async(writer, {"type": "shutdown"})
                await asyncio.wait_for(
                    read_frame_async(self._readers[index]), timeout=SHUTDOWN_TIMEOUT_S
                )
            except Exception:
                pass
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    def __enter__(self) -> "PerforationFleet":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else ("started" if self._started else "new")
        return (
            f"<PerforationFleet workers={self.workers} "
            f"transport={self.transport!r} {state}>"
        )
