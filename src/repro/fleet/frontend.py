"""Asyncio front-end of the serving fleet.

:class:`PerforationFleet` scales the single-process
:class:`~repro.serve.server.PerforationServer` horizontally: N worker
processes, each a full warm-started server, behind one asyncio front-end
that routes requests by the scheduler's batch-compat key
(:mod:`repro.fleet.sharding`) and aggregates per-worker
:class:`~repro.serve.metrics.ServeMetrics` into one fleet-level view.

The design preserves the serve subsystem's determinism guarantees:

**Routing is a pure function of the request.**  Every request of an
(application, backend, size) stream lands on the same worker, so that
worker's scheduler and online controller see exactly the observation
subsequence the single-process server would see and reproduce its
decisions — and therefore its outputs — bit-identically (pinned by
``tests/fleet/test_fleet.py``).

**Workers start warm.**  The front-end calibrates every application once
into a tuning database under its runtime directory, then ships the path
to the workers, which open it **read-only**: a cold worker restores its
controller ladders with zero kernel evaluations (the ``hello`` report
proves it — zero DB misses, zero puts).

**Admission control is explicit.**  Each shard tolerates at most
``max_pending`` outstanding (sent but unserved) requests; beyond that the
front-end sheds the request and returns an explicit ``rejected`` response
instead of queueing without bound.  Accounting is exact:
``completed + shed == len(trace)``.

Per worker the front-end runs one sender task (feeding a per-shard
:class:`asyncio.Queue`) and one reader task (draining responses as the
worker produces them), so a slow shard never head-of-line blocks the
others.  Transports: unix-domain sockets (default) or localhost TCP —
same length-prefixed JSON frames (:mod:`repro.fleet.protocol`) either way.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from ..clsim.backends import resolve_backend
from ..core.errors import PerforationError
from ..serve.controller import ControllerPolicy, OnlineController
from ..serve.metrics import ServeMetrics
from ..serve.requests import ServeRequest, ServeResponse
from .protocol import (
    read_frame_async,
    request_to_wire,
    response_from_wire,
    write_frame_async,
)
from .sharding import ShardMap, shard_key
from .worker import WorkerSpec, worker_main

#: Supported transports of the fleet.
TRANSPORTS = ("unix", "tcp")

#: How long to wait for a worker to bind, connect and say hello.
SPAWN_TIMEOUT_S = 120.0

#: How long shutdown waits per worker before escalating to terminate().
SHUTDOWN_TIMEOUT_S = 10.0


class FleetError(PerforationError):
    """A fleet worker failed, or the fleet is in an unusable state."""


def rejected_response(request: ServeRequest) -> ServeResponse:
    """The explicit response of a load-shed request (it never executed)."""
    return ServeResponse(
        request_id=request.request_id,
        app=request.app,
        config_label="",
        output=None,
        error=None,
        within_budget=False,
        rejected=True,
        batch_size=0,
        completed_ms=request.arrival_ms,
        metadata={"reason": "admission-control"},
    )


class PerforationFleet:
    """N warm-started server processes behind one asyncio front-end.

    Parameters
    ----------
    workers:
        Number of worker processes (each a full
        :class:`~repro.serve.server.PerforationServer`).
    backend / device / max_batch / max_delay_ms / policy / cache_capacity /
    monitor / strict:
        Forwarded to every worker's server (same meaning as the
        single-process constructor).
    calibration_inputs:
        Application name → representative calibration inputs.  The
        front-end calibrates these applications once into the shared
        tuning database before spawning workers, so every worker
        warm-starts with zero kernel evaluations.
    warm_apps:
        Applications to warm eagerly (default: the calibration-input keys,
        sorted).
    warm:
        Set ``False`` to skip the front-end calibration pass (workers then
        calibrate lazily in-process — useful for cold-start experiments).
    max_pending:
        Admission-control bound: maximum outstanding (sent but unserved)
        requests per shard before the front-end sheds.
    transport:
        ``"unix"`` (default) or ``"tcp"`` (localhost).
    tuning_db / codegen_cache:
        Override the replicated store locations (defaults live under the
        fleet's runtime directory / the process environment).
    runtime_dir:
        Scratch directory for sockets and the tuning database; a private
        ``repro-fleet-*`` temp dir (removed on close) when not given.
        Unix-socket paths must stay short (the kernel limit is ~108
        bytes), which is why the default is :func:`tempfile.mkdtemp`
        rather than anything test-framework-provided.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        backend: str = "vectorized",
        device: str | None = None,
        max_batch: int = 8,
        max_delay_ms: float = 50.0,
        policy: ControllerPolicy | None = None,
        calibration_inputs: Mapping[str, Sequence] | None = None,
        warm_apps: Sequence[str] | None = None,
        warm: bool = True,
        max_pending: int = 256,
        transport: str = "unix",
        tuning_db: str | os.PathLike | None = None,
        codegen_cache: str | os.PathLike | None = None,
        cache_capacity: int = 256,
        monitor: bool = True,
        strict: bool = True,
        runtime_dir: str | os.PathLike | None = None,
    ) -> None:
        if workers < 1:
            raise FleetError(f"workers must be >= 1, got {workers}")
        if transport not in TRANSPORTS:
            raise FleetError(f"transport must be one of {TRANSPORTS}, got {transport!r}")
        if max_pending < 1:
            raise FleetError(f"max_pending must be >= 1, got {max_pending}")
        self.workers = int(workers)
        self.backend_arg = backend
        self.backend_name = resolve_backend(backend).name
        self.device = device
        self.max_batch = int(max_batch)
        self.max_delay_ms = float(max_delay_ms)
        self.policy = policy
        self.calibration_inputs = dict(calibration_inputs or {})
        self.warm = bool(warm)
        self.warm_apps = (
            tuple(warm_apps)
            if warm_apps is not None
            else tuple(sorted(self.calibration_inputs))
        )
        self.max_pending = int(max_pending)
        self.transport = transport
        self.cache_capacity = cache_capacity
        self.monitor = monitor
        self.strict = strict
        self._owns_runtime_dir = runtime_dir is None
        self.runtime_dir = (
            Path(tempfile.mkdtemp(prefix="repro-fleet-"))
            if runtime_dir is None
            else Path(runtime_dir)
        )
        self.runtime_dir.mkdir(parents=True, exist_ok=True)
        self.tuning_db_path = (
            Path(tuning_db) if tuning_db is not None else self.runtime_dir / "tuning-db"
        )
        self.codegen_cache_path = None if codegen_cache is None else Path(codegen_cache)
        #: Per-worker hello frames (pid, calibrated apps, DB counters).
        self.warm_reports: list[dict] = []
        #: DB counters of the front-end's own calibration pass.
        self.parent_db_stats: dict | None = None
        self._procs: list = []
        self._readers: list[asyncio.StreamReader] = []
        self._writers: list[asyncio.StreamWriter] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started = False
        self._closed = False
        self._shed_total = 0
        self._fleet_wall: float | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "PerforationFleet":
        """Warm the tuning database, spawn the workers, connect to them."""
        if self._closed:
            raise FleetError("fleet is closed")
        if self._started:
            return self
        if self.codegen_cache_path is not None:
            os.environ["REPRO_CODEGEN_CACHE"] = str(self.codegen_cache_path)
        if self.warm and self.warm_apps:
            self._warm_database()
        addresses = self._spawn_workers()
        self._loop = asyncio.new_event_loop()
        try:
            self._loop.run_until_complete(self._connect_all(addresses))
        except BaseException:
            self.close()
            raise
        self._started = True
        return self

    def _warm_database(self) -> None:
        """Calibrate every warm application once into the shared tuning DB."""
        from ..api.engine import PerforationEngine
        from ..autotune import Tuner, TuningDB

        engine = PerforationEngine(device=self.device, backend=self.backend_arg)
        db = TuningDB(self.tuning_db_path)
        tuner = Tuner(engine, db=db)
        controller = OnlineController(
            engine,
            policy=self.policy,
            calibration_inputs=self.calibration_inputs,
            tuner=tuner,
        )
        for app in self.warm_apps:
            controller.ladder(app)
        stats = db.stats()
        self.parent_db_stats = {
            "hits": stats.hits,
            "misses": stats.misses,
            "puts": stats.puts,
        }

    def _worker_spec(self, index: int) -> WorkerSpec:
        if self.transport == "unix":
            address: object = str(self.runtime_dir / f"worker-{index}.sock")
        else:
            address = ("127.0.0.1", 0)
        return WorkerSpec(
            index=index,
            address=address,
            transport=self.transport,
            backend=self.backend_arg,
            device=self.device,
            max_batch=self.max_batch,
            max_delay_ms=self.max_delay_ms,
            policy=self.policy,
            calibration_inputs=self.calibration_inputs,
            warm_apps=self.warm_apps,
            tuning_db=str(self.tuning_db_path),
            tuning_db_readonly=True,
            codegen_cache=(
                None if self.codegen_cache_path is None else str(self.codegen_cache_path)
            ),
            cache_capacity=self.cache_capacity,
            monitor=self.monitor,
            strict=self.strict,
        )

    def _spawn_workers(self) -> list:
        ctx = multiprocessing.get_context("spawn")
        readies = []
        for index in range(self.workers):
            receiver, sender = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=worker_main,
                args=(self._worker_spec(index), sender),
                name=f"repro-fleet-worker-{index}",
                daemon=True,
            )
            proc.start()
            sender.close()
            self._procs.append(proc)
            readies.append(receiver)
        addresses = []
        for index, receiver in enumerate(readies):
            try:
                if not receiver.poll(SPAWN_TIMEOUT_S):
                    raise FleetError(
                        f"worker {index} did not report its address "
                        f"within {SPAWN_TIMEOUT_S:.0f}s"
                    )
                addresses.append(receiver.recv())
            except (EOFError, OSError):
                raise FleetError(f"worker {index} died before reporting its address") from None
            finally:
                receiver.close()
        return addresses

    async def _connect_all(self, addresses: list) -> None:
        connected = await asyncio.gather(
            *(self._connect_one(index, address) for index, address in enumerate(addresses))
        )
        for reader, writer, hello in connected:  # gather preserves worker order
            self._readers.append(reader)
            self._writers.append(writer)
            self.warm_reports.append(hello)

    async def _connect_one(self, index: int, address):
        deadline = time.monotonic() + SPAWN_TIMEOUT_S
        while True:
            try:
                if self.transport == "unix":
                    reader, writer = await asyncio.open_unix_connection(str(address))
                else:
                    host, port = address
                    reader, writer = await asyncio.open_connection(str(host), int(port))
                break
            except OSError:
                if time.monotonic() > deadline:
                    raise FleetError(
                        f"cannot connect to worker {index} at {address!r}"
                    ) from None
                await asyncio.sleep(0.05)
        hello = await asyncio.wait_for(read_frame_async(reader), timeout=SPAWN_TIMEOUT_S)
        if hello is None or hello.get("type") != "hello":
            raise FleetError(f"worker {index} did not say hello (got {hello!r})")
        return reader, writer, hello

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve_trace(self, trace: Iterable[ServeRequest]) -> list[ServeResponse]:
        """Serve a whole trace across the fleet (virtual arrival order).

        Returns one response per request — served or explicitly rejected —
        sorted by request id.  Accounting is exact:
        ``metrics().completed + metrics().shed`` equals the number of
        requests submitted so far.
        """
        ordered = sorted(trace, key=lambda r: (r.arrival_ms, r.request_id))
        if not ordered:
            return []  # nothing to do — don't even spawn the workers
        self.start()
        return self._run(self._serve_async(ordered))

    def _run(self, coro):
        if self._loop is None or self._closed:
            raise FleetError("fleet is closed")
        return self._loop.run_until_complete(coro)

    async def _serve_async(self, ordered: list[ServeRequest]) -> list[ServeResponse]:
        shards = ShardMap.for_trace(ordered, self.workers, self.backend_name)
        wall_start = time.perf_counter()
        responses: dict[int, ServeResponse] = {}
        shed: list[ServeRequest] = []
        pending: list[set[int]] = [set() for _ in range(self.workers)]
        queues: list[asyncio.Queue] = [asyncio.Queue() for _ in range(self.workers)]
        drained = [asyncio.Event() for _ in range(self.workers)]
        failures: list[str] = []

        async def sender(index: int) -> None:
            while True:
                frame = await queues[index].get()
                if frame is None:
                    return
                await write_frame_async(self._writers[index], frame)

        async def reader(index: int) -> None:
            try:
                while True:
                    frame = await read_frame_async(self._readers[index])
                    if frame is None:
                        failures.append(f"worker {index} closed its connection mid-trace")
                        return
                    kind = frame.get("type")
                    if kind not in ("completed", "drained"):
                        detail = frame.get("error", f"unexpected {kind!r} frame")
                        failures.append(f"worker {index}: {detail}")
                        return
                    for wire in frame["responses"]:
                        response = response_from_wire(wire)
                        responses[response.request_id] = response
                        pending[index].discard(response.request_id)
                    if kind == "drained":
                        return
            except Exception as exc:
                failures.append(f"worker {index}: {type(exc).__name__}: {exc}")
            finally:
                drained[index].set()

        sender_tasks = [asyncio.ensure_future(sender(i)) for i in range(self.workers)]
        reader_tasks = [asyncio.ensure_future(reader(i)) for i in range(self.workers)]

        for request in ordered:
            target = shards.assign(shard_key(request, self.backend_name))
            # One event-loop pass so the readers can retire responses the
            # workers already produced — pending reflects delivered state.
            await asyncio.sleep(0)
            if len(pending[target]) >= self.max_pending:
                shed.append(request)
                continue
            pending[target].add(request.request_id)
            await queues[target].put({"type": "serve", "request": request_to_wire(request)})

        # Drain at the last *global* arrival — exactly the virtual time
        # PerforationServer.run_trace drains at, which is what keeps batch
        # deadline stamps (and therefore outputs) bit-identical.
        last_arrival = ordered[-1].arrival_ms
        for index in range(self.workers):
            await queues[index].put({"type": "drain", "now_ms": last_arrival})
            await queues[index].put(None)

        await asyncio.gather(*(event.wait() for event in drained))
        for index, result in enumerate(
            await asyncio.gather(*sender_tasks, *reader_tasks, return_exceptions=True)
        ):
            if isinstance(result, BaseException):
                failures.append(f"fleet io task {index}: {result}")
        if failures:
            raise FleetError("; ".join(failures))

        self._fleet_wall = time.perf_counter() - wall_start
        self._shed_total += len(shed)
        results = [rejected_response(request) for request in shed]
        results.extend(responses.values())
        results.sort(key=lambda response: response.request_id)
        return results

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def worker_metrics(self) -> list[dict]:
        """Per-worker ``{"metrics": ..., "controller": ...}`` snapshots."""
        self.start()
        return self._run(self._collect_metrics())

    async def _collect_metrics(self) -> list[dict]:
        snapshots = []
        for index in range(self.workers):
            await write_frame_async(self._writers[index], {"type": "metrics"})
            frame = await asyncio.wait_for(
                read_frame_async(self._readers[index]), timeout=SPAWN_TIMEOUT_S
            )
            if frame is None or frame.get("type") != "metrics":
                raise FleetError(f"worker {index} returned no metrics (got {frame!r})")
            snapshots.append(
                {"metrics": frame["metrics"], "controller": frame["controller"]}
            )
        return snapshots

    def metrics(self) -> ServeMetrics:
        """Fleet-level metrics: workers merged in index order (deterministic),
        plus the front-end's shed count and the fleet wall clock."""
        merged = ServeMetrics()
        for snapshot in self.worker_metrics():
            merged.merge(ServeMetrics.from_dict(snapshot["metrics"]))
        merged.shed += self._shed_total
        if self._fleet_wall is not None:
            merged.finish(self._fleet_wall)
        return merged

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the workers down, close the loop, remove the runtime dir."""
        if self._closed:
            return
        self._closed = True
        if self._loop is not None and not self._loop.is_closed():
            try:
                self._loop.run_until_complete(self._shutdown())
            except Exception:
                pass
            finally:
                self._loop.close()
        for proc in self._procs:
            proc.join(timeout=SHUTDOWN_TIMEOUT_S)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=SHUTDOWN_TIMEOUT_S)
        self._procs.clear()
        if self._owns_runtime_dir:
            shutil.rmtree(self.runtime_dir, ignore_errors=True)

    async def _shutdown(self) -> None:
        for index, writer in enumerate(self._writers):
            try:
                await write_frame_async(writer, {"type": "shutdown"})
                await asyncio.wait_for(
                    read_frame_async(self._readers[index]), timeout=SHUTDOWN_TIMEOUT_S
                )
            except Exception:
                pass
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    def __enter__(self) -> "PerforationFleet":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else ("started" if self._started else "new")
        return (
            f"<PerforationFleet workers={self.workers} "
            f"transport={self.transport!r} {state}>"
        )
