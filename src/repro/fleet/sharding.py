"""Deterministic request routing: compat-key sharding over N workers.

Micro-batching only pays off when compatible requests land on the *same*
worker: the scheduler batches by ``(app, config, work-group, backend,
global size)``, so splitting one of those streams across workers would
halve every batch.  The fleet therefore routes by the request-determined
prefix of that key — application, backend and global size — which we call
the :data:`ShardKey`.  The configuration component is chosen *inside* the
worker by its online controller; because every request of an (app, size)
stream lands on one worker, that controller sees exactly the observation
subsequence the single-process server would see, reproduces its decisions
bit-identically, and the full compat key stays colocated.

Two assignment modes, both deterministic:

* :func:`assign_shard` — a pure function of the shard key (stable SHA-256
  hash modulo worker count): the same key maps to the same worker in every
  process, forever.  This is the fallback for keys the planner has not
  seen.
* :meth:`ShardMap.planned` — longest-processing-time greedy placement over
  per-key request counts, used when the whole trace is known up front
  (:meth:`PerforationFleet.serve_trace <repro.fleet.frontend.
  PerforationFleet.serve_trace>`): keys are placed heaviest-first onto the
  least-loaded worker, which keeps the fleet balanced even when a handful
  of applications dominate the traffic.  Within one plan the mapping is
  still a pure function of the key.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable, Mapping

from ..core.errors import ConfigurationError
from ..serve.requests import ServeRequest

#: (application name, backend name, global size) — the request-determined
#: prefix of the scheduler's batch-compat key.
ShardKey = tuple[str, str, tuple[int, ...]]

#: Application instances used only to compute global sizes for routing.
_app_cache: dict[str, object] = {}


def _resolve_app(name: str):
    app = _app_cache.get(name)
    if app is None:
        from ..apps import get_application

        app = _app_cache[name] = get_application(name)
    return app


def shard_key(request: ServeRequest, backend_name: str) -> ShardKey:
    """The routing key of one request (pure function of the request)."""
    app = _resolve_app(request.app)
    return (request.app, backend_name, tuple(app.global_size(request.inputs)))


def stable_shard_hash(key: ShardKey) -> int:
    """Process-independent integer hash of a shard key (SHA-256 based)."""
    canonical = json.dumps([key[0], key[1], list(key[2])], separators=(",", ":"))
    return int.from_bytes(
        hashlib.sha256(canonical.encode("utf-8")).digest()[:8], "big"
    )


def assign_shard(key: ShardKey, workers: int) -> int:
    """Pure hash assignment: same key and worker count ⇒ same worker."""
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return stable_shard_hash(key) % workers


class ShardMap:
    """Shard-key → worker-index mapping with a pure-hash fallback.

    ``assignment`` pins specific keys (a balanced plan); unknown keys fall
    back to :func:`assign_shard`.  Either way the mapping is deterministic
    and every occurrence of a key routes to the same worker.
    """

    def __init__(
        self, workers: int, assignment: Mapping[ShardKey, int] | None = None
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.assignment: dict[ShardKey, int] = dict(assignment or {})
        for key, index in self.assignment.items():
            if not 0 <= index < workers:
                raise ConfigurationError(
                    f"planned assignment maps {key} to worker {index}, "
                    f"but the fleet has {workers} workers"
                )

    def assign(self, key: ShardKey) -> int:
        """The worker serving ``key`` (planned entry, else stable hash)."""
        planned = self.assignment.get(key)
        if planned is not None:
            return planned
        return assign_shard(key, self.workers)

    # ------------------------------------------------------------------
    @classmethod
    def planned(cls, counts: Mapping[ShardKey, int], workers: int) -> "ShardMap":
        """Balanced placement of known keys (LPT greedy over request counts).

        Keys are sorted heaviest-first (ties broken by the key itself, so
        the plan is a pure function of ``counts``) and placed one by one on
        the currently least-loaded worker.
        """
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        loads = [0] * workers
        assignment: dict[ShardKey, int] = {}
        ordered = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        for key, count in ordered:
            target = min(range(workers), key=lambda index: (loads[index], index))
            assignment[key] = target
            loads[target] += count
        return cls(workers, assignment)

    @classmethod
    def for_trace(
        cls, trace: Iterable[ServeRequest], workers: int, backend_name: str
    ) -> "ShardMap":
        """Balanced plan for a known trace (counts each key's requests)."""
        counts: dict[ShardKey, int] = {}
        for request in trace:
            key = shard_key(request, backend_name)
            counts[key] = counts.get(key, 0) + 1
        return cls.planned(counts, workers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ShardMap workers={self.workers} planned_keys={len(self.assignment)}>"
