"""AST interpreter: runs kernels of the subset on the clsim executor.

The interpreter turns a parsed kernel into a :class:`repro.clsim.Kernel`
whose body executes the AST once per work-item.  Global pointer arguments
are bound to :class:`repro.clsim.Buffer` objects and accessed *linearly*
(as OpenCL pointers are), with bounds checking and access counting;
``__local`` arrays live in the work group's
:class:`repro.clsim.LocalMemory`; private arrays and scalars live in a
per-work-item environment.

Work-group barriers (``barrier(CLK_LOCAL_MEM_FENCE)``) must appear as
expression statements; the interpreter yields
:data:`repro.clsim.kernel.BARRIER` at them, which the executor uses to run
all work-items of a group in lock-step — exactly what the prefetch /
reconstruct / compute phases of the perforated kernels require.
"""

from __future__ import annotations

import math

import numpy as np

from ..clsim.kernel import BARRIER, Kernel, KernelContext
from ..clsim.memory import Buffer
from ..clsim.ndrange import WorkItemId
from . import ast
from .builtins import (
    BUILTIN_CONSTANTS,
    CONTEXT_BUILTINS,
    SYNC_BUILTINS,
    get_builtin,
    is_builtin,
)
from .errors import InterpreterError
from .types import PointerType, ScalarType


class _BreakSignal(Exception):
    """Internal: a ``break`` statement was executed."""


class _ContinueSignal(Exception):
    """Internal: a ``continue`` statement was executed."""


class _ReturnSignal(Exception):
    """Internal: a ``return`` statement was executed."""

    def __init__(self, value) -> None:
        super().__init__("return")
        self.value = value


class _LocalArray:
    """A view of a named tile in the work group's local memory."""

    def __init__(self, ctx: KernelContext, name: str, length: int) -> None:
        self.ctx = ctx
        self.name = name
        self.length = length
        ctx.local.allocate(name, (length,), dtype=np.float64)

    def load(self, index: int) -> float:
        if not 0 <= index < self.length:
            raise InterpreterError(
                f"local array {self.name!r}: index {index} out of bounds [0, {self.length})"
            )
        return float(self.ctx.local.read(self.name, (index,)))

    def store(self, index: int, value: float) -> None:
        if not 0 <= index < self.length:
            raise InterpreterError(
                f"local array {self.name!r}: index {index} out of bounds [0, {self.length})"
            )
        self.ctx.local.write(self.name, (index,), value)


class _PrivateArray:
    """A fixed-size per-work-item array."""

    def __init__(self, name: str, length: int) -> None:
        self.name = name
        self.length = length
        self.values = np.zeros(length, dtype=np.float64)

    def load(self, index: int) -> float:
        if not 0 <= index < self.length:
            raise InterpreterError(
                f"private array {self.name!r}: index {index} out of bounds [0, {self.length})"
            )
        return float(self.values[index])

    def store(self, index: int, value: float) -> None:
        if not 0 <= index < self.length:
            raise InterpreterError(
                f"private array {self.name!r}: index {index} out of bounds [0, {self.length})"
            )
        self.values[index] = value


class _GlobalPointer:
    """Linear (flat) view of a global buffer, as an OpenCL pointer sees it."""

    def __init__(self, buffer: Buffer) -> None:
        self.buffer = buffer
        self._flat = buffer.array.reshape(-1)

    @property
    def length(self) -> int:
        return self._flat.size

    def load(self, index: int) -> float:
        if not 0 <= index < self.length:
            raise InterpreterError(
                f"global buffer {self.buffer.name!r}: index {index} out of bounds "
                f"[0, {self.length})"
            )
        self.buffer.record_reads(1)
        return float(self._flat[index])

    def store(self, index: int, value: float) -> None:
        if not 0 <= index < self.length:
            raise InterpreterError(
                f"global buffer {self.buffer.name!r}: index {index} out of bounds "
                f"[0, {self.length})"
            )
        self.buffer.record_writes(1)
        self._flat[index] = value


class _ConstantArray:
    """A file-scope ``__constant`` array (read-only)."""

    def __init__(self, name: str, values: np.ndarray) -> None:
        self.name = name
        self.values = values

    @property
    def length(self) -> int:
        return self.values.size

    def load(self, index: int) -> float:
        if not 0 <= index < self.length:
            raise InterpreterError(
                f"constant array {self.name!r}: index {index} out of bounds [0, {self.length})"
            )
        return float(self.values[index])

    def store(self, index: int, value: float) -> None:
        raise InterpreterError(f"constant array {self.name!r} is read-only")


_BINARY_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "&&": lambda a, b: bool(a) and bool(b),
    "||": lambda a, b: bool(a) or bool(b),
    "&": lambda a, b: int(a) & int(b),
    "|": lambda a, b: int(a) | int(b),
    "^": lambda a, b: int(a) ^ int(b),
    "<<": lambda a, b: int(a) << int(b),
    ">>": lambda a, b: int(a) >> int(b),
}


class KernelInterpreter:
    """Interprets one kernel of a parsed program."""

    def __init__(self, program: ast.Program, kernel_name: str | None = None) -> None:
        self.program = program
        self.kernel_def = program.kernel(kernel_name)
        self.functions = {f.name: f for f in program.functions}
        self.constants = self._evaluate_file_scope_constants()

    # ------------------------------------------------------------------
    def _evaluate_file_scope_constants(self) -> dict[str, object]:
        constants: dict[str, object] = {}
        for decl_stmt in self.program.globals:
            for decl in decl_stmt.declarations:
                if decl.init is None:
                    raise InterpreterError(
                        f"file-scope variable {decl.name!r} must have an initializer"
                    )
                if isinstance(decl.init, ast.InitList):
                    values = np.array(
                        [self._evaluate_constant(v) for v in decl.init.values],
                        dtype=np.float64,
                    )
                    constants[decl.name] = _ConstantArray(decl.name, values)
                else:
                    constants[decl.name] = self._evaluate_constant(decl.init)
        return constants

    def _evaluate_constant(self, expr: ast.Expr):
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.FloatLiteral):
            return expr.value
        if isinstance(expr, ast.UnaryOp) and expr.op == "-":
            return -self._evaluate_constant(expr.operand)
        if isinstance(expr, ast.BinaryOp) and expr.op in ("+", "-", "*", "/"):
            left = self._evaluate_constant(expr.left)
            right = self._evaluate_constant(expr.right)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            return left / right
        raise InterpreterError("file-scope initializers must be constant expressions")

    # ------------------------------------------------------------------
    def as_clsim_kernel(self, profile_factory=None) -> Kernel:
        """Wrap the kernel as a :class:`repro.clsim.Kernel` (generator body)."""
        arg_names = [p.name for p in self.kernel_def.params]
        interpreter = self

        def body(ctx: KernelContext, wi: WorkItemId):
            yield from interpreter.execute_work_item(ctx, wi)

        return Kernel(
            self.kernel_def.name,
            body,
            arg_names,
            profile_factory,
            ast_program=self.program,
            ast_kernel_name=self.kernel_def.name,
        )

    # ------------------------------------------------------------------
    def execute_work_item(self, ctx: KernelContext, wi: WorkItemId):
        """Generator executing the kernel body for one work-item."""
        env = self._build_environment(ctx)
        try:
            yield from self._exec_block(self.kernel_def.body, env, ctx, wi)
        except _ReturnSignal:
            return

    def _build_environment(self, ctx: KernelContext) -> dict[str, object]:
        env: dict[str, object] = dict(self.constants)
        for param in self.kernel_def.params:
            value = ctx.arg(param.name)
            if isinstance(param.param_type, PointerType):
                if isinstance(value, Buffer):
                    env[param.name] = _GlobalPointer(value)
                elif isinstance(value, (_GlobalPointer, _LocalArray, _ConstantArray)):
                    env[param.name] = value
                else:
                    raise InterpreterError(
                        f"pointer argument {param.name!r} must be bound to a Buffer"
                    )
            else:
                env[param.name] = value
        return env

    # ------------------------------------------------------------------
    # Statements (generators so barriers propagate out of nested blocks).
    # ------------------------------------------------------------------
    def _exec_block(self, block: ast.Block, env, ctx, wi):
        for stmt in block.statements:
            yield from self._exec_stmt(stmt, env, ctx, wi)

    def _exec_stmt(self, stmt: ast.Stmt, env, ctx, wi):
        if isinstance(stmt, ast.DeclStmt):
            for decl in stmt.declarations:
                self._exec_decl(decl, env, ctx, wi)
            return
        if isinstance(stmt, ast.ExprStmt):
            if (
                isinstance(stmt.expr, ast.Call)
                and stmt.expr.name in SYNC_BUILTINS
            ):
                if stmt.expr.name == "barrier":
                    yield BARRIER
                return
            self._eval(stmt.expr, env, ctx, wi)
            return
        if isinstance(stmt, ast.Block):
            yield from self._exec_block(stmt, env, ctx, wi)
            return
        if isinstance(stmt, ast.IfStmt):
            if self._truthy(self._eval(stmt.condition, env, ctx, wi)):
                yield from self._exec_block(stmt.then_body, env, ctx, wi)
            elif stmt.else_body is not None:
                yield from self._exec_block(stmt.else_body, env, ctx, wi)
            return
        if isinstance(stmt, ast.ForStmt):
            yield from self._exec_for(stmt, env, ctx, wi)
            return
        if isinstance(stmt, ast.WhileStmt):
            while self._truthy(self._eval(stmt.condition, env, ctx, wi)):
                try:
                    yield from self._exec_block(stmt.body, env, ctx, wi)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
            return
        if isinstance(stmt, ast.DoWhileStmt):
            while True:
                try:
                    yield from self._exec_block(stmt.body, env, ctx, wi)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if not self._truthy(self._eval(stmt.condition, env, ctx, wi)):
                    break
            return
        if isinstance(stmt, ast.ReturnStmt):
            value = None
            if stmt.value is not None:
                value = self._eval(stmt.value, env, ctx, wi)
            raise _ReturnSignal(value)
        if isinstance(stmt, ast.BreakStmt):
            raise _BreakSignal()
        if isinstance(stmt, ast.ContinueStmt):
            raise _ContinueSignal()
        raise InterpreterError(f"unsupported statement {type(stmt).__name__}")

    def _exec_for(self, stmt: ast.ForStmt, env, ctx, wi):
        if stmt.init is not None:
            yield from self._exec_stmt(stmt.init, env, ctx, wi)
        while True:
            if stmt.condition is not None and not self._truthy(
                self._eval(stmt.condition, env, ctx, wi)
            ):
                break
            try:
                yield from self._exec_block(stmt.body, env, ctx, wi)
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass
            if stmt.step is not None:
                self._eval(stmt.step, env, ctx, wi)

    def _exec_decl(self, decl: ast.VarDecl, env, ctx, wi) -> None:
        if decl.array_size is not None:
            length = int(self._eval(decl.array_size, env, ctx, wi))
            if length <= 0:
                raise InterpreterError(
                    f"array {decl.name!r} must have a positive size, got {length}"
                )
            if decl.address_space == "local":
                env[decl.name] = _LocalArray(ctx, decl.name, length)
            else:
                array = _PrivateArray(decl.name, length)
                if isinstance(decl.init, ast.InitList):
                    for i, value_expr in enumerate(decl.init.values):
                        array.store(i, self._eval(value_expr, env, ctx, wi))
                env[decl.name] = array
            return
        value = 0
        if decl.init is not None:
            value = self._eval(decl.init, env, ctx, wi)
        if isinstance(decl.var_type, ScalarType) and decl.var_type.is_integer:
            value = int(value)
        env[decl.name] = value

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _eval(self, expr: ast.Expr, env, ctx, wi):
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.FloatLiteral):
            return expr.value
        if isinstance(expr, ast.BoolLiteral):
            return 1 if expr.value else 0
        if isinstance(expr, ast.Identifier):
            if expr.name in env:
                return env[expr.name]
            if expr.name in BUILTIN_CONSTANTS:
                return BUILTIN_CONSTANTS[expr.name]
            raise InterpreterError(f"undefined identifier {expr.name!r}")
        if isinstance(expr, ast.UnaryOp):
            return self._eval_unary(expr, env, ctx, wi)
        if isinstance(expr, ast.BinaryOp):
            # && and || short-circuit, exactly as in C; this matters for
            # guard patterns such as ``j >= 0 && window[j] > key``.
            if expr.op == "&&":
                if not self._truthy(self._eval(expr.left, env, ctx, wi)):
                    return 0
                return 1 if self._truthy(self._eval(expr.right, env, ctx, wi)) else 0
            if expr.op == "||":
                if self._truthy(self._eval(expr.left, env, ctx, wi)):
                    return 1
                return 1 if self._truthy(self._eval(expr.right, env, ctx, wi)) else 0
            left = self._eval(expr.left, env, ctx, wi)
            right = self._eval(expr.right, env, ctx, wi)
            return self._apply_binary(expr.op, left, right)
        if isinstance(expr, ast.Assignment):
            return self._eval_assignment(expr, env, ctx, wi)
        if isinstance(expr, ast.Ternary):
            if self._truthy(self._eval(expr.condition, env, ctx, wi)):
                return self._eval(expr.if_true, env, ctx, wi)
            return self._eval(expr.if_false, env, ctx, wi)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env, ctx, wi)
        if isinstance(expr, ast.Index):
            target = self._eval(expr.base, env, ctx, wi)
            index = int(self._eval(expr.index, env, ctx, wi))
            return self._load_indexed(target, index)
        if isinstance(expr, ast.Cast):
            value = self._eval(expr.expr, env, ctx, wi)
            if isinstance(expr.target_type, ScalarType) and expr.target_type.is_integer:
                return int(value)
            if isinstance(expr.target_type, ScalarType) and expr.target_type.is_float:
                return float(value)
            return value
        raise InterpreterError(f"unsupported expression {type(expr).__name__}")

    def _eval_unary(self, expr: ast.UnaryOp, env, ctx, wi):
        if expr.op in ("++", "--"):
            delta = 1 if expr.op == "++" else -1
            old = self._eval(expr.operand, env, ctx, wi)
            self._store_to(expr.operand, old + delta, env, ctx, wi)
            return old if expr.postfix else old + delta
        operand = self._eval(expr.operand, env, ctx, wi)
        if expr.op == "-":
            return -operand
        if expr.op == "+":
            return operand
        if expr.op == "!":
            return 0 if self._truthy(operand) else 1
        if expr.op == "~":
            return ~int(operand)
        raise InterpreterError(f"unsupported unary operator {expr.op!r}")

    def _apply_binary(self, op: str, left, right):
        if op == "/":
            if isinstance(left, int) and isinstance(right, int):
                if right == 0:
                    raise InterpreterError("integer division by zero")
                # C semantics: truncation toward zero, computed exactly in
                # integer arithmetic (float-mediated int(left / right) loses
                # precision beyond 2**53).
                quotient = left // right
                if left % right != 0 and (left < 0) != (right < 0):
                    quotient += 1
                return quotient
            if right == 0:
                raise InterpreterError("division by zero")
            return left / right
        if op == "%":
            if right == 0:
                raise InterpreterError("modulo by zero")
            if isinstance(left, int) and isinstance(right, int):
                return int(math.fmod(left, right))
            return math.fmod(left, right)
        try:
            handler = _BINARY_OPS[op]
        except KeyError as exc:
            raise InterpreterError(f"unsupported binary operator {op!r}") from exc
        result = handler(left, right)
        if isinstance(result, bool):
            return 1 if result else 0
        return result

    def _eval_assignment(self, expr: ast.Assignment, env, ctx, wi):
        value = self._eval(expr.value, env, ctx, wi)
        if expr.op != "=":
            current = self._eval(expr.target, env, ctx, wi)
            value = self._apply_binary(expr.op[:-1], current, value)
        self._store_to(expr.target, value, env, ctx, wi)
        return value

    def _store_to(self, target: ast.Expr, value, env, ctx, wi) -> None:
        if isinstance(target, ast.Identifier):
            if target.name not in env:
                raise InterpreterError(f"assignment to undefined variable {target.name!r}")
            existing = env[target.name]
            if isinstance(existing, int) and not isinstance(value, (bool,)) and isinstance(value, float):
                # follow C: assigning a float to an int variable truncates
                env[target.name] = int(value)
            else:
                env[target.name] = value
            return
        if isinstance(target, ast.Index):
            container = self._eval(target.base, env, ctx, wi)
            index = int(self._eval(target.index, env, ctx, wi))
            self._store_indexed(container, index, value)
            return
        raise InterpreterError("assignment target must be a variable or array element")

    @staticmethod
    def _load_indexed(container, index: int):
        if isinstance(container, (_GlobalPointer, _LocalArray, _PrivateArray, _ConstantArray)):
            return container.load(index)
        raise InterpreterError(f"cannot index value of type {type(container).__name__}")

    @staticmethod
    def _store_indexed(container, index: int, value) -> None:
        if isinstance(container, (_GlobalPointer, _LocalArray, _PrivateArray)):
            container.store(index, float(value))
            return
        raise InterpreterError(f"cannot assign into value of type {type(container).__name__}")

    # ------------------------------------------------------------------
    def _eval_call(self, call: ast.Call, env, ctx, wi):
        name = call.name
        if name in CONTEXT_BUILTINS:
            dim = int(self._eval(call.args[0], env, ctx, wi)) if call.args else 0
            return self._context_query(name, dim, ctx, wi)
        if name in SYNC_BUILTINS:
            raise InterpreterError(
                "barrier()/mem_fence() may only appear as standalone statements"
            )
        if is_builtin(name):
            builtin = get_builtin(name)
            args = [self._eval(arg, env, ctx, wi) for arg in call.args]
            try:
                return builtin.impl(*args)
            except Exception as exc:
                raise InterpreterError(f"built-in {name!r} failed: {exc}") from exc
        if name in self.functions:
            return self._call_user_function(self.functions[name], call, env, ctx, wi)
        raise InterpreterError(f"call to unknown function {name!r}")

    @staticmethod
    def _context_query(name: str, dim: int, ctx: KernelContext, wi: WorkItemId) -> int:
        if name == "get_global_id":
            return wi.global_id[dim]
        if name == "get_local_id":
            return wi.local_id[dim]
        if name == "get_group_id":
            return wi.group_id[dim]
        if name == "get_global_size":
            return ctx.get_global_size(dim)
        if name == "get_local_size":
            return ctx.get_local_size(dim)
        if name == "get_num_groups":
            return ctx.get_num_groups(dim)
        raise InterpreterError(f"unknown context built-in {name!r}")  # pragma: no cover

    def _call_user_function(self, func: ast.FunctionDef, call: ast.Call, env, ctx, wi):
        if len(call.args) != len(func.params):
            raise InterpreterError(
                f"function {func.name!r} expects {len(func.params)} arguments, "
                f"got {len(call.args)}"
            )
        callee_env: dict[str, object] = dict(self.constants)
        for param, arg in zip(func.params, call.args):
            callee_env[param.name] = self._eval(arg, env, ctx, wi)
        try:
            for _ in self._exec_block(func.body, callee_env, ctx, wi):
                raise InterpreterError(
                    f"helper function {func.name!r} may not contain barriers"
                )
        except _ReturnSignal as signal:
            return signal.value
        return 0

    @staticmethod
    def _truthy(value) -> bool:
        return bool(value)


def compile_kernel(source: str, kernel_name: str | None = None, profile_factory=None) -> Kernel:
    """Parse ``source`` and return an executable :class:`repro.clsim.Kernel`."""
    from .parser import parse_program

    program = parse_program(source)
    return KernelInterpreter(program, kernel_name).as_clsim_kernel(profile_factory)
