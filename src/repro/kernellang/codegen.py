"""Codegen execution backend: kernellang AST -> specialized NumPy Python source.

The vectorized backend (:mod:`repro.kernellang.vectorize`) removed the
per-work-item interpretation cost, but it still *walks the AST* for every
work group: each statement pays isinstance dispatch, environment-dict
lookups and recursive ``eval`` calls.  This module removes that remaining
interpretive overhead the way array-DSL compilers do: it lowers each
(kernel source, work-group shape, batched?) triple **once** into flat
Python source built from batched NumPy operations, compiles it with
``compile()``/``exec()`` and runs the resulting function per work group.

The lowering is a pretty-printer over the shared pass pipeline
(:mod:`repro.kernellang.passes` — see ``docs/ir.md``):

* the **uniformity analysis**
  (:class:`~repro.kernellang.passes.uniformity.UniformityAnalysis`, which
  this module's emitter subclasses) classifies every variable as *uniform*
  (same value in every lane: literals, scalar kernel arguments,
  ``get_group_id`` / size queries, and anything computed only from those)
  or *varying* (per-lane).  Uniform values become plain Python scalars —
  their arithmetic follows the scalar interpreter exactly — and
  uniform-trip-count loops become plain Python loops with no mask
  machinery at all;
* varying values are ``(lanes,)`` ``int64``/``float64`` arrays exactly as
  in the vectorized backend; divergent ``if``/``for``/``while``/``do-while``
  (including ``break``/``continue``/``return``) are emitted as the
  **mask-insertion pass** (:mod:`repro.kernellang.passes.masking`) — the
  same algebra :class:`~repro.kernellang.vectorize.VectorizedKernel` runs
  dynamically, and the generated source calls back into the very same
  merge/arithmetic kernels by name, so outputs, error behaviour and
  :class:`~repro.clsim.executor.ExecutionStats` counters stay bit-identical;
* global buffers / local tiles / private arrays become the shared memory
  views (:mod:`repro.kernellang.passes.memory`), with fast unmasked entry
  points selected statically for full-mask code, recording exactly one
  access per active lane;
* helper functions are inlined at the call site (straight-line helpers
  keep uniformity; anything with control flow is inlined in masked form);
* the work-group shape is baked in (``get_local_size`` folds to a
  constant), and a separate variant is lowered for batched launches whose
  containers are the **batching transform**'s segmented views
  (:mod:`repro.kernellang.passes.batching`), routing every lane into its
  own request segment.

Lowered sources are cached three deep: per :class:`~repro.clsim.kernel.Kernel`
object, process-wide by content key (``_FN_MEMO``), and on disk through
:mod:`repro.api.artifacts` so repeated sweeps and serve sessions skip
lowering entirely.

Kernels the lowering cannot specialize (for example a non-literal dimension
argument to ``get_global_id``) raise :class:`LoweringError`; the ``codegen``
execution backend catches it and falls back to the vectorized backend, so
the backend never changes observable behaviour.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..clsim.errors import BarrierDivergenceError
from ..clsim.kernel import Kernel, KernelContext
from ..clsim.memory import Buffer
from . import ast
from .builtins import (
    BUILTIN_CONSTANTS,
    CONTEXT_BUILTINS,
    SYNC_BUILTINS,
    is_builtin,
)
from .clgen import generate as clgen_generate
from .errors import InterpreterError
from .interpreter import KernelInterpreter, _ConstantArray
from .ir import (
    BUILTIN_RESULT_DT,
    CONTEXT_FIELDS,
    LoweringError,
    Scope,
    ScopeView,
    Value,
    join_kind,
    promote_dt,
)
from .passes.batching import SegLocalView, lane_requests, segmented_global_view
from .passes.masking import (
    VECTOR_BUILTINS,
    FnFlow,
    VectorFallback,
    builtin_impl,
    decl_scalar,
    full_assign,
    int_truncate,
    masked_assign,
    merge_parts,
    uniform_assign,
    uniform_call,
    uniform_div,
    uniform_mod,
    varying_div,
    varying_mod,
)
from .passes.memory import ConstantView, GlobalView, LocalView, PrivateView
from .passes.uniformity import UniformityAnalysis
from .types import PointerType, ScalarType

_INT = np.int64
_FLOAT = np.float64

#: Bump when the lowering or the runtime contract changes: invalidates every
#: on-disk artifact (stale entries simply miss).
CODEGEN_FORMAT_VERSION = 2

__all__ = [
    "CODEGEN_FORMAT_VERSION",
    "CodegenKernel",
    "LoweringError",
    "artifact_key",
    "codegen_kernel",
    "lower_kernel",
]


# ---------------------------------------------------------------------------
# Runtime namespace of the generated source
# ---------------------------------------------------------------------------
def _exec_namespace() -> dict:
    """Globals dict the compiled artifact sources are executed in.

    The artifact source contains no imports: every runtime name resolves
    through this namespace.  (Real builtins are required — NumPy's truth
    tests reach for them — so artifact *integrity* rests on the content
    key and the header check, not on namespace isolation.)
    """
    import builtins

    return {
        "__builtins__": builtins,
        "_np": np,
        "_I": _INT,
        "_F": _FLOAT,
        "_CPrivate": PrivateView,
        "_ONCE": (0,),
        "_VB": VECTOR_BUILTINS,
        "_VF": VectorFallback,
        "_BI_IMPL": builtin_impl,
        "_ucall": uniform_call,
        "_udiv": uniform_div,
        "_umod": uniform_mod,
        "_vdiv": varying_div,
        "_vmod": varying_mod,
        "_vtrunc": int_truncate,
        "_uassign": uniform_assign,
        "_afull": full_assign,
        "_amask": masked_assign,
        "_decl_scalar": decl_scalar,
        "_merge_parts": merge_parts,
        "_FnFlow": FnFlow,
        "_IErr": InterpreterError,
        "_BDE": BarrierDivergenceError,
        "int": int,
        "float": float,
        "isinstance": isinstance,
        "min": min,
        "max": max,
        "abs": abs,
        "round": round,
    }


# ---------------------------------------------------------------------------
# Per-group runtime state handed to the generated function
# ---------------------------------------------------------------------------
_LID_CACHE: dict = {}
_MASK_CACHE: dict = {}


def _lid_arrays(local_size: tuple[int, ...], batch: int):
    """Per-dimension local-id index arrays (cached, read-only by contract)."""
    key = (local_size, batch)
    cached = _LID_CACHE.get(key)
    if cached is not None:
        return cached
    rank = len(local_size)
    group = 1
    for extent in local_size:
        group *= extent
    lids = []
    for dim in range(rank):
        inner = 1
        for lower in range(dim):
            inner *= local_size[lower]
        lid = np.tile(np.repeat(np.arange(local_size[dim], dtype=_INT), inner), group // (inner * local_size[dim]))
        lids.append(np.tile(lid, batch) if batch > 1 else lid)
    lane_request = lane_requests(batch, group)
    result = (group, tuple(lids), lane_request)
    _LID_CACHE[key] = result
    return result


def _masks(lanes: int):
    cached = _MASK_CACHE.get(lanes)
    if cached is None:
        cached = _MASK_CACHE[lanes] = (
            np.ones(lanes, dtype=bool),
            np.zeros(lanes, dtype=bool),
        )
    return cached


class _Runtime:
    """Everything a generated group function reads: ids, sizes, containers."""

    __slots__ = (
        "L", "M0", "Z", "gid", "lid", "grp", "gsz", "lsz", "ngrp",
        "c", "s", "local",
    )


def _build_runtime(
    constants_containers: dict,
    params,
    ctx: KernelContext,
    ndrange,
    group_id: tuple[int, ...],
    batch: int | None,
) -> _Runtime:
    rt = _Runtime()
    effective_batch = batch or 1
    group, lids, lane_request = _lid_arrays(ndrange.local_size, effective_batch)
    rt.L = group * effective_batch
    rt.M0, rt.Z = _masks(rt.L)
    rt.lid = lids
    rt.gid = tuple(
        lids[dim] + group_id[dim] * ndrange.local_size[dim]
        for dim in range(ndrange.rank)
    )
    rt.grp = tuple(int(g) for g in group_id)
    rt.gsz = ndrange.global_size
    rt.lsz = ndrange.local_size
    rt.ngrp = ndrange.num_groups
    rt.c = dict(constants_containers)
    rt.s = {}
    for param in params:
        value = ctx.arg(param.name)
        if isinstance(param.param_type, PointerType):
            if not isinstance(value, Buffer):
                raise InterpreterError(
                    f"pointer argument {param.name!r} must be bound to a Buffer"
                )
            if batch is None:
                rt.c[param.name] = GlobalView(value)
            else:
                rt.c[param.name] = segmented_global_view(value, batch, lane_request)
        else:
            rt.s[param.name] = value
    if batch is None:
        rt.local = lambda name, length: LocalView(ctx.local, name, length)
    else:
        rt.local = lambda name, length: SegLocalView(
            ctx.local, name, length, lane_request * length, batch
        )
    return rt


# ---------------------------------------------------------------------------
# Lowering: AST -> specialized Python source
# ---------------------------------------------------------------------------
class _Emitter(UniformityAnalysis):
    """Emission half of the lowering (classification lives in the base)."""

    def __init__(
        self,
        program: ast.Program,
        kernel_name: str | None,
        local_size: tuple[int, ...],
        batched: bool,
    ) -> None:
        super().__init__(program, kernel_name, local_size, batched)
        self.lines: list[str] = []
        self.depth = 0
        self.counter = 0
        self.binds: dict[str, str] = {}  # module-level built-in bindings
        self.used_ids: set[str] = set()  # prologue ids: g0, l1, G0, S0, N0

        # Emission context.
        self.mask = "M0"
        self.div = False
        self.in_function = False
        self.fnflow: str | None = None
        self.retref: str | None = None
        self.loops: list[dict] = []

    # -- small utilities ------------------------------------------------
    def _tmp(self, prefix: str = "_t") -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def _line(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def _push(self) -> None:
        self.depth += 1

    def _pop(self) -> None:
        self.depth -= 1

    def _bind(self, name: str, code: str) -> str:
        """Module-level binding in the artifact (built-in lookups etc.)."""
        if name not in self.binds:
            self.binds[name] = code
        return name

    # -- capture/splice for lazily evaluated sub-expressions -------------
    def _capture_expr(self, fn):
        saved_lines, saved_depth = self.lines, self.depth
        self.lines, self.depth = [], 0
        try:
            result = fn()
        finally:
            captured, self.lines, self.depth = self.lines, saved_lines, saved_depth
        return captured, result

    def _splice(self, captured: list[str]) -> None:
        pad = "    " * self.depth
        for line in captured:
            self.lines.append(pad + line)

    # -- value plumbing ---------------------------------------------------
    def _promote(self, v: Value) -> str:
        """Code for ``v`` as a (lanes,) array."""
        return f"_np.full(L, {v.code})" if v.kind == "u" else v.code

    def _idx_code(self, v: Value) -> str:
        """Index operand: int scalar (uniform) or int64 array (varying)."""
        if v.kind == "u":
            return v.code if v.dt == "i" else f"int({v.code})"
        if v.dt == "i":
            return v.code
        return f"_np.asarray({v.code}).astype(_I)"

    def _int_code(self, v: Value) -> str:
        if v.kind == "u":
            return v.code if v.dt == "i" else f"int({v.code})"
        return v.code if v.dt == "i" else f"({v.code}).astype(_I)"

    # -- entry point ------------------------------------------------------
    def lower(self) -> str:
        scope = self.kernel_scope()
        self._classify(self.kernel_def.body, scope, False, False)

        self.depth = 1
        self._emit_block(self.kernel_def.body.statements, scope)
        self._line("return _b")
        body = self.lines

        out: list[str] = [
            f"# repro-codegen artifact (format v{CODEGEN_FORMAT_VERSION})",
            f"# kernel: {self.kernel_def.name}  local_size={self.local_size}"
            f"  batched={self.batched}",
        ]
        for name in sorted(self.binds):
            out.append(f"{name} = {self.binds[name]}")
        out.append("")
        out.append("def kernel_group(rt):")
        prologue = ["L = rt.L", "M0 = rt.M0", "_Z = rt.Z", "_b = 0"]
        dims = {"gid": "g", "lid": "l", "grp": "G", "gsz": "S", "ngrp": "N"}
        for field, short in dims.items():
            for dim in range(len(self.local_size)):
                ident = f"{short}{dim}"
                if ident in self.used_ids:
                    prologue.append(f"{ident} = rt.{field}[{dim}]")
        for param in self.kernel_def.params:
            name = param.name
            if isinstance(param.param_type, PointerType):
                prologue.append(f"c_{name} = rt.c[{name!r}]")
            elif scope.kind.get(name) == "v":
                prologue.append(f"v_{name} = _np.full(L, rt.s[{name!r}])")
            else:
                prologue.append(f"v_{name} = rt.s[{name!r}]")
        for name, value in self.constants.items():
            if isinstance(value, _ConstantArray):
                prologue.append(f"kc_{name} = rt.c[{name!r}]")
            else:
                prologue.append(f"k_{name} = {value!r}")
        if self.has_masked_return:
            prologue.append("_ret = _Z")
        prebound = {p.name for p in self.kernel_def.params} | set(self.constants)
        for name in sorted(scope.divdecl - prebound):
            py = scope.py.get(name)
            if py:
                prologue.append(f"{py} = None")
        for line in prologue:
            out.append("    " + line)
        out.extend(body)
        out.append("")
        return "\n".join(out)

    # -- statements -------------------------------------------------------
    def _suite(self, emit_fn) -> None:
        """Emit an indented suite, inserting ``pass`` if it came out empty."""
        self._push()
        mark = len(self.lines)
        emit_fn()
        if len(self.lines) == mark:
            self._line("pass")
        self._pop()

    def _emit_block(self, stmts, scope: Scope) -> None:
        for index, stmt in enumerate(stmts):
            self._emit_stmt(stmt, scope)
            rest = stmts[index + 1:]
            if rest and self.div and self._stmt_kills(stmt):
                entry = self.mask
                self._line(f"if {entry}.any():")

                def emit_rest():
                    self._emit_block(rest, scope)
                    if self.mask != entry:
                        self._line(f"{entry} = {self.mask}")

                self._suite(emit_rest)
                self.mask = entry
                return

    def _emit_stmt(self, stmt, scope: Scope) -> None:
        if isinstance(stmt, ast.DeclStmt):
            for decl in stmt.declarations:
                self._emit_decl(decl, scope)
            return
        if isinstance(stmt, ast.ExprStmt):
            if isinstance(stmt.expr, ast.Call) and stmt.expr.name in SYNC_BUILTINS:
                if stmt.expr.name == "barrier":
                    self._emit_barrier()
                return
            value = self._emit_expr(stmt.expr, scope)
            if not value.code.isidentifier():
                self._line(value.code)
            return
        if isinstance(stmt, ast.Block):
            self._emit_block(stmt.statements, scope)
            return
        if isinstance(stmt, ast.IfStmt):
            self._emit_if(stmt, scope)
            return
        if isinstance(stmt, ast.ForStmt):
            self._emit_loop(stmt, scope, init=stmt.init, step=stmt.step)
            return
        if isinstance(stmt, ast.WhileStmt):
            self._emit_loop(stmt, scope)
            return
        if isinstance(stmt, ast.DoWhileStmt):
            self._emit_loop(stmt, scope, check_first=False)
            return
        if isinstance(stmt, ast.ReturnStmt):
            self._emit_return(stmt, scope)
            return
        if isinstance(stmt, ast.BreakStmt):
            self._emit_break()
            return
        if isinstance(stmt, ast.ContinueStmt):
            self._emit_continue()
            return
        raise self._unsupported(f"statement {type(stmt).__name__}")

    def _emit_barrier(self) -> None:
        if self.in_function:
            self._line('raise _IErr("helper functions may not contain barriers")')
            return
        if self.div or self.has_masked_return:
            check = f"not {self.mask}.all()"
            if self.has_masked_return:
                check = f"_ret.any() or {check}"
            self._line(f"if {check}:")
            self._push()
            self._line(
                'raise _BDE("work-items of the group reached different '
                'numbers of barriers")'
            )
            self._pop()
        self._line("_b += 1")

    def _emit_decl(self, decl: ast.VarDecl, scope: Scope) -> None:
        name = decl.name
        if decl.array_size is not None:
            size = self._emit_expr(decl.array_size, scope)
            if size.kind == "v":
                raise self._unsupported(f"array {name!r} with a varying size")
            if isinstance(decl.array_size, ast.IntLiteral):
                if decl.array_size.value <= 0:
                    raise self._unsupported(f"array {name!r} with size <= 0")
                length = str(decl.array_size.value)
            else:
                length = self._tmp("_n")
                self._line(f"{length} = int({size.code})")
                self._line(f"if {length} <= 0:")
                self._push()
                self._line(
                    f'raise _IErr("array {name!r} must have a positive size, '
                    f'got " + str({length}))'
                )
                self._pop()
            py = scope.py.get(name)
            if not py:
                py = f"a{self._next_id()}_{name}"
                scope.py[name] = py
            if decl.address_space == "local":
                scope.space[name] = "local"
                self._line(f"{py} = rt.local({name!r}, {length})")
            else:
                scope.space[name] = "private"
                self._line(f"{py} = _CPrivate({name!r}, {length}, L)")
                if isinstance(decl.init, ast.InitList):
                    for position, value_expr in enumerate(decl.init.values):
                        value = self._emit_expr(value_expr, scope)
                        if self.div:
                            self._line(
                                f"{py}.storem({position}, {value.code}, {self.mask})"
                            )
                        else:
                            self._line(f"{py}.storef({position}, {value.code})")
            return

        if decl.init is not None:
            value = self._emit_expr(decl.init, scope)
        else:
            value = Value("0", "u", "i")
        is_int = isinstance(decl.var_type, ScalarType) and decl.var_type.is_integer
        py = scope.py.get(name)
        if not py:
            py = f"v{self._next_id()}_{name}"
            scope.py[name] = py
        if scope.kind.get(name, "u") == "u":
            code = value.code
            if is_int:
                code = f"int({code})"
            self._line(f"{py} = {code}")
            return
        # Varying slot: promote uniforms, apply the declared-int cast.
        if value.kind == "u":
            code = f"int({value.code})" if is_int else value.code
            code = f"_np.full(L, {code})"
        else:
            code = value.code
            if is_int:
                code = f"_np.asarray({code}).astype(_I)"
        if self.div:
            self._line(f"{py} = _decl_scalar({py}, {code}, {self.mask})")
        else:
            self._line(f"{py} = {code}")

    def _next_id(self) -> int:
        self.counter += 1
        return self.counter

    def _emit_if(self, stmt: ast.IfStmt, scope: Scope) -> None:
        cond = self._emit_expr(stmt.condition, scope)
        if cond.kind == "u":
            # Masked kills inside a uniform branch (a varying sub-if with a
            # return, say) reassign the current mask to a temp defined only
            # inside that Python branch; pre-bind a merge variable so the
            # fall-through path always has a defined mask.
            masked_kills = self._body_has_masked_kills(
                stmt.then_body, scope, self.div
            ) or (
                stmt.else_body is not None
                and self._body_has_masked_kills(stmt.else_body, scope, self.div)
            )
            entry_mask, entry_div = self.mask, self.div
            merge = None
            if masked_kills:
                merge = self._tmp("_m")
                self._line(f"{merge} = {self.mask}")
                self.mask = merge

            def emit_uniform_branch(body):
                self.mask, self.div = merge or entry_mask, entry_div
                self._emit_block(body.statements, scope)
                if merge is not None and self.mask != merge:
                    self._line(f"{merge} = {self.mask}")

            self._line(f"if {cond.code}:")
            self._suite(lambda: emit_uniform_branch(stmt.then_body))
            if stmt.else_body is not None:
                self._line("else:")
                self._suite(lambda: emit_uniform_branch(stmt.else_body))
            if masked_kills:
                self.mask, self.div = merge, True
            else:
                self.mask, self.div = entry_mask, entry_div
            return
        test = self._tmp("_c")
        self._line(f"{test} = ({cond.code}) != 0")
        then_mask = self._tmp("_m")
        self._line(f"{then_mask} = {self.mask} & {test}")
        kills = self._contains_kills(stmt.then_body) or (
            stmt.else_body is not None and self._contains_kills(stmt.else_body)
        )
        else_mask = None
        if stmt.else_body is not None or kills:
            else_mask = self._tmp("_m")
            self._line(f"{else_mask} = {self.mask} & ~{test}")
        entry_mask, entry_div = self.mask, self.div

        def emit_branch(mask_var, body):
            self.mask, self.div = mask_var, True
            self._emit_block(body.statements, scope)
            if self.mask != mask_var:
                self._line(f"{mask_var} = {self.mask}")

        self._line(f"if {then_mask}.any():")
        self._suite(lambda: emit_branch(then_mask, stmt.then_body))
        if stmt.else_body is not None:
            self._line(f"if {else_mask}.any():")
            self._suite(lambda: emit_branch(else_mask, stmt.else_body))
        if kills:
            merged = self._tmp("_m")
            self._line(f"{merged} = {then_mask} | {else_mask}")
            self.mask, self.div = merged, True
        else:
            self.mask, self.div = entry_mask, entry_div

    def _emit_loop(self, stmt, scope: Scope, init=None, step=None,
                   check_first: bool = True) -> None:
        entry_mask, entry_div = self.mask, self.div
        if init is not None:
            self._emit_stmt(init, scope)
        if self._loop_masked(stmt, scope, self.div):
            self._emit_masked_loop(stmt, scope, step, check_first)
            return
        # Uniform loop: plain Python control flow, no masks.
        need_once = self._has_direct(stmt.body, ast.ContinueStmt)
        if isinstance(stmt, ast.WhileStmt):
            need_once = False  # `continue` maps to Python continue directly
        need_flag = need_once and self._has_direct(stmt.body, ast.BreakStmt)
        flag = self._tmp("_bk") if need_flag else None
        self._line("while True:")
        self._push()
        if check_first and stmt.condition is not None:
            cond = self._emit_expr(stmt.condition, scope)
            self._line(f"if not ({cond.code}):")
            self._push()
            self._line("break")
            self._pop()
        if flag:
            self._line(f"{flag} = False")
        self.loops.append({
            "masked": False, "once": need_once, "flag": flag,
            "python_while": isinstance(stmt, ast.WhileStmt),
        })
        if need_once:
            self._line("for _once in _ONCE:")
            self._suite(lambda: self._emit_block(stmt.body.statements, scope))
        else:
            mark = len(self.lines)
            self._emit_block(stmt.body.statements, scope)
            if len(self.lines) == mark and (not check_first or stmt.condition is None):
                self._line("pass")
        self.loops.pop()
        if flag:
            self._line(f"if {flag}:")
            self._push()
            self._line("break")
            self._pop()
        if step is not None:
            value = self._emit_expr(step, scope)
            if not value.code.isidentifier():
                self._line(value.code)
        if not check_first and stmt.condition is not None:
            cond = self._emit_expr(stmt.condition, scope)
            self._line(f"if not ({cond.code}):")
            self._push()
            self._line("break")
            self._pop()
        self._pop()
        self.mask, self.div = entry_mask, entry_div

    def _has_direct(self, block, node_type, in_inner=False) -> bool:
        """Whether ``block`` has a break/continue binding to *this* loop."""
        for stmt in block.statements:
            if isinstance(stmt, node_type) and not in_inner:
                return True
            if isinstance(stmt, ast.Block):
                if self._has_direct(stmt, node_type, in_inner):
                    return True
            elif isinstance(stmt, ast.IfStmt):
                if self._has_direct(stmt.then_body, node_type, in_inner):
                    return True
                if stmt.else_body is not None and self._has_direct(
                    stmt.else_body, node_type, in_inner
                ):
                    return True
            elif isinstance(stmt, (ast.ForStmt, ast.WhileStmt, ast.DoWhileStmt)):
                if self._has_direct(stmt.body, node_type, True):
                    return True
        return False

    def _emit_masked_loop(self, stmt, scope: Scope, step, check_first) -> None:
        entry_mask, entry_div = self.mask, self.div
        active = self._tmp("_ma")
        self._line(f"{active} = {entry_mask}")
        first = None
        if not check_first and stmt.condition is not None:
            first = self._tmp("_fr")
            self._line(f"{first} = True")
        self._line(f"while {active}.any():")
        self._push()
        if stmt.condition is not None:
            if first:
                self._line(f"if not {first}:")
                self._push()
            self.mask, self.div = active, True
            cond = self._emit_expr(stmt.condition, scope)
            self._line(f"{active} = {active} & (({cond.code}) != 0)")
            self._line(f"if not {active}.any():")
            self._push()
            self._line("break")
            self._pop()
            if first:
                self._pop()
                self._line(f"{first} = False")
        cont = self._tmp("_mc")
        self._line(f"{cont} = _Z")
        body_mask = self._tmp("_mx")
        self._line(f"{body_mask} = {active}")
        self.loops.append({"masked": True, "cont": cont})
        self.mask, self.div = body_mask, True
        self._emit_block(stmt.body.statements, scope)
        if self.mask != body_mask:
            self._line(f"{body_mask} = {self.mask}")
        self.loops.pop()
        self._line(f"{active} = {body_mask} | {cont}")
        if step is not None:
            self._line(f"if {active}.any():")
            self._push()
            self.mask, self.div = active, True
            value = self._emit_expr(step, scope)
            if not value.code.isidentifier():
                self._line(value.code)
            self._pop()
        self._pop()
        if self._count_returns(stmt.body):
            after = self._tmp("_m")
            self._line(f"{after} = {entry_mask} & ~{self.retref or '_ret'}")
            self.mask, self.div = after, True
        else:
            self.mask, self.div = entry_mask, entry_div

    def _emit_return(self, stmt: ast.ReturnStmt, scope: Scope) -> None:
        value = None
        if stmt.value is not None:
            value = self._emit_expr(stmt.value, scope)
        if self.in_function:
            arr = "None" if value is None else self._promote(value)
            self._line(f"{self.fnflow}.record({self.mask}, {arr})")
            self._line(f"{self.mask} = _Z")
            return
        if not self.div:
            if value is not None and not value.code.isidentifier():
                self._line(value.code)
            self._line("return _b")
            return
        if value is not None and not value.code.isidentifier():
            self._line(value.code)
        self._line(f"_ret = _ret | {self.mask}")
        self._line(f"{self.mask} = _Z")

    def _emit_break(self) -> None:
        if not self.loops:
            raise self._unsupported("break outside of a loop")
        loop = self.loops[-1]
        if loop["masked"]:
            self._line(f"{self.mask} = _Z")
        elif loop.get("flag"):
            self._line(f"{loop['flag']} = True")
            self._line("break")
        else:
            self._line("break")

    def _emit_continue(self) -> None:
        if not self.loops:
            raise self._unsupported("continue outside of a loop")
        loop = self.loops[-1]
        if loop["masked"]:
            self._line(f"{loop['cont']} = {loop['cont']} | {self.mask}")
            self._line(f"{self.mask} = _Z")
        elif loop.get("python_while"):
            self._line("continue")
        else:
            self._line("break")  # exits the _ONCE wrapper, falls to the step

    # -- expressions ------------------------------------------------------
    def _emit_expr(self, expr, scope: Scope) -> Value:
        if isinstance(expr, ast.IntLiteral):
            return Value(repr(expr.value), "u", "i")
        if isinstance(expr, ast.FloatLiteral):
            return Value(repr(expr.value), "u", "f")
        if isinstance(expr, ast.BoolLiteral):
            return Value("1" if expr.value else "0", "u", "i")
        if isinstance(expr, ast.Identifier):
            name = expr.name
            if name in scope.space:
                return Value(scope.py[name], "c", scope.space[name])
            if name in scope.kind:
                py = scope.py.get(name)
                if not py:
                    raise self._unsupported(f"use of {name!r} before its declaration")
                return Value(py, scope.kind[name], scope.dt.get(name, "x"))
            if name in BUILTIN_CONSTANTS:
                value = BUILTIN_CONSTANTS[name]
                return Value(repr(value), "u", "i" if isinstance(value, int) else "f")
            raise self._unsupported(f"undefined identifier {name!r}")
        if isinstance(expr, ast.UnaryOp):
            return self._emit_unary(expr, scope)
        if isinstance(expr, ast.BinaryOp):
            return self._emit_binary(expr, scope)
        if isinstance(expr, ast.Assignment):
            return self._emit_assignment(expr, scope)
        if isinstance(expr, ast.Ternary):
            return self._emit_ternary(expr, scope)
        if isinstance(expr, ast.Call):
            return self._emit_call(expr, scope)
        if isinstance(expr, ast.Index):
            return self._emit_load_index(expr, scope)
        if isinstance(expr, ast.Cast):
            value = self._emit_expr(expr.expr, scope)
            if isinstance(expr.target_type, ScalarType) and expr.target_type.is_integer:
                if value.kind == "u":
                    return Value(f"int({value.code})", "u", "i")
                return Value(f"_np.asarray({value.code}).astype(_I)", "v", "i")
            if isinstance(expr.target_type, ScalarType) and expr.target_type.is_float:
                if value.kind == "u":
                    return Value(f"float({value.code})", "u", "f")
                return Value(f"_np.asarray({value.code}).astype(_F)", "v", "f")
            return value
        raise self._unsupported(f"expression {type(expr).__name__}")

    def _emit_unary(self, expr: ast.UnaryOp, scope: Scope) -> Value:
        if expr.op in ("++", "--"):
            delta = "1" if expr.op == "++" else "-1"
            old = self._emit_expr(expr.operand, scope)
            old_t = self._tmp()
            self._line(f"{old_t} = {old.code}")
            dt = promote_dt(old.dt, "i") if old.dt != "x" else "x"
            new_t = self._tmp()
            self._line(f"{new_t} = {old_t} + ({delta})")
            self._store_to(expr.operand, Value(new_t, old.kind, dt), scope)
            result = old_t if expr.postfix else new_t
            return Value(result, old.kind, old.dt if expr.postfix else dt)
        operand = self._emit_expr(expr.operand, scope)
        if expr.op == "-":
            return Value(f"(-({operand.code}))", operand.kind, operand.dt)
        if expr.op == "+":
            return operand
        if expr.op == "!":
            if operand.kind == "u":
                return Value(f"(0 if {operand.code} else 1)", "u", "i")
            return Value(f"(~(({operand.code}) != 0)).astype(_I)", "v", "i")
        if expr.op == "~":
            return Value(f"(~{self._int_code(operand)})", operand.kind, "i")
        raise self._unsupported(f"unary operator {expr.op!r}")

    def _emit_binary(self, expr: ast.BinaryOp, scope: Scope) -> Value:
        op = expr.op
        if op in ("&&", "||"):
            return self._emit_logical(expr, scope)
        left = self._emit_expr(expr.left, scope)
        right = self._emit_expr(expr.right, scope)
        return self._apply_binary(op, left, right)

    def _apply_binary(self, op: str, left: Value, right: Value) -> Value:
        kind = join_kind(left.kind, right.kind)
        if op == "/":
            if kind == "u":
                return Value(f"_udiv({left.code}, {right.code})", "u",
                          self._c_binop_dt("/", left.dt, right.dt))
            return Value(f"_vdiv({left.code}, {right.code}, {self.mask})", "v",
                      self._c_binop_dt("/", left.dt, right.dt))
        if op == "%":
            if kind == "u":
                return Value(f"_umod({left.code}, {right.code})", "u",
                          self._c_binop_dt("%", left.dt, right.dt))
            return Value(f"_vmod({left.code}, {right.code}, {self.mask})", "v",
                      self._c_binop_dt("%", left.dt, right.dt))
        if op in ("+", "-", "*"):
            return Value(f"(({left.code}) {op} ({right.code}))", kind,
                      promote_dt(left.dt, right.dt))
        if op in ("<", ">", "<=", ">=", "==", "!="):
            if kind == "u":
                return Value(f"int(({left.code}) {op} ({right.code}))", "u", "i")
            return Value(f"((({left.code}) {op} ({right.code})).astype(_I))", "v", "i")
        if op in ("&", "|", "^", "<<", ">>"):
            lc, rc = self._int_code(left), self._int_code(right)
            return Value(f"(({lc}) {op} ({rc}))", kind, "i")
        raise self._unsupported(f"binary operator {op!r}")

    def _emit_logical(self, expr: ast.BinaryOp, scope: Scope) -> Value:
        is_and = expr.op == "&&"
        left = self._emit_expr(expr.left, scope)
        kind, _ = self._c_expr(expr, ScopeView(scope), self.div)
        if kind == "u":
            captured, right = self._capture_expr(
                lambda: self._emit_expr(expr.right, scope)
            )
            if not captured:
                if is_and:
                    code = f"((1 if ({right.code}) else 0) if ({left.code}) else 0)"
                else:
                    code = f"(1 if ({left.code}) else (1 if ({right.code}) else 0))"
                return Value(code, "u", "i")
            out = self._tmp()
            if is_and:
                self._line(f"{out} = 0")
                self._line(f"if ({left.code}):")
                self._push()
                self._splice(captured)
                self._line(f"{out} = 1 if ({right.code}) else 0")
                self._pop()
            else:
                self._line(f"{out} = 1")
                self._line(f"if not ({left.code}):")
                self._push()
                self._splice(captured)
                self._line(f"{out} = 1 if ({right.code}) else 0")
                self._pop()
            return Value(out, "u", "i")
        # Varying result: the vectorized backend's masked short-circuit.
        out = self._tmp()
        self._line(f"{out} = _np.zeros(L, _I)")
        right_mask = self._tmp("_m")
        test = self._tmp("_c")
        self._line(f"{test} = (({left.code}) != 0)")
        if left.kind == "u":
            if is_and:
                self._line(f"{right_mask} = {self.mask} if {test} else _Z")
            else:
                self._line(f"if {test}:")
                self._push()
                self._line(f"{out}[{self.mask}] = 1")
                self._pop()
                self._line(f"{right_mask} = _Z if {test} else {self.mask}")
        else:
            if is_and:
                self._line(f"{right_mask} = {self.mask} & {test}")
            else:
                self._line(f"{out}[{self.mask} & {test}] = 1")
                self._line(f"{right_mask} = {self.mask} & ~{test}")
        self._line(f"if {right_mask}.any():")
        self._push()
        saved_mask, saved_div = self.mask, self.div
        self.mask, self.div = right_mask, True
        right = self._emit_expr(expr.right, scope)
        self._line(f"{out}[{right_mask} & (({right.code}) != 0)] = 1")
        self.mask, self.div = saved_mask, saved_div
        self._pop()
        return Value(out, "v", "i")

    def _emit_assignment(self, expr: ast.Assignment, scope: Scope) -> Value:
        value = self._emit_expr(expr.value, scope)
        if expr.op != "=":
            current = self._emit_expr(expr.target, scope)
            value = self._apply_binary(expr.op[:-1], current, value)
        value = self._materialize(value)
        self._store_to(expr.target, value, scope)
        return value

    def _materialize(self, value: Value) -> Value:
        """Bind a composite expression to a temp so it is evaluated once."""
        if value.code.isidentifier() or value.code.replace(".", "", 1).isdigit():
            return value
        name = self._tmp()
        self._line(f"{name} = {value.code}")
        return Value(name, value.kind, value.dt)

    def _store_to(self, target, value: Value, scope: Scope) -> None:
        if isinstance(target, ast.Identifier):
            self._store_ident(target.name, value, scope)
            return
        if isinstance(target, ast.Index):
            self._store_index(target, value, scope)
            return
        raise self._unsupported("assignment target")

    def _store_ident(self, name: str, value: Value, scope: Scope) -> None:
        if name not in scope.kind:
            raise self._unsupported(f"assignment to undefined variable {name!r}")
        py = scope.py.get(name)
        if not py:
            raise self._unsupported(f"assignment to {name!r} before its declaration")
        target_dt = scope.dt.get(name, "x")
        if scope.kind[name] == "u":
            if target_dt == "i" and value.dt == "f":
                self._line(f"{py} = int({value.code})")
            elif target_dt == "x" or value.dt == "x":
                self._line(f"{py} = _uassign({py}, {value.code})")
            else:
                self._line(f"{py} = {value.code}")
            return
        code = self._promote(value)
        if self.div:
            self._line(f"{py} = _amask({py}, {code}, {self.mask})")
            return
        if target_dt == "i":
            if value.dt == "f" or (value.kind == "u" and value.dt != "i"):
                code = (f"int({value.code})" if value.kind == "u"
                        else f"({value.code}).astype(_I)")
                code = f"_np.full(L, {code})" if value.kind == "u" else code
                self._line(f"{py} = {code}")
            elif value.dt == "x":
                self._line(f"{py} = _vtrunc({code})")
            else:
                self._line(f"{py} = {code}")
        elif target_dt == "x":
            self._line(f"{py} = _afull({py}, {code})")
        else:
            self._line(f"{py} = {code}")

    def _container(self, base, scope: Scope):
        value = self._emit_expr(base, scope)
        if value.kind != "c":
            raise self._unsupported("indexing a non-array value")
        return value

    def _store_index(self, target: ast.Index, value: Value, scope: Scope) -> None:
        container = self._container(target.base, scope)
        index = self._emit_expr(target.index, scope)
        space = container.dt  # the container Value carries the space in .dt
        py = container.code
        seg = self.batched and space in ("global", "local")
        if index.kind == "u" and not seg and space != "private":
            idx = self._idx_code(index)
            if self.div:
                self._line(f"{py}.storeum({idx}, {value.code}, {self.mask})")
            else:
                self._line(f"{py}.storeu({idx}, {value.code}, L)")
            return
        idx = self._idx_code(index)
        if self.div:
            self._line(f"{py}.storem({idx}, {value.code}, {self.mask})")
        else:
            self._line(f"{py}.storef({idx}, {value.code})")

    def _emit_load_index(self, expr: ast.Index, scope: Scope) -> Value:
        container = self._container(expr.base, scope)
        index = self._emit_expr(expr.index, scope)
        space = container.dt
        py = container.code
        seg = self.batched and space in ("global", "local")
        varying_result = space == "private" or seg or index.kind == "v"
        idx = self._idx_code(index)
        if index.kind == "u" and not seg and space != "private":
            if self.div:
                code = f"{py}.loadum({idx}, {self.mask})"
            else:
                code = f"{py}.loadu({idx}, L)"
            return Value(code, "u", "f")
        if self.div:
            code = f"{py}.loadm({idx}, {self.mask})"
        else:
            code = f"{py}.loadf({idx})"
        return Value(code, "v" if varying_result else "u", "f")

    def _emit_ternary(self, expr: ast.Ternary, scope: Scope) -> Value:
        cond = self._emit_expr(expr.condition, scope)
        if cond.kind == "u":
            cap_a, a = self._capture_expr(lambda: self._emit_expr(expr.if_true, scope))
            cap_b, b = self._capture_expr(lambda: self._emit_expr(expr.if_false, scope))
            kind = join_kind(a.kind, b.kind)
            if not cap_a and not cap_b and kind == "u":
                return Value(
                    f"(({a.code}) if ({cond.code}) else ({b.code}))",
                    "u", promote_dt(a.dt, b.dt),
                )
            out = self._tmp()
            self._line(f"if ({cond.code}):")
            self._push()
            self._splice(cap_a)
            code_a = self._promote(a) if kind == "v" else a.code
            self._line(f"{out} = {code_a}")
            self._pop()
            self._line("else:")
            self._push()
            self._splice(cap_b)
            code_b = self._promote(b) if kind == "v" else b.code
            self._line(f"{out} = {code_b}")
            self._pop()
            return Value(out, kind, promote_dt(a.dt, b.dt))
        test = self._tmp("_c")
        self._line(f"{test} = (({cond.code}) != 0)")
        mask_t = self._tmp("_m")
        mask_f = self._tmp("_m")
        self._line(f"{mask_t} = {self.mask} & {test}")
        self._line(f"{mask_f} = {self.mask} & ~{test}")
        parts = self._tmp("_p")
        self._line(f"{parts} = []")
        saved_mask, saved_div = self.mask, self.div
        for arm_mask, arm_expr in ((mask_t, expr.if_true), (mask_f, expr.if_false)):
            self._line(f"if {arm_mask}.any():")
            self._push()
            self.mask, self.div = arm_mask, True
            arm = self._emit_expr(arm_expr, scope)
            self._line(f"{parts}.append(({arm_mask}, {self._promote(arm)}))")
            self.mask, self.div = saved_mask, saved_div
            self._pop()
        out = self._tmp()
        self._line(f"{out} = _merge_parts(L, {parts})")
        return Value(out, "v", promote_dt(
            self._c_expr(expr.if_true, ScopeView(scope), True)[1],
            self._c_expr(expr.if_false, ScopeView(scope), True)[1],
        ))

    # -- calls ------------------------------------------------------------
    def _emit_call(self, call: ast.Call, scope: Scope) -> Value:
        name = call.name
        if name in CONTEXT_BUILTINS:
            dim = self._context_dim(call)
            field = CONTEXT_FIELDS[name]
            if field == "lsz":
                return Value(str(self.local_size[dim]), "u", "i")
            short = {"gid": "g", "lid": "l", "grp": "G", "gsz": "S", "ngrp": "N"}[field]
            ident = f"{short}{dim}"
            self.used_ids.add(ident)
            if field in ("gid", "lid"):
                return Value(ident, "v", "i")
            return Value(ident, "u", "i")
        if name in SYNC_BUILTINS:
            raise self._unsupported("barrier()/mem_fence() inside an expression")
        if is_builtin(name):
            args = [self._emit_expr(arg, scope) for arg in call.args]
            if any(arg.kind == "c" for arg in args):
                raise self._unsupported(f"array argument to built-in {name!r}")
            kinds = [arg.kind for arg in args]
            dts = [arg.dt for arg in args]
            cls = BUILTIN_RESULT_DT.get(name, "x")
            dt = {"p": promote_dt(*dts) if dts else "i", "f": "f",
                  "i": "i", "x": "x"}[cls]
            uniform = not kinds or join_kind(*kinds) == "u"
            if uniform:
                impl = self._bind(f"_bi_{name}", f"_BI_IMPL({name!r})")
                arg_code = ", ".join(arg.code for arg in args)
                return Value(f"_ucall({name!r}, {impl}, {arg_code})", "u", dt)
            if name in VECTOR_BUILTINS:
                fn = self._bind(f"_vb_{name}", f"_VB[{name!r}]")
                arg_code = ", ".join(arg.code for arg in args)
                return Value(f"{fn}({self.mask}, {arg_code})", "v", dt)
            fn = self._bind(f"_vf_{name}", f"_VF({name!r})")
            arg_code = ", ".join(self._promote(arg) for arg in args)
            return Value(f"{fn}({self.mask}, {arg_code})", "v", dt)
        if name in self.functions:
            return self._emit_user_call(self.functions[name], call, scope)
        raise self._unsupported(f"call to unknown function {name!r}")

    def _emit_user_call(self, func: ast.FunctionDef, call: ast.Call,
                        scope: Scope) -> Value:
        arg_values = [self._emit_expr(arg, scope) for arg in call.args]
        arg_sigs = tuple(
            ("c", v.dt) if v.kind == "c" else (v.kind, v.dt) for v in arg_values
        )
        kind, dt, simple = self._fn_summary(func, arg_sigs, self.div)
        callee = self._callee_scope(func, arg_sigs)
        for param, v in zip(func.params, arg_values):
            if v.kind == "c":
                callee.py[param.name] = v.code
            else:
                bound = self._tmp("_a")
                self._line(f"{bound} = {v.code}")
                callee.py[param.name] = bound
        self._inline_stack.append(func.name)
        try:
            if simple:
                self._classify(func.body, callee, self.div, in_function=True)
                simple_prebound = {p.name for p in func.params} | set(self.constants)
                for name in sorted(callee.divdecl - simple_prebound):
                    py = callee.py.get(name)
                    if not py:
                        py = f"v{self._next_id()}_{name}"
                        callee.py[name] = py
                    self._line(f"{py} = None")
                for stmt in func.body.statements[:-1]:
                    self._emit_stmt_in_function(stmt, callee)
                result = self._emit_expr(func.body.statements[-1].value, callee)
                return self._materialize(Value(result.code, kind, dt))
            self._classify(func.body, callee, True, in_function=True)
            flow = self._tmp("_ff")
            self._line(f"{flow} = _FnFlow(L)")
            fn_mask = self._tmp("_m")
            self._line(f"{fn_mask} = {self.mask}")
            fn_prebound = {p.name for p in func.params} | set(self.constants)
            for name in sorted(callee.divdecl - fn_prebound):
                py = callee.py.get(name)
                if not py:
                    py = f"v{self._next_id()}_{name}"
                    callee.py[name] = py
                self._line(f"{py} = None")
            saved = (self.mask, self.div, self.in_function, self.fnflow,
                     self.retref, self.loops)
            self.mask, self.div = fn_mask, True
            self.in_function, self.fnflow = True, flow
            self.retref, self.loops = f"{flow}.returned", []
            self._emit_block(func.body.statements, callee)
            (self.mask, self.div, self.in_function, self.fnflow,
             self.retref, self.loops) = saved
            out = self._tmp()
            self._line(f"{out} = {flow}.result()")
            return Value(out, "v", dt)
        finally:
            self._inline_stack.pop()

    def _emit_stmt_in_function(self, stmt, callee: Scope) -> None:
        saved = self.in_function
        self.in_function = True
        try:
            self._emit_stmt(stmt, callee)
        finally:
            self.in_function = saved


# ---------------------------------------------------------------------------
# Kernel-level entry points
# ---------------------------------------------------------------------------
#: Process-wide memo of compiled group functions, keyed by artifact key, so
#: re-perforating the same (kernel, config) — as sweeps and serve sessions
#: do — skips lowering, disk access and compilation entirely.
_FN_MEMO: dict[str, object] = {}


def lower_kernel(
    program: ast.Program,
    kernel_name: str | None = None,
    local_size: tuple[int, ...] = (1,),
    batched: bool = False,
) -> str:
    """Lower one kernel of ``program`` to specialized Python source."""
    lowering = _Emitter(program, kernel_name, tuple(int(v) for v in local_size), batched)
    return lowering.lower()


def artifact_key(
    cl_source: str,
    kernel_name: str,
    local_size: tuple[int, ...],
    batched: bool,
) -> str:
    """Content hash identifying one lowered artifact.

    Keyed on the canonical (OpenCL C) form of the program — which embeds
    the perforation configuration, since the transforms rewrote the AST —
    plus the kernel name, the baked work-group shape, the batched flag and
    the lowering format version.
    """
    blob = (
        f"repro-codegen|v{CODEGEN_FORMAT_VERSION}|{kernel_name}|"
        f"{tuple(local_size)}|{int(batched)}|{cl_source}"
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _compile_artifact(source: str, key: str):
    """Compile + exec an artifact source; ``None`` if it is corrupt.

    Any failure counts — not just ``SyntaxError``: a damaged artifact can
    parse fine yet raise at module-exec time, and must still be treated as
    a miss so the caller drops it and lowers fresh.
    """
    try:
        code = compile(source, f"<repro-codegen:{key[:12]}>", "exec")
        namespace = _exec_namespace()
        exec(code, namespace)
        fn = namespace.get("kernel_group")
        return fn if callable(fn) else None
    except Exception:
        return None


class CodegenKernel:
    """Executes one kernellang kernel through generated specialized source.

    One instance exists per :class:`~repro.clsim.kernel.Kernel`; the actual
    compiled group functions are specialized per (work-group shape,
    batched?) on first use and shared process-wide by content key.
    """

    def __init__(self, program: ast.Program, kernel_name: str | None = None) -> None:
        self.program = program
        self.kernel_def = program.kernel(kernel_name)
        self.constants = KernelInterpreter(program, self.kernel_def.name).constants
        self.cl_source = clgen_generate(program)
        self.const_containers = {
            name: ConstantView(name, value.values)
            for name, value in self.constants.items()
            if isinstance(value, _ConstantArray)
        }
        self._fns: dict = {}

    # ------------------------------------------------------------------
    def function(self, local_size: tuple[int, ...], batched: bool):
        """The compiled group function for one work-group shape."""
        shape_key = (tuple(local_size), batched)
        fn = self._fns.get(shape_key)
        if fn is not None:
            return fn
        key = artifact_key(
            self.cl_source, self.kernel_def.name, shape_key[0], batched
        )
        fn = _FN_MEMO.get(key)
        if fn is None:
            from ..api.artifacts import default_cache
            from ..obs.trace import get_tracer

            with get_tracer().span(
                "codegen.artifact",
                category="lowering",
                kernel=self.kernel_def.name,
                local_size=list(shape_key[0]),
                batched=batched,
            ) as span:
                cache = default_cache()
                source = cache.get(key) if cache is not None else None
                from_cache = source is not None
                if source is None:
                    source = lower_kernel(
                        self.program, self.kernel_def.name, shape_key[0], batched
                    )
                fn = _compile_artifact(source, key)
                if fn is None and from_cache:
                    # Corrupt/stale on-disk artifact: drop it and lower fresh.
                    cache.invalidate(key)
                    source = lower_kernel(
                        self.program, self.kernel_def.name, shape_key[0], batched
                    )
                    from_cache = False
                    fn = _compile_artifact(source, key)
                if fn is None:
                    raise LoweringError(
                        f"generated source for kernel {self.kernel_def.name!r} "
                        f"failed to compile"
                    )
                if cache is not None and not from_cache:
                    cache.put(key, source)
                span.set(source="disk-cache" if from_cache else "lowered")
                _FN_MEMO[key] = fn
        self._fns[shape_key] = fn
        return fn

    # ------------------------------------------------------------------
    def run_group(self, ctx: KernelContext, ndrange, group_id) -> int:
        """Run all work-items of one group; returns the number of barriers."""
        fn = self.function(ndrange.local_size, batched=False)
        rt = _build_runtime(
            self.const_containers, self.kernel_def.params, ctx, ndrange,
            tuple(group_id), None,
        )
        with np.errstate(all="ignore"):
            return fn(rt)

    def run_group_batch(self, ctx: KernelContext, ndrange, group_id, batch: int) -> int:
        """Run one work group of ``batch`` stacked compatible launches."""
        if batch <= 0:
            raise InterpreterError(f"batch must be positive, got {batch}")
        fn = self.function(ndrange.local_size, batched=True)
        rt = _build_runtime(
            self.const_containers, self.kernel_def.params, ctx, ndrange,
            tuple(group_id), batch,
        )
        with np.errstate(all="ignore"):
            return fn(rt) * batch


def codegen_kernel(kernel: Kernel) -> CodegenKernel:
    """Return (building and caching on first use) the codegen form of a
    :class:`~repro.clsim.kernel.Kernel` that carries its kernellang AST."""
    cached = getattr(kernel, "_codegen", None)
    if cached is not None:
        return cached
    program = getattr(kernel, "ast_program", None)
    if program is None:
        raise InterpreterError(
            f"kernel {kernel.name!r} carries no kernellang AST; only kernels "
            "compiled from kernellang source can run on the codegen backend"
        )
    compiled = CodegenKernel(program, getattr(kernel, "ast_kernel_name", None))
    kernel._codegen = compiled
    return compiled
