"""Token definitions for the OpenCL C subset.

The kernel language is a small but realistic subset of OpenCL C: enough to
express the stencil/map kernels evaluated in the paper (Gaussian, Sobel,
Median, Hotspot, Inversion) and the code the perforation passes generate
(local-memory prefetch loops, barriers, reconstruction arithmetic).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Lexical categories."""

    IDENT = "identifier"
    KEYWORD = "keyword"
    INT_LITERAL = "int-literal"
    FLOAT_LITERAL = "float-literal"
    PUNCT = "punctuation"
    EOF = "eof"


#: Reserved words of the subset (type names, qualifiers, statements,
#: OpenCL address-space qualifiers).
KEYWORDS = frozenset(
    {
        "void",
        "int",
        "uint",
        "long",
        "float",
        "double",
        "bool",
        "char",
        "uchar",
        "short",
        "ushort",
        "size_t",
        "const",
        "if",
        "else",
        "for",
        "while",
        "do",
        "return",
        "break",
        "continue",
        "true",
        "false",
        "__kernel",
        "kernel",
        "__global",
        "global",
        "__local",
        "local",
        "__constant",
        "constant",
        "__private",
        "private",
        "restrict",
        "volatile",
        "struct",
    }
)

#: Multi-character punctuators, longest first so the lexer can use greedy
#: matching.
PUNCTUATORS = (
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "<<",
    ">>",
    "->",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    "?",
    ":",
    "=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "!",
    "&",
    "|",
    "^",
    "~",
    ".",
)


@dataclass(frozen=True)
class SourceLocation:
    """Line/column position of a token in the kernel source."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    kind: TokenKind
    text: str
    location: SourceLocation

    @property
    def int_value(self) -> int:
        """Integer value of an INT_LITERAL token (supports hex and the
        ``u``/``U``/``l``/``L`` integer suffixes)."""
        text = self.text.rstrip("uUlL")
        # A bare "0x" prefix with the digits stripped cannot happen: the
        # lexer only emits INT_LITERAL for complete literals.
        return int(text, 0)

    @property
    def float_value(self) -> float:
        """Float value of a FLOAT_LITERAL token (strips the ``f`` suffix)."""
        text = self.text
        if text.endswith(("f", "F")):
            text = text[:-1]
        return float(text)

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind.value}:{self.text!r}@{self.location}"
