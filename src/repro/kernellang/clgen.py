"""OpenCL C code generation from the AST.

The code generator turns (possibly transformed) kernel ASTs back into
OpenCL C source.  This is how the perforation framework produces an
artefact a user could compile with a real OpenCL runtime: the perforated +
reconstructed kernels emitted by :mod:`repro.kernellang.transforms` are
valid OpenCL C for the subset we support.

The emitted source is also the *canonical form* of a program: the codegen
execution backend (:mod:`repro.kernellang.codegen`) hashes it to key its
on-disk artifact cache, so two ASTs that print identically share one
compiled artifact.
"""

from __future__ import annotations

from . import ast
from .errors import KernelLangError
from .types import ArrayType, PointerType, ScalarType, Type

_INDENT = "    "


def _format_float(value: float) -> str:
    """Format a float literal with an explicit ``f`` suffix (OpenCL style)."""
    if value == int(value) and abs(value) < 1e16:
        return f"{value:.1f}f"
    return f"{value!r}f"


def _address_space_prefix(space: str) -> str:
    if space == "private":
        return ""
    return f"__{space} "


class CodeGenerator:
    """Pretty-prints AST nodes as OpenCL C."""

    def __init__(self, indent: str = _INDENT) -> None:
        self.indent = indent

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------
    def format_type(self, t: Type) -> str:
        if isinstance(t, ScalarType):
            return t.name
        if isinstance(t, PointerType):
            const = "const " if t.is_const else ""
            return f"{_address_space_prefix(t.address_space)}{const}{self.format_type(t.pointee)}*"
        if isinstance(t, ArrayType):
            return f"{_address_space_prefix(t.address_space)}{self.format_type(t.element)}"
        raise KernelLangError(f"cannot format type {t!r}")

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def expr(self, node: ast.Expr) -> str:
        if isinstance(node, ast.IntLiteral):
            return str(node.value)
        if isinstance(node, ast.FloatLiteral):
            return _format_float(node.value)
        if isinstance(node, ast.BoolLiteral):
            return "true" if node.value else "false"
        if isinstance(node, ast.Identifier):
            return node.name
        if isinstance(node, ast.UnaryOp):
            operand = self._maybe_paren(node.operand)
            if node.postfix:
                return f"{operand}{node.op}"
            return f"{node.op}{operand}"
        if isinstance(node, ast.BinaryOp):
            left = self._maybe_paren(node.left)
            right = self._maybe_paren(node.right)
            return f"{left} {node.op} {right}"
        if isinstance(node, ast.Assignment):
            return f"{self.expr(node.target)} {node.op} {self.expr(node.value)}"
        if isinstance(node, ast.Ternary):
            return (
                f"({self._maybe_paren(node.condition)} ? "
                f"{self.expr(node.if_true)} : {self.expr(node.if_false)})"
            )
        if isinstance(node, ast.Call):
            args = ", ".join(self.expr(a) for a in node.args)
            return f"{node.name}({args})"
        if isinstance(node, ast.Index):
            return f"{self._maybe_paren(node.base)}[{self.expr(node.index)}]"
        if isinstance(node, ast.Cast):
            return f"({self.format_type(node.target_type)})({self.expr(node.expr)})"
        if isinstance(node, ast.InitList):
            return "{" + ", ".join(self.expr(v) for v in node.values) + "}"
        raise KernelLangError(f"cannot generate code for {type(node).__name__}")

    def _maybe_paren(self, node: ast.Expr) -> str:
        text = self.expr(node)
        # UnaryOp must be parenthesized too: ``-(-v)`` would otherwise print
        # as ``--v`` (predecrement) — wrong C, and a silent collision for
        # everything keyed on this canonical source (the codegen artifact
        # cache hashes it).
        if isinstance(
            node,
            (ast.BinaryOp, ast.Assignment, ast.Ternary, ast.UnaryOp),
        ):
            return f"({text})"
        return text

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def stmt(self, node: ast.Stmt, level: int = 0) -> list[str]:
        pad = self.indent * level
        if isinstance(node, ast.DeclStmt):
            return [pad + self._decl_stmt(node)]
        if isinstance(node, ast.ExprStmt):
            return [pad + self.expr(node.expr) + ";"]
        if isinstance(node, ast.Block):
            lines = [pad + "{"]
            for child in node.statements:
                lines.extend(self.stmt(child, level + 1))
            lines.append(pad + "}")
            return lines
        if isinstance(node, ast.IfStmt):
            lines = [pad + f"if ({self.expr(node.condition)}) {{"]
            for child in node.then_body.statements:
                lines.extend(self.stmt(child, level + 1))
            if node.else_body is not None:
                lines.append(pad + "} else {")
                for child in node.else_body.statements:
                    lines.extend(self.stmt(child, level + 1))
            lines.append(pad + "}")
            return lines
        if isinstance(node, ast.ForStmt):
            init = ""
            if node.init is not None:
                if isinstance(node.init, ast.DeclStmt):
                    init = self._decl_stmt(node.init).rstrip(";")
                elif isinstance(node.init, ast.ExprStmt):
                    init = self.expr(node.init.expr)
            cond = self.expr(node.condition) if node.condition is not None else ""
            step = self.expr(node.step) if node.step is not None else ""
            lines = [pad + f"for ({init}; {cond}; {step}) {{"]
            for child in node.body.statements:
                lines.extend(self.stmt(child, level + 1))
            lines.append(pad + "}")
            return lines
        if isinstance(node, ast.WhileStmt):
            lines = [pad + f"while ({self.expr(node.condition)}) {{"]
            for child in node.body.statements:
                lines.extend(self.stmt(child, level + 1))
            lines.append(pad + "}")
            return lines
        if isinstance(node, ast.DoWhileStmt):
            lines = [pad + "do {"]
            for child in node.body.statements:
                lines.extend(self.stmt(child, level + 1))
            lines.append(pad + f"}} while ({self.expr(node.condition)});")
            return lines
        if isinstance(node, ast.ReturnStmt):
            if node.value is None:
                return [pad + "return;"]
            return [pad + f"return {self.expr(node.value)};"]
        if isinstance(node, ast.BreakStmt):
            return [pad + "break;"]
        if isinstance(node, ast.ContinueStmt):
            return [pad + "continue;"]
        raise KernelLangError(f"cannot generate code for {type(node).__name__}")

    def _decl_stmt(self, node: ast.DeclStmt) -> str:
        parts = []
        for decl in node.declarations:
            parts.append(self._declarator(decl))
        # Declarations with different base types cannot be merged; the parser
        # only produces homogeneous DeclStmts, so joining is safe.
        if len(parts) == 1:
            return parts[0] + ";"
        return "; ".join(parts) + ";"

    def _declarator(self, decl: ast.VarDecl) -> str:
        prefix = _address_space_prefix(decl.address_space)
        const = "const " if decl.is_const else ""
        if isinstance(decl.var_type, PointerType):
            type_text = self.format_type(decl.var_type)
            text = f"{const}{type_text} {decl.name}"
        else:
            type_text = self.format_type(decl.var_type)
            text = f"{prefix}{const}{type_text} {decl.name}"
        if decl.array_size is not None:
            text += f"[{self.expr(decl.array_size)}]"
        if decl.init is not None:
            text += f" = {self.expr(decl.init)}"
        return text

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def param(self, node: ast.Param) -> str:
        if isinstance(node.param_type, PointerType):
            return f"{self.format_type(node.param_type)} {node.name}"
        if isinstance(node.param_type, ArrayType):
            return (
                f"{self.format_type(node.param_type)} {node.name}"
                f"[{node.param_type.length}]"
            )
        return f"{self.format_type(node.param_type)} {node.name}"

    def function(self, node: ast.FunctionDef) -> str:
        qualifier = "__kernel " if node.is_kernel else ""
        params = ", ".join(self.param(p) for p in node.params)
        header = f"{qualifier}{self.format_type(node.return_type)} {node.name}({params}) {{"
        lines = [header]
        for stmt in node.body.statements:
            lines.extend(self.stmt(stmt, 1))
        lines.append("}")
        return "\n".join(lines)

    def program(self, node: ast.Program) -> str:
        chunks = []
        for decl in node.globals:
            chunks.append(self._decl_stmt(decl))
        for func in node.functions:
            chunks.append(self.function(func))
        return "\n\n".join(chunks) + "\n"


def generate(node: ast.Node) -> str:
    """Generate OpenCL C source for a program, function, statement or expression."""
    gen = CodeGenerator()
    if isinstance(node, ast.Program):
        return gen.program(node)
    if isinstance(node, ast.FunctionDef):
        return gen.function(node)
    if isinstance(node, ast.Stmt):
        return "\n".join(gen.stmt(node))
    if isinstance(node, ast.Expr):
        return gen.expr(node)
    raise KernelLangError(f"cannot generate code for {type(node).__name__}")
