"""Typed value model of the kernellang lowering — the shared kernel IR.

Every backend beyond the reference interpreter executes kernels *lane-wise*:
all work-items of a work group advance together, and each kernel value is
either **uniform** (one Python scalar shared by every lane) or **varying**
(a ``(lanes,)`` NumPy array).  This module defines that typed value model —
the vocabulary the pass pipeline (:mod:`repro.kernellang.passes`) and the
compiled backends (:mod:`repro.kernellang.vectorize`,
:mod:`repro.kernellang.codegen`) talk to each other in:

* the **kind** lattice ``"u"`` (uniform) < ``"v"`` (varying), plus ``"c"``
  for container-valued names (buffers, tiles, arrays) which are never
  first-class values;
* the **dtype** lattice ``"i"`` (int64 / Python int) and ``"f"`` (float64 /
  Python float), with ``"x"`` for statically unknown (resolved dynamically,
  with the scalar interpreter's truncation rules);
* :class:`Value` — one lowered value: a backend-defined payload (a Python
  code fragment for the codegen printer; arrays/scalars for an evaluator)
  tagged with its static kind and dtype;
* :class:`Scope` — the per-function-body symbol table the uniformity pass
  fills in and every consumer reads;
* the dtype transfer functions (:func:`join_kind`, :func:`promote_dt`,
  :func:`binop_dtype`) and the built-in result-dtype table
  (:data:`BUILTIN_RESULT_DT`), which encode the scalar interpreter's
  arithmetic semantics once for all backends.

Invariant: kinds and dtypes only ever go *up* the lattice (uniform may
become varying, ``i``/``f`` may become ``x`` — never the reverse), which is
what makes the uniformity fixpoint of
:mod:`repro.kernellang.passes.uniformity` converge.

See ``docs/ir.md`` for the backend-author contract.
"""

from __future__ import annotations

from .errors import KernelLangError

#: Value kinds: uniform (one scalar per group), varying (one value per
#: lane), container (a buffer/tile/array name — not a first-class value).
UNIFORM = "u"
VARYING = "v"
CONTAINER = "c"

#: Static dtypes: int, float, unknown (resolved dynamically at run time).
DT_INT = "i"
DT_FLOAT = "f"
DT_ANY = "x"

#: Container address spaces (the ``dt`` slot of a container-kinded Value).
SPACE_GLOBAL = "global"
SPACE_LOCAL = "local"
SPACE_PRIVATE = "private"
SPACE_CONSTANT = "constant"


class LoweringError(KernelLangError):
    """The pass pipeline cannot specialize this program.

    Raised at lowering time, never mid-execution: the caller can always
    fall back to a dynamic backend before any lane has run.
    """


class Value:
    """One lowered value: backend-defined payload + static kind + dtype.

    ``code`` is whatever the consuming backend computes with — the codegen
    printer stores a Python expression string; an evaluating backend would
    store the scalar/array itself.  ``kind`` is ``"u"``/``"v"``/``"c"``;
    for containers, ``dt`` carries the address space instead of a dtype.
    """

    __slots__ = ("code", "kind", "dt")

    def __init__(self, code, kind: str, dt: str) -> None:
        self.code = code
        self.kind = kind
        self.dt = dt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Value({self.code!r}, kind={self.kind!r}, dt={self.dt!r})"


class Scope:
    """Per-function-body symbol table filled in by the uniformity pass.

    ``kind``/``dt`` classify every scalar variable; ``space`` maps
    container names to their address space; ``py`` maps names to their
    backend-side binding (the emitted Python identifier for the codegen
    printer); ``divdecl`` collects variables first declared under a
    divergent mask, which consumers must pre-bind before entering the
    divergent region.
    """

    __slots__ = ("kind", "dt", "space", "py", "divdecl")

    def __init__(self) -> None:
        self.kind: dict[str, str] = {}
        self.dt: dict[str, str] = {}
        self.space: dict[str, str] = {}
        self.py: dict[str, str] = {}
        self.divdecl: set[str] = set()


class ScopeView:
    """Read-only snapshot of a scope for side-effect-free kind queries.

    Loop-shape decisions re-classify sub-expressions speculatively; the
    view copies the mutable kind/dt maps so those queries cannot disturb
    the real scope, and sets ``optimistic`` so identifiers that have not
    been declared yet (nested declarations ahead of the fixpoint) default
    to uniform instead of erroring — the fixpoint re-checks once their
    real kind is known (kinds only ever go up).
    """

    __slots__ = ("kind", "dt", "space", "py", "divdecl", "optimistic")

    def __init__(self, scope: Scope) -> None:
        self.kind = dict(scope.kind)
        self.dt = dict(scope.dt)
        self.space = scope.space
        self.py = scope.py
        self.divdecl = set()
        self.optimistic = True


def join_kind(*kinds: str) -> str:
    """Least upper bound on the kind lattice: varying absorbs uniform."""
    return VARYING if VARYING in kinds else UNIFORM


def promote_dt(*dts: str) -> str:
    """Least upper bound on the dtype lattice (``x`` absorbs everything)."""
    if DT_ANY in dts:
        return DT_ANY
    return DT_FLOAT if DT_FLOAT in dts else DT_INT


def binop_dtype(op: str, ldt: str, rdt: str) -> str:
    """Static result dtype of a binary operator under interpreter semantics.

    Comparisons, logical and bitwise operators always yield int; ``/`` and
    ``%`` yield int only for int/int operands (C semantics); the arithmetic
    operators promote.
    """
    if op in ("<", ">", "<=", ">=", "==", "!=", "&&", "||", "&", "|", "^", "<<", ">>"):
        return DT_INT
    if op == "/":
        if ldt == DT_INT and rdt == DT_INT:
            return DT_INT
        return DT_ANY if DT_ANY in (ldt, rdt) else DT_FLOAT
    if op == "%":
        if ldt == DT_INT and rdt == DT_INT:
            return DT_INT
        return DT_ANY if DT_ANY in (ldt, rdt) else DT_FLOAT
    return promote_dt(ldt, rdt)


#: Result dtype class of each built-in under the interpreter's scalar
#: semantics: 'p' promotes from the argument dtypes (min/max return an
#: operand), 'f' always yields float, 'i' always yields int.
BUILTIN_RESULT_DT = {
    "min": "p",
    "max": "p",
    "fmin": "p",
    "fmax": "p",
    "clamp": "p",
    "abs": "p",
    "fabs": "p",
    "mad": "p",
    "fma": "p",
    "mix": "p",
    "select": "p",
    "sign": "f",
    "sqrt": "f",
    "rsqrt": "f",
    "exp": "f",
    "log": "f",
    "pow": "f",
    "sin": "f",
    "cos": "f",
    "tan": "f",
    "native_divide": "f",
    "hypot": "f",
    "floor": "i",
    "ceil": "i",
    "round": "i",
}

#: Runtime field backing each context query built-in.
CONTEXT_FIELDS = {
    "get_global_id": "gid",
    "get_local_id": "lid",
    "get_group_id": "grp",
    "get_global_size": "gsz",
    "get_local_size": "lsz",
    "get_num_groups": "ngrp",
}
