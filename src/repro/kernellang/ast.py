"""Abstract syntax tree for the OpenCL C subset.

Nodes are plain dataclasses.  Two traversal helpers are provided:

* :class:`NodeVisitor` — read-only traversal (analyses);
* :class:`NodeTransformer` — rebuild-the-tree traversal (compiler passes).

The tree deliberately stays close to the concrete syntax so that
:mod:`repro.kernellang.clgen` can emit readable OpenCL C from transformed
kernels (the artefact a user would take to a real GPU).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, fields
from typing import Iterator, Optional

from .types import Type


@dataclass
class Node:
    """Base class of all AST nodes."""

    def children(self) -> Iterator["Node"]:
        """Yield child nodes (used by generic traversals)."""
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def clone(self) -> "Node":
        """Deep copy of the subtree."""
        return copy.deepcopy(self)

    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal of the subtree, including ``self``."""
        yield self
        for child in self.children():
            yield from child.walk()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------
@dataclass
class Expr(Node):
    """Base class of expressions."""


@dataclass
class IntLiteral(Expr):
    value: int


@dataclass
class FloatLiteral(Expr):
    value: float


@dataclass
class BoolLiteral(Expr):
    value: bool


@dataclass
class Identifier(Expr):
    name: str


@dataclass
class UnaryOp(Expr):
    """Prefix (``-x``, ``!x``, ``++i``) or postfix (``i++``) operator."""

    op: str
    operand: Expr
    postfix: bool = False


@dataclass
class BinaryOp(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class Assignment(Expr):
    """``target = value`` or a compound assignment such as ``+=``."""

    op: str
    target: Expr
    value: Expr


@dataclass
class Ternary(Expr):
    condition: Expr
    if_true: Expr
    if_false: Expr


@dataclass
class Call(Expr):
    name: str
    args: list[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    """Array / pointer subscript ``base[index]``."""

    base: Expr
    index: Expr


@dataclass
class Cast(Expr):
    target_type: Type
    expr: Expr


@dataclass
class InitList(Expr):
    """Brace-enclosed initializer list (``{1, 2, 3}``)."""

    values: list[Expr] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------
@dataclass
class Stmt(Node):
    """Base class of statements."""


@dataclass
class VarDecl(Node):
    """A single declarator within a declaration statement."""

    name: str
    var_type: Type
    address_space: str = "private"
    is_const: bool = False
    array_size: Optional[Expr] = None
    init: Optional[Expr] = None


@dataclass
class DeclStmt(Stmt):
    declarations: list[VarDecl] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class Block(Stmt):
    statements: list[Stmt] = field(default_factory=list)


@dataclass
class IfStmt(Stmt):
    condition: Expr
    then_body: Block
    else_body: Optional[Block] = None


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt]
    condition: Optional[Expr]
    step: Optional[Expr]
    body: Block


@dataclass
class WhileStmt(Stmt):
    condition: Expr
    body: Block


@dataclass
class DoWhileStmt(Stmt):
    body: Block
    condition: Expr


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------
@dataclass
class Param(Node):
    """A kernel/function parameter."""

    name: str
    param_type: Type


@dataclass
class FunctionDef(Node):
    """A function definition; ``is_kernel`` marks ``__kernel`` entry points."""

    name: str
    return_type: Type
    params: list[Param] = field(default_factory=list)
    body: Block = field(default_factory=Block)
    is_kernel: bool = False


@dataclass
class Program(Node):
    """A translation unit: file-scope declarations plus functions."""

    globals: list[DeclStmt] = field(default_factory=list)
    functions: list[FunctionDef] = field(default_factory=list)

    def kernel(self, name: str | None = None) -> FunctionDef:
        """Return the kernel named ``name`` (or the only kernel)."""
        kernels = [f for f in self.functions if f.is_kernel]
        if name is None:
            if len(kernels) != 1:
                raise ValueError(
                    f"expected exactly one kernel, found {[k.name for k in kernels]}"
                )
            return kernels[0]
        for k in kernels:
            if k.name == name:
                return k
        raise ValueError(f"no kernel named {name!r}; available: {[k.name for k in kernels]}")


# ---------------------------------------------------------------------------
# Traversals
# ---------------------------------------------------------------------------
class NodeVisitor:
    """Read-only AST traversal with ``visit_<ClassName>`` dispatch."""

    def visit(self, node: Node):
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: Node):
        for child in node.children():
            self.visit(child)
        return None


class NodeTransformer:
    """Rebuilding AST traversal.

    ``visit_<ClassName>`` methods may return a replacement node (or a list
    of statements when replacing a statement); returning ``None`` from a
    statement visitor removes the statement.  The default behaviour rebuilds
    children in place.
    """

    def visit(self, node: Node):
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: Node):
        for f in fields(node):
            value = getattr(node, f.name)
            if isinstance(value, Node):
                setattr(node, f.name, self.visit(value))
            elif isinstance(value, list):
                new_items = []
                for item in value:
                    if isinstance(item, Node):
                        result = self.visit(item)
                        if result is None:
                            continue
                        if isinstance(result, list):
                            new_items.extend(result)
                        else:
                            new_items.append(result)
                    else:
                        new_items.append(item)
                setattr(node, f.name, new_items)
        return node


def find_all(node: Node, node_type: type) -> list[Node]:
    """Collect all nodes of ``node_type`` in the subtree rooted at ``node``."""
    return [n for n in node.walk() if isinstance(n, node_type)]


def iter_statements(block: Block) -> Iterator[Stmt]:
    """Iterate over all statements in a block, recursively."""
    for stmt in block.statements:
        yield stmt
        for child in stmt.walk():
            if isinstance(child, Stmt) and child is not stmt:
                yield child
