"""Type system for the OpenCL C subset.

Only what the benchmark kernels and the generated perforation code need:
scalar integer/floating types, pointers qualified with an OpenCL address
space, and fixed-size arrays (used for ``__constant`` filter coefficients
and ``__local`` tiles).
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import TypeError_


class AddressSpace:
    """OpenCL address-space qualifiers (normalised, without underscores)."""

    GLOBAL = "global"
    LOCAL = "local"
    CONSTANT = "constant"
    PRIVATE = "private"

    ALL = (GLOBAL, LOCAL, CONSTANT, PRIVATE)

    _ALIASES = {
        "__global": GLOBAL,
        "global": GLOBAL,
        "__local": LOCAL,
        "local": LOCAL,
        "__constant": CONSTANT,
        "constant": CONSTANT,
        "__private": PRIVATE,
        "private": PRIVATE,
    }

    @classmethod
    def normalize(cls, text: str) -> str:
        try:
            return cls._ALIASES[text]
        except KeyError as exc:
            raise TypeError_(f"unknown address space {text!r}") from exc


@dataclass(frozen=True)
class Type:
    """Base class for all types."""

    def is_scalar(self) -> bool:
        return False

    def is_pointer(self) -> bool:
        return False

    def is_array(self) -> bool:
        return False


@dataclass(frozen=True)
class ScalarType(Type):
    """A scalar type such as ``int`` or ``float``."""

    name: str

    _FLOAT_NAMES = ("float", "double")
    _INT_NAMES = ("int", "uint", "long", "short", "ushort", "char", "uchar", "size_t", "bool")

    def is_scalar(self) -> bool:
        return True

    @property
    def is_float(self) -> bool:
        return self.name in self._FLOAT_NAMES

    @property
    def is_integer(self) -> bool:
        return self.name in self._INT_NAMES

    @property
    def size_bytes(self) -> int:
        sizes = {
            "bool": 1,
            "char": 1,
            "uchar": 1,
            "short": 2,
            "ushort": 2,
            "int": 4,
            "uint": 4,
            "float": 4,
            "long": 8,
            "size_t": 8,
            "double": 8,
        }
        return sizes[self.name]

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PointerType(Type):
    """A pointer into an OpenCL address space."""

    pointee: Type
    address_space: str = AddressSpace.GLOBAL
    is_const: bool = False

    def is_pointer(self) -> bool:
        return True

    def __str__(self) -> str:
        const = "const " if self.is_const else ""
        return f"__{self.address_space} {const}{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(Type):
    """A fixed-size array, e.g. a ``__constant`` coefficient table."""

    element: Type
    length: int
    address_space: str = AddressSpace.PRIVATE

    def is_array(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.element}[{self.length}]"


VOID = ScalarType("void")
INT = ScalarType("int")
UINT = ScalarType("uint")
LONG = ScalarType("long")
FLOAT = ScalarType("float")
DOUBLE = ScalarType("double")
BOOL = ScalarType("bool")
SIZE_T = ScalarType("size_t")

_SCALARS = {
    "void": VOID,
    "int": INT,
    "uint": UINT,
    "long": LONG,
    "float": FLOAT,
    "double": DOUBLE,
    "bool": BOOL,
    "size_t": SIZE_T,
    "char": ScalarType("char"),
    "uchar": ScalarType("uchar"),
    "short": ScalarType("short"),
    "ushort": ScalarType("ushort"),
}


def scalar(name: str) -> ScalarType:
    """Look up a scalar type by its OpenCL C name."""
    try:
        return _SCALARS[name]
    except KeyError as exc:
        raise TypeError_(f"unknown scalar type {name!r}") from exc


def is_type_name(name: str) -> bool:
    """Whether ``name`` is a scalar type keyword of the subset."""
    return name in _SCALARS


def common_type(left: Type, right: Type) -> Type:
    """Usual arithmetic conversions (simplified): float wins over int;
    wider integer wins over narrower."""
    if not (isinstance(left, ScalarType) and isinstance(right, ScalarType)):
        raise TypeError_(f"cannot combine non-scalar types {left} and {right}")
    if left.name == "double" or right.name == "double":
        return DOUBLE
    if left.is_float or right.is_float:
        return FLOAT
    if left.name in ("long", "size_t") or right.name in ("long", "size_t"):
        return LONG
    return INT
