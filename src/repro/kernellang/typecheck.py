"""Semantic analysis for the OpenCL C subset.

The checker validates name resolution, call arities, assignment targets and
basic type compatibility.  It is deliberately permissive about implicit
numeric conversions (as OpenCL C is) but rejects the errors that actually
bite when writing or generating kernels: undefined identifiers, indexing
non-pointer values, assigning to r-values, calling unknown functions with
the wrong number of arguments, and re-declaring names in the same scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast
from .builtins import BUILTIN_CONSTANTS, get_builtin, is_builtin
from .errors import SymbolError, TypeError_
from .symbols import Symbol, SymbolTable
from .types import (
    ArrayType,
    BOOL,
    FLOAT,
    INT,
    PointerType,
    ScalarType,
    Type,
    VOID,
    common_type,
)


@dataclass
class CheckResult:
    """Outcome of checking one program."""

    kernel_names: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)


class TypeChecker:
    """Checks a :class:`~repro.kernellang.ast.Program`."""

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.symbols = SymbolTable()
        self.result = CheckResult()
        self._functions: dict[str, ast.FunctionDef] = {}
        self._current_return: Type = VOID

    # ------------------------------------------------------------------
    def check(self) -> CheckResult:
        """Check the whole program; raises on the first error."""
        for decl_stmt in self.program.globals:
            self._check_decl(decl_stmt, file_scope=True)
        for func in self.program.functions:
            self._functions[func.name] = func
        for func in self.program.functions:
            self._check_function(func)
            if func.is_kernel:
                self.result.kernel_names.append(func.name)
        return self.result

    # ------------------------------------------------------------------
    def _check_function(self, func: ast.FunctionDef) -> None:
        self.symbols.push(name=func.name)
        self._current_return = func.return_type
        if func.is_kernel and func.return_type != VOID:
            raise TypeError_(f"kernel {func.name!r} must return void")
        for param in func.params:
            addr = "private"
            is_const = False
            length = None
            if isinstance(param.param_type, PointerType):
                addr = param.param_type.address_space
                is_const = param.param_type.is_const
            elif isinstance(param.param_type, ArrayType):
                addr = param.param_type.address_space
                length = param.param_type.length
            self.symbols.define(
                Symbol(
                    name=param.name,
                    sym_type=param.param_type,
                    address_space=addr,
                    is_const=is_const,
                    is_param=True,
                    array_length=length,
                )
            )
        self._check_block(func.body, push_scope=False)
        self.symbols.pop()

    # ------------------------------------------------------------------
    def _check_block(self, block: ast.Block, push_scope: bool = True) -> None:
        if push_scope:
            self.symbols.push()
        for stmt in block.statements:
            self._check_stmt(stmt)
        if push_scope:
            self.symbols.pop()

    def _check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.DeclStmt):
            self._check_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr)
        elif isinstance(stmt, ast.Block):
            self._check_block(stmt)
        elif isinstance(stmt, ast.IfStmt):
            self._check_expr(stmt.condition)
            self._check_block(stmt.then_body)
            if stmt.else_body is not None:
                self._check_block(stmt.else_body)
        elif isinstance(stmt, ast.ForStmt):
            self.symbols.push(name="for")
            if stmt.init is not None:
                self._check_stmt(stmt.init)
            if stmt.condition is not None:
                self._check_expr(stmt.condition)
            if stmt.step is not None:
                self._check_expr(stmt.step)
            self._check_block(stmt.body)
            self.symbols.pop()
        elif isinstance(stmt, (ast.WhileStmt, ast.DoWhileStmt)):
            self._check_expr(stmt.condition)
            self._check_block(stmt.body)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                value_type = self._check_expr(stmt.value)
                if self._current_return == VOID:
                    raise TypeError_("void function returns a value")
                _ = value_type
            elif self._current_return != VOID:
                self.result.warnings.append("non-void function returns without a value")
        elif isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            return
        else:  # pragma: no cover - defensive
            raise TypeError_(f"unsupported statement {type(stmt).__name__}")

    def _check_decl(self, stmt: ast.DeclStmt, file_scope: bool = False) -> None:
        for decl in stmt.declarations:
            length = None
            sym_type: Type = decl.var_type
            if decl.array_size is not None:
                self._check_expr(decl.array_size)
                length = -1
                sym_type = ArrayType(decl.var_type, 0, decl.address_space)
            if self.symbols.current.is_defined_locally(decl.name):
                raise SymbolError(
                    f"variable {decl.name!r} is already defined in this scope"
                )
            self.symbols.define(
                Symbol(
                    name=decl.name,
                    sym_type=sym_type,
                    address_space=decl.address_space,
                    is_const=decl.is_const,
                    array_length=length,
                )
            )
            if decl.init is not None:
                if isinstance(decl.init, ast.InitList):
                    for value in decl.init.values:
                        self._check_expr(value)
                else:
                    self._check_expr(decl.init)
            if file_scope and decl.address_space not in ("constant", "private"):
                self.result.warnings.append(
                    f"file-scope variable {decl.name!r} should be __constant"
                )

    # ------------------------------------------------------------------
    def _check_expr(self, expr: ast.Expr) -> Type:
        if isinstance(expr, ast.IntLiteral):
            return INT
        if isinstance(expr, ast.FloatLiteral):
            return FLOAT
        if isinstance(expr, ast.BoolLiteral):
            return BOOL
        if isinstance(expr, ast.Identifier):
            if expr.name in BUILTIN_CONSTANTS:
                return INT
            symbol = self.symbols.lookup(expr.name)
            return symbol.sym_type
        if isinstance(expr, ast.UnaryOp):
            operand = self._check_expr(expr.operand)
            if expr.op in ("++", "--") and not self._is_lvalue(expr.operand):
                raise TypeError_(f"operand of {expr.op!r} must be an l-value")
            if expr.op == "!":
                return BOOL
            return operand
        if isinstance(expr, ast.BinaryOp):
            left = self._check_expr(expr.left)
            right = self._check_expr(expr.right)
            if expr.op in ("&&", "||", "==", "!=", "<", ">", "<=", ">="):
                return BOOL
            if isinstance(left, PointerType) or isinstance(right, PointerType):
                # pointer arithmetic: pointer +/- integer keeps the pointer type
                pointer = left if isinstance(left, PointerType) else right
                return pointer
            if isinstance(left, ScalarType) and isinstance(right, ScalarType):
                return common_type(left, right)
            raise TypeError_(
                f"operator {expr.op!r} cannot combine {left} and {right}"
            )
        if isinstance(expr, ast.Assignment):
            if not self._is_lvalue(expr.target):
                raise TypeError_("left side of assignment is not assignable")
            target_type = self._check_expr(expr.target)
            self._check_expr(expr.value)
            return target_type
        if isinstance(expr, ast.Ternary):
            self._check_expr(expr.condition)
            if_true = self._check_expr(expr.if_true)
            if_false = self._check_expr(expr.if_false)
            if isinstance(if_true, ScalarType) and isinstance(if_false, ScalarType):
                return common_type(if_true, if_false)
            return if_true
        if isinstance(expr, ast.Call):
            return self._check_call(expr)
        if isinstance(expr, ast.Index):
            base = self._check_expr(expr.base)
            index_type = self._check_expr(expr.index)
            if isinstance(index_type, ScalarType) and index_type.is_float:
                raise TypeError_("array index must have integer type")
            if isinstance(base, PointerType):
                return base.pointee
            if isinstance(base, ArrayType):
                return base.element
            raise TypeError_(f"cannot index a value of type {base}")
        if isinstance(expr, ast.Cast):
            self._check_expr(expr.expr)
            return expr.target_type
        if isinstance(expr, ast.InitList):
            for value in expr.values:
                self._check_expr(value)
            return FLOAT
        raise TypeError_(f"unsupported expression {type(expr).__name__}")  # pragma: no cover

    def _check_call(self, call: ast.Call) -> Type:
        if is_builtin(call.name):
            builtin = get_builtin(call.name)
            if not builtin.min_args <= len(call.args) <= builtin.max_args:
                raise TypeError_(
                    f"built-in {call.name!r} expects between {builtin.min_args} and "
                    f"{builtin.max_args} arguments, got {len(call.args)}"
                )
            for arg in call.args:
                self._check_expr(arg)
            return builtin.result_type
        if call.name in self._functions:
            func = self._functions[call.name]
            if len(call.args) != len(func.params):
                raise TypeError_(
                    f"function {call.name!r} expects {len(func.params)} arguments, "
                    f"got {len(call.args)}"
                )
            for arg in call.args:
                self._check_expr(arg)
            return func.return_type
        raise SymbolError(f"call to undefined function {call.name!r}")

    @staticmethod
    def _is_lvalue(expr: ast.Expr) -> bool:
        return isinstance(expr, (ast.Identifier, ast.Index))


def check_program(program: ast.Program) -> CheckResult:
    """Type-check ``program`` and return the result."""
    return TypeChecker(program).check()
