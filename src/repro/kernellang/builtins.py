"""OpenCL built-in functions available to kernels in the subset.

The table serves three purposes: the type checker uses it to validate
calls, the interpreter uses the Python implementations to evaluate them,
and the traffic analysis uses the op-cost column to estimate arithmetic
work per work-item.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from .types import FLOAT, INT, Type


@dataclass(frozen=True)
class BuiltinFunction:
    """Description of one built-in function."""

    name: str
    min_args: int
    max_args: int
    result_type: Type
    impl: Callable
    op_cost: float = 1.0
    is_sfu: bool = False


def _clamp(value, low, high):
    return min(max(value, low), high)


def _mad(a, b, c):
    return a * b + c


def _mix(a, b, t):
    return a + (b - a) * t


def _select(a, b, c):
    return b if c else a


def _sign(x):
    if x > 0:
        return 1.0
    if x < 0:
        return -1.0
    return 0.0


_BUILTINS: dict[str, BuiltinFunction] = {}


def _register(
    name: str,
    impl: Callable,
    min_args: int,
    max_args: int | None = None,
    result_type: Type = FLOAT,
    op_cost: float = 1.0,
    is_sfu: bool = False,
) -> None:
    _BUILTINS[name] = BuiltinFunction(
        name=name,
        min_args=min_args,
        max_args=max_args if max_args is not None else min_args,
        result_type=result_type,
        impl=impl,
        op_cost=op_cost,
        is_sfu=is_sfu,
    )


# Index/geometry built-ins are handled specially by the interpreter (they
# need the work-item context), but they are registered here so the type
# checker accepts them.
for _name in (
    "get_global_id",
    "get_local_id",
    "get_group_id",
    "get_global_size",
    "get_local_size",
    "get_num_groups",
):
    _register(_name, impl=lambda dim=0: 0, min_args=1, result_type=INT, op_cost=0.0)

_register("barrier", impl=lambda flags=0: None, min_args=1, result_type=INT, op_cost=0.0)
_register("mem_fence", impl=lambda flags=0: None, min_args=1, result_type=INT, op_cost=0.0)

# Arithmetic / common built-ins.
_register("min", min, 2, result_type=FLOAT)
_register("max", max, 2, result_type=FLOAT)
_register("fmin", min, 2, result_type=FLOAT)
_register("fmax", max, 2, result_type=FLOAT)
_register("clamp", _clamp, 3, result_type=FLOAT)
_register("abs", abs, 1, result_type=INT)
_register("fabs", abs, 1, result_type=FLOAT)
_register("floor", math.floor, 1, result_type=FLOAT)
_register("ceil", math.ceil, 1, result_type=FLOAT)
_register("round", round, 1, result_type=FLOAT)
_register("sign", _sign, 1, result_type=FLOAT)
_register("mad", _mad, 3, result_type=FLOAT)
_register("fma", _mad, 3, result_type=FLOAT)
_register("mix", _mix, 3, result_type=FLOAT)
_register("select", _select, 3, result_type=FLOAT)

# Transcendentals map to the GPU's special-function unit.
_register("sqrt", math.sqrt, 1, result_type=FLOAT, op_cost=4.0, is_sfu=True)
_register("rsqrt", lambda x: 1.0 / math.sqrt(x), 1, result_type=FLOAT, op_cost=4.0, is_sfu=True)
_register("exp", math.exp, 1, result_type=FLOAT, op_cost=4.0, is_sfu=True)
_register("log", math.log, 1, result_type=FLOAT, op_cost=4.0, is_sfu=True)
_register("pow", math.pow, 2, result_type=FLOAT, op_cost=8.0, is_sfu=True)
_register("sin", math.sin, 1, result_type=FLOAT, op_cost=4.0, is_sfu=True)
_register("cos", math.cos, 1, result_type=FLOAT, op_cost=4.0, is_sfu=True)
_register("tan", math.tan, 1, result_type=FLOAT, op_cost=4.0, is_sfu=True)
_register("native_divide", lambda a, b: a / b, 2, result_type=FLOAT, op_cost=2.0, is_sfu=True)
_register("hypot", math.hypot, 2, result_type=FLOAT, op_cost=8.0, is_sfu=True)

#: Names that are resolved from the work-item / work-group context.
CONTEXT_BUILTINS = frozenset(
    {
        "get_global_id",
        "get_local_id",
        "get_group_id",
        "get_global_size",
        "get_local_size",
        "get_num_groups",
    }
)

#: Names of synchronisation built-ins.
SYNC_BUILTINS = frozenset({"barrier", "mem_fence"})

#: Pre-defined constants kernels may reference.
BUILTIN_CONSTANTS: dict[str, int] = {
    "CLK_LOCAL_MEM_FENCE": 1,
    "CLK_GLOBAL_MEM_FENCE": 2,
    "FLT_MAX": 3.402823466e38,
    "FLT_MIN": 1.175494351e-38,
    "INT_MAX": 2 ** 31 - 1,
    "INT_MIN": -(2 ** 31),
    "M_PI": math.pi,
    "M_E": math.e,
}


def is_builtin(name: str) -> bool:
    """Whether ``name`` is a built-in function."""
    return name in _BUILTINS


def get_builtin(name: str) -> BuiltinFunction:
    """Return the built-in description for ``name`` (KeyError if unknown)."""
    return _BUILTINS[name]


def builtin_names() -> list[str]:
    """Sorted list of all built-in function names."""
    return sorted(_BUILTINS)
