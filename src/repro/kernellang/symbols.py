"""Symbol tables and scopes for semantic analysis and interpretation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from .errors import SymbolError
from .types import Type


@dataclass
class Symbol:
    """A named entity: variable, parameter or constant."""

    name: str
    sym_type: Type
    address_space: str = "private"
    is_const: bool = False
    is_param: bool = False
    array_length: Optional[int] = None


class Scope:
    """A single lexical scope."""

    def __init__(self, parent: Optional["Scope"] = None, name: str = "block") -> None:
        self.parent = parent
        self.name = name
        self._symbols: dict[str, Symbol] = {}

    def define(self, symbol: Symbol) -> Symbol:
        """Define a symbol in this scope; redefinition is an error."""
        if symbol.name in self._symbols:
            raise SymbolError(
                f"symbol {symbol.name!r} is already defined in scope {self.name!r}"
            )
        self._symbols[symbol.name] = symbol
        return symbol

    def lookup(self, name: str) -> Symbol:
        """Resolve ``name`` in this scope or an enclosing one."""
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope._symbols:
                return scope._symbols[name]
            scope = scope.parent
        raise SymbolError(f"undefined symbol {name!r}")

    def is_defined(self, name: str) -> bool:
        try:
            self.lookup(name)
            return True
        except SymbolError:
            return False

    def is_defined_locally(self, name: str) -> bool:
        return name in self._symbols

    def symbols(self) -> Iterator[Symbol]:
        """Iterate over symbols defined directly in this scope."""
        return iter(self._symbols.values())


class SymbolTable:
    """A stack of scopes."""

    def __init__(self) -> None:
        self.global_scope = Scope(name="global")
        self._stack: list[Scope] = [self.global_scope]

    @property
    def current(self) -> Scope:
        return self._stack[-1]

    def push(self, name: str = "block") -> Scope:
        scope = Scope(parent=self.current, name=name)
        self._stack.append(scope)
        return scope

    def pop(self) -> Scope:
        if len(self._stack) == 1:
            raise SymbolError("cannot pop the global scope")
        return self._stack.pop()

    def define(self, symbol: Symbol) -> Symbol:
        return self.current.define(symbol)

    def lookup(self, name: str) -> Symbol:
        return self.current.lookup(name)

    def is_defined(self, name: str) -> bool:
        return self.current.is_defined(name)

    def depth(self) -> int:
        return len(self._stack)
