"""Exceptions raised by the kernel-language front end and compiler passes."""

from __future__ import annotations


class KernelLangError(Exception):
    """Base class for all kernel-language errors."""


class LexError(KernelLangError):
    """Raised by the lexer on malformed input."""


class ParseError(KernelLangError):
    """Raised by the parser on a syntax error."""


class TypeError_(KernelLangError):
    """Raised by the semantic analyser on a type error.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class SymbolError(KernelLangError):
    """Raised when a name is undefined or redefined in the same scope."""


class InterpreterError(KernelLangError):
    """Raised when the AST interpreter encounters an unsupported construct
    or a runtime fault (out-of-bounds access, division by zero, ...)."""


class TransformError(KernelLangError):
    """Raised when a compiler pass cannot be applied to a kernel."""


class AnalysisError(KernelLangError):
    """Raised when an analysis cannot interpret the kernel structure."""
