"""Detection of stencil-style global memory accesses.

The perforation passes need to know, for every read of a global buffer,
*which neighbourhood* of the work-item's pixel it touches:  a read of the
form ``input[(y + dy) * width + (x + dx)]`` (possibly with ``clamp`` around
the coordinates) is a stencil access with offset ``(dx, dy)``.  The set of
offsets across the kernel gives the stencil's halo, which in turn sizes the
local-memory tile and decides whether the stencil perforation scheme is
applicable.

The detection is a small symbolic analysis: index expressions are evaluated
into a *linear form* over the symbols ``X`` (``get_global_id(0)``), ``Y``
(``get_global_id(1)``), ``W`` (the row stride parameter) and the products
thereof.  For a 2D row-major image access the canonical shape is

    index = Y*W + X + dy*W + dx

so the coefficient of the ``Y*W`` monomial must be 1, the coefficient of
``X`` must be 1, the coefficient of ``W`` is the row offset ``dy`` and the
constant term is the column offset ``dx``.  Constant-trip-count loops
(e.g. ``for (int dy = -1; dy <= 1; dy++)``) are enumerated so that offsets
expressed through loop variables are expanded into the full offset set.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .. import ast
from ..builtins import BUILTIN_CONSTANTS
from ..errors import AnalysisError
from ..types import PointerType

#: Symbols of the linear form.
SYM_X = "X"
SYM_Y = "Y"
SYM_W = "W"
SYM_H = "H"

#: A monomial is a sorted tuple of symbol names; the empty tuple is the
#: constant term.
Monomial = tuple[str, ...]


class LinearForm:
    """A (multi-)linear polynomial over the analysis symbols."""

    def __init__(self, terms: Optional[dict[Monomial, float]] = None) -> None:
        self.terms: dict[Monomial, float] = dict(terms or {})

    # -- constructors ---------------------------------------------------
    @classmethod
    def constant(cls, value: float) -> "LinearForm":
        return cls({(): float(value)} if value else {})

    @classmethod
    def symbol(cls, name: str) -> "LinearForm":
        return cls({(name,): 1.0})

    # -- arithmetic -----------------------------------------------------
    def __add__(self, other: "LinearForm") -> "LinearForm":
        result = dict(self.terms)
        for mono, coeff in other.terms.items():
            result[mono] = result.get(mono, 0.0) + coeff
            if result[mono] == 0:
                del result[mono]
        return LinearForm(result)

    def __sub__(self, other: "LinearForm") -> "LinearForm":
        return self + other.negate()

    def negate(self) -> "LinearForm":
        return LinearForm({m: -c for m, c in self.terms.items()})

    def __mul__(self, other: "LinearForm") -> "LinearForm":
        result: dict[Monomial, float] = {}
        for mono_a, coeff_a in self.terms.items():
            for mono_b, coeff_b in other.terms.items():
                mono = tuple(sorted(mono_a + mono_b))
                result[mono] = result.get(mono, 0.0) + coeff_a * coeff_b
                if result[mono] == 0:
                    del result[mono]
        return LinearForm(result)

    # -- queries ---------------------------------------------------------
    def coefficient(self, *symbols: str) -> float:
        return self.terms.get(tuple(sorted(symbols)), 0.0)

    @property
    def constant_term(self) -> float:
        return self.terms.get((), 0.0)

    def degree(self) -> int:
        return max((len(m) for m in self.terms), default=0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinearForm({self.terms})"


@dataclass(frozen=True)
class StencilAccess:
    """One global-buffer read with a resolved 2D offset."""

    buffer: str
    dx: int
    dy: int
    node_id: int  # id() of the Index node, for the transforms


@dataclass
class BufferAccessSummary:
    """All stencil reads of one buffer."""

    buffer: str
    offsets: set[tuple[int, int]] = field(default_factory=set)
    reads: int = 0

    @property
    def halo_x(self) -> int:
        return max((abs(dx) for dx, _ in self.offsets), default=0)

    @property
    def halo_y(self) -> int:
        return max((abs(dy) for _, dy in self.offsets), default=0)

    @property
    def halo(self) -> int:
        return max(self.halo_x, self.halo_y)

    @property
    def footprint(self) -> tuple[int, int]:
        """Width and height of the accessed neighbourhood."""
        if not self.offsets:
            return (0, 0)
        xs = [dx for dx, _ in self.offsets]
        ys = [dy for _, dy in self.offsets]
        return (max(xs) - min(xs) + 1, max(ys) - min(ys) + 1)


@dataclass
class AccessPatternInfo:
    """Result of the stencil-access analysis of one kernel."""

    kernel_name: str
    x_var: Optional[str]
    y_var: Optional[str]
    width_param: Optional[str]
    height_param: Optional[str]
    input_buffers: dict[str, BufferAccessSummary] = field(default_factory=dict)
    output_buffers: set[str] = field(default_factory=set)
    accesses: list[StencilAccess] = field(default_factory=list)
    uses_local_memory: bool = False
    uses_private_arrays: bool = False

    @property
    def is_stencil(self) -> bool:
        """Whether any input buffer is read with more than one offset."""
        return any(len(s.offsets) > 1 for s in self.input_buffers.values())

    @property
    def max_halo(self) -> int:
        return max((s.halo for s in self.input_buffers.values()), default=0)

    def summary(self, buffer: str) -> BufferAccessSummary:
        return self.input_buffers[buffer]


@dataclass(frozen=True)
class _LoopVar:
    """A loop variable with an enumerable constant range."""

    name: str
    values: tuple[int, ...]


class _IndexEvaluator:
    """Evaluates index expressions into :class:`LinearForm`."""

    def __init__(
        self,
        x_var: Optional[str],
        y_var: Optional[str],
        width_param: Optional[str],
        height_param: Optional[str],
        loop_values: dict[str, int],
        scalar_constants: dict[str, float],
        definitions: Optional[dict[str, ast.Expr]] = None,
    ) -> None:
        self.x_var = x_var
        self.y_var = y_var
        self.width_param = width_param
        self.height_param = height_param
        self.loop_values = loop_values
        self.scalar_constants = scalar_constants
        self.definitions = definitions or {}
        self._resolving: set[str] = set()

    def evaluate(self, expr: ast.Expr) -> LinearForm:
        if isinstance(expr, ast.IntLiteral):
            return LinearForm.constant(expr.value)
        if isinstance(expr, ast.FloatLiteral):
            return LinearForm.constant(expr.value)
        if isinstance(expr, ast.Identifier):
            return self._identifier(expr.name)
        if isinstance(expr, ast.UnaryOp):
            inner = self.evaluate(expr.operand)
            if expr.op == "-":
                return inner.negate()
            if expr.op == "+":
                return inner
            raise AnalysisError(f"unsupported unary operator {expr.op!r} in index")
        if isinstance(expr, ast.BinaryOp):
            left = self.evaluate(expr.left)
            right = self.evaluate(expr.right)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                # Allow division by a constant (rare; e.g. halving an index).
                if right.degree() == 0 and right.constant_term != 0:
                    return LinearForm(
                        {m: c / right.constant_term for m, c in left.terms.items()}
                    )
            raise AnalysisError(f"unsupported binary operator {expr.op!r} in index")
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Cast):
            return self.evaluate(expr.expr)
        if isinstance(expr, ast.Ternary):
            # Border-handling ternaries select between a clamped and an
            # unclamped coordinate; both branches have the same linear form
            # in the interior, so analyse the "true" branch.
            return self.evaluate(expr.if_true)
        raise AnalysisError(f"unsupported expression {type(expr).__name__} in index")

    def _identifier(self, name: str) -> LinearForm:
        if name == self.x_var:
            return LinearForm.symbol(SYM_X)
        if name == self.y_var:
            return LinearForm.symbol(SYM_Y)
        if name == self.width_param:
            return LinearForm.symbol(SYM_W)
        if name == self.height_param:
            return LinearForm.symbol(SYM_H)
        if name in self.loop_values:
            return LinearForm.constant(self.loop_values[name])
        if name in self.scalar_constants:
            return LinearForm.constant(self.scalar_constants[name])
        if name in BUILTIN_CONSTANTS:
            return LinearForm.constant(BUILTIN_CONSTANTS[name])
        if name in self.definitions and name not in self._resolving:
            # Forward-substitute single-assignment locals such as
            # ``int xx = clamp(x + dx, 0, width - 1);``.
            self._resolving.add(name)
            try:
                return self.evaluate(self.definitions[name])
            finally:
                self._resolving.discard(name)
        raise AnalysisError(f"index uses variable {name!r} with unknown value")

    def _call(self, call: ast.Call) -> LinearForm:
        if call.name == "get_global_id":
            dim = _const_value(call.args[0])
            return LinearForm.symbol(SYM_X if dim == 0 else SYM_Y)
        if call.name in ("clamp", "min", "max"):
            # Border clamping does not change the interior offset.
            return self.evaluate(call.args[0])
        if call.name in ("mad", "fma"):
            a, b, c = (self.evaluate(arg) for arg in call.args)
            return a * b + c
        raise AnalysisError(f"unsupported call {call.name!r} in index expression")


def _const_value(expr: ast.Expr) -> int:
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        return -_const_value(expr.operand)
    raise AnalysisError("expected a constant expression")


def _find_coordinate_vars(kernel: ast.FunctionDef) -> tuple[Optional[str], Optional[str]]:
    """Find local variables initialised from get_global_id(0)/get_global_id(1)."""
    x_var = y_var = None
    for node in kernel.body.walk():
        if isinstance(node, ast.VarDecl) and isinstance(node.init, ast.Call):
            if node.init.name == "get_global_id" and node.init.args:
                try:
                    dim = _const_value(node.init.args[0])
                except AnalysisError:
                    continue
                if dim == 0 and x_var is None:
                    x_var = node.name
                elif dim == 1 and y_var is None:
                    y_var = node.name
    return x_var, y_var


def _find_dimension_params(kernel: ast.FunctionDef) -> tuple[Optional[str], Optional[str]]:
    """Heuristically identify the width/height scalar parameters.

    The first two scalar integer parameters are taken as (width, height);
    parameters named ``width``/``height`` (or ``w``/``h``, ``cols``/``rows``)
    take precedence.
    """
    scalar_params = [
        p.name
        for p in kernel.params
        if not isinstance(p.param_type, PointerType)
    ]
    width = height = None
    for name in scalar_params:
        lowered = name.lower()
        if width is None and lowered in ("width", "w", "cols", "ncols", "grid_cols"):
            width = name
        if height is None and lowered in ("height", "h", "rows", "nrows", "grid_rows"):
            height = name
    if width is None and scalar_params:
        width = scalar_params[0]
    if height is None and len(scalar_params) > 1:
        height = scalar_params[1]
    return width, height


def _constant_loop_values(stmt: ast.ForStmt) -> Optional[_LoopVar]:
    """If ``stmt`` is a constant-trip-count loop, return its variable and values."""
    if not isinstance(stmt.init, ast.DeclStmt) or len(stmt.init.declarations) != 1:
        return None
    decl = stmt.init.declarations[0]
    if decl.init is None:
        return None
    try:
        start = _const_value(decl.init)
    except AnalysisError:
        return None
    if stmt.condition is None or not isinstance(stmt.condition, ast.BinaryOp):
        return None
    cond = stmt.condition
    if not isinstance(cond.left, ast.Identifier) or cond.left.name != decl.name:
        return None
    try:
        bound = _const_value(cond.right)
    except AnalysisError:
        return None
    step = 1
    if isinstance(stmt.step, ast.UnaryOp) and stmt.step.op == "++":
        step = 1
    elif isinstance(stmt.step, ast.UnaryOp) and stmt.step.op == "--":
        step = -1
    elif isinstance(stmt.step, ast.Assignment) and stmt.step.op == "+=":
        try:
            step = _const_value(stmt.step.value)
        except AnalysisError:
            return None
    else:
        return None
    values: list[int] = []
    current = start
    limit = 10_000
    while limit > 0:
        limit -= 1
        if cond.op == "<" and not current < bound:
            break
        if cond.op == "<=" and not current <= bound:
            break
        if cond.op == ">" and not current > bound:
            break
        if cond.op == ">=" and not current >= bound:
            break
        values.append(current)
        current += step
    if not values or limit == 0:
        return None
    return _LoopVar(decl.name, tuple(values))


def _collect_reads_and_writes(
    kernel: ast.FunctionDef,
) -> tuple[list[tuple[ast.Index, list[_LoopVar]]], set[str], set[str]]:
    """Collect (read Index node, enclosing constant loops) plus written buffer names."""
    global_params = {
        p.name
        for p in kernel.params
        if isinstance(p.param_type, PointerType) and p.param_type.address_space == "global"
    }
    written: set[str] = set()
    reads: list[tuple[ast.Index, list[_LoopVar]]] = []
    write_targets: set[int] = set()

    for node in kernel.body.walk():
        if isinstance(node, ast.Assignment) and isinstance(node.target, ast.Index):
            base = node.target.base
            if isinstance(base, ast.Identifier) and base.name in global_params:
                written.add(base.name)
                write_targets.add(id(node.target))

    def visit(node: ast.Node, loops: list[_LoopVar]) -> None:
        if isinstance(node, ast.ForStmt):
            loop_var = _constant_loop_values(node)
            inner = loops + [loop_var] if loop_var is not None else loops
            if node.init is not None:
                visit(node.init, loops)
            if node.condition is not None:
                visit(node.condition, loops)
            if node.step is not None:
                visit(node.step, loops)
            visit(node.body, inner)
            return
        if isinstance(node, ast.Index):
            base = node.base
            if (
                isinstance(base, ast.Identifier)
                and base.name in global_params
                and id(node) not in write_targets
            ):
                reads.append((node, list(loops)))
        for child in node.children():
            visit(child, loops)

    visit(kernel.body, [])
    return reads, written, global_params


def _scalar_constants(kernel: ast.FunctionDef) -> dict[str, float]:
    """Variables initialised to integer constants (usable in index analysis)."""
    constants: dict[str, float] = {}
    for node in kernel.body.walk():
        if isinstance(node, ast.VarDecl) and node.init is not None:
            try:
                constants[node.name] = _const_value(node.init)
            except AnalysisError:
                continue
    return constants


def _single_assignment_definitions(kernel: ast.FunctionDef) -> dict[str, ast.Expr]:
    """Map locals to their initialiser when they are never reassigned.

    These definitions let the index analysis see through helper variables
    such as ``int xx = clamp(x + dx, 0, width - 1);``.
    """
    definitions: dict[str, ast.Expr] = {}
    reassigned: set[str] = set()
    for node in kernel.body.walk():
        if isinstance(node, ast.VarDecl) and node.init is not None and node.array_size is None:
            definitions[node.name] = node.init
        elif isinstance(node, ast.Assignment) and isinstance(node.target, ast.Identifier):
            reassigned.add(node.target.name)
        elif isinstance(node, ast.UnaryOp) and node.op in ("++", "--"):
            if isinstance(node.operand, ast.Identifier):
                reassigned.add(node.operand.name)
    for name in reassigned:
        definitions.pop(name, None)
    return definitions


def analyze_kernel(kernel: ast.FunctionDef) -> AccessPatternInfo:
    """Analyse the global-memory access pattern of ``kernel``.

    Raises :class:`AnalysisError` when a read of a global buffer cannot be
    expressed as a stencil access (the perforation passes refuse to touch
    such kernels).
    """
    x_var, y_var = _find_coordinate_vars(kernel)
    width_param, height_param = _find_dimension_params(kernel)
    reads, written, _ = _collect_reads_and_writes(kernel)
    scalar_constants = _scalar_constants(kernel)
    definitions = _single_assignment_definitions(kernel)

    info = AccessPatternInfo(
        kernel_name=kernel.name,
        x_var=x_var,
        y_var=y_var,
        width_param=width_param,
        height_param=height_param,
        output_buffers=set(written),
    )

    for node in kernel.body.walk():
        if isinstance(node, ast.VarDecl):
            if node.address_space == "local":
                info.uses_local_memory = True
            elif node.array_size is not None:
                info.uses_private_arrays = True

    for index_node, loops in reads:
        buffer = index_node.base.name  # type: ignore[union-attr]
        summary = info.input_buffers.setdefault(buffer, BufferAccessSummary(buffer))
        summary.reads += 1
        loop_names = [lv.name for lv in loops]
        loop_value_sets = [lv.values for lv in loops]
        combos: Iterable[tuple[int, ...]]
        if loop_value_sets:
            combos = itertools.product(*loop_value_sets)
        else:
            combos = [()]
        for combo in combos:
            loop_values = dict(zip(loop_names, combo))
            evaluator = _IndexEvaluator(
                x_var,
                y_var,
                width_param,
                height_param,
                loop_values,
                scalar_constants,
                definitions,
            )
            form = evaluator.evaluate(index_node.index)
            offset = _extract_offset(form, buffer)
            summary.offsets.add(offset)
            info.accesses.append(
                StencilAccess(buffer=buffer, dx=offset[0], dy=offset[1], node_id=id(index_node))
            )
    return info


def _extract_offset(form: LinearForm, buffer: str) -> tuple[int, int]:
    """Extract the (dx, dy) offset from the linear form of an index."""
    yw = form.coefficient(SYM_Y, SYM_W)
    x_coeff = form.coefficient(SYM_X)
    if yw not in (0.0, 1.0) or x_coeff not in (0.0, 1.0):
        raise AnalysisError(
            f"read of buffer {buffer!r} is not a unit-stride 2D access "
            f"(Y*W coefficient {yw}, X coefficient {x_coeff})"
        )
    for mono in form.terms:
        if len(mono) > 2 or (len(mono) == 2 and tuple(sorted(mono)) != (SYM_W, SYM_Y)):
            raise AnalysisError(
                f"read of buffer {buffer!r} has a non-affine index (monomial {mono})"
            )
    dy = form.coefficient(SYM_W)
    dx = form.constant_term
    if dy != int(dy) or dx != int(dx):
        raise AnalysisError(
            f"read of buffer {buffer!r} has fractional offsets ({dx}, {dy})"
        )
    return int(dx), int(dy)
