"""Static analyses over kernel ASTs: access patterns, reuse and traffic."""

from .access_patterns import (
    AccessPatternInfo,
    BufferAccessSummary,
    LinearForm,
    StencilAccess,
    analyze_kernel,
)
from .reuse import ReuseInfo, reuse_info
from .traffic import (
    OperationCounts,
    build_profile,
    count_operations,
    local_tile_bytes,
)

__all__ = [
    "AccessPatternInfo",
    "BufferAccessSummary",
    "LinearForm",
    "OperationCounts",
    "ReuseInfo",
    "StencilAccess",
    "analyze_kernel",
    "build_profile",
    "count_operations",
    "local_tile_bytes",
    "reuse_info",
]
