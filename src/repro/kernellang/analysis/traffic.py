"""Static traffic/operation analysis: build timing profiles from kernel ASTs.

The analytical timing model in :mod:`repro.clsim.timing` consumes
:class:`~repro.clsim.timing.KernelProfile` objects.  The benchmark
applications construct those by hand (they know their own structure), but
for kernels written or generated in the kernel language this module derives
a profile automatically from the AST:

* arithmetic operations per work-item (with constant-trip-count loops
  expanded, branches averaged);
* global reads/writes per work-item and their stencil footprint (via the
  access-pattern analysis), converted into per-work-group DRAM traffic;
* local-memory accesses and the local tile allocation per work group;
* barriers per work group.
"""

from __future__ import annotations

from dataclasses import dataclass

from ... import clsim
from ...clsim.ndrange import NDRange
from ...clsim.timing import GlobalTraffic, KernelProfile, tile_traffic
from .. import ast
from ..builtins import get_builtin, is_builtin
from ..errors import AnalysisError
from ..types import PointerType
from .access_patterns import (
    AccessPatternInfo,
    _constant_loop_values,
    analyze_kernel,
)


@dataclass
class OperationCounts:
    """Per-work-item operation counts gathered by :class:`_OpCounter`."""

    flops: float = 0.0
    int_ops: float = 0.0
    sfu_ops: float = 0.0
    global_reads: float = 0.0
    global_writes: float = 0.0
    local_reads: float = 0.0
    local_writes: float = 0.0
    private_accesses: float = 0.0
    barriers: float = 0.0


class _OpCounter:
    """Walks a kernel body counting operations, weighting loop bodies by their
    trip count and branches by 0.5 each (a coarse but serviceable expectation)."""

    def __init__(self, kernel: ast.FunctionDef) -> None:
        self.kernel = kernel
        self.global_params = {
            p.name
            for p in kernel.params
            if isinstance(p.param_type, PointerType)
            and p.param_type.address_space == "global"
        }
        self.local_names: set[str] = set()
        self.private_arrays: set[str] = set()
        self.counts = OperationCounts()

    # ------------------------------------------------------------------
    def run(self) -> OperationCounts:
        self._count_block(self.kernel.body, weight=1.0)
        return self.counts

    def _count_block(self, block: ast.Block, weight: float) -> None:
        for stmt in block.statements:
            self._count_stmt(stmt, weight)

    def _count_stmt(self, stmt: ast.Stmt, weight: float) -> None:
        if isinstance(stmt, ast.DeclStmt):
            for decl in stmt.declarations:
                if decl.address_space == "local":
                    self.local_names.add(decl.name)
                elif decl.array_size is not None:
                    self.private_arrays.add(decl.name)
                if decl.init is not None:
                    self._count_expr(decl.init, weight)
        elif isinstance(stmt, ast.ExprStmt):
            if isinstance(stmt.expr, ast.Call) and stmt.expr.name == "barrier":
                self.counts.barriers += 1
                return
            self._count_expr(stmt.expr, weight)
        elif isinstance(stmt, ast.Block):
            self._count_block(stmt, weight)
        elif isinstance(stmt, ast.IfStmt):
            self._count_expr(stmt.condition, weight)
            self._count_block(stmt.then_body, weight * 0.5)
            if stmt.else_body is not None:
                self._count_block(stmt.else_body, weight * 0.5)
        elif isinstance(stmt, ast.ForStmt):
            loop = _constant_loop_values(stmt)
            trip = len(loop.values) if loop is not None else 8.0
            if stmt.init is not None:
                self._count_stmt(stmt.init, weight)
            if stmt.condition is not None:
                self._count_expr(stmt.condition, weight * trip)
            if stmt.step is not None:
                self._count_expr(stmt.step, weight * trip)
            self._count_block(stmt.body, weight * trip)
        elif isinstance(stmt, (ast.WhileStmt, ast.DoWhileStmt)):
            trip = 8.0
            self._count_expr(stmt.condition, weight * trip)
            self._count_block(stmt.body, weight * trip)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                self._count_expr(stmt.value, weight)

    # ------------------------------------------------------------------
    def _count_expr(self, expr: ast.Expr, weight: float) -> None:
        if isinstance(expr, (ast.IntLiteral, ast.FloatLiteral, ast.BoolLiteral, ast.Identifier)):
            return
        if isinstance(expr, ast.UnaryOp):
            self.counts.int_ops += weight
            self._count_expr(expr.operand, weight)
            return
        if isinstance(expr, ast.BinaryOp):
            if expr.op in ("+", "-", "*", "/", "%"):
                self.counts.flops += weight
            else:
                self.counts.int_ops += weight
            self._count_expr(expr.left, weight)
            self._count_expr(expr.right, weight)
            return
        if isinstance(expr, ast.Assignment):
            self._count_target(expr.target, weight, is_store=True)
            self._count_expr(expr.value, weight)
            if expr.op != "=":
                self.counts.flops += weight
            return
        if isinstance(expr, ast.Ternary):
            self.counts.int_ops += weight
            self._count_expr(expr.condition, weight)
            self._count_expr(expr.if_true, weight * 0.5)
            self._count_expr(expr.if_false, weight * 0.5)
            return
        if isinstance(expr, ast.Call):
            if is_builtin(expr.name):
                builtin = get_builtin(expr.name)
                if builtin.is_sfu:
                    self.counts.sfu_ops += weight
                else:
                    self.counts.flops += weight * builtin.op_cost
            for arg in expr.args:
                self._count_expr(arg, weight)
            return
        if isinstance(expr, ast.Index):
            self._count_target(expr, weight, is_store=False)
            self._count_expr(expr.index, weight)
            return
        if isinstance(expr, ast.Cast):
            self._count_expr(expr.expr, weight)
            return
        if isinstance(expr, ast.InitList):
            for value in expr.values:
                self._count_expr(value, weight)
            return

    def _count_target(self, expr: ast.Expr, weight: float, is_store: bool) -> None:
        if not isinstance(expr, ast.Index):
            return
        base = expr.base
        if not isinstance(base, ast.Identifier):
            return
        name = base.name
        if name in self.global_params:
            if is_store:
                self.counts.global_writes += weight
            else:
                self.counts.global_reads += weight
        elif name in self.local_names:
            if is_store:
                self.counts.local_writes += weight
            else:
                self.counts.local_reads += weight
        elif name in self.private_arrays:
            self.counts.private_accesses += weight
        if is_store:
            self._count_expr(expr.index, weight)


def count_operations(kernel: ast.FunctionDef) -> OperationCounts:
    """Count the per-work-item operations of ``kernel``."""
    return _OpCounter(kernel).run()


def local_tile_bytes(kernel: ast.FunctionDef, element_bytes: int = 4) -> float:
    """Total ``__local`` allocation of the kernel per work group, in bytes.

    Array sizes must be constant expressions (which holds for the kernels
    the transforms generate: tile sizes are specialised literals).
    """
    total = 0.0
    for node in kernel.body.walk():
        if isinstance(node, ast.VarDecl) and node.address_space == "local":
            if node.array_size is None:
                total += element_bytes
                continue
            total += _const_eval(node.array_size) * element_bytes
    return total


def _const_eval(expr: ast.Expr) -> float:
    if isinstance(expr, ast.IntLiteral):
        return float(expr.value)
    if isinstance(expr, ast.FloatLiteral):
        return expr.value
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        return -_const_eval(expr.operand)
    if isinstance(expr, ast.BinaryOp):
        left = _const_eval(expr.left)
        right = _const_eval(expr.right)
        ops = {"+": left + right, "-": left - right, "*": left * right}
        if expr.op in ops:
            return ops[expr.op]
        if expr.op == "/" and right != 0:
            return left / right
    raise AnalysisError("local array sizes must be constant expressions")


def build_profile(
    kernel: ast.FunctionDef,
    ndrange: NDRange,
    element_bytes: int = 4,
    pattern_info: AccessPatternInfo | None = None,
    rows_loaded_fraction: float = 1.0,
    include_halo: bool = True,
) -> KernelProfile:
    """Build a :class:`~repro.clsim.timing.KernelProfile` from a kernel AST.

    ``rows_loaded_fraction`` and ``include_halo`` let the perforation passes
    describe the effect of their schemes on DRAM traffic without re-running
    the analysis on the transformed kernel (whose prefetch loops have
    data-dependent structure).
    """
    counts = count_operations(kernel)
    tile_x, tile_y = (ndrange.local_size + (1, 1))[:2]

    traffic: list[GlobalTraffic] = []
    info = pattern_info
    if info is None:
        try:
            info = analyze_kernel(kernel)
        except AnalysisError:
            info = None

    if info is not None and info.input_buffers:
        for name, summary in info.input_buffers.items():
            halo = summary.halo if include_halo else 0
            if counts.local_writes > 0 or info.uses_local_memory:
                traffic.append(
                    tile_traffic(
                        name,
                        tile_x,
                        tile_y,
                        halo=summary.halo,
                        element_bytes=element_bytes,
                        rows_loaded_fraction=rows_loaded_fraction,
                        include_halo=include_halo,
                    )
                )
            else:
                traffic.append(
                    clsim.per_item_traffic(
                        name,
                        tile_x,
                        tile_y,
                        elements_per_item=max(1, len(summary.offsets)),
                        halo=halo,
                        element_bytes=element_bytes,
                    )
                )
        for name in info.output_buffers:
            traffic.append(
                tile_traffic(
                    name, tile_x, tile_y, halo=0, element_bytes=element_bytes, is_store=True
                )
            )
    else:
        # Fall back to raw per-item counts with ideal coalescing.
        if counts.global_reads:
            traffic.append(
                tile_traffic("reads", tile_x, tile_y, element_bytes=element_bytes)
            )
        if counts.global_writes:
            traffic.append(
                tile_traffic(
                    "writes", tile_x, tile_y, element_bytes=element_bytes, is_store=True
                )
            )

    return KernelProfile(
        name=kernel.name,
        traffic=tuple(traffic),
        flops_per_item=counts.flops,
        int_ops_per_item=counts.int_ops,
        sfu_ops_per_item=counts.sfu_ops,
        private_accesses_per_item=counts.private_accesses,
        local_reads_per_item=counts.local_reads,
        local_writes_per_item=counts.local_writes,
        barriers_per_group=counts.barriers,
        local_mem_bytes_per_group=local_tile_bytes(kernel, element_bytes),
    )
