"""Data-reuse analysis.

The paper observes (Section 5) that local memory only pays off when there
is *data reuse across threads*: the same input element is needed by several
work-items of a work group.  This analysis quantifies that reuse for a
kernel's input buffers and is used by the perforator to decide whether the
transformed kernel should stage data in local memory at all (the Inversion
benchmark, with a 1x1 footprint, has no reuse and its accurate version does
not use local memory).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import ast
from .access_patterns import AccessPatternInfo, analyze_kernel


@dataclass(frozen=True)
class ReuseInfo:
    """Reuse statistics for one input buffer within a work-group tile."""

    buffer: str
    accesses_per_item: int
    footprint_width: int
    footprint_height: int

    def unique_elements(self, tile_x: int, tile_y: int) -> int:
        """Unique input elements touched by a ``tile_x`` x ``tile_y`` work group."""
        halo_x = self.footprint_width - 1
        halo_y = self.footprint_height - 1
        return (tile_x + halo_x) * (tile_y + halo_y)

    def total_accesses(self, tile_x: int, tile_y: int) -> int:
        """Total element reads issued by the work group."""
        return self.accesses_per_item * tile_x * tile_y

    def reuse_factor(self, tile_x: int, tile_y: int) -> float:
        """Average number of work-items that read each unique element.

        A factor of 1.0 means no reuse (local-memory staging cannot help);
        the Gaussian 3x3 kernel on a 16x16 tile has a factor of ~7.1, the
        Sobel 5x5 kernel ~16.
        """
        unique = self.unique_elements(tile_x, tile_y)
        if unique == 0:
            return 0.0
        return self.total_accesses(tile_x, tile_y) / unique

    def benefits_from_local_memory(self, tile_x: int, tile_y: int, threshold: float = 1.5) -> bool:
        """Whether staging this buffer in local memory is worthwhile."""
        return self.reuse_factor(tile_x, tile_y) >= threshold


def reuse_info(kernel: ast.FunctionDef, info: AccessPatternInfo | None = None) -> dict[str, ReuseInfo]:
    """Compute per-buffer reuse statistics for ``kernel``."""
    if info is None:
        info = analyze_kernel(kernel)
    result: dict[str, ReuseInfo] = {}
    for name, summary in info.input_buffers.items():
        width, height = summary.footprint
        result[name] = ReuseInfo(
            buffer=name,
            accesses_per_item=len(summary.offsets),
            footprint_width=max(width, 1),
            footprint_height=max(height, 1),
        )
    return result
