"""Recursive-descent parser for the OpenCL C subset."""

from __future__ import annotations

from typing import Optional

from . import ast
from .errors import ParseError
from .lexer import tokenize
from .tokens import Token, TokenKind
from .types import (
    AddressSpace,
    ArrayType,
    PointerType,
    ScalarType,
    Type,
    is_type_name,
    scalar,
)

_ADDRESS_SPACE_KEYWORDS = {
    "__global",
    "global",
    "__local",
    "local",
    "__constant",
    "constant",
    "__private",
    "private",
}

_QUALIFIER_KEYWORDS = _ADDRESS_SPACE_KEYWORDS | {"const", "restrict", "volatile"}

_ASSIGNMENT_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=")

# Binary operator precedence levels, lowest first.
_BINARY_LEVELS = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", ">", "<=", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


class Parser:
    """Parses a token stream into a :class:`~repro.kernellang.ast.Program`."""

    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _check_punct(self, text: str) -> bool:
        return self._peek().is_punct(text)

    def _check_keyword(self, text: str) -> bool:
        return self._peek().is_keyword(text)

    def _accept_punct(self, text: str) -> bool:
        if self._check_punct(text):
            self._advance()
            return True
        return False

    def _accept_keyword(self, text: str) -> bool:
        if self._check_keyword(text):
            self._advance()
            return True
        return False

    def _expect_punct(self, text: str) -> Token:
        if not self._check_punct(text):
            tok = self._peek()
            raise ParseError(f"expected {text!r} at {tok.location}, found {tok.text!r}")
        return self._advance()

    def _expect_ident(self) -> Token:
        tok = self._peek()
        if tok.kind is not TokenKind.IDENT:
            raise ParseError(f"expected identifier at {tok.location}, found {tok.text!r}")
        return self._advance()

    # ------------------------------------------------------------------
    # Types and qualifiers
    # ------------------------------------------------------------------
    def _at_declaration(self) -> bool:
        """Whether the upcoming tokens start a declaration."""
        tok = self._peek()
        if tok.kind is TokenKind.KEYWORD:
            return tok.text in _QUALIFIER_KEYWORDS or is_type_name(tok.text)
        return False

    def _parse_qualifiers(self) -> tuple[str, bool]:
        """Parse leading qualifiers; returns (address_space, is_const)."""
        address_space = AddressSpace.PRIVATE
        is_const = False
        while True:
            tok = self._peek()
            if tok.kind is TokenKind.KEYWORD and tok.text in _ADDRESS_SPACE_KEYWORDS:
                address_space = AddressSpace.normalize(tok.text)
                self._advance()
            elif tok.is_keyword("const"):
                is_const = True
                self._advance()
            elif tok.is_keyword("restrict") or tok.is_keyword("volatile"):
                self._advance()
            else:
                break
        return address_space, is_const

    def _parse_scalar_type(self) -> ScalarType:
        tok = self._peek()
        if tok.kind is TokenKind.KEYWORD and is_type_name(tok.text):
            self._advance()
            # allow trailing const (e.g. "float const")
            while self._accept_keyword("const"):
                pass
            return scalar(tok.text)
        raise ParseError(f"expected a type name at {tok.location}, found {tok.text!r}")

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while self._peek().kind is not TokenKind.EOF:
            is_kernel = False
            while self._accept_keyword("__kernel") or self._accept_keyword("kernel"):
                is_kernel = True
            address_space, is_const = self._parse_qualifiers()
            base_type = self._parse_scalar_type()
            is_pointer = False
            while self._accept_punct("*"):
                is_pointer = True
            name = self._expect_ident().text
            if self._check_punct("("):
                func = self._parse_function(name, base_type, is_kernel)
                program.functions.append(func)
            else:
                decl = self._parse_global_decl(
                    name, base_type, address_space, is_const, is_pointer
                )
                program.globals.append(decl)
        return program

    def _parse_global_decl(
        self,
        name: str,
        base_type: ScalarType,
        address_space: str,
        is_const: bool,
        is_pointer: bool,
    ) -> ast.DeclStmt:
        var_type: Type = base_type
        if is_pointer:
            var_type = PointerType(base_type, address_space, is_const)
        array_size: Optional[ast.Expr] = None
        if self._accept_punct("["):
            if not self._check_punct("]"):
                array_size = self.parse_expression()
            self._expect_punct("]")
        init: Optional[ast.Expr] = None
        if self._accept_punct("="):
            init = self._parse_initializer()
        self._expect_punct(";")
        decl = ast.VarDecl(
            name=name,
            var_type=var_type,
            address_space=address_space,
            is_const=is_const,
            array_size=array_size,
            init=init,
        )
        return ast.DeclStmt([decl])

    def _parse_function(
        self, name: str, return_type: ScalarType, is_kernel: bool
    ) -> ast.FunctionDef:
        self._expect_punct("(")
        params: list[ast.Param] = []
        if not self._check_punct(")"):
            while True:
                params.append(self._parse_param())
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        body = self._parse_block()
        return ast.FunctionDef(
            name=name,
            return_type=return_type,
            params=params,
            body=body,
            is_kernel=is_kernel,
        )

    def _parse_param(self) -> ast.Param:
        address_space, is_const = self._parse_qualifiers()
        base_type = self._parse_scalar_type()
        param_type: Type = base_type
        is_pointer = False
        while self._accept_punct("*"):
            is_pointer = True
        # allow "restrict"/"const" after the star
        while self._accept_keyword("restrict") or self._accept_keyword("const"):
            pass
        name = self._expect_ident().text
        if self._accept_punct("["):
            size_expr = None
            if not self._check_punct("]"):
                size_expr = self.parse_expression()
            self._expect_punct("]")
            length = _const_int(size_expr) if size_expr is not None else 0
            param_type = ArrayType(base_type, length, address_space)
        elif is_pointer:
            param_type = PointerType(base_type, address_space, is_const)
        return ast.Param(name=name, param_type=param_type)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _parse_block(self) -> ast.Block:
        self._expect_punct("{")
        statements: list[ast.Stmt] = []
        while not self._check_punct("}"):
            if self._peek().kind is TokenKind.EOF:
                raise ParseError("unexpected end of input inside a block")
            statements.append(self.parse_statement())
        self._expect_punct("}")
        return ast.Block(statements)

    def parse_statement(self) -> ast.Stmt:
        tok = self._peek()
        if tok.is_punct("{"):
            return self._parse_block()
        if tok.is_punct(";"):
            self._advance()
            return ast.Block([])
        if tok.is_keyword("if"):
            return self._parse_if()
        if tok.is_keyword("for"):
            return self._parse_for()
        if tok.is_keyword("while"):
            return self._parse_while()
        if tok.is_keyword("do"):
            return self._parse_do_while()
        if tok.is_keyword("return"):
            self._advance()
            value = None
            if not self._check_punct(";"):
                value = self.parse_expression()
            self._expect_punct(";")
            return ast.ReturnStmt(value)
        if tok.is_keyword("break"):
            self._advance()
            self._expect_punct(";")
            return ast.BreakStmt()
        if tok.is_keyword("continue"):
            self._advance()
            self._expect_punct(";")
            return ast.ContinueStmt()
        if self._at_declaration():
            decl = self._parse_declaration()
            self._expect_punct(";")
            return decl
        expr = self.parse_expression()
        self._expect_punct(";")
        return ast.ExprStmt(expr)

    def _parse_declaration(self) -> ast.DeclStmt:
        address_space, is_const = self._parse_qualifiers()
        base_type = self._parse_scalar_type()
        declarations: list[ast.VarDecl] = []
        while True:
            is_pointer = False
            while self._accept_punct("*"):
                is_pointer = True
            name = self._expect_ident().text
            var_type: Type = base_type
            if is_pointer:
                var_type = PointerType(base_type, address_space, is_const)
            array_size: Optional[ast.Expr] = None
            if self._accept_punct("["):
                if not self._check_punct("]"):
                    array_size = self.parse_expression()
                self._expect_punct("]")
            init: Optional[ast.Expr] = None
            if self._accept_punct("="):
                init = self._parse_initializer()
            declarations.append(
                ast.VarDecl(
                    name=name,
                    var_type=var_type,
                    address_space=address_space,
                    is_const=is_const,
                    array_size=array_size,
                    init=init,
                )
            )
            if not self._accept_punct(","):
                break
        return ast.DeclStmt(declarations)

    def _parse_initializer(self) -> ast.Expr:
        if self._check_punct("{"):
            self._advance()
            values: list[ast.Expr] = []
            if not self._check_punct("}"):
                while True:
                    values.append(self._parse_initializer())
                    if not self._accept_punct(","):
                        break
            self._expect_punct("}")
            return ast.InitList(values)
        return self.parse_assignment()

    def _parse_if(self) -> ast.IfStmt:
        self._advance()
        self._expect_punct("(")
        condition = self.parse_expression()
        self._expect_punct(")")
        then_body = self._statement_as_block()
        else_body = None
        if self._accept_keyword("else"):
            else_body = self._statement_as_block()
        return ast.IfStmt(condition, then_body, else_body)

    def _parse_for(self) -> ast.ForStmt:
        self._advance()
        self._expect_punct("(")
        init: Optional[ast.Stmt] = None
        if not self._check_punct(";"):
            if self._at_declaration():
                init = self._parse_declaration()
            else:
                init = ast.ExprStmt(self.parse_expression())
        self._expect_punct(";")
        condition = None
        if not self._check_punct(";"):
            condition = self.parse_expression()
        self._expect_punct(";")
        step = None
        if not self._check_punct(")"):
            step = self.parse_expression()
        self._expect_punct(")")
        body = self._statement_as_block()
        return ast.ForStmt(init, condition, step, body)

    def _parse_while(self) -> ast.WhileStmt:
        self._advance()
        self._expect_punct("(")
        condition = self.parse_expression()
        self._expect_punct(")")
        body = self._statement_as_block()
        return ast.WhileStmt(condition, body)

    def _parse_do_while(self) -> ast.DoWhileStmt:
        self._advance()
        body = self._statement_as_block()
        if not self._accept_keyword("while"):
            raise ParseError(f"expected 'while' after do-body at {self._peek().location}")
        self._expect_punct("(")
        condition = self.parse_expression()
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.DoWhileStmt(body, condition)

    def _statement_as_block(self) -> ast.Block:
        stmt = self.parse_statement()
        if isinstance(stmt, ast.Block):
            return stmt
        return ast.Block([stmt])

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def parse_expression(self) -> ast.Expr:
        expr = self.parse_assignment()
        # The comma operator is not supported; kernels in the subset do not
        # use it outside of argument lists and for-steps.
        return expr

    def parse_assignment(self) -> ast.Expr:
        target = self._parse_ternary()
        tok = self._peek()
        if tok.kind is TokenKind.PUNCT and tok.text in _ASSIGNMENT_OPS:
            op = self._advance().text
            value = self.parse_assignment()
            return ast.Assignment(op, target, value)
        return target

    def _parse_ternary(self) -> ast.Expr:
        condition = self._parse_binary(0)
        if self._accept_punct("?"):
            if_true = self.parse_assignment()
            self._expect_punct(":")
            if_false = self.parse_assignment()
            return ast.Ternary(condition, if_true, if_false)
        return condition

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while True:
            tok = self._peek()
            if tok.kind is TokenKind.PUNCT and tok.text in ops:
                op = self._advance().text
                right = self._parse_binary(level + 1)
                left = ast.BinaryOp(op, left, right)
            else:
                return left

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.PUNCT and tok.text in ("-", "+", "!", "~"):
            op = self._advance().text
            operand = self._parse_unary()
            return ast.UnaryOp(op, operand)
        if tok.kind is TokenKind.PUNCT and tok.text in ("++", "--"):
            op = self._advance().text
            operand = self._parse_unary()
            return ast.UnaryOp(op, operand)
        # C-style cast: "(" type ")" unary
        if tok.is_punct("(") and self._is_cast_ahead():
            self._advance()
            address_space, is_const = self._parse_qualifiers()
            target = self._parse_scalar_type()
            cast_type: Type = target
            if self._accept_punct("*"):
                cast_type = PointerType(target, address_space, is_const)
            self._expect_punct(")")
            return ast.Cast(cast_type, self._parse_unary())
        return self._parse_postfix()

    def _is_cast_ahead(self) -> bool:
        nxt = self._peek(1)
        return nxt.kind is TokenKind.KEYWORD and (
            is_type_name(nxt.text) or nxt.text in _QUALIFIER_KEYWORDS
        )

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._accept_punct("["):
                index = self.parse_expression()
                self._expect_punct("]")
                expr = ast.Index(expr, index)
            elif self._check_punct("(") and isinstance(expr, ast.Identifier):
                self._advance()
                args: list[ast.Expr] = []
                if not self._check_punct(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self._accept_punct(","):
                            break
                self._expect_punct(")")
                expr = ast.Call(expr.name, args)
            elif self._peek().kind is TokenKind.PUNCT and self._peek().text in ("++", "--"):
                op = self._advance().text
                expr = ast.UnaryOp(op, expr, postfix=True)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.INT_LITERAL:
            self._advance()
            return ast.IntLiteral(tok.int_value)
        if tok.kind is TokenKind.FLOAT_LITERAL:
            self._advance()
            return ast.FloatLiteral(tok.float_value)
        if tok.is_keyword("true"):
            self._advance()
            return ast.BoolLiteral(True)
        if tok.is_keyword("false"):
            self._advance()
            return ast.BoolLiteral(False)
        if tok.kind is TokenKind.IDENT:
            self._advance()
            return ast.Identifier(tok.text)
        if tok.is_punct("("):
            self._advance()
            expr = self.parse_expression()
            self._expect_punct(")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r} at {tok.location}")


def _const_int(expr: ast.Expr) -> int:
    """Evaluate a constant integer expression used in an array declarator."""
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.BinaryOp):
        left = _const_int(expr.left)
        right = _const_int(expr.right)
        ops = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a // b,
            "%": lambda a, b: a % b,
        }
        if expr.op in ops:
            return ops[expr.op](left, right)
    raise ParseError("array sizes must be constant integer expressions")


def parse_program(source: str) -> ast.Program:
    """Parse kernel source text into a :class:`Program`."""
    return Parser(tokenize(source)).parse_program()


def parse_kernel(source: str, name: str | None = None) -> ast.FunctionDef:
    """Parse kernel source and return the (single or named) kernel function."""
    return parse_program(source).kernel(name)
