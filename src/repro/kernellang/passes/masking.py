"""Mask insertion: the per-lane semantics of divergent control flow.

**Consumes** varying values as ``(lanes,)`` NumPy arrays plus a boolean
active-lane mask.  **Guarantees downstream** that every merge, arithmetic
kernel and built-in reproduces the scalar reference interpreter bit for
bit on the active lanes — inactive lanes are never observable:

* the assignment merge rules (:func:`masked_assign`, :func:`full_assign`,
  :func:`uniform_assign`, :func:`decl_scalar`, :func:`merge_parts`,
  :func:`int_truncate`) implement C's dynamic int-truncation — a slot that
  currently holds an integer stays integer when assigned a float — and
  merge divergent arms into one lane array;
* the arithmetic kernels (:func:`apply_binary`, :func:`varying_div`,
  :func:`varying_mod`, :func:`uniform_div`, :func:`uniform_mod`) implement
  C semantics (truncation toward zero for integer ``/`` and ``%``) and
  raise :class:`~repro.kernellang.errors.InterpreterError` exactly when an
  *active* lane divides by zero;
* the built-in table (:data:`VECTOR_BUILTINS`, :func:`scalar_map`,
  :class:`VectorFallback`, :func:`uniform_call`) provides mask-aware
  vector kernels where NumPy rounds identically to libm and a per-active-
  lane scalar fallback everywhere else, with the interpreter's exact
  error wrapping;
* :class:`Flow` / :class:`FnFlow` carry the returned-lane bookkeeping of
  kernel bodies and masked-inlined helpers;
* :class:`MaskedControlFlow` is the dynamic form of the pass — a
  statement executor that threads the mask through ``if``/``for``/
  ``while``/``do-while`` (including ``break``/``continue``/``return``)
  until every lane retires.  The vectorized backend runs it directly; the
  codegen backend prints the same algebra as specialized source and calls
  back into these functions by name at run time, which is what keeps the
  two backends bit-identical.

Invariant: a ``barrier()`` must be reached by *all* lanes of the group at
the same statement; divergent barriers raise
:class:`~repro.clsim.errors.BarrierDivergenceError` rather than silently
drifting from the lock-step reference.
"""

from __future__ import annotations

import math

import numpy as np

from ...clsim.errors import BarrierDivergenceError
from .. import ast
from ..builtins import SYNC_BUILTINS, get_builtin
from ..errors import InterpreterError

_INT = np.int64
_FLOAT = np.float64


def _is_int(array: np.ndarray) -> bool:
    return array.dtype.kind in "iu"


def truthy(array: np.ndarray) -> np.ndarray:
    """Per-lane C truthiness: nonzero is true."""
    return array != 0


# ---------------------------------------------------------------------------
# Mask-aware built-ins
# ---------------------------------------------------------------------------
def scalar_map(fn):
    """Apply a scalar libm function per active lane (bit-exact fallback)."""

    def apply(mask, *args):
        out = np.zeros(mask.shape[0], dtype=_FLOAT)
        idx = np.flatnonzero(mask)
        lanes = [np.asarray(a, dtype=_FLOAT)[idx] for a in args]
        out[idx] = [fn(*vals) for vals in zip(*lanes)]
        return out

    return apply


def _vector_clamp(mask, value, low, high):
    return np.minimum(np.maximum(value, low), high)


def _vector_select(mask, a, b, c):
    return np.where(truthy(np.asarray(c)), b, a)


def _int_result(fn):
    """Wrap a float-returning ufunc whose interpreter twin returns ``int``."""

    def apply(mask, x):
        return fn(x).astype(_INT)

    return apply


def _vector_sqrt(mask, x):
    x = np.asarray(x, dtype=_FLOAT)
    if np.any(mask & (x < 0)):
        # The scalar interpreter raises through math.sqrt; don't let lanes
        # silently produce NaN where the reference backend errors out.
        raise InterpreterError("built-in 'sqrt' failed: math domain error")
    return np.sqrt(np.where(mask, x, 0.0))


def _vector_rsqrt(mask, x):
    x = np.asarray(x, dtype=_FLOAT)
    if np.any(mask & (x < 0)):
        raise InterpreterError("built-in 'rsqrt' failed: math domain error")
    if np.any(mask & (x == 0)):
        raise InterpreterError("built-in 'rsqrt' failed: float division by zero")
    return 1.0 / np.sqrt(np.where(mask, x, 1.0))


def _vector_native_divide(mask, a, b):
    b = np.asarray(b)
    if np.any(mask & (b == 0)):
        raise InterpreterError("built-in 'native_divide' failed: float division by zero")
    return np.asarray(a, dtype=_FLOAT) / np.where(b == 0, 1.0, b)


#: Vector implementations of the built-ins; signature ``fn(mask, *args)``.
#: Anything missing here falls back to the scalar implementation per lane.
VECTOR_BUILTINS = {
    "min": lambda mask, a, b: np.minimum(a, b),
    "max": lambda mask, a, b: np.maximum(a, b),
    "fmin": lambda mask, a, b: np.minimum(a, b),
    "fmax": lambda mask, a, b: np.maximum(a, b),
    "clamp": _vector_clamp,
    "abs": lambda mask, x: np.abs(x),
    "fabs": lambda mask, x: np.abs(x),
    "floor": _int_result(np.floor),
    "ceil": _int_result(np.ceil),
    "round": _int_result(np.round),
    "sign": lambda mask, x: np.sign(x).astype(_FLOAT),
    "mad": lambda mask, a, b, c: a * b + c,
    "fma": lambda mask, a, b, c: a * b + c,
    "mix": lambda mask, a, b, t: a + (b - a) * t,
    "select": _vector_select,
    "sqrt": _vector_sqrt,
    "rsqrt": _vector_rsqrt,
    "native_divide": _vector_native_divide,
}


def builtin_impl(name: str):
    """Resolve a built-in's scalar implementation (uniform call path)."""
    return get_builtin(name).impl


def uniform_call(name: str, impl, *args):
    """Uniform built-in call with the interpreter's error wrapping."""
    try:
        return impl(*args)
    except Exception as exc:
        raise InterpreterError(f"built-in {name!r} failed: {exc}") from exc


class VectorFallback:
    """Per-active-lane scalar fallback for built-ins without a vector kernel."""

    __slots__ = ("name", "apply")

    def __init__(self, name: str) -> None:
        self.name = name
        self.apply = scalar_map(get_builtin(name).impl)

    def __call__(self, mask, *args):
        try:
            return self.apply(mask, *args)
        except Exception as exc:
            raise InterpreterError(f"built-in {self.name!r} failed: {exc}") from exc


# ---------------------------------------------------------------------------
# C-semantics arithmetic kernels
# ---------------------------------------------------------------------------
def uniform_div(left, right):
    """Uniform ``/`` with the scalar interpreter's exact semantics."""
    if isinstance(left, int) and isinstance(right, int):
        if right == 0:
            raise InterpreterError("integer division by zero")
        quotient = left // right
        if left % right != 0 and (left < 0) != (right < 0):
            quotient += 1
        return quotient
    if right == 0:
        raise InterpreterError("division by zero")
    return left / right


def uniform_mod(left, right):
    """Uniform ``%`` with the scalar interpreter's exact semantics."""
    if right == 0:
        raise InterpreterError("modulo by zero")
    if isinstance(left, int) and isinstance(right, int):
        return int(math.fmod(left, right))
    return math.fmod(left, right)


def varying_div(left, right, mask):
    """Varying ``/``: C truncation toward zero, errors on *active* lanes."""
    left = np.asarray(left)
    right = np.asarray(right)
    int_int = _is_int(left) and _is_int(right)
    if np.any(mask & (right == 0)):
        if int_int:
            raise InterpreterError("integer division by zero")
        raise InterpreterError("division by zero")
    if _is_int(right):
        safe = np.where(right == 0, 1, right)
    else:
        safe = np.where(right == 0, 1.0, right)
    if int_int:
        quotient = np.floor_divide(left, safe)
        remainder = left - quotient * safe
        return quotient + ((remainder != 0) & ((left < 0) ^ (safe < 0)))
    return left / safe


def varying_mod(left, right, mask):
    """Varying ``%``: C ``fmod`` semantics, errors on *active* lanes."""
    left = np.asarray(left)
    right = np.asarray(right)
    if np.any(mask & (right == 0)):
        raise InterpreterError("modulo by zero")
    safe = np.where(right == 0, 1, right)
    return np.fmod(left, safe)


def apply_binary(op: str, left, right, mask: np.ndarray) -> np.ndarray:
    """Lane-wise binary operator on varying operands (interpreter semantics)."""
    left = np.asarray(left)
    right = np.asarray(right)
    if op == "/":
        return varying_div(left, right, mask)
    if op == "%":
        return varying_mod(left, right, mask)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op in ("<", ">", "<=", ">=", "==", "!="):
        table = {
            "<": np.less,
            ">": np.greater,
            "<=": np.less_equal,
            ">=": np.greater_equal,
            "==": np.equal,
            "!=": np.not_equal,
        }
        return table[op](left, right).astype(_INT)
    if op in ("&", "|", "^", "<<", ">>"):
        l_int = left.astype(_INT)
        r_int = right.astype(_INT)
        if op == "&":
            return l_int & r_int
        if op == "|":
            return l_int | r_int
        if op == "^":
            return l_int ^ r_int
        if op == "<<":
            return l_int << r_int
        return l_int >> r_int
    raise InterpreterError(f"unsupported binary operator {op!r}")


# ---------------------------------------------------------------------------
# Assignment merge rules
# ---------------------------------------------------------------------------
def int_truncate(value):
    """Varying store into an int-typed slot: truncate unless already int."""
    value = np.asarray(value)
    return value if _is_int(value) else value.astype(_INT)


def uniform_assign(existing, value):
    """Uniform assignment with the interpreter's dynamic int-truncation rule."""
    if isinstance(existing, int) and isinstance(value, float):
        return int(value)
    return value


def full_assign(existing, value):
    """Full-mask varying assignment with the dynamic int-truncation rule."""
    value = np.asarray(value)
    if _is_int(existing) and not _is_int(value):
        return value.astype(_INT)
    return value


def masked_assign(existing, value, mask):
    """Masked varying assignment: active lanes take ``value``, dtype sticks.

    Follows C (and the scalar interpreter): assigning a float to an
    integer slot truncates toward zero, and the slot stays integer.
    """
    value = np.asarray(value)
    if _is_int(existing) and not _is_int(value):
        value = value.astype(_INT)
    dtype = np.result_type(existing.dtype, value.dtype)
    if _is_int(existing):
        dtype = existing.dtype
    merged = existing.astype(dtype)
    merged[mask] = value.astype(dtype)[mask]
    return merged


def decl_scalar(existing, value, mask):
    """Scalar re-declaration under a divergent mask.

    Only the active lanes observe the fresh value; inactive lanes keep
    what the slot held before the divergent region was entered.
    """
    value = np.asarray(value)
    if isinstance(existing, np.ndarray) and not mask.all():
        return masked_assign(existing, value, mask)
    return value


def merge_parts(lanes: int, parts):
    """Merge the evaluated arms of a varying ternary into one lane array."""
    dtype = np.result_type(*(np.asarray(v).dtype for _, v in parts))
    result = np.zeros(lanes, dtype=dtype)
    for mask, value in parts:
        result[mask] = np.asarray(value, dtype=dtype)[mask]
    return result


# ---------------------------------------------------------------------------
# Control-flow bookkeeping
# ---------------------------------------------------------------------------
class Flow:
    """Per-invocation control-flow state (returned lanes, loop stacks)."""

    def __init__(self, lanes: int, in_function: bool = False) -> None:
        self.lanes = lanes
        self.in_function = in_function
        self.returned = np.zeros(lanes, dtype=bool)
        self.return_value: np.ndarray | None = None
        self.break_stack: list[np.ndarray] = []
        self.continue_stack: list[np.ndarray] = []

    def record_return(self, mask: np.ndarray, value: np.ndarray | None) -> None:
        self.returned = self.returned | mask
        if value is None:
            return
        value = np.asarray(value)
        if self.return_value is None:
            # Lanes that fall off the end of a function return 0 (an int),
            # exactly like the scalar interpreter.
            self.return_value = np.zeros(self.lanes, dtype=_INT)
        merged = self.return_value.astype(
            np.result_type(self.return_value.dtype, value.dtype)
        )
        merged[mask] = value.astype(merged.dtype)[mask]
        self.return_value = merged


class FnFlow:
    """Return-lane bookkeeping of one masked-inlined helper call."""

    __slots__ = ("lanes", "returned", "value")

    def __init__(self, lanes: int) -> None:
        self.lanes = lanes
        self.returned = np.zeros(lanes, dtype=bool)
        self.value = None

    def record(self, mask: np.ndarray, value) -> None:
        self.returned = self.returned | mask
        if value is None:
            return
        value = np.asarray(value)
        if self.value is None:
            self.value = np.zeros(self.lanes, dtype=_INT)
        merged = self.value.astype(np.result_type(self.value.dtype, value.dtype))
        merged[mask] = value.astype(merged.dtype)[mask]
        self.value = merged

    def result(self):
        if self.value is None:
            return np.zeros(self.lanes, dtype=_INT)
        return self.value


# ---------------------------------------------------------------------------
# The dynamic masked statement executor
# ---------------------------------------------------------------------------
class MaskedControlFlow:
    """Executes kernellang statements with a per-lane mask threaded through.

    Mixin: the concrete group state provides ``lanes`` (int), ``barriers``
    (int counter), ``eval(expr, env, flow, mask)`` and
    ``_exec_decl(decl, env, flow, mask)``.  Every statement method takes
    the current active mask and returns the mask live *after* the
    statement; ``return``/``break``/``continue`` kill their lanes by
    recording them in ``flow`` and returning an empty mask.
    """

    def exec_block(self, block: ast.Block, env, flow: Flow, mask: np.ndarray):
        for stmt in block.statements:
            if not mask.any():
                break
            mask = self.exec_stmt(stmt, env, flow, mask)
        return mask

    def exec_stmt(self, stmt: ast.Stmt, env, flow: Flow, mask: np.ndarray):
        if isinstance(stmt, ast.DeclStmt):
            for decl in stmt.declarations:
                self._exec_decl(decl, env, flow, mask)
            return mask
        if isinstance(stmt, ast.ExprStmt):
            if isinstance(stmt.expr, ast.Call) and stmt.expr.name in SYNC_BUILTINS:
                if stmt.expr.name == "barrier":
                    self._exec_barrier(flow, mask)
                return mask
            self.eval(stmt.expr, env, flow, mask)
            return mask
        if isinstance(stmt, ast.Block):
            return self.exec_block(stmt, env, flow, mask)
        if isinstance(stmt, ast.IfStmt):
            cond = truthy(self.eval(stmt.condition, env, flow, mask))
            then_mask = mask & cond
            else_mask = mask & ~cond
            out = else_mask
            if then_mask.any():
                out = self.exec_block(stmt.then_body, env, flow, then_mask) | else_mask
            if stmt.else_body is not None and else_mask.any():
                out = (out & ~else_mask) | self.exec_block(
                    stmt.else_body, env, flow, else_mask
                )
            return out
        if isinstance(stmt, ast.ForStmt):
            return self._exec_for(stmt, env, flow, mask)
        if isinstance(stmt, ast.WhileStmt):
            return self._exec_loop(
                env, flow, mask, condition=stmt.condition, body=stmt.body
            )
        if isinstance(stmt, ast.DoWhileStmt):
            return self._exec_loop(
                env,
                flow,
                mask,
                condition=stmt.condition,
                body=stmt.body,
                check_first=False,
            )
        if isinstance(stmt, ast.ReturnStmt):
            value = None
            if stmt.value is not None:
                value = self.eval(stmt.value, env, flow, mask)
            flow.record_return(mask, value)
            return mask & False
        if isinstance(stmt, ast.BreakStmt):
            if not flow.break_stack:
                raise InterpreterError("break outside of a loop")
            flow.break_stack[-1] |= mask
            return mask & False
        if isinstance(stmt, ast.ContinueStmt):
            if not flow.continue_stack:
                raise InterpreterError("continue outside of a loop")
            flow.continue_stack[-1] |= mask
            return mask & False
        raise InterpreterError(f"unsupported statement {type(stmt).__name__}")

    def _exec_barrier(self, flow: Flow, mask: np.ndarray) -> None:
        if flow.in_function:
            raise InterpreterError("helper functions may not contain barriers")
        if flow.returned.any() or not mask.all():
            raise BarrierDivergenceError(
                "work-items of the group reached different numbers of barriers"
            )
        self.barriers += 1

    def _exec_for(self, stmt: ast.ForStmt, env, flow: Flow, mask: np.ndarray):
        if stmt.init is not None:
            mask = self.exec_stmt(stmt.init, env, flow, mask)
        return self._exec_loop(
            env, flow, mask, condition=stmt.condition, body=stmt.body, step=stmt.step
        )

    def _exec_loop(
        self,
        env,
        flow: Flow,
        mask: np.ndarray,
        condition: ast.Expr | None,
        body: ast.Block,
        step: ast.Expr | None = None,
        check_first: bool = True,
    ):
        entered = mask
        active = mask.copy()
        flow.break_stack.append(np.zeros(self.lanes, dtype=bool))
        first = True
        while active.any():
            if condition is not None and (check_first or not first):
                cond = truthy(self.eval(condition, env, flow, active))
                active = active & cond
                if not active.any():
                    break
            first = False
            flow.continue_stack.append(np.zeros(self.lanes, dtype=bool))
            after = self.exec_block(body, env, flow, active)
            active = after | flow.continue_stack.pop()
            if step is not None and active.any():
                self.eval(step, env, flow, active)
        flow.break_stack.pop()
        return entered & ~flow.returned
