"""The kernellang pass pipeline — shared lowering semantics for all backends.

The compiled backends specialize one kernel source into many approximate
variants; this package holds the lowering semantics they share, so a new
backend consumes the passes instead of re-implementing mask algebra and
batching from scratch (see ``docs/ir.md`` for the backend-author path):

* :mod:`~repro.kernellang.passes.uniformity` — classifies every variable
  as uniform or varying and decides which loops need mask machinery (the
  specialization analysis of the codegen backend);
* :mod:`~repro.kernellang.passes.masking` — the mask-insertion semantics
  for divergent control flow: the per-lane mask algebra, merge rules,
  C-semantics arithmetic kernels, mask-aware built-ins, and the dynamic
  masked statement executor the vectorized backend runs;
* :mod:`~repro.kernellang.passes.memory` — lane-indexed views of global
  buffers, local tiles, private and constant arrays, with the exact
  bounds-check and ``ExecutionStats`` counting contract;
* :mod:`~repro.kernellang.passes.batching` — the batching transform for
  segmented buffers: lane-to-request routing and the segmented memory
  views that make one stacked launch bit-identical to N individual ones.

The typed value model the passes operate on (kinds, dtypes,
:class:`~repro.kernellang.ir.Scope`) lives in :mod:`repro.kernellang.ir`.
"""

from .uniformity import UniformityAnalysis, classify_kernel

__all__ = [
    "UniformityAnalysis",
    "classify_kernel",
]
