"""Lane-indexed memory views: global buffers, local tiles, private arrays.

**Consumes** per-lane ``int64`` index arrays (or plain Python ints on the
uniform entry points) plus the active-lane mask.  **Guarantees
downstream** the reference interpreter's exact observable contract:

* bounds are checked on *active* lanes only, raising
  :class:`~repro.kernellang.errors.InterpreterError` with the
  interpreter's message for the first offending lane;
* every load/store records exactly one access *per active lane* on the
  owning buffer/local memory, so
  :class:`~repro.clsim.executor.ExecutionStats` counters are bit-identical
  across backends (the uniform entry points count all ``lanes`` — each
  work-item performed the access — and a full-mask store to one shared
  address keeps last-lane-wins semantics);
* all values cross the boundary as ``float64``, matching the simulator's
  buffer element type.

Method surface per view: ``loadf``/``storef`` (full mask, statically
known), ``loadm``/``storem`` (masked), and on the unsegmented views
``loadu``/``storeu`` (uniform index, full mask) and ``loadum``/
``storeum`` (uniform index, masked).  The vectorized backend uses the
masked entry points dynamically; the codegen printer selects the
cheapest entry point statically.  The batched variants live in
:mod:`repro.kernellang.passes.batching`.
"""

from __future__ import annotations

import numpy as np

from ...clsim.memory import Buffer
from ..errors import InterpreterError

_INT = np.int64
_FLOAT = np.float64


def _oob(what: str, index: int, length: int) -> None:
    raise InterpreterError(f"{what}: index {index} out of bounds [0, {length})")


def _check_full(what: str, idx: np.ndarray, length: int) -> None:
    if int(idx.min()) < 0 or int(idx.max()) >= length:
        bad = idx[(idx < 0) | (idx >= length)]
        _oob(what, int(bad[0]), length)


def _check_masked(what: str, idx: np.ndarray, mask: np.ndarray, length: int) -> None:
    bad = mask & ((idx < 0) | (idx >= length))
    if np.any(bad):
        _oob(what, int(idx[bad][0]), length)


def _last(value):
    """Scalar written by a full-mask store to one shared address (last lane wins)."""
    return float(value[-1]) if np.ndim(value) else value


def _bval(value, mask):
    """Masked-store RHS: gather the active lanes (scalars broadcast as-is)."""
    return np.asarray(value, dtype=_FLOAT)[mask] if np.ndim(value) else value


class GlobalView:
    """Flat view of a global :class:`Buffer` with full/masked/uniform paths."""

    __slots__ = ("buffer", "flat", "n", "what")

    def __init__(self, buffer: Buffer) -> None:
        self.buffer = buffer
        self.flat = buffer.array.reshape(-1)
        self.n = self.flat.size
        self.what = f"global buffer {buffer.name!r}"

    def loadf(self, idx: np.ndarray) -> np.ndarray:
        _check_full(self.what, idx, self.n)
        self.buffer.record_reads(idx.shape[0])
        return self.flat[idx].astype(_FLOAT)

    def loadm(self, idx: np.ndarray, mask: np.ndarray) -> np.ndarray:
        _check_masked(self.what, idx, mask, self.n)
        self.buffer.record_reads(int(mask.sum()))
        return self.flat[np.where(mask, idx, 0)].astype(_FLOAT)

    def loadu(self, idx: int, lanes: int) -> float:
        if not 0 <= idx < self.n:
            _oob(self.what, idx, self.n)
        self.buffer.record_reads(lanes)
        return float(self.flat[idx])

    def loadum(self, idx: int, mask: np.ndarray) -> float:
        count = int(mask.sum())
        if count:
            if not 0 <= idx < self.n:
                _oob(self.what, idx, self.n)
            self.buffer.record_reads(count)
            return float(self.flat[idx])
        return 0.0

    def storef(self, idx: np.ndarray, value) -> None:
        _check_full(self.what, idx, self.n)
        self.buffer.record_writes(idx.shape[0])
        self.flat[idx] = np.asarray(value, dtype=_FLOAT)

    def storem(self, idx: np.ndarray, value, mask: np.ndarray) -> None:
        _check_masked(self.what, idx, mask, self.n)
        self.buffer.record_writes(int(mask.sum()))
        self.flat[idx[mask]] = _bval(value, mask)

    def storeu(self, idx: int, value, lanes: int) -> None:
        if not 0 <= idx < self.n:
            _oob(self.what, idx, self.n)
        self.buffer.record_writes(lanes)
        self.flat[idx] = _last(value)

    def storeum(self, idx: int, value, mask: np.ndarray) -> None:
        count = int(mask.sum())
        if count:
            if not 0 <= idx < self.n:
                _oob(self.what, idx, self.n)
            self.buffer.record_writes(count)
            value = float(np.asarray(value, dtype=_FLOAT)[mask][-1]) if np.ndim(value) else value
            self.flat[idx] = value


class LocalView:
    """A named tile in the work group's local memory."""

    __slots__ = ("mem", "tile", "n", "what")

    def __init__(self, mem, name: str, length: int) -> None:
        self.mem = mem
        self.tile = mem.allocate(name, (length,), dtype=_FLOAT)
        self.n = length
        self.what = f"local array {name!r}"

    def loadf(self, idx: np.ndarray) -> np.ndarray:
        _check_full(self.what, idx, self.n)
        self.mem.record_reads(idx.shape[0])
        return self.tile[idx].astype(_FLOAT)

    def loadm(self, idx: np.ndarray, mask: np.ndarray) -> np.ndarray:
        _check_masked(self.what, idx, mask, self.n)
        self.mem.record_reads(int(mask.sum()))
        return self.tile[np.where(mask, idx, 0)].astype(_FLOAT)

    def loadu(self, idx: int, lanes: int) -> float:
        if not 0 <= idx < self.n:
            _oob(self.what, idx, self.n)
        self.mem.record_reads(lanes)
        return float(self.tile[idx])

    def loadum(self, idx: int, mask: np.ndarray) -> float:
        count = int(mask.sum())
        if count:
            if not 0 <= idx < self.n:
                _oob(self.what, idx, self.n)
            self.mem.record_reads(count)
            return float(self.tile[idx])
        return 0.0

    def storef(self, idx: np.ndarray, value) -> None:
        _check_full(self.what, idx, self.n)
        self.mem.record_writes(idx.shape[0])
        self.tile[idx] = np.asarray(value, dtype=_FLOAT)

    def storem(self, idx: np.ndarray, value, mask: np.ndarray) -> None:
        _check_masked(self.what, idx, mask, self.n)
        self.mem.record_writes(int(mask.sum()))
        self.tile[idx[mask]] = _bval(value, mask)

    def storeu(self, idx: int, value, lanes: int) -> None:
        if not 0 <= idx < self.n:
            _oob(self.what, idx, self.n)
        self.mem.record_writes(lanes)
        self.tile[idx] = _last(value)

    def storeum(self, idx: int, value, mask: np.ndarray) -> None:
        count = int(mask.sum())
        if count:
            if not 0 <= idx < self.n:
                _oob(self.what, idx, self.n)
            self.mem.record_writes(count)
            value = float(np.asarray(value, dtype=_FLOAT)[mask][-1]) if np.ndim(value) else value
            self.tile[idx] = value


class PrivateView:
    """A fixed-size per-lane private array (``lanes x length``)."""

    __slots__ = ("values", "n", "lane_idx", "what")

    def __init__(self, name: str, length: int, lanes: int) -> None:
        self.values = np.zeros((lanes, length), dtype=_FLOAT)
        self.n = length
        self.lane_idx = np.arange(lanes)
        self.what = f"private array {name!r}"

    def loadf(self, idx) -> np.ndarray:
        idx = np.asarray(idx)
        if idx.ndim == 0:
            if not 0 <= int(idx) < self.n:
                _oob(self.what, int(idx), self.n)
            return self.values[:, int(idx)].copy()
        _check_full(self.what, idx, self.n)
        return self.values[self.lane_idx, idx]

    def loadm(self, idx, mask: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx)
        if idx.ndim == 0:
            idx = np.full(self.values.shape[0], int(idx), dtype=_INT)
        _check_masked(self.what, idx, mask, self.n)
        return self.values[self.lane_idx, np.where(mask, idx, 0)]

    def storef(self, idx, value) -> None:
        idx = np.asarray(idx)
        if idx.ndim == 0:
            if not 0 <= int(idx) < self.n:
                _oob(self.what, int(idx), self.n)
            self.values[:, int(idx)] = np.asarray(value, dtype=_FLOAT)
            return
        _check_full(self.what, idx, self.n)
        self.values[self.lane_idx, idx] = np.asarray(value, dtype=_FLOAT)

    def storem(self, idx, value, mask: np.ndarray) -> None:
        idx = np.asarray(idx)
        if idx.ndim == 0:
            idx = np.full(self.values.shape[0], int(idx), dtype=_INT)
        _check_masked(self.what, idx, mask, self.n)
        self.values[self.lane_idx[mask], idx[mask]] = _bval(value, mask)


class ConstantView:
    """A file-scope ``__constant`` array (read-only, shared by all lanes)."""

    __slots__ = ("values", "n", "what")

    def __init__(self, name: str, values: np.ndarray) -> None:
        self.values = values
        self.n = values.size
        self.what = f"constant array {name!r}"

    def loadf(self, idx: np.ndarray) -> np.ndarray:
        _check_full(self.what, idx, self.n)
        return self.values[idx].astype(_FLOAT)

    def loadm(self, idx: np.ndarray, mask: np.ndarray) -> np.ndarray:
        _check_masked(self.what, idx, mask, self.n)
        return self.values[np.where(mask, idx, 0)].astype(_FLOAT)

    def loadu(self, idx: int, lanes: int) -> float:
        if not 0 <= idx < self.n:
            _oob(self.what, idx, self.n)
        return float(self.values[idx])

    def loadum(self, idx: int, mask: np.ndarray) -> float:
        if mask.any():
            if not 0 <= idx < self.n:
                _oob(self.what, idx, self.n)
            return float(self.values[idx])
        return 0.0

    def _readonly(self, *args) -> None:
        raise InterpreterError(f"{self.what} is read-only")

    storef = storem = storeu = storeum = _readonly
