"""Uniformity analysis: classify every kernel variable as uniform or varying.

**Consumes** a parsed :class:`~repro.kernellang.ast.Program`, one kernel
name, the baked work-group shape and the batched flag.  **Guarantees
downstream** a fully populated :class:`~repro.kernellang.ir.Scope` per
function body — every scalar variable carries a kind (``"u"`` uniform /
``"v"`` varying) and a static dtype (``"i"``/``"f"``/``"x"``), every
container name carries its address space — plus the two shape decisions
the mask-insertion pass needs:

* :meth:`UniformityAnalysis._loop_masked` — whether a loop needs per-lane
  mask machinery (varying trip count, varying init of the induction
  variable, or masked kills escaping from its body) or can run as a plain
  uniform loop;
* ``has_masked_return`` — whether any kernel-level ``return`` executes
  under a divergent mask, which forces the return-lane bookkeeping
  (``_ret``) into the lowered prologue.

The analysis is a fixpoint over the statement walk: kinds and dtypes only
ever move *up* the lattices of :mod:`repro.kernellang.ir` (uniform may
become varying, never the reverse), so the walk converges; a bound of 50
iterations guards pathological programs.  Divergence is tracked exactly
the way the emitters replay it — a statement whose subtree kills lanes
(``return``/``break``/``continue`` escaping through a mask merge) leaves
the rest of its block divergent, so declarations after it are classified
the way they will execute.  Helper calls are summarized per (callee,
argument kinds, divergence) signature and memoized; recursion and
inlining deeper than :data:`UniformityAnalysis.MAX_INLINE_DEPTH` raise
:class:`~repro.kernellang.ir.LoweringError`, as does any construct no
backend can specialize — always at analysis time, never after a lane has
run, so callers can fall back to a dynamic backend.
"""

from __future__ import annotations

from .. import ast
from ..builtins import (
    BUILTIN_CONSTANTS,
    CONTEXT_BUILTINS,
    SYNC_BUILTINS,
    is_builtin,
)
from ..interpreter import KernelInterpreter, _ConstantArray
from ..ir import (
    BUILTIN_RESULT_DT,
    LoweringError,
    Scope,
    ScopeView,
    binop_dtype,
    join_kind,
    promote_dt,
)
from ..types import PointerType, ScalarType


class UniformityAnalysis:
    """Classifies one kernel of a program for lowering.

    The emitters subclass this (the codegen printer) or call it through
    :func:`classify_kernel`; every ``_c_*`` method is a side-effect-free
    classification twin of the corresponding emission step.
    """

    #: Inline depth bound: kernellang has no recursion, this guards cycles.
    MAX_INLINE_DEPTH = 16

    def __init__(
        self,
        program: ast.Program,
        kernel_name: str | None,
        local_size: tuple[int, ...],
        batched: bool,
    ) -> None:
        self.program = program
        self.kernel_def = program.kernel(kernel_name)
        self.functions = {f.name: f for f in program.functions}
        # Reuse the interpreter's constant evaluation so file-scope constants
        # are guaranteed to agree with the reference backend.
        self.constants = KernelInterpreter(program, self.kernel_def.name).constants
        self.local_size = tuple(int(v) for v in local_size)
        self.batched = batched
        self.has_masked_return = False
        self._inline_stack: list[str] = []
        self._fn_memo: dict = {}

    def _unsupported(self, what: str) -> LoweringError:
        return LoweringError(f"codegen cannot specialize {what}")

    # -- scope construction -----------------------------------------------
    def kernel_scope(self) -> Scope:
        """The kernel body's entry scope: constants + parameters seeded."""
        scope = Scope()
        self._seed_constants(scope)
        for param in self.kernel_def.params:
            if isinstance(param.param_type, PointerType):
                scope.space[param.name] = "global"
                scope.py[param.name] = f"c_{param.name}"
            else:
                scope.kind[param.name] = "u"
                scope.dt[param.name] = (
                    "i"
                    if isinstance(param.param_type, ScalarType)
                    and param.param_type.is_integer
                    else "f"
                )
                scope.py[param.name] = f"v_{param.name}"
        return scope

    def _seed_constants(self, scope: Scope) -> None:
        for name, value in self.constants.items():
            if isinstance(value, _ConstantArray):
                scope.space[name] = "constant"
                scope.py[name] = f"kc_{name}"
            else:
                scope.kind[name] = "u"
                scope.dt[name] = "i" if isinstance(value, int) else "f"
                scope.py[name] = f"k_{name}"

    # -- classification: expression kinds -------------------------------
    def _c_assign(self, scope: Scope, name: str, kind: str, dt: str, div: bool,
                  decl: bool = False) -> None:
        if kind == "v" or div or scope.kind.get(name) == "v":
            scope.kind[name] = "v"
        else:
            scope.kind.setdefault(name, "u")
        old = scope.dt.get(name)
        if old is None:
            new = dt
        elif not decl and old == "i":
            new = "i"  # dynamic int-truncation keeps the slot integer
        elif old == dt:
            new = old
        else:
            new = "x"
        scope.dt[name] = new

    def _c_expr(self, expr, scope: Scope, div: bool) -> tuple[str, str]:
        """Kind/dtype of ``expr``; records assignment side effects."""
        if isinstance(expr, ast.IntLiteral) or isinstance(expr, ast.BoolLiteral):
            return ("u", "i")
        if isinstance(expr, ast.FloatLiteral):
            return ("u", "f")
        if isinstance(expr, ast.Identifier):
            name = expr.name
            if name in scope.space:
                return ("c", scope.space[name])
            if name in scope.kind:
                return (scope.kind[name], scope.dt.get(name, "x"))
            if name in BUILTIN_CONSTANTS:
                return ("u", "i" if isinstance(BUILTIN_CONSTANTS[name], int) else "f")
            if getattr(scope, "optimistic", False):
                # Loop-shape queries may run before a nested declaration has
                # been classified; assume uniform — the fixpoint re-checks
                # once the variable's real kind is known (kinds only go up).
                return ("u", "x")
            raise self._unsupported(f"undefined identifier {name!r}")
        if isinstance(expr, ast.UnaryOp):
            if expr.op in ("++", "--"):
                k, dt = self._c_expr(expr.operand, scope, div)
                if isinstance(expr.operand, ast.Identifier):
                    self._c_assign(scope, expr.operand.name, k, dt, div)
                return (("v" if div else k), dt)
            k, dt = self._c_expr(expr.operand, scope, div)
            if expr.op == "!":
                return (k, "i")
            if expr.op == "~":
                return (k, "i")
            return (k, dt)
        if isinstance(expr, ast.BinaryOp):
            lk, ldt = self._c_expr(expr.left, scope, div)
            sub_div = div or lk == "v"
            rk, rdt = self._c_expr(expr.right, scope, sub_div if expr.op in ("&&", "||") else div)
            k = join_kind(lk, rk)
            return (k, binop_dtype(expr.op, ldt, rdt))
        if isinstance(expr, ast.Assignment):
            vk, vdt = self._c_expr(expr.value, scope, div)
            if expr.op != "=":
                tk, tdt = self._c_expr(expr.target, scope, div)
                vk, vdt = join_kind(tk, vk), self._c_binop_dt(expr.op[:-1], tdt, vdt)
            if isinstance(expr.target, ast.Identifier):
                self._c_assign(scope, expr.target.name, vk, vdt, div)
            elif isinstance(expr.target, ast.Index):
                self._c_expr(expr.target.base, scope, div)
                self._c_expr(expr.target.index, scope, div)
            return (vk, vdt)
        if isinstance(expr, ast.Ternary):
            ck, _ = self._c_expr(expr.condition, scope, div)
            sub_div = div or ck == "v"
            ak, adt = self._c_expr(expr.if_true, scope, sub_div)
            bk, bdt = self._c_expr(expr.if_false, scope, sub_div)
            return (join_kind(ck, ak, bk), promote_dt(adt, bdt))
        if isinstance(expr, ast.Call):
            return self._c_call(expr, scope, div)
        if isinstance(expr, ast.Index):
            bk = self._c_expr(expr.base, scope, div)
            ik, _ = self._c_expr(expr.index, scope, div)
            if bk[0] != "c":
                raise self._unsupported("indexing a non-array value")
            space = bk[1]
            if space == "private":
                return ("v", "f")
            if space in ("global", "local") and self.batched:
                return ("v", "f")
            return (ik, "f")
        if isinstance(expr, ast.Cast):
            k, _ = self._c_expr(expr.expr, scope, div)
            if isinstance(expr.target_type, ScalarType):
                return (k, "i" if expr.target_type.is_integer else "f")
            return (k, "x")
        if isinstance(expr, ast.InitList):
            raise self._unsupported("an initializer list outside a declaration")
        raise self._unsupported(f"expression {type(expr).__name__}")

    def _c_binop_dt(self, op: str, ldt: str, rdt: str) -> str:
        return binop_dtype(op, ldt, rdt)

    def _c_call(self, call: ast.Call, scope: Scope, div: bool) -> tuple[str, str]:
        name = call.name
        if name in CONTEXT_BUILTINS:
            self._context_dim(call)  # validates the dim argument
            if name in ("get_global_id", "get_local_id"):
                return ("v", "i")
            return ("u", "i")
        if name in SYNC_BUILTINS:
            raise self._unsupported("barrier()/mem_fence() inside an expression")
        if is_builtin(name):
            kinds, dts = [], []
            for arg in call.args:
                k, dt = self._c_expr(arg, scope, div)
                if k == "c":
                    raise self._unsupported(f"array argument to built-in {name!r}")
                kinds.append(k)
                dts.append(dt)
            cls = BUILTIN_RESULT_DT.get(name, "x")
            dt = {"p": promote_dt(*dts) if dts else "i", "f": "f", "i": "i",
                  "x": "x"}[cls]
            return (join_kind(*kinds) if kinds else "u", dt)
        if name in self.functions:
            func = self.functions[name]
            arg_sigs = tuple(self._c_expr(arg, scope, div) for arg in call.args)
            kind, dt, _simple = self._fn_summary(func, arg_sigs, div)
            return (kind, dt)
        raise self._unsupported(f"call to unknown function {name!r}")

    def _context_dim(self, call: ast.Call) -> int:
        if not call.args:
            return 0
        arg = call.args[0]
        if not isinstance(arg, ast.IntLiteral):
            raise self._unsupported(
                f"a non-literal dimension argument to {call.name}()"
            )
        dim = arg.value
        if not 0 <= dim < len(self.local_size):
            raise self._unsupported(
                f"{call.name}({dim}) outside the launch rank"
            )
        return dim

    # -- classification: statements --------------------------------------
    def _fn_simple(self, func: ast.FunctionDef) -> bool:
        """Straight-line body ending in a single return: inlines uniformly."""
        stmts = func.body.statements
        if not stmts or not isinstance(stmts[-1], ast.ReturnStmt):
            return False
        if stmts[-1].value is None:
            return False
        for stmt in stmts[:-1]:
            if not isinstance(stmt, (ast.DeclStmt, ast.ExprStmt)):
                return False
            if isinstance(stmt, ast.ExprStmt) and isinstance(stmt.expr, ast.Call) \
                    and stmt.expr.name in SYNC_BUILTINS:
                return False
        return self._count_returns(func.body) == 1

    def _count_returns(self, block) -> int:
        count = 0
        for stmt in block.statements:
            if isinstance(stmt, ast.ReturnStmt):
                count += 1
            elif isinstance(stmt, (ast.Block,)):
                count += self._count_returns(stmt)
            elif isinstance(stmt, ast.IfStmt):
                count += self._count_returns(stmt.then_body)
                if stmt.else_body is not None:
                    count += self._count_returns(stmt.else_body)
            elif isinstance(stmt, (ast.ForStmt, ast.WhileStmt, ast.DoWhileStmt)):
                count += self._count_returns(stmt.body)
        return count

    def _callee_scope(self, func: ast.FunctionDef, arg_sigs) -> Scope:
        scope = Scope()
        self._seed_constants(scope)
        if len(arg_sigs) != len(func.params):
            raise self._unsupported(
                f"call to {func.name!r} with {len(arg_sigs)} arguments "
                f"(expects {len(func.params)})"
            )
        for index, (param, sig) in enumerate(zip(func.params, arg_sigs)):
            if sig[0] == "c":
                scope.space[param.name] = sig[1]
                scope.py[param.name] = ""  # bound at emission time
            else:
                scope.kind[param.name] = sig[0]
                scope.dt[param.name] = sig[1]
                scope.py[param.name] = ""
        return scope

    def _fn_summary(self, func: ast.FunctionDef, arg_sigs, div: bool):
        """(kind, dt, simple) of a helper call with the given argument kinds."""
        key = (func.name, arg_sigs, div, self.batched)
        cached = self._fn_memo.get(key)
        if cached is not None:
            return cached
        if func.name in self._inline_stack:
            raise self._unsupported(f"recursive helper function {func.name!r}")
        if len(self._inline_stack) >= self.MAX_INLINE_DEPTH:
            raise self._unsupported("helper inlining deeper than 16 levels")
        self._inline_stack.append(func.name)
        try:
            simple = self._fn_simple(func)
            scope = self._callee_scope(func, arg_sigs)
            body_div = div or not simple
            self._classify(func.body, scope, body_div, in_function=True)
            if simple:
                kind, dt = self._c_expr(
                    func.body.statements[-1].value, scope, body_div
                )
                result = (kind, dt, True)
            else:
                dts = self._return_dts(func.body, scope, body_div)
                dt = promote_dt("i", *dts) if dts else "i"
                result = ("v", dt, False)
        finally:
            self._inline_stack.pop()
        self._fn_memo[key] = result
        return result

    def _return_dts(self, block, scope, div) -> list[str]:
        dts: list[str] = []
        for stmt in block.statements:
            if isinstance(stmt, ast.ReturnStmt) and stmt.value is not None:
                dts.append(self._c_expr(stmt.value, scope, div)[1])
            elif isinstance(stmt, ast.Block):
                dts.extend(self._return_dts(stmt, scope, div))
            elif isinstance(stmt, ast.IfStmt):
                dts.extend(self._return_dts(stmt.then_body, scope, div))
                if stmt.else_body is not None:
                    dts.extend(self._return_dts(stmt.else_body, scope, div))
            elif isinstance(stmt, (ast.ForStmt, ast.WhileStmt, ast.DoWhileStmt)):
                dts.extend(self._return_dts(stmt.body, scope, div))
        return dts

    def _classify(self, block, scope: Scope, div: bool, in_function: bool) -> None:
        """Run the statement walk to a fixpoint (kinds only ever go up)."""
        for _ in range(50):
            before = (dict(scope.kind), dict(scope.dt))
            self._c_block(block, scope, div, in_function)
            if (scope.kind, scope.dt) == before:
                return
        raise self._unsupported("a program whose classification does not converge")

    def _c_block(self, block, scope, div, in_function) -> bool:
        """Classify a block; returns the divergence state *after* the block.

        Mirrors the emitter exactly: a statement whose subtree kills lanes
        (return / break / continue escaping through a mask merge) leaves
        the remainder of the block divergent, so later declarations are
        classified — and pre-initialized — the way they will be emitted.
        """
        for stmt in block.statements:
            div = self._c_stmt(stmt, scope, div, in_function)
        return div

    def _c_stmt(self, stmt, scope, div, in_function) -> bool:
        if isinstance(stmt, ast.DeclStmt):
            for decl in stmt.declarations:
                self._c_decl(decl, scope, div)
            return div
        if isinstance(stmt, ast.ExprStmt):
            if isinstance(stmt.expr, ast.Call) and stmt.expr.name in SYNC_BUILTINS:
                return div
            self._c_expr(stmt.expr, scope, div)
            return div
        if isinstance(stmt, ast.Block):
            return self._c_block(stmt, scope, div, in_function)
        if isinstance(stmt, ast.IfStmt):
            ck, _ = self._c_expr(stmt.condition, scope, div)
            branch_div = div or ck == "v"
            self._c_block(stmt.then_body, scope, branch_div, in_function)
            if stmt.else_body is not None:
                self._c_block(stmt.else_body, scope, branch_div, in_function)
            kills = self._contains_kills(stmt.then_body) or (
                stmt.else_body is not None
                and self._contains_kills(stmt.else_body)
            )
            return div or bool(kills)
        if isinstance(stmt, (ast.ForStmt, ast.WhileStmt, ast.DoWhileStmt)):
            if isinstance(stmt, ast.ForStmt) and stmt.init is not None:
                self._c_stmt(stmt.init, scope, div, in_function)
            masked = self._loop_masked(stmt, scope, div)
            body_div = div or masked
            if stmt.condition is not None:
                self._c_expr(stmt.condition, scope, body_div)
            self._c_block(stmt.body, scope, body_div, in_function)
            if isinstance(stmt, ast.ForStmt) and stmt.step is not None:
                self._c_expr(stmt.step, scope, body_div)
            return div or self._count_returns(stmt.body) > 0
        if isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                self._c_expr(stmt.value, scope, div)
            if div and not in_function:
                self.has_masked_return = True
            return div
        if isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            return div
        raise self._unsupported(f"statement {type(stmt).__name__}")

    def _c_decl(self, decl: ast.VarDecl, scope: Scope, div: bool) -> None:
        if decl.array_size is not None:
            sk, _ = self._c_expr(decl.array_size, scope, div)
            if sk == "v":
                raise self._unsupported(
                    f"array {decl.name!r} with a varying size"
                )
            scope.space[decl.name] = (
                "local" if decl.address_space == "local" else "private"
            )
            scope.py.setdefault(decl.name, "")
            if isinstance(decl.init, ast.InitList):
                for value in decl.init.values:
                    self._c_expr(value, scope, div)
            return
        if decl.init is not None:
            vk, vdt = self._c_expr(decl.init, scope, div)
        else:
            vk, vdt = "u", "i"
        if isinstance(decl.var_type, ScalarType) and decl.var_type.is_integer:
            vdt = "i"
        self._c_assign(scope, decl.name, vk, vdt, div, decl=True)
        if div:
            scope.divdecl.add(decl.name)

    # -- loop shape decisions ---------------------------------------------
    def _loop_masked(self, node, scope: Scope, outer_div: bool) -> bool:
        if outer_div:
            return True
        if node.condition is not None:
            ck, _ = self._c_expr(node.condition, ScopeView(scope), False)
            if ck == "v":
                return True
        if isinstance(node, ast.ForStmt) and node.init is not None:
            init = node.init
            if isinstance(init, ast.DeclStmt):
                for decl in init.declarations:
                    if decl.init is not None and scope.kind.get(decl.name) == "v":
                        return True
            elif isinstance(init, ast.ExprStmt) and isinstance(init.expr, ast.Assignment):
                target = init.expr.target
                if isinstance(target, ast.Identifier) and scope.kind.get(target.name) == "v":
                    return True
        return self._body_has_masked_kills(node.body, scope, False)

    def _body_has_masked_kills(self, block, scope, rel_div, in_inner=False) -> bool:
        for stmt in block.statements:
            if isinstance(stmt, ast.ReturnStmt):
                if rel_div:
                    return True
            elif isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
                if rel_div and not in_inner:
                    return True
            elif isinstance(stmt, ast.Block):
                if self._body_has_masked_kills(stmt, scope, rel_div, in_inner):
                    return True
            elif isinstance(stmt, ast.IfStmt):
                ck, _ = self._c_expr(stmt.condition, ScopeView(scope), False)
                branch = rel_div or ck == "v"
                if self._body_has_masked_kills(stmt.then_body, scope, branch, in_inner):
                    return True
                if stmt.else_body is not None and self._body_has_masked_kills(
                    stmt.else_body, scope, branch, in_inner
                ):
                    return True
            elif isinstance(stmt, (ast.ForStmt, ast.WhileStmt, ast.DoWhileStmt)):
                inner_masked = self._loop_masked(stmt, scope, rel_div)
                if self._body_has_masked_kills(
                    stmt.body, scope, rel_div or inner_masked, True
                ):
                    return True
        return False

    def _contains_kills(self, block, in_inner_loop=False) -> bool:
        """Any return, or break/continue escaping to an enclosing loop."""
        for stmt in block.statements:
            if isinstance(stmt, ast.ReturnStmt):
                return True
            if isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
                if not in_inner_loop:
                    return True
            elif isinstance(stmt, ast.Block):
                if self._contains_kills(stmt, in_inner_loop):
                    return True
            elif isinstance(stmt, ast.IfStmt):
                if self._contains_kills(stmt.then_body, in_inner_loop):
                    return True
                if stmt.else_body is not None and self._contains_kills(
                    stmt.else_body, in_inner_loop
                ):
                    return True
            elif isinstance(stmt, (ast.ForStmt, ast.WhileStmt, ast.DoWhileStmt)):
                if self._contains_kills(stmt.body, True):
                    return True
        return False

    def _stmt_kills(self, stmt) -> bool:
        if isinstance(stmt, (ast.ReturnStmt, ast.BreakStmt, ast.ContinueStmt)):
            return True
        if isinstance(stmt, ast.Block):
            return self._contains_kills(stmt)
        if isinstance(stmt, ast.IfStmt):
            if self._contains_kills(stmt.then_body):
                return True
            return stmt.else_body is not None and self._contains_kills(stmt.else_body)
        if isinstance(stmt, (ast.ForStmt, ast.WhileStmt, ast.DoWhileStmt)):
            return self._contains_kills(stmt.body, True)
        return False


def classify_kernel(
    program: ast.Program,
    kernel_name: str | None = None,
    local_size: tuple[int, ...] = (1,),
    batched: bool = False,
) -> tuple[UniformityAnalysis, Scope]:
    """Run the uniformity analysis on one kernel.

    Returns the analysis object (carrying ``has_masked_return`` and the
    helper summaries) and the kernel body's classified :class:`Scope`.
    """
    analysis = UniformityAnalysis(program, kernel_name, local_size, batched)
    scope = analysis.kernel_scope()
    analysis._classify(analysis.kernel_def.body, scope, False, False)
    return analysis, scope
