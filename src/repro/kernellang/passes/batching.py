"""Batching transform: route every lane into its own request's segment.

**Consumes** a batched launch — ``batch`` compatible launches stacked
into one SIMT group, with request ``r`` occupying lanes
``[r * group_size, (r + 1) * group_size)`` — plus
:class:`~repro.clsim.memory.SegmentedBuffer` pointer arguments.
**Guarantees downstream** bit-identity with ``batch`` individual
launches: lanes of different requests can never observe each other's
data, because

* :func:`lane_requests` fixes the lane→request routing
  (``np.repeat(arange(batch), group_size)``), from which each view's
  per-lane segment base offset is derived;
* :class:`SegGlobalView` adds the base offset *after* bounds-checking the
  per-segment index against ``segment_elements``, so per-request indexing
  and error behaviour are exactly those of an individual launch;
* :class:`SegLocalView` gives each request its own ``length``-element
  tile of one shared allocation (request ``r`` owns
  ``[r * length, (r + 1) * length)``), so staging never mixes requests;
* :func:`segmented_global_view` is the single validation point for the
  SegmentedBuffer contract, shared by every backend.

The uniform-index entry points of the unsegmented views do not exist
here: the same logical index reads a *different* segment per request, so
the uniformity pass classifies every global/local access of a batched
lowering as varying and only the ``loadf``/``loadm``/``storef``/
``storem`` surface is needed.  Access counters still record one access
per active lane, which is what makes batched
:class:`~repro.clsim.executor.ExecutionStats` equal ``batch`` times the
per-launch stats.
"""

from __future__ import annotations

import numpy as np

from ...clsim.memory import SegmentedBuffer
from ..errors import InterpreterError
from .memory import _bval, _check_full, _check_masked

_INT = np.int64
_FLOAT = np.float64


def lane_requests(batch: int, group_size: int) -> np.ndarray:
    """Request index of every lane of a batched group."""
    return np.repeat(np.arange(batch, dtype=_INT), group_size)


class SegGlobalView:
    """Batched variant of ``GlobalView``: each lane addresses its segment."""

    __slots__ = ("buffer", "flat", "n", "base", "what")

    def __init__(self, buffer: SegmentedBuffer, base: np.ndarray) -> None:
        self.buffer = buffer
        self.flat = buffer.array.reshape(-1)
        self.n = buffer.segment_elements
        self.base = base
        self.what = f"global buffer {buffer.name!r}"

    def loadf(self, idx) -> np.ndarray:
        idx = np.asarray(idx)
        if idx.ndim == 0:
            idx = np.full(self.base.shape[0], int(idx), dtype=_INT)
        _check_full(self.what, idx, self.n)
        self.buffer.record_reads(idx.shape[0])
        return self.flat[idx + self.base].astype(_FLOAT)

    def loadm(self, idx, mask: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx)
        if idx.ndim == 0:
            idx = np.full(self.base.shape[0], int(idx), dtype=_INT)
        _check_masked(self.what, idx, mask, self.n)
        self.buffer.record_reads(int(mask.sum()))
        return self.flat[np.where(mask, idx + self.base, 0)].astype(_FLOAT)

    def storef(self, idx, value) -> None:
        idx = np.asarray(idx)
        if idx.ndim == 0:
            idx = np.full(self.base.shape[0], int(idx), dtype=_INT)
        _check_full(self.what, idx, self.n)
        self.buffer.record_writes(idx.shape[0])
        self.flat[idx + self.base] = np.asarray(value, dtype=_FLOAT)

    def storem(self, idx, value, mask: np.ndarray) -> None:
        idx = np.asarray(idx)
        if idx.ndim == 0:
            idx = np.full(self.base.shape[0], int(idx), dtype=_INT)
        _check_masked(self.what, idx, mask, self.n)
        self.buffer.record_writes(int(mask.sum()))
        self.flat[(idx + self.base)[mask]] = _bval(value, mask)


class SegLocalView:
    """Batched variant of ``LocalView``: one tile per request, stacked."""

    __slots__ = ("mem", "tile", "n", "base", "what")

    def __init__(self, mem, name: str, length: int, base: np.ndarray, batch: int) -> None:
        self.mem = mem
        self.tile = mem.allocate(name, (batch * length,), dtype=_FLOAT)
        self.n = length
        self.base = base
        self.what = f"local array {name!r}"

    def loadf(self, idx) -> np.ndarray:
        idx = np.asarray(idx)
        if idx.ndim == 0:
            idx = np.full(self.base.shape[0], int(idx), dtype=_INT)
        _check_full(self.what, idx, self.n)
        self.mem.record_reads(idx.shape[0])
        return self.tile[idx + self.base].astype(_FLOAT)

    def loadm(self, idx, mask: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx)
        if idx.ndim == 0:
            idx = np.full(self.base.shape[0], int(idx), dtype=_INT)
        _check_masked(self.what, idx, mask, self.n)
        self.mem.record_reads(int(mask.sum()))
        return self.tile[np.where(mask, idx + self.base, 0)].astype(_FLOAT)

    def storef(self, idx, value) -> None:
        idx = np.asarray(idx)
        if idx.ndim == 0:
            idx = np.full(self.base.shape[0], int(idx), dtype=_INT)
        _check_full(self.what, idx, self.n)
        self.mem.record_writes(idx.shape[0])
        self.tile[idx + self.base] = np.asarray(value, dtype=_FLOAT)

    def storem(self, idx, value, mask: np.ndarray) -> None:
        idx = np.asarray(idx)
        if idx.ndim == 0:
            idx = np.full(self.base.shape[0], int(idx), dtype=_INT)
        _check_masked(self.what, idx, mask, self.n)
        self.mem.record_writes(int(mask.sum()))
        self.tile[(idx + self.base)[mask]] = _bval(value, mask)


def segmented_global_view(buffer, batch: int, lane_request: np.ndarray) -> SegGlobalView:
    """Validate the SegmentedBuffer contract and build the segmented view.

    Single shared validation point: every backend raises the same error
    for a pointer argument that is not a ``batch``-segment
    :class:`~repro.clsim.memory.SegmentedBuffer`.
    """
    if not isinstance(buffer, SegmentedBuffer) or buffer.batch != batch:
        raise InterpreterError(
            f"batched launch requires every pointer argument to be a "
            f"SegmentedBuffer with {batch} segments, got {buffer!r}"
        )
    return SegGlobalView(buffer, lane_request * buffer.segment_elements)
