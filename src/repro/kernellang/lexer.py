"""Hand-written lexer for the OpenCL C subset."""

from __future__ import annotations

from .errors import LexError
from .tokens import KEYWORDS, PUNCTUATORS, SourceLocation, Token, TokenKind


class Lexer:
    """Turns kernel source text into a list of tokens.

    Handles ``//`` and ``/* */`` comments, preprocessor-style lines starting
    with ``#`` (skipped — the applications do not rely on macros), decimal
    and hexadecimal integer literals, float literals with optional exponent
    and ``f`` suffix, identifiers/keywords, and the punctuator set of the
    subset.
    """

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------
    def _location(self) -> SourceLocation:
        return SourceLocation(self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index >= len(self.source):
            return ""
        return self.source[index]

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos : self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return text

    # ------------------------------------------------------------------
    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._location()
                self._advance(2)
                while self.pos < len(self.source) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.source):
                    raise LexError(f"unterminated block comment starting at {start}")
                self._advance(2)
            elif ch == "#" and self.column == 1:
                # Preprocessor directive: skip the whole (possibly continued) line.
                while self.pos < len(self.source):
                    if self._peek() == "\\" and self._peek(1) == "\n":
                        self._advance(2)
                        continue
                    if self._peek() == "\n":
                        break
                    self._advance()
            else:
                return

    # ------------------------------------------------------------------
    def _lex_number(self) -> Token:
        location = self._location()
        start = self.pos
        is_float = False
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            return Token(TokenKind.INT_LITERAL, self.source[start : self.pos], location)
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        elif self._peek() == ".":
            is_float = True
            self._advance()
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        # _peek() returns "" at EOF and ``"" in "fF"`` is True, so the
        # suffix checks must test for emptiness explicitly.
        if self._peek() and self._peek() in "fF":
            is_float = True
            self._advance()
        elif self._peek() and self._peek() in "uUlL":
            while self._peek() and self._peek() in "uUlL":
                self._advance()
        text = self.source[start : self.pos]
        kind = TokenKind.FLOAT_LITERAL if is_float else TokenKind.INT_LITERAL
        return Token(kind, text, location)

    def _lex_identifier(self) -> Token:
        location = self._location()
        start = self.pos
        while self._peek() and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self.source[start : self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, location)

    def _lex_punct(self) -> Token:
        location = self._location()
        for punct in PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, location)
        raise LexError(
            f"unexpected character {self._peek()!r} at {location}"
        )

    # ------------------------------------------------------------------
    def tokenize(self) -> list[Token]:
        """Lex the whole source, returning tokens terminated by an EOF token."""
        tokens: list[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.source):
                break
            ch = self._peek()
            if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                tokens.append(self._lex_number())
            elif ch.isalpha() or ch == "_":
                tokens.append(self._lex_identifier())
            else:
                tokens.append(self._lex_punct())
        tokens.append(Token(TokenKind.EOF, "", self._location()))
        return tokens


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source).tokenize()
