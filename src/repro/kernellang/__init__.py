"""``repro.kernellang`` — a small OpenCL C kernel language and compiler.

The package provides the front end (lexer, parser, type checker), an AST
interpreter that executes kernels on the :mod:`repro.clsim` simulator, a
code generator that emits OpenCL C (:mod:`~repro.kernellang.clgen`),
static analyses (stencil access patterns, data reuse, traffic/operation
counting) and the compiler passes that implement the paper's
transformation: local-memory prefetch, perforation and reconstruction.

Execution backends share one typed lowering core: the kernel IR
(:mod:`~repro.kernellang.ir`) and the pass pipeline
(:mod:`~repro.kernellang.passes` — uniformity analysis, mask insertion,
memory views, batching transform), consumed dynamically by the vectorized
backend (:mod:`~repro.kernellang.vectorize`) and as a source printer by
the codegen backend (:mod:`~repro.kernellang.codegen`).  See
``docs/ir.md`` for the pass contracts.
"""

from . import ast, ir, passes
from .builtins import builtin_names, get_builtin, is_builtin
from .clgen import CodeGenerator, generate
from .codegen import CodegenKernel, LoweringError, codegen_kernel, lower_kernel
from .errors import (
    AnalysisError,
    InterpreterError,
    KernelLangError,
    LexError,
    ParseError,
    SymbolError,
    TransformError,
    TypeError_,
)
from .interpreter import KernelInterpreter, compile_kernel
from .vectorize import VectorizedKernel, vectorized_kernel
from .lexer import Lexer, tokenize
from .parser import Parser, parse_kernel, parse_program
from .typecheck import CheckResult, TypeChecker, check_program
from .types import (
    AddressSpace,
    ArrayType,
    FLOAT,
    INT,
    PointerType,
    ScalarType,
    Type,
    VOID,
)

__all__ = [
    "VectorizedKernel",
    "vectorized_kernel",
    "AddressSpace",
    "AnalysisError",
    "ArrayType",
    "CheckResult",
    "CodeGenerator",
    "CodegenKernel",
    "LoweringError",
    "codegen_kernel",
    "lower_kernel",
    "FLOAT",
    "INT",
    "InterpreterError",
    "KernelInterpreter",
    "KernelLangError",
    "LexError",
    "Lexer",
    "ParseError",
    "Parser",
    "PointerType",
    "ScalarType",
    "SymbolError",
    "TransformError",
    "Type",
    "TypeChecker",
    "TypeError_",
    "VOID",
    "ast",
    "builtin_names",
    "ir",
    "passes",
    "check_program",
    "compile_kernel",
    "generate",
    "get_builtin",
    "is_builtin",
    "parse_kernel",
    "parse_program",
    "tokenize",
]
