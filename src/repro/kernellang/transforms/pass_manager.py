"""Compiler-pass infrastructure for kernel transformations.

The perforation framework is organised as a short pipeline of passes over a
kernel AST, mirroring how the paper describes the technique (Figure 1b):

1. :class:`~repro.kernellang.transforms.local_prefetch.LocalPrefetchPass`
   stages the kernel's input tile in local memory (the classic GPU
   optimisation the technique builds on);
2. :class:`~repro.kernellang.transforms.perforation.PerforationPass`
   restricts the prefetch to a subset of the tile (data perforation);
3. :class:`~repro.kernellang.transforms.reconstruction.ReconstructionPass`
   fills the skipped tile entries from the fetched ones (data
   reconstruction).

Passes communicate through a :class:`TransformContext` that records the
names of generated variables, the prefetch loops, and the scheme applied,
so later passes can locate and extend what earlier passes produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from .. import ast
from ..analysis.access_patterns import AccessPatternInfo, analyze_kernel
from ..errors import TransformError
from ..parser import Parser
from ..lexer import tokenize


def parse_statements(source: str) -> list[ast.Stmt]:
    """Parse a snippet of statements (used by passes to generate code).

    The snippet is wrapped in a dummy function so the regular parser can be
    reused; the resulting statements are returned for splicing into a
    kernel body.
    """
    wrapped = "void __snippet() {\n" + source + "\n}"
    program = Parser(tokenize(wrapped)).parse_program()
    return program.functions[0].body.statements


@dataclass
class BufferPlan:
    """Per-buffer bookkeeping shared between the passes."""

    buffer: str
    halo: int
    tile_w: int
    tile_h: int
    tile_name: str
    lx_name: str
    ly_name: str
    prefetch_loop: Optional[ast.ForStmt] = None
    load_statement: Optional[ast.Stmt] = None
    perforated: bool = False
    scheme_kind: Optional[str] = None
    scheme_step: int = 1


@dataclass
class TransformContext:
    """State threaded through a pass pipeline for one kernel."""

    kernel: ast.FunctionDef
    tile_x: int
    tile_y: int
    pattern_info: AccessPatternInfo
    plans: dict[str, BufferPlan] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    @classmethod
    def create(
        cls, kernel: ast.FunctionDef, tile_x: int, tile_y: int
    ) -> "TransformContext":
        info = analyze_kernel(kernel)
        return cls(kernel=kernel, tile_x=tile_x, tile_y=tile_y, pattern_info=info)

    def plan_for(self, buffer: str) -> BufferPlan:
        try:
            return self.plans[buffer]
        except KeyError as exc:
            raise TransformError(
                f"no prefetch plan exists for buffer {buffer!r}; run LocalPrefetchPass first"
            ) from exc

    def add_note(self, note: str) -> None:
        self.notes.append(note)


class Pass:
    """Base class of kernel transformation passes."""

    #: Human-readable pass name (subclasses override).
    name = "pass"

    def run(self, context: TransformContext) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"


class PassManager:
    """Runs a sequence of passes over a kernel and records what happened."""

    def __init__(self, passes: Sequence[Pass]) -> None:
        self.passes = list(passes)

    def run(self, kernel: ast.FunctionDef, tile_x: int, tile_y: int) -> TransformContext:
        """Apply the pipeline to ``kernel`` *in place* and return the context.

        Callers that need to keep the original kernel should pass a clone
        (``kernel.clone()``).
        """
        context = TransformContext.create(kernel, tile_x, tile_y)
        for pass_ in self.passes:
            pass_.run(context)
            context.add_note(f"applied {pass_.name}")
        return context
