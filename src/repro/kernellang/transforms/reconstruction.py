"""Reconstruction pass: fill the perforated parts of the local tile.

After :class:`~repro.kernellang.transforms.perforation.PerforationPass` has
restricted the prefetch, this pass appends code that reconstructs the
skipped tile elements from the fetched ones, entirely in local memory:

* **nearest-neighbour (NN)** reconstruction copies the value of the nearest
  fetched row (row schemes) or the nearest core element (stencil scheme);
* **linear interpolation (LI)** blends the two enclosing fetched rows and
  falls back to NN where only one neighbour exists (tile border), exactly
  as described in Section 5.1 of the paper.

A work-group barrier is inserted before and after the reconstruction code
so reads of neighbouring rows observe the prefetched data.
"""

from __future__ import annotations

from typing import Sequence

from .. import ast
from ..errors import TransformError
from .pass_manager import BufferPlan, Pass, TransformContext, parse_statements
from .perforation import ROW_SCHEME, STENCIL_SCHEME

#: Reconstruction technique identifiers.
NEAREST_NEIGHBOR = "nearest-neighbor"
LINEAR_INTERPOLATION = "linear-interpolation"


class ReconstructionPass(Pass):
    """Insert local-memory reconstruction code for perforated buffers."""

    name = "reconstruction"

    def __init__(
        self,
        technique: str = NEAREST_NEIGHBOR,
        buffers: Sequence[str] | None = None,
    ) -> None:
        if technique not in (NEAREST_NEIGHBOR, LINEAR_INTERPOLATION):
            raise TransformError(f"unknown reconstruction technique {technique!r}")
        self.technique = technique
        self.buffers = list(buffers) if buffers is not None else None

    # ------------------------------------------------------------------
    def run(self, context: TransformContext) -> None:
        targets = self.buffers if self.buffers is not None else sorted(context.plans)
        inserted_any = False
        for buffer in targets:
            plan = context.plan_for(buffer)
            if not plan.perforated:
                raise TransformError(
                    f"buffer {buffer!r} is staged but not perforated; "
                    "run PerforationPass before ReconstructionPass"
                )
            statements = self._reconstruction_statements(context, plan)
            self._insert_after_prefetch(context, plan, statements)
            inserted_any = True
            context.add_note(f"buffer {buffer!r}: {self.technique} reconstruction")
        if not inserted_any:
            raise TransformError("ReconstructionPass had no perforated buffers to handle")

    # ------------------------------------------------------------------
    def _insert_after_prefetch(
        self, context: TransformContext, plan: BufferPlan, statements: list[ast.Stmt]
    ) -> None:
        body = context.kernel.body.statements
        index = next(
            (i for i, stmt in enumerate(body) if stmt is plan.prefetch_loop), None
        )
        if index is None:  # pragma: no cover - defensive
            raise TransformError(
                f"prefetch loop of buffer {plan.buffer!r} is no longer in the kernel body"
            )
        barrier = parse_statements("barrier(CLK_LOCAL_MEM_FENCE);")
        context.kernel.body.statements = (
            body[: index + 1] + barrier + statements + body[index + 1 :]
        )

    # ------------------------------------------------------------------
    def _reconstruction_statements(
        self, context: TransformContext, plan: BufferPlan
    ) -> list[ast.Stmt]:
        if plan.scheme_kind == ROW_SCHEME:
            if self.technique == LINEAR_INTERPOLATION:
                return parse_statements(self._rows_linear(context, plan))
            return parse_statements(self._rows_nearest(context, plan))
        if plan.scheme_kind == STENCIL_SCHEME:
            # Linear interpolation is not defined on the one-sided halo; the
            # paper falls back to nearest-neighbour there.
            return parse_statements(self._stencil_nearest(context, plan))
        raise TransformError(
            f"buffer {plan.buffer!r} uses unknown scheme kind {plan.scheme_kind!r}"
        )

    def _rows_nearest(self, context: TransformContext, plan: BufferPlan) -> str:
        step = plan.scheme_step
        last_loaded = ((plan.tile_h - 1) // step) * step
        return f"""
        for (int _kp_ry = {plan.ly_name}; _kp_ry < {plan.tile_h}; _kp_ry += {context.tile_y}) {{
            for (int _kp_rx = {plan.lx_name}; _kp_rx < {plan.tile_w}; _kp_rx += {context.tile_x}) {{
                if ((_kp_ry % {step}) != 0) {{
                    int _kp_src = ((_kp_ry + {step // 2}) / {step}) * {step};
                    if (_kp_src > {last_loaded}) {{
                        _kp_src = {last_loaded};
                    }}
                    {plan.tile_name}[_kp_ry * {plan.tile_w} + _kp_rx] =
                        {plan.tile_name}[_kp_src * {plan.tile_w} + _kp_rx];
                }}
            }}
        }}
        barrier(CLK_LOCAL_MEM_FENCE);
        """

    def _rows_linear(self, context: TransformContext, plan: BufferPlan) -> str:
        step = plan.scheme_step
        last_loaded = ((plan.tile_h - 1) // step) * step
        return f"""
        for (int _kp_ry = {plan.ly_name}; _kp_ry < {plan.tile_h}; _kp_ry += {context.tile_y}) {{
            for (int _kp_rx = {plan.lx_name}; _kp_rx < {plan.tile_w}; _kp_rx += {context.tile_x}) {{
                if ((_kp_ry % {step}) != 0) {{
                    int _kp_lo = (_kp_ry / {step}) * {step};
                    int _kp_hi = _kp_lo + {step};
                    if (_kp_hi > {last_loaded}) {{
                        {plan.tile_name}[_kp_ry * {plan.tile_w} + _kp_rx] =
                            {plan.tile_name}[_kp_lo * {plan.tile_w} + _kp_rx];
                    }} else {{
                        float _kp_t = (float)(_kp_ry - _kp_lo) / (float){step};
                        {plan.tile_name}[_kp_ry * {plan.tile_w} + _kp_rx] =
                            mix({plan.tile_name}[_kp_lo * {plan.tile_w} + _kp_rx],
                                {plan.tile_name}[_kp_hi * {plan.tile_w} + _kp_rx],
                                _kp_t);
                    }}
                }}
            }}
        }}
        barrier(CLK_LOCAL_MEM_FENCE);
        """

    def _stencil_nearest(self, context: TransformContext, plan: BufferPlan) -> str:
        halo = plan.halo
        return f"""
        for (int _kp_ry = {plan.ly_name}; _kp_ry < {plan.tile_h}; _kp_ry += {context.tile_y}) {{
            for (int _kp_rx = {plan.lx_name}; _kp_rx < {plan.tile_w}; _kp_rx += {context.tile_x}) {{
                if (_kp_ry < {halo} || _kp_ry >= {plan.tile_h - halo} ||
                    _kp_rx < {halo} || _kp_rx >= {plan.tile_w - halo}) {{
                    int _kp_sy = clamp(_kp_ry, {halo}, {plan.tile_h - halo - 1});
                    int _kp_sx = clamp(_kp_rx, {halo}, {plan.tile_w - halo - 1});
                    {plan.tile_name}[_kp_ry * {plan.tile_w} + _kp_rx] =
                        {plan.tile_name}[_kp_sy * {plan.tile_w} + _kp_sx];
                }}
            }}
        }}
        barrier(CLK_LOCAL_MEM_FENCE);
        """
