"""Kernel transformation passes (local prefetch, perforation, reconstruction)."""

from .local_prefetch import LocalPrefetchPass
from .pass_manager import (
    BufferPlan,
    Pass,
    PassManager,
    TransformContext,
    parse_statements,
)
from .perforation import ROW_SCHEME, STENCIL_SCHEME, PerforationPass
from .reconstruction import (
    LINEAR_INTERPOLATION,
    NEAREST_NEIGHBOR,
    ReconstructionPass,
)

__all__ = [
    "BufferPlan",
    "LINEAR_INTERPOLATION",
    "LocalPrefetchPass",
    "NEAREST_NEIGHBOR",
    "Pass",
    "PassManager",
    "PerforationPass",
    "ROW_SCHEME",
    "ReconstructionPass",
    "STENCIL_SCHEME",
    "TransformContext",
    "parse_statements",
]
