"""Local-memory prefetch pass.

Transforms a kernel that reads a global buffer with a stencil access
pattern into one that first cooperatively stages the work group's input
tile (including the stencil halo) into ``__local`` memory, synchronises,
and then serves all stencil reads from the tile.

This is the standard GPU optimisation the paper builds on; perforation and
reconstruction are applied on top of the prefetch loop this pass generates.
"""

from __future__ import annotations

from typing import Sequence

from .. import ast
from ..analysis.access_patterns import _single_assignment_definitions
from ..errors import TransformError
from .pass_manager import BufferPlan, Pass, TransformContext, parse_statements


class LocalPrefetchPass(Pass):
    """Stage the input tile(s) of a kernel in local memory."""

    name = "local-prefetch"

    def __init__(self, buffers: Sequence[str] | None = None, halo: int | None = None) -> None:
        """
        Parameters
        ----------
        buffers:
            Names of the global input buffers to stage.  ``None`` selects
            every buffer the access-pattern analysis found being read.
        halo:
            Override for the halo width; defaults to each buffer's analysed
            stencil halo.
        """
        self.buffers = list(buffers) if buffers is not None else None
        self.halo_override = halo

    # ------------------------------------------------------------------
    def run(self, context: TransformContext) -> None:
        info = context.pattern_info
        targets = self.buffers if self.buffers is not None else sorted(info.input_buffers)
        if not targets:
            raise TransformError(
                f"kernel {context.kernel.name!r} has no global input reads to stage"
            )
        prologue: list[ast.Stmt] = []
        for buffer in targets:
            if buffer not in info.input_buffers:
                raise TransformError(
                    f"kernel {context.kernel.name!r} does not read buffer {buffer!r}"
                )
            plan = self._make_plan(context, buffer)
            context.plans[buffer] = plan
            prologue.extend(self._prefetch_statements(context, plan))
            self._rewrite_reads(context, plan)
        prologue.extend(parse_statements("barrier(CLK_LOCAL_MEM_FENCE);"))
        context.kernel.body.statements = prologue + context.kernel.body.statements

    # ------------------------------------------------------------------
    def _make_plan(self, context: TransformContext, buffer: str) -> BufferPlan:
        summary = context.pattern_info.summary(buffer)
        halo = self.halo_override if self.halo_override is not None else summary.halo
        tile_w = context.tile_x + 2 * halo
        tile_h = context.tile_y + 2 * halo
        return BufferPlan(
            buffer=buffer,
            halo=halo,
            tile_w=tile_w,
            tile_h=tile_h,
            tile_name=f"_kp_{buffer}_tile",
            lx_name=f"_kp_{buffer}_lx",
            ly_name=f"_kp_{buffer}_ly",
        )

    def _prefetch_statements(self, context: TransformContext, plan: BufferPlan) -> list[ast.Stmt]:
        info = context.pattern_info
        width = info.width_param
        height = info.height_param
        if width is None or height is None:
            raise TransformError(
                f"kernel {context.kernel.name!r} needs width/height parameters for prefetching"
            )
        lx, ly = plan.lx_name, plan.ly_name
        tile = plan.tile_name
        source = f"""
        __local float {tile}[{plan.tile_h * plan.tile_w}];
        int {lx} = get_local_id(0);
        int {ly} = get_local_id(1);
        for (int _kp_ty = {ly}; _kp_ty < {plan.tile_h}; _kp_ty += {context.tile_y}) {{
            for (int _kp_tx = {lx}; _kp_tx < {plan.tile_w}; _kp_tx += {context.tile_x}) {{
                int _kp_gx = get_group_id(0) * {context.tile_x} + _kp_tx - {plan.halo};
                int _kp_gy = get_group_id(1) * {context.tile_y} + _kp_ty - {plan.halo};
                _kp_gx = clamp(_kp_gx, 0, {width} - 1);
                _kp_gy = clamp(_kp_gy, 0, {height} - 1);
                {tile}[_kp_ty * {plan.tile_w} + _kp_tx] = {plan.buffer}[_kp_gy * {width} + _kp_gx];
            }}
        }}
        """
        statements = parse_statements(source)
        # Record the prefetch loop and its innermost load statement so the
        # perforation pass can find them later.
        outer_loop = next(s for s in statements if isinstance(s, ast.ForStmt))
        inner_loop = next(
            s for s in outer_loop.body.statements if isinstance(s, ast.ForStmt)
        )
        plan.prefetch_loop = outer_loop
        plan.load_statement = inner_loop.body.statements[-1]
        return statements

    # ------------------------------------------------------------------
    def _rewrite_reads(self, context: TransformContext, plan: BufferPlan) -> None:
        info = context.pattern_info
        definitions = _single_assignment_definitions(context.kernel)
        rewriter = _ReadRewriter(
            buffer=plan.buffer,
            tile_name=plan.tile_name,
            lx_name=plan.lx_name,
            ly_name=plan.ly_name,
            halo=plan.halo,
            tile_w=plan.tile_w,
            tile_h=plan.tile_h,
            x_var=info.x_var,
            y_var=info.y_var,
            width_param=info.width_param,
            height_param=info.height_param,
            skip_statements={id(plan.load_statement)},
            definitions=definitions,
        )
        rewriter.visit(context.kernel.body)
        if rewriter.rewritten == 0:
            raise TransformError(
                f"prefetch of buffer {plan.buffer!r} did not rewrite any reads"
            )
        context.add_note(
            f"buffer {plan.buffer!r}: staged {plan.tile_w}x{plan.tile_h} tile, "
            f"rewrote {rewriter.rewritten} reads"
        )


class _IndexSubstituter(ast.NodeTransformer):
    """Rewrites a cloned index expression from global to tile coordinates."""

    def __init__(
        self,
        lx_name: str,
        ly_name: str,
        halo: int,
        tile_w: int,
        tile_h: int,
        x_var: str | None,
        y_var: str | None,
        width_param: str | None,
        height_param: str | None,
    ) -> None:
        self.lx_name = lx_name
        self.ly_name = ly_name
        self.halo = halo
        self.tile_w = tile_w
        self.tile_h = tile_h
        self.x_var = x_var
        self.y_var = y_var
        self.width_param = width_param
        self.height_param = height_param

    def _local_coord(self, local_name: str) -> ast.Expr:
        return ast.BinaryOp("+", ast.Identifier(local_name), ast.IntLiteral(self.halo))

    def visit_Identifier(self, node: ast.Identifier):
        if node.name == self.x_var:
            return self._local_coord(self.lx_name)
        if node.name == self.y_var:
            return self._local_coord(self.ly_name)
        if node.name == self.width_param:
            return ast.IntLiteral(self.tile_w)
        if node.name == self.height_param:
            return ast.IntLiteral(self.tile_h)
        return node

    def visit_Call(self, node: ast.Call):
        if node.name == "get_global_id" and node.args:
            dim = node.args[0]
            if isinstance(dim, ast.IntLiteral):
                if dim.value == 0:
                    return self._local_coord(self.lx_name)
                if dim.value == 1:
                    return self._local_coord(self.ly_name)
        return self.generic_visit(node)


class _DefinitionInliner(ast.NodeTransformer):
    """Inlines single-assignment locals (``int xx = clamp(x + dx, ...)``)
    into an index expression so the coordinate substitution can see through
    them."""

    def __init__(self, definitions: dict[str, ast.Expr]) -> None:
        self.definitions = definitions
        self._resolving: set[str] = set()

    def visit_Identifier(self, node: ast.Identifier):
        definition = self.definitions.get(node.name)
        if definition is None or node.name in self._resolving:
            return node
        self._resolving.add(node.name)
        try:
            return self.visit(definition.clone())
        finally:
            self._resolving.discard(node.name)


class _ReadRewriter(ast.NodeTransformer):
    """Replaces global reads of one buffer with reads of its local tile."""

    def __init__(
        self,
        buffer: str,
        tile_name: str,
        lx_name: str,
        ly_name: str,
        halo: int,
        tile_w: int,
        tile_h: int,
        x_var: str | None,
        y_var: str | None,
        width_param: str | None,
        height_param: str | None,
        skip_statements: set[int],
        definitions: dict[str, ast.Expr] | None = None,
    ) -> None:
        self.buffer = buffer
        self.tile_name = tile_name
        self.substituter = _IndexSubstituter(
            lx_name, ly_name, halo, tile_w, tile_h, x_var, y_var, width_param, height_param
        )
        self.inliner = _DefinitionInliner(definitions or {})
        self.skip_statements = skip_statements
        self.rewritten = 0
        self._in_store_target = 0

    def visit_ExprStmt(self, node: ast.ExprStmt):
        if id(node) in self.skip_statements:
            return node
        return self.generic_visit(node)

    def visit_Assignment(self, node: ast.Assignment):
        # Do not rewrite the *target* of stores to the buffer (kernels never
        # write their perforated inputs, but be safe).
        node.value = self.visit(node.value)
        if isinstance(node.target, ast.Index):
            node.target.index = self.visit(node.target.index)
        return node

    def visit_Index(self, node: ast.Index):
        node.index = self.visit(node.index)
        if isinstance(node.base, ast.Identifier) and node.base.name == self.buffer:
            new_index = self.inliner.visit(node.index.clone())
            new_index = self.substituter.visit(new_index)
            self.rewritten += 1
            return ast.Index(ast.Identifier(self.tile_name), new_index)
        node.base = self.visit(node.base)
        return node
