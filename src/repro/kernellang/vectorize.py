"""Vectorized (NumPy) lowering of kernellang kernels.

The AST interpreter (:mod:`repro.kernellang.interpreter`) executes one
work-item at a time as a Python generator — precise, but slow, which is why
the compiler-path tests and sweeps were marked ``slow``.  This module lowers
the same ASTs onto *batched* NumPy operations: all work-items of a work
group execute together, SIMT-style, with an active-lane mask threaded
through the control flow.

* gids/lids become ``(lanes,)`` index arrays built from the NDRange;
* scalar variables become per-lane arrays (``int64``/``float64``, matching
  the interpreter's Python ``int``/``float`` semantics, including C
  truncation for integer division and assignments to integer variables);
* global buffers, local-memory tiles and private arrays become masked
  gather/scatter operations whose access *counts* equal the number of
  active lanes — so :class:`~repro.clsim.executor.ExecutionStats` counters
  are reproduced exactly;
* divergent ``if``/``for``/``while``/``do-while`` (including
  ``break``/``continue``/``return``) run with per-lane masks until every
  lane retires, which reproduces data-dependent loops such as Median's
  insertion sort;
* ``barrier()`` must be reached by *all* lanes of the group at the *same
  statement* — a barrier is then a plain sequence point, since statements
  already execute group-wide.  This is deliberately stricter than the
  lock-step interpreter, which only requires equal barrier *counts* per
  work-item and therefore accepts balanced divergent barriers
  (``if (c) { barrier(); } else { barrier(); }``).  Rather than silently
  drifting on that pattern, this backend raises
  :class:`BarrierDivergenceError`; none of the bundled or generated
  kernels use it (their barriers are all at the top level).

Bit-exactness notes: lane arithmetic is IEEE double, exactly like the
interpreter's Python floats.  ``sqrt``/``rsqrt``/``native_divide`` use
NumPy's correctly-rounded kernels; the remaining transcendentals
(``exp``/``log``/``pow``/...) are applied through :mod:`math` per active
lane, because NumPy's vector routines are not guaranteed to round
identically to libm.  One representational limit: a lane array has a
single dtype, so *mixed* int/float arguments to ``min``/``max``/``select``
(and mixed-type ternary branches) promote to float64 lane-wide, whereas
the scalar interpreter's Python ``min`` hands back the chosen operand with
its own type per work-item.  Well-typed kernels — and everything the
perforation passes generate — never mix types there; the conformance
suite pins parity for all bundled kernels.
"""

from __future__ import annotations

import numpy as np

from ..clsim.errors import BarrierDivergenceError
from ..clsim.kernel import Kernel, KernelContext
from ..clsim.memory import Buffer, SegmentedBuffer
from . import ast
from .builtins import (
    BUILTIN_CONSTANTS,
    CONTEXT_BUILTINS,
    SYNC_BUILTINS,
    get_builtin,
    is_builtin,
)
from .errors import InterpreterError
from .interpreter import KernelInterpreter, _ConstantArray
from .types import PointerType, ScalarType

_INT = np.int64
_FLOAT = np.float64


def _is_int(array: np.ndarray) -> bool:
    return array.dtype.kind in "iu"


def _truthy(array: np.ndarray) -> np.ndarray:
    return array != 0


def _scalar_map(fn):
    """Apply a scalar libm function per active lane (bit-exact fallback)."""

    def apply(mask, *args):
        out = np.zeros(mask.shape[0], dtype=_FLOAT)
        idx = np.flatnonzero(mask)
        lanes = [np.asarray(a, dtype=_FLOAT)[idx] for a in args]
        out[idx] = [fn(*vals) for vals in zip(*lanes)]
        return out

    return apply


def _vector_clamp(mask, value, low, high):
    return np.minimum(np.maximum(value, low), high)


def _vector_select(mask, a, b, c):
    return np.where(_truthy(np.asarray(c)), b, a)


def _int_result(fn):
    """Wrap a float-returning ufunc whose interpreter twin returns ``int``."""

    def apply(mask, x):
        return fn(x).astype(_INT)

    return apply


def _vector_sqrt(mask, x):
    x = np.asarray(x, dtype=_FLOAT)
    if np.any(mask & (x < 0)):
        # The scalar interpreter raises through math.sqrt; don't let lanes
        # silently produce NaN where the reference backend errors out.
        raise InterpreterError("built-in 'sqrt' failed: math domain error")
    return np.sqrt(np.where(mask, x, 0.0))


def _vector_rsqrt(mask, x):
    x = np.asarray(x, dtype=_FLOAT)
    if np.any(mask & (x < 0)):
        raise InterpreterError("built-in 'rsqrt' failed: math domain error")
    if np.any(mask & (x == 0)):
        raise InterpreterError("built-in 'rsqrt' failed: float division by zero")
    return 1.0 / np.sqrt(np.where(mask, x, 1.0))


def _vector_native_divide(mask, a, b):
    b = np.asarray(b)
    if np.any(mask & (b == 0)):
        raise InterpreterError("built-in 'native_divide' failed: float division by zero")
    return np.asarray(a, dtype=_FLOAT) / np.where(b == 0, 1.0, b)


#: Vector implementations of the built-ins; signature ``fn(mask, *args)``.
#: Anything missing here falls back to the scalar implementation per lane.
_VECTOR_BUILTINS = {
    "min": lambda mask, a, b: np.minimum(a, b),
    "max": lambda mask, a, b: np.maximum(a, b),
    "fmin": lambda mask, a, b: np.minimum(a, b),
    "fmax": lambda mask, a, b: np.maximum(a, b),
    "clamp": _vector_clamp,
    "abs": lambda mask, x: np.abs(x),
    "fabs": lambda mask, x: np.abs(x),
    "floor": _int_result(np.floor),
    "ceil": _int_result(np.ceil),
    "round": _int_result(np.round),
    "sign": lambda mask, x: np.sign(x).astype(_FLOAT),
    "mad": lambda mask, a, b, c: a * b + c,
    "fma": lambda mask, a, b, c: a * b + c,
    "mix": lambda mask, a, b, t: a + (b - a) * t,
    "select": _vector_select,
    "sqrt": _vector_sqrt,
    "rsqrt": _vector_rsqrt,
    "native_divide": _vector_native_divide,
}


# ---------------------------------------------------------------------------
# Lane-indexed memory objects
# ---------------------------------------------------------------------------
def _check_bounds(what: str, index: np.ndarray, mask: np.ndarray, length: int) -> None:
    """Raise like the scalar interpreter if any *active* lane is out of range."""
    bad = mask & ((index < 0) | (index >= length))
    if np.any(bad):
        raise InterpreterError(
            f"{what}: index {int(index[bad][0])} out of bounds [0, {length})"
        )


class _VGlobal:
    """Masked gather/scatter view of a global :class:`Buffer`."""

    def __init__(self, buffer: Buffer) -> None:
        self.buffer = buffer
        self._flat = buffer.array.reshape(-1)
        self._what = f"global buffer {buffer.name!r}"

    def load(self, index: np.ndarray, mask: np.ndarray) -> np.ndarray:
        _check_bounds(self._what, index, mask, self._flat.size)
        self.buffer.record_reads(int(mask.sum()))
        return self._flat[np.where(mask, index, 0)].astype(_FLOAT)

    def store(self, index: np.ndarray, value: np.ndarray, mask: np.ndarray) -> None:
        _check_bounds(self._what, index, mask, self._flat.size)
        self.buffer.record_writes(int(mask.sum()))
        self._flat[index[mask]] = np.asarray(value, dtype=_FLOAT)[mask]


class _VLocal:
    """Masked view of a named tile in the work group's local memory."""

    def __init__(self, ctx: KernelContext, name: str, length: int) -> None:
        self.ctx = ctx
        self.name = name
        self.length = length
        self._what = f"local array {name!r}"
        ctx.local.allocate(name, (length,), dtype=_FLOAT)

    def load(self, index: np.ndarray, mask: np.ndarray) -> np.ndarray:
        _check_bounds(self._what, index, mask, self.length)
        tile = self.ctx.local.tile(self.name)
        self.ctx.local.record_reads(int(mask.sum()))
        return tile[np.where(mask, index, 0)].astype(_FLOAT)

    def store(self, index: np.ndarray, value: np.ndarray, mask: np.ndarray) -> None:
        _check_bounds(self._what, index, mask, self.length)
        tile = self.ctx.local.tile(self.name)
        self.ctx.local.record_writes(int(mask.sum()))
        tile[index[mask]] = np.asarray(value, dtype=_FLOAT)[mask]


class _VPrivate:
    """A fixed-size per-lane private array (``lanes x length``)."""

    def __init__(self, name: str, length: int, lanes: int) -> None:
        self.name = name
        self.length = length
        self._what = f"private array {name!r}"
        self.values = np.zeros((lanes, length), dtype=_FLOAT)
        self._lane_idx = np.arange(lanes)

    def load(self, index: np.ndarray, mask: np.ndarray) -> np.ndarray:
        _check_bounds(self._what, index, mask, self.length)
        return self.values[self._lane_idx, np.where(mask, index, 0)]

    def store(self, index: np.ndarray, value: np.ndarray, mask: np.ndarray) -> None:
        _check_bounds(self._what, index, mask, self.length)
        self.values[self._lane_idx[mask], index[mask]] = np.asarray(
            value, dtype=_FLOAT
        )[mask]


class _VSegmentedGlobal:
    """Masked gather/scatter into per-request segments of a batched buffer.

    Used by batched launches: lane ``l`` belongs to request
    ``lane_request[l]`` and addresses that request's segment of the stacked
    :class:`~repro.clsim.memory.SegmentedBuffer`, so per-request indexing
    (and bounds checking) is exactly that of an individual launch.
    """

    def __init__(self, buffer: SegmentedBuffer, base: np.ndarray) -> None:
        self.buffer = buffer
        self._flat = buffer.array.reshape(-1)
        self._segment = buffer.segment_elements
        self._base = base
        self._what = f"global buffer {buffer.name!r}"

    def load(self, index: np.ndarray, mask: np.ndarray) -> np.ndarray:
        _check_bounds(self._what, index, mask, self._segment)
        self.buffer.record_reads(int(mask.sum()))
        return self._flat[np.where(mask, index + self._base, 0)].astype(_FLOAT)

    def store(self, index: np.ndarray, value: np.ndarray, mask: np.ndarray) -> None:
        _check_bounds(self._what, index, mask, self._segment)
        self.buffer.record_writes(int(mask.sum()))
        self._flat[(index + self._base)[mask]] = np.asarray(value, dtype=_FLOAT)[mask]


class _VSegmentedLocal:
    """Per-request local tiles of a batched group, stacked back to back.

    Each request's group gets its own ``length``-element tile (request ``r``
    owns ``[r * length, (r + 1) * length)`` of one shared allocation), so
    staging and reconstruction never mix data across batched requests.
    """

    def __init__(self, ctx: KernelContext, name: str, length: int, base: np.ndarray, batch: int) -> None:
        self.ctx = ctx
        self.name = name
        self.length = length
        self._base = base
        self._what = f"local array {name!r}"
        ctx.local.allocate(name, (batch * length,), dtype=_FLOAT)

    def load(self, index: np.ndarray, mask: np.ndarray) -> np.ndarray:
        _check_bounds(self._what, index, mask, self.length)
        tile = self.ctx.local.tile(self.name)
        self.ctx.local.record_reads(int(mask.sum()))
        return tile[np.where(mask, index + self._base, 0)].astype(_FLOAT)

    def store(self, index: np.ndarray, value: np.ndarray, mask: np.ndarray) -> None:
        _check_bounds(self._what, index, mask, self.length)
        tile = self.ctx.local.tile(self.name)
        self.ctx.local.record_writes(int(mask.sum()))
        tile[(index + self._base)[mask]] = np.asarray(value, dtype=_FLOAT)[mask]


class _VConstant:
    """A file-scope ``__constant`` array (read-only, shared by all lanes)."""

    def __init__(self, name: str, values: np.ndarray) -> None:
        self.name = name
        self.values = values
        self._what = f"constant array {name!r}"

    def load(self, index: np.ndarray, mask: np.ndarray) -> np.ndarray:
        _check_bounds(self._what, index, mask, self.values.size)
        return self.values[np.where(mask, index, 0)].astype(_FLOAT)

    def store(self, index, value, mask) -> None:
        raise InterpreterError(f"constant array {self.name!r} is read-only")


_CONTAINERS = (
    _VGlobal,
    _VLocal,
    _VPrivate,
    _VConstant,
    _VSegmentedGlobal,
    _VSegmentedLocal,
)


class _Flow:
    """Per-invocation control-flow state (returned lanes, loop stacks)."""

    def __init__(self, lanes: int, in_function: bool = False) -> None:
        self.lanes = lanes
        self.in_function = in_function
        self.returned = np.zeros(lanes, dtype=bool)
        self.return_value: np.ndarray | None = None
        self.break_stack: list[np.ndarray] = []
        self.continue_stack: list[np.ndarray] = []

    def record_return(self, mask: np.ndarray, value: np.ndarray | None) -> None:
        self.returned = self.returned | mask
        if value is None:
            return
        value = np.asarray(value)
        if self.return_value is None:
            # Lanes that fall off the end of a function return 0 (an int),
            # exactly like the scalar interpreter.
            self.return_value = np.zeros(self.lanes, dtype=_INT)
        merged = self.return_value.astype(
            np.result_type(self.return_value.dtype, value.dtype)
        )
        merged[mask] = value.astype(merged.dtype)[mask]
        self.return_value = merged


class VectorizedKernel:
    """Executes one kernellang kernel a whole work group at a time."""

    def __init__(self, program: ast.Program, kernel_name: str | None = None) -> None:
        self.program = program
        self.kernel_def = program.kernel(kernel_name)
        self.functions = {f.name: f for f in program.functions}
        # Reuse the interpreter's constant evaluation so file-scope constants
        # are guaranteed to agree between the two backends.
        self.constants = KernelInterpreter(program, self.kernel_def.name).constants

    # ------------------------------------------------------------------
    def run_group(
        self, ctx: KernelContext, ndrange, group_id: tuple[int, ...]
    ) -> int:
        """Run all work-items of one group; returns the number of barriers."""
        work_items = list(ndrange.work_items_in_group(group_id))
        lanes = len(work_items)
        state = _GroupState(self, ctx, ndrange, work_items)
        mask = np.ones(lanes, dtype=bool)
        flow = _Flow(lanes)
        env = state.build_environment()
        with np.errstate(all="ignore"):
            state.exec_block(self.kernel_def.body, env, flow, mask)
        return state.barriers

    def run_group_batch(
        self, ctx: KernelContext, ndrange, group_id: tuple[int, ...], batch: int
    ) -> int:
        """Run one work group of ``batch`` stacked compatible launches.

        Request ``r`` occupies lanes ``[r * group_size, (r + 1) * group_size)``
        of one SIMT group; every pointer argument of ``ctx`` must be a
        :class:`~repro.clsim.memory.SegmentedBuffer` with ``batch`` segments.
        Per-lane results are bit-identical to ``batch`` individual
        :meth:`run_group` calls because lanes never interact: index arrays,
        scalars and control-flow masks are per lane, and memory views route
        each lane into its own request's buffer/tile segment.  Returns the
        summed barrier count (``batch`` times the per-launch barriers).
        """
        work_items = list(ndrange.work_items_in_group(group_id))
        state = _BatchedGroupState(self, ctx, ndrange, work_items, batch)
        mask = np.ones(state.lanes, dtype=bool)
        flow = _Flow(state.lanes)
        env = state.build_environment()
        with np.errstate(all="ignore"):
            state.exec_block(self.kernel_def.body, env, flow, mask)
        return state.barriers * batch


class _GroupState:
    """Mutable execution state of one work group."""

    def __init__(self, kernel: VectorizedKernel, ctx, ndrange, work_items) -> None:
        self.kernel = kernel
        self.ctx = ctx
        self.ndrange = ndrange
        self.lanes = len(work_items)
        self.barriers = 0
        rank = ndrange.rank
        self.gid = [
            np.array([wi.global_id[d] for wi in work_items], dtype=_INT)
            for d in range(rank)
        ]
        self.lid = [
            np.array([wi.local_id[d] for wi in work_items], dtype=_INT)
            for d in range(rank)
        ]
        self.grp = [
            np.full(self.lanes, group, dtype=_INT) for group in work_items[0].group_id
        ]

    # ------------------------------------------------------------------
    def _full(self, value) -> np.ndarray:
        dtype = _INT if isinstance(value, (int, np.integer)) else _FLOAT
        return np.full(self.lanes, value, dtype=dtype)

    # Container-construction hooks (overridden by _BatchedGroupState to
    # route every lane into its own request's buffer/tile segment).
    def _global_view(self, buffer: Buffer):
        return _VGlobal(buffer)

    def _local_view(self, name: str, length: int):
        return _VLocal(self.ctx, name, length)

    def build_environment(self) -> dict[str, object]:
        env: dict[str, object] = {}
        for name, value in self.kernel.constants.items():
            if isinstance(value, _ConstantArray):
                env[name] = _VConstant(name, value.values)
            else:
                env[name] = self._full(value)
        for param in self.kernel.kernel_def.params:
            value = self.ctx.arg(param.name)
            if isinstance(param.param_type, PointerType):
                if isinstance(value, Buffer):
                    env[param.name] = self._global_view(value)
                else:
                    raise InterpreterError(
                        f"pointer argument {param.name!r} must be bound to a Buffer"
                    )
            else:
                env[param.name] = self._full(value)
        return env

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def exec_block(self, block: ast.Block, env, flow: _Flow, mask: np.ndarray):
        for stmt in block.statements:
            if not mask.any():
                break
            mask = self.exec_stmt(stmt, env, flow, mask)
        return mask

    def exec_stmt(self, stmt: ast.Stmt, env, flow: _Flow, mask: np.ndarray):
        if isinstance(stmt, ast.DeclStmt):
            for decl in stmt.declarations:
                self._exec_decl(decl, env, flow, mask)
            return mask
        if isinstance(stmt, ast.ExprStmt):
            if isinstance(stmt.expr, ast.Call) and stmt.expr.name in SYNC_BUILTINS:
                if stmt.expr.name == "barrier":
                    self._exec_barrier(flow, mask)
                return mask
            self.eval(stmt.expr, env, flow, mask)
            return mask
        if isinstance(stmt, ast.Block):
            return self.exec_block(stmt, env, flow, mask)
        if isinstance(stmt, ast.IfStmt):
            cond = _truthy(self.eval(stmt.condition, env, flow, mask))
            then_mask = mask & cond
            else_mask = mask & ~cond
            out = else_mask
            if then_mask.any():
                out = self.exec_block(stmt.then_body, env, flow, then_mask) | else_mask
            if stmt.else_body is not None and else_mask.any():
                out = (out & ~else_mask) | self.exec_block(
                    stmt.else_body, env, flow, else_mask
                )
            return out
        if isinstance(stmt, ast.ForStmt):
            return self._exec_for(stmt, env, flow, mask)
        if isinstance(stmt, ast.WhileStmt):
            return self._exec_loop(
                env, flow, mask, condition=stmt.condition, body=stmt.body
            )
        if isinstance(stmt, ast.DoWhileStmt):
            return self._exec_loop(
                env,
                flow,
                mask,
                condition=stmt.condition,
                body=stmt.body,
                check_first=False,
            )
        if isinstance(stmt, ast.ReturnStmt):
            value = None
            if stmt.value is not None:
                value = self.eval(stmt.value, env, flow, mask)
            flow.record_return(mask, value)
            return mask & False
        if isinstance(stmt, ast.BreakStmt):
            if not flow.break_stack:
                raise InterpreterError("break outside of a loop")
            flow.break_stack[-1] |= mask
            return mask & False
        if isinstance(stmt, ast.ContinueStmt):
            if not flow.continue_stack:
                raise InterpreterError("continue outside of a loop")
            flow.continue_stack[-1] |= mask
            return mask & False
        raise InterpreterError(f"unsupported statement {type(stmt).__name__}")

    def _exec_barrier(self, flow: _Flow, mask: np.ndarray) -> None:
        if flow.in_function:
            raise InterpreterError("helper functions may not contain barriers")
        if flow.returned.any() or not mask.all():
            raise BarrierDivergenceError(
                "work-items of the group reached different numbers of barriers"
            )
        self.barriers += 1

    def _exec_for(self, stmt: ast.ForStmt, env, flow: _Flow, mask: np.ndarray):
        if stmt.init is not None:
            mask = self.exec_stmt(stmt.init, env, flow, mask)
        return self._exec_loop(
            env, flow, mask, condition=stmt.condition, body=stmt.body, step=stmt.step
        )

    def _exec_loop(
        self,
        env,
        flow: _Flow,
        mask: np.ndarray,
        condition: ast.Expr | None,
        body: ast.Block,
        step: ast.Expr | None = None,
        check_first: bool = True,
    ):
        entered = mask
        active = mask.copy()
        flow.break_stack.append(np.zeros(self.lanes, dtype=bool))
        first = True
        while active.any():
            if condition is not None and (check_first or not first):
                cond = _truthy(self.eval(condition, env, flow, active))
                active = active & cond
                if not active.any():
                    break
            first = False
            flow.continue_stack.append(np.zeros(self.lanes, dtype=bool))
            after = self.exec_block(body, env, flow, active)
            active = after | flow.continue_stack.pop()
            if step is not None and active.any():
                self.eval(step, env, flow, active)
        flow.break_stack.pop()
        return entered & ~flow.returned

    def _exec_decl(self, decl: ast.VarDecl, env, flow: _Flow, mask: np.ndarray) -> None:
        if decl.array_size is not None:
            length_arr = self.eval(decl.array_size, env, flow, mask)
            length = int(length_arr[np.argmax(mask)])
            if not np.all(length_arr[mask] == length):
                raise InterpreterError(
                    f"array {decl.name!r} must have a uniform size across the work group"
                )
            if length <= 0:
                raise InterpreterError(
                    f"array {decl.name!r} must have a positive size, got {length}"
                )
            if decl.address_space == "local":
                env[decl.name] = self._local_view(decl.name, length)
            else:
                array = _VPrivate(decl.name, length, self.lanes)
                if isinstance(decl.init, ast.InitList):
                    for i, value_expr in enumerate(decl.init.values):
                        value = self.eval(value_expr, env, flow, mask)
                        array.store(np.full(self.lanes, i, dtype=_INT), value, mask)
                env[decl.name] = array
            return
        if decl.init is not None:
            value = self.eval(decl.init, env, flow, mask)
        else:
            value = np.zeros(self.lanes, dtype=_INT)
        if isinstance(decl.var_type, ScalarType) and decl.var_type.is_integer:
            value = np.asarray(value).astype(_INT)
        existing = env.get(decl.name)
        if isinstance(existing, np.ndarray) and not mask.all():
            # Re-declaration inside a divergent loop body: only the active
            # lanes get the fresh value (inactive lanes cannot observe it).
            self._store_scalar(env, decl.name, value, mask)
        else:
            env[decl.name] = np.asarray(value)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def eval(self, expr: ast.Expr, env, flow: _Flow, mask: np.ndarray) -> np.ndarray:
        if isinstance(expr, ast.IntLiteral):
            return np.full(self.lanes, expr.value, dtype=_INT)
        if isinstance(expr, ast.FloatLiteral):
            return np.full(self.lanes, expr.value, dtype=_FLOAT)
        if isinstance(expr, ast.BoolLiteral):
            return np.full(self.lanes, 1 if expr.value else 0, dtype=_INT)
        if isinstance(expr, ast.Identifier):
            if expr.name in env:
                return env[expr.name]
            if expr.name in BUILTIN_CONSTANTS:
                return self._full(BUILTIN_CONSTANTS[expr.name])
            raise InterpreterError(f"undefined identifier {expr.name!r}")
        if isinstance(expr, ast.UnaryOp):
            return self._eval_unary(expr, env, flow, mask)
        if isinstance(expr, ast.BinaryOp):
            if expr.op == "&&":
                left = _truthy(self.eval(expr.left, env, flow, mask))
                result = np.zeros(self.lanes, dtype=_INT)
                right_mask = mask & left
                if right_mask.any():
                    right = _truthy(self.eval(expr.right, env, flow, right_mask))
                    result[right_mask & right] = 1
                return result
            if expr.op == "||":
                left = _truthy(self.eval(expr.left, env, flow, mask))
                result = np.zeros(self.lanes, dtype=_INT)
                result[mask & left] = 1
                right_mask = mask & ~left
                if right_mask.any():
                    right = _truthy(self.eval(expr.right, env, flow, right_mask))
                    result[right_mask & right] = 1
                return result
            left = self.eval(expr.left, env, flow, mask)
            right = self.eval(expr.right, env, flow, mask)
            return self._apply_binary(expr.op, left, right, mask)
        if isinstance(expr, ast.Assignment):
            return self._eval_assignment(expr, env, flow, mask)
        if isinstance(expr, ast.Ternary):
            cond = _truthy(self.eval(expr.condition, env, flow, mask))
            result = None
            true_mask = mask & cond
            false_mask = mask & ~cond
            parts = []
            if true_mask.any():
                parts.append((true_mask, self.eval(expr.if_true, env, flow, true_mask)))
            if false_mask.any():
                parts.append(
                    (false_mask, self.eval(expr.if_false, env, flow, false_mask))
                )
            dtype = np.result_type(*(np.asarray(v).dtype for _, v in parts))
            result = np.zeros(self.lanes, dtype=dtype)
            for part_mask, value in parts:
                result[part_mask] = np.asarray(value, dtype=dtype)[part_mask]
            return result
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env, flow, mask)
        if isinstance(expr, ast.Index):
            container = self.eval_container(expr.base, env, flow, mask)
            index = np.asarray(
                self.eval(expr.index, env, flow, mask)
            ).astype(_INT)
            return container.load(index, mask)
        if isinstance(expr, ast.Cast):
            value = self.eval(expr.expr, env, flow, mask)
            if isinstance(expr.target_type, ScalarType) and expr.target_type.is_integer:
                return np.asarray(value).astype(_INT)
            if isinstance(expr.target_type, ScalarType) and expr.target_type.is_float:
                return np.asarray(value).astype(_FLOAT)
            return value
        raise InterpreterError(f"unsupported expression {type(expr).__name__}")

    def eval_container(self, expr: ast.Expr, env, flow: _Flow, mask: np.ndarray):
        value = self.eval(expr, env, flow, mask)
        if isinstance(value, _CONTAINERS):
            return value
        raise InterpreterError(f"cannot index value of type {type(value).__name__}")

    def _eval_unary(self, expr: ast.UnaryOp, env, flow: _Flow, mask: np.ndarray):
        if expr.op in ("++", "--"):
            delta = 1 if expr.op == "++" else -1
            old = self.eval(expr.operand, env, flow, mask)
            self._store_to(expr.operand, old + delta, env, flow, mask)
            return old if expr.postfix else old + delta
        operand = self.eval(expr.operand, env, flow, mask)
        if expr.op == "-":
            return -operand
        if expr.op == "+":
            return operand
        if expr.op == "!":
            return (~_truthy(operand)).astype(_INT)
        if expr.op == "~":
            return ~np.asarray(operand).astype(_INT)
        raise InterpreterError(f"unsupported unary operator {expr.op!r}")

    def _apply_binary(self, op: str, left, right, mask: np.ndarray) -> np.ndarray:
        left = np.asarray(left)
        right = np.asarray(right)
        if op == "/":
            if np.any(mask & (right == 0)):
                if _is_int(left) and _is_int(right):
                    raise InterpreterError("integer division by zero")
                raise InterpreterError("division by zero")
            safe = np.where(right == 0, 1, right) if _is_int(right) else np.where(
                right == 0, 1.0, right
            )
            if _is_int(left) and _is_int(right):
                # C semantics: truncation toward zero.
                quotient = np.floor_divide(left, safe)
                remainder = left - quotient * safe
                return quotient + ((remainder != 0) & ((left < 0) ^ (safe < 0)))
            return left / safe
        if op == "%":
            if np.any(mask & (right == 0)):
                raise InterpreterError("modulo by zero")
            safe = np.where(right == 0, 1, right)
            return np.fmod(left, safe)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op in ("<", ">", "<=", ">=", "==", "!="):
            table = {
                "<": np.less,
                ">": np.greater,
                "<=": np.less_equal,
                ">=": np.greater_equal,
                "==": np.equal,
                "!=": np.not_equal,
            }
            return table[op](left, right).astype(_INT)
        if op in ("&", "|", "^", "<<", ">>"):
            l_int = left.astype(_INT)
            r_int = right.astype(_INT)
            if op == "&":
                return l_int & r_int
            if op == "|":
                return l_int | r_int
            if op == "^":
                return l_int ^ r_int
            if op == "<<":
                return l_int << r_int
            return l_int >> r_int
        raise InterpreterError(f"unsupported binary operator {op!r}")

    def _eval_assignment(self, expr: ast.Assignment, env, flow: _Flow, mask):
        value = self.eval(expr.value, env, flow, mask)
        if expr.op != "=":
            current = self.eval(expr.target, env, flow, mask)
            value = self._apply_binary(expr.op[:-1], current, value, mask)
        self._store_to(expr.target, value, env, flow, mask)
        return value

    def _store_to(self, target: ast.Expr, value, env, flow: _Flow, mask) -> None:
        if isinstance(target, ast.Identifier):
            if target.name not in env:
                raise InterpreterError(
                    f"assignment to undefined variable {target.name!r}"
                )
            self._store_scalar(env, target.name, value, mask)
            return
        if isinstance(target, ast.Index):
            container = self.eval_container(target.base, env, flow, mask)
            index = np.asarray(self.eval(target.index, env, flow, mask)).astype(_INT)
            container.store(index, np.asarray(value), mask)
            return
        raise InterpreterError("assignment target must be a variable or array element")

    def _store_scalar(self, env, name: str, value, mask: np.ndarray) -> None:
        existing = env[name]
        value = np.asarray(value)
        if not isinstance(existing, np.ndarray):
            raise InterpreterError(f"cannot assign to {name!r}")
        if _is_int(existing) and not _is_int(value):
            # Follow C (and the scalar interpreter): assigning a float to an
            # integer variable truncates toward zero.
            value = value.astype(_INT)
        if mask.all():
            env[name] = value.copy() if value.base is not None else value
            return
        dtype = np.result_type(existing.dtype, value.dtype)
        if _is_int(existing):
            dtype = existing.dtype
        merged = existing.astype(dtype)
        merged[mask] = value.astype(dtype)[mask]
        env[name] = merged

    # ------------------------------------------------------------------
    def _eval_call(self, call: ast.Call, env, flow: _Flow, mask: np.ndarray):
        name = call.name
        if name in CONTEXT_BUILTINS:
            dim = 0
            if call.args:
                dim_arr = np.asarray(self.eval(call.args[0], env, flow, mask))
                dim = int(dim_arr[np.argmax(mask)])
            return self._context_query(name, dim)
        if name in SYNC_BUILTINS:
            raise InterpreterError(
                "barrier()/mem_fence() may only appear as standalone statements"
            )
        if is_builtin(name):
            args = [self.eval(arg, env, flow, mask) for arg in call.args]
            vector = _VECTOR_BUILTINS.get(name)
            if vector is not None:
                return vector(mask, *args)
            builtin = get_builtin(name)
            try:
                return _scalar_map(builtin.impl)(mask, *args)
            except Exception as exc:
                raise InterpreterError(f"built-in {name!r} failed: {exc}") from exc
        if name in self.kernel.functions:
            return self._call_user_function(
                self.kernel.functions[name], call, env, flow, mask
            )
        raise InterpreterError(f"call to unknown function {name!r}")

    def _context_query(self, name: str, dim: int) -> np.ndarray:
        if name == "get_global_id":
            return self.gid[dim]
        if name == "get_local_id":
            return self.lid[dim]
        if name == "get_group_id":
            return self.grp[dim]
        if name == "get_global_size":
            return np.full(self.lanes, self.ndrange.global_size[dim], dtype=_INT)
        if name == "get_local_size":
            return np.full(self.lanes, self.ndrange.local_size[dim], dtype=_INT)
        if name == "get_num_groups":
            return np.full(self.lanes, self.ndrange.num_groups[dim], dtype=_INT)
        raise InterpreterError(f"unknown context built-in {name!r}")  # pragma: no cover

    def _call_user_function(
        self, func: ast.FunctionDef, call: ast.Call, env, flow: _Flow, mask
    ):
        if len(call.args) != len(func.params):
            raise InterpreterError(
                f"function {func.name!r} expects {len(func.params)} arguments, "
                f"got {len(call.args)}"
            )
        callee_env: dict[str, object] = {}
        for name, value in self.kernel.constants.items():
            if isinstance(value, _ConstantArray):
                callee_env[name] = _VConstant(name, value.values)
            else:
                callee_env[name] = self._full(value)
        for param, arg in zip(func.params, call.args):
            value = self.eval(arg, env, flow, mask)
            # Pointer/array arguments pass their container through untouched
            # (np.asarray would wrap it into a useless 0-d object array).
            if not isinstance(value, _CONTAINERS):
                value = np.asarray(value)
            callee_env[param.name] = value
        callee_flow = _Flow(self.lanes, in_function=True)
        self.exec_block(func.body, callee_env, callee_flow, mask)
        if callee_flow.return_value is None:
            return np.zeros(self.lanes, dtype=_INT)
        return callee_flow.return_value


class _BatchedGroupState(_GroupState):
    """Execution state of one work group of ``batch`` stacked launches.

    The lane dimension is the concatenation of the group's work-items for
    every request: request ``r`` occupies lanes
    ``[r * group_size, (r + 1) * group_size)``, with identical gid/lid
    index arrays per request (the launches share one NDRange).  Global
    buffers must be :class:`~repro.clsim.memory.SegmentedBuffer` stacks and
    local tiles are allocated per request, so lanes of different requests
    can never observe each other's data.
    """

    def __init__(self, kernel, ctx, ndrange, work_items, batch: int) -> None:
        if batch <= 0:
            raise InterpreterError(f"batch must be positive, got {batch}")
        super().__init__(kernel, ctx, ndrange, list(work_items) * batch)
        self.batch = batch
        group_size = self.lanes // batch
        self.lane_request = np.repeat(np.arange(batch, dtype=_INT), group_size)

    def _global_view(self, buffer: Buffer):
        if not isinstance(buffer, SegmentedBuffer) or buffer.batch != self.batch:
            raise InterpreterError(
                f"batched launch requires every pointer argument to be a "
                f"SegmentedBuffer with {self.batch} segments, got {buffer!r}"
            )
        return _VSegmentedGlobal(buffer, self.lane_request * buffer.segment_elements)

    def _local_view(self, name: str, length: int):
        return _VSegmentedLocal(
            self.ctx, name, length, self.lane_request * length, self.batch
        )


# ---------------------------------------------------------------------------
# Kernel-level entry points
# ---------------------------------------------------------------------------
def vectorized_kernel(kernel: Kernel) -> VectorizedKernel:
    """Return (building and caching on first use) the vectorized form of a
    :class:`~repro.clsim.kernel.Kernel` that carries its kernellang AST."""
    cached = getattr(kernel, "_vectorized", None)
    if cached is not None:
        return cached
    program = getattr(kernel, "ast_program", None)
    if program is None:
        raise InterpreterError(
            f"kernel {kernel.name!r} carries no kernellang AST; only kernels "
            "compiled from kernellang source can run on the vectorized backend"
        )
    compiled = VectorizedKernel(program, getattr(kernel, "ast_kernel_name", None))
    kernel._vectorized = compiled
    return compiled
