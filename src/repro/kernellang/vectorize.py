"""Vectorized (NumPy) lowering of kernellang kernels.

The AST interpreter (:mod:`repro.kernellang.interpreter`) executes one
work-item at a time as a Python generator — precise, but slow, which is why
the compiler-path tests and sweeps were marked ``slow``.  This module lowers
the same ASTs onto *batched* NumPy operations: all work-items of a work
group execute together, SIMT-style, with an active-lane mask threaded
through the control flow.

The SIMT semantics live in the shared pass pipeline
(:mod:`repro.kernellang.passes` — see ``docs/ir.md``); this module is the
*dynamic* consumer, walking the AST per work group and calling straight
into the passes (the codegen backend prints the same calls as specialized
source, which is what keeps the two backends bit-identical):

* gids/lids become ``(lanes,)`` index arrays built from the NDRange;
* scalar variables become per-lane arrays (``int64``/``float64``, matching
  the interpreter's Python ``int``/``float`` semantics, including C
  truncation for integer division and assignments to integer variables) —
  the merge rules and arithmetic kernels are
  :mod:`repro.kernellang.passes.masking`;
* global buffers, local-memory tiles and private arrays become the shared
  masked views (:mod:`repro.kernellang.passes.memory`, with the batched
  segmented variants from :mod:`repro.kernellang.passes.batching`) whose
  access *counts* equal the number of active lanes — so
  :class:`~repro.clsim.executor.ExecutionStats` counters are reproduced
  exactly;
* divergent ``if``/``for``/``while``/``do-while`` (including
  ``break``/``continue``/``return``) run through
  :class:`~repro.kernellang.passes.masking.MaskedControlFlow` with
  per-lane masks until every lane retires, which reproduces data-dependent
  loops such as Median's insertion sort;
* ``barrier()`` must be reached by *all* lanes of the group at the *same
  statement* — a barrier is then a plain sequence point, since statements
  already execute group-wide.  This is deliberately stricter than the
  lock-step interpreter, which only requires equal barrier *counts* per
  work-item and therefore accepts balanced divergent barriers
  (``if (c) { barrier(); } else { barrier(); }``).  Rather than silently
  drifting on that pattern, this backend raises
  :class:`~repro.clsim.errors.BarrierDivergenceError`; none of the bundled
  or generated kernels use it (their barriers are all at the top level).

Bit-exactness notes: lane arithmetic is IEEE double, exactly like the
interpreter's Python floats.  ``sqrt``/``rsqrt``/``native_divide`` use
NumPy's correctly-rounded kernels; the remaining transcendentals
(``exp``/``log``/``pow``/...) are applied through :mod:`math` per active
lane, because NumPy's vector routines are not guaranteed to round
identically to libm.  One representational limit: a lane array has a
single dtype, so *mixed* int/float arguments to ``min``/``max``/``select``
(and mixed-type ternary branches) promote to float64 lane-wide, whereas
the scalar interpreter's Python ``min`` hands back the chosen operand with
its own type per work-item.  Well-typed kernels — and everything the
perforation passes generate — never mix types there; the conformance
suite pins parity for all bundled kernels.
"""

from __future__ import annotations

import numpy as np

from ..clsim.kernel import Kernel, KernelContext
from ..clsim.memory import Buffer
from . import ast
from .builtins import (
    BUILTIN_CONSTANTS,
    CONTEXT_BUILTINS,
    SYNC_BUILTINS,
    is_builtin,
)
from .errors import InterpreterError
from .interpreter import KernelInterpreter, _ConstantArray
from .passes.batching import (
    SegGlobalView,
    SegLocalView,
    lane_requests,
    segmented_global_view,
)
from .passes.masking import (
    VECTOR_BUILTINS,
    Flow,
    MaskedControlFlow,
    VectorFallback,
    apply_binary,
    decl_scalar,
    masked_assign,
    merge_parts,
    truthy,
)
from .passes.memory import ConstantView, GlobalView, LocalView, PrivateView
from .types import PointerType, ScalarType

_INT = np.int64
_FLOAT = np.float64

#: Everything the expression walker may index into (shared pass views).
_CONTAINERS = (
    GlobalView,
    LocalView,
    PrivateView,
    ConstantView,
    SegGlobalView,
    SegLocalView,
)


class VectorizedKernel:
    """Executes one kernellang kernel a whole work group at a time."""

    def __init__(self, program: ast.Program, kernel_name: str | None = None) -> None:
        self.program = program
        self.kernel_def = program.kernel(kernel_name)
        self.functions = {f.name: f for f in program.functions}
        # Reuse the interpreter's constant evaluation so file-scope constants
        # are guaranteed to agree between the two backends.
        self.constants = KernelInterpreter(program, self.kernel_def.name).constants

    # ------------------------------------------------------------------
    def run_group(
        self, ctx: KernelContext, ndrange, group_id: tuple[int, ...]
    ) -> int:
        """Run all work-items of one group; returns the number of barriers."""
        work_items = list(ndrange.work_items_in_group(group_id))
        lanes = len(work_items)
        state = _GroupState(self, ctx, ndrange, work_items)
        mask = np.ones(lanes, dtype=bool)
        flow = Flow(lanes)
        env = state.build_environment()
        with np.errstate(all="ignore"):
            state.exec_block(self.kernel_def.body, env, flow, mask)
        return state.barriers

    def run_group_batch(
        self, ctx: KernelContext, ndrange, group_id: tuple[int, ...], batch: int
    ) -> int:
        """Run one work group of ``batch`` stacked compatible launches.

        Request ``r`` occupies lanes ``[r * group_size, (r + 1) * group_size)``
        of one SIMT group; every pointer argument of ``ctx`` must be a
        :class:`~repro.clsim.memory.SegmentedBuffer` with ``batch`` segments.
        Per-lane results are bit-identical to ``batch`` individual
        :meth:`run_group` calls because lanes never interact: index arrays,
        scalars and control-flow masks are per lane, and memory views route
        each lane into its own request's buffer/tile segment.  Returns the
        summed barrier count (``batch`` times the per-launch barriers).
        """
        work_items = list(ndrange.work_items_in_group(group_id))
        state = _BatchedGroupState(self, ctx, ndrange, work_items, batch)
        mask = np.ones(state.lanes, dtype=bool)
        flow = Flow(state.lanes)
        env = state.build_environment()
        with np.errstate(all="ignore"):
            state.exec_block(self.kernel_def.body, env, flow, mask)
        return state.barriers * batch


class _GroupState(MaskedControlFlow):
    """Mutable execution state of one work group.

    Statement dispatch (blocks, masked ``if``/loops, ``barrier``) is the
    shared :class:`~repro.kernellang.passes.masking.MaskedControlFlow`
    mixin; this class supplies the expression walker and the environment.
    """

    def __init__(self, kernel: VectorizedKernel, ctx, ndrange, work_items) -> None:
        self.kernel = kernel
        self.ctx = ctx
        self.ndrange = ndrange
        self.lanes = len(work_items)
        self.barriers = 0
        rank = ndrange.rank
        self.gid = [
            np.array([wi.global_id[d] for wi in work_items], dtype=_INT)
            for d in range(rank)
        ]
        self.lid = [
            np.array([wi.local_id[d] for wi in work_items], dtype=_INT)
            for d in range(rank)
        ]
        self.grp = [
            np.full(self.lanes, group, dtype=_INT) for group in work_items[0].group_id
        ]

    # ------------------------------------------------------------------
    def _full(self, value) -> np.ndarray:
        dtype = _INT if isinstance(value, (int, np.integer)) else _FLOAT
        return np.full(self.lanes, value, dtype=dtype)

    # Container-construction hooks (overridden by _BatchedGroupState to
    # route every lane into its own request's buffer/tile segment).
    def _global_view(self, buffer: Buffer):
        return GlobalView(buffer)

    def _local_view(self, name: str, length: int):
        return LocalView(self.ctx.local, name, length)

    def build_environment(self) -> dict[str, object]:
        env: dict[str, object] = {}
        for name, value in self.kernel.constants.items():
            if isinstance(value, _ConstantArray):
                env[name] = ConstantView(name, value.values)
            else:
                env[name] = self._full(value)
        for param in self.kernel.kernel_def.params:
            value = self.ctx.arg(param.name)
            if isinstance(param.param_type, PointerType):
                if isinstance(value, Buffer):
                    env[param.name] = self._global_view(value)
                else:
                    raise InterpreterError(
                        f"pointer argument {param.name!r} must be bound to a Buffer"
                    )
            else:
                env[param.name] = self._full(value)
        return env

    # ------------------------------------------------------------------
    # Declarations (statement dispatch itself lives in MaskedControlFlow)
    # ------------------------------------------------------------------
    def _exec_decl(self, decl: ast.VarDecl, env, flow: Flow, mask: np.ndarray) -> None:
        if decl.array_size is not None:
            length_arr = self.eval(decl.array_size, env, flow, mask)
            length = int(length_arr[np.argmax(mask)])
            if not np.all(length_arr[mask] == length):
                raise InterpreterError(
                    f"array {decl.name!r} must have a uniform size across the work group"
                )
            if length <= 0:
                raise InterpreterError(
                    f"array {decl.name!r} must have a positive size, got {length}"
                )
            if decl.address_space == "local":
                env[decl.name] = self._local_view(decl.name, length)
            else:
                array = PrivateView(decl.name, length, self.lanes)
                if isinstance(decl.init, ast.InitList):
                    for i, value_expr in enumerate(decl.init.values):
                        value = self.eval(value_expr, env, flow, mask)
                        array.storem(np.full(self.lanes, i, dtype=_INT), value, mask)
                env[decl.name] = array
            return
        if decl.init is not None:
            value = self.eval(decl.init, env, flow, mask)
        else:
            value = np.zeros(self.lanes, dtype=_INT)
        if isinstance(decl.var_type, ScalarType) and decl.var_type.is_integer:
            value = np.asarray(value).astype(_INT)
        # Re-declaration inside a divergent loop body: only the active lanes
        # get the fresh value (inactive lanes cannot observe it).
        env[decl.name] = decl_scalar(env.get(decl.name), value, mask)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def eval(self, expr: ast.Expr, env, flow: Flow, mask: np.ndarray) -> np.ndarray:
        if isinstance(expr, ast.IntLiteral):
            return np.full(self.lanes, expr.value, dtype=_INT)
        if isinstance(expr, ast.FloatLiteral):
            return np.full(self.lanes, expr.value, dtype=_FLOAT)
        if isinstance(expr, ast.BoolLiteral):
            return np.full(self.lanes, 1 if expr.value else 0, dtype=_INT)
        if isinstance(expr, ast.Identifier):
            if expr.name in env:
                return env[expr.name]
            if expr.name in BUILTIN_CONSTANTS:
                return self._full(BUILTIN_CONSTANTS[expr.name])
            raise InterpreterError(f"undefined identifier {expr.name!r}")
        if isinstance(expr, ast.UnaryOp):
            return self._eval_unary(expr, env, flow, mask)
        if isinstance(expr, ast.BinaryOp):
            if expr.op == "&&":
                left = truthy(self.eval(expr.left, env, flow, mask))
                result = np.zeros(self.lanes, dtype=_INT)
                right_mask = mask & left
                if right_mask.any():
                    right = truthy(self.eval(expr.right, env, flow, right_mask))
                    result[right_mask & right] = 1
                return result
            if expr.op == "||":
                left = truthy(self.eval(expr.left, env, flow, mask))
                result = np.zeros(self.lanes, dtype=_INT)
                result[mask & left] = 1
                right_mask = mask & ~left
                if right_mask.any():
                    right = truthy(self.eval(expr.right, env, flow, right_mask))
                    result[right_mask & right] = 1
                return result
            left = self.eval(expr.left, env, flow, mask)
            right = self.eval(expr.right, env, flow, mask)
            return apply_binary(expr.op, left, right, mask)
        if isinstance(expr, ast.Assignment):
            return self._eval_assignment(expr, env, flow, mask)
        if isinstance(expr, ast.Ternary):
            cond = truthy(self.eval(expr.condition, env, flow, mask))
            true_mask = mask & cond
            false_mask = mask & ~cond
            parts = []
            if true_mask.any():
                parts.append((true_mask, self.eval(expr.if_true, env, flow, true_mask)))
            if false_mask.any():
                parts.append(
                    (false_mask, self.eval(expr.if_false, env, flow, false_mask))
                )
            return merge_parts(self.lanes, parts)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env, flow, mask)
        if isinstance(expr, ast.Index):
            container = self.eval_container(expr.base, env, flow, mask)
            index = np.asarray(
                self.eval(expr.index, env, flow, mask)
            ).astype(_INT)
            return container.loadm(index, mask)
        if isinstance(expr, ast.Cast):
            value = self.eval(expr.expr, env, flow, mask)
            if isinstance(expr.target_type, ScalarType) and expr.target_type.is_integer:
                return np.asarray(value).astype(_INT)
            if isinstance(expr.target_type, ScalarType) and expr.target_type.is_float:
                return np.asarray(value).astype(_FLOAT)
            return value
        raise InterpreterError(f"unsupported expression {type(expr).__name__}")

    def eval_container(self, expr: ast.Expr, env, flow: Flow, mask: np.ndarray):
        value = self.eval(expr, env, flow, mask)
        if isinstance(value, _CONTAINERS):
            return value
        raise InterpreterError(f"cannot index value of type {type(value).__name__}")

    def _eval_unary(self, expr: ast.UnaryOp, env, flow: Flow, mask: np.ndarray):
        if expr.op in ("++", "--"):
            delta = 1 if expr.op == "++" else -1
            old = self.eval(expr.operand, env, flow, mask)
            self._store_to(expr.operand, old + delta, env, flow, mask)
            return old if expr.postfix else old + delta
        operand = self.eval(expr.operand, env, flow, mask)
        if expr.op == "-":
            return -operand
        if expr.op == "+":
            return operand
        if expr.op == "!":
            return (~truthy(operand)).astype(_INT)
        if expr.op == "~":
            return ~np.asarray(operand).astype(_INT)
        raise InterpreterError(f"unsupported unary operator {expr.op!r}")

    def _eval_assignment(self, expr: ast.Assignment, env, flow: Flow, mask):
        value = self.eval(expr.value, env, flow, mask)
        if expr.op != "=":
            current = self.eval(expr.target, env, flow, mask)
            value = apply_binary(expr.op[:-1], current, value, mask)
        self._store_to(expr.target, value, env, flow, mask)
        return value

    def _store_to(self, target: ast.Expr, value, env, flow: Flow, mask) -> None:
        if isinstance(target, ast.Identifier):
            if target.name not in env:
                raise InterpreterError(
                    f"assignment to undefined variable {target.name!r}"
                )
            self._store_scalar(env, target.name, value, mask)
            return
        if isinstance(target, ast.Index):
            container = self.eval_container(target.base, env, flow, mask)
            index = np.asarray(self.eval(target.index, env, flow, mask)).astype(_INT)
            container.storem(index, np.asarray(value), mask)
            return
        raise InterpreterError("assignment target must be a variable or array element")

    def _store_scalar(self, env, name: str, value, mask: np.ndarray) -> None:
        existing = env[name]
        value = np.asarray(value)
        if not isinstance(existing, np.ndarray):
            raise InterpreterError(f"cannot assign to {name!r}")
        if existing.dtype.kind in "iu" and value.dtype.kind not in "iu":
            # Follow C (and the scalar interpreter): assigning a float to an
            # integer variable truncates toward zero.
            value = value.astype(_INT)
        if mask.all():
            env[name] = value.copy() if value.base is not None else value
            return
        env[name] = masked_assign(existing, value, mask)

    # ------------------------------------------------------------------
    def _eval_call(self, call: ast.Call, env, flow: Flow, mask: np.ndarray):
        name = call.name
        if name in CONTEXT_BUILTINS:
            dim = 0
            if call.args:
                dim_arr = np.asarray(self.eval(call.args[0], env, flow, mask))
                dim = int(dim_arr[np.argmax(mask)])
            return self._context_query(name, dim)
        if name in SYNC_BUILTINS:
            raise InterpreterError(
                "barrier()/mem_fence() may only appear as standalone statements"
            )
        if is_builtin(name):
            args = [self.eval(arg, env, flow, mask) for arg in call.args]
            vector = VECTOR_BUILTINS.get(name)
            if vector is not None:
                return vector(mask, *args)
            return VectorFallback(name)(mask, *args)
        if name in self.kernel.functions:
            return self._call_user_function(
                self.kernel.functions[name], call, env, flow, mask
            )
        raise InterpreterError(f"call to unknown function {name!r}")

    def _context_query(self, name: str, dim: int) -> np.ndarray:
        if name == "get_global_id":
            return self.gid[dim]
        if name == "get_local_id":
            return self.lid[dim]
        if name == "get_group_id":
            return self.grp[dim]
        if name == "get_global_size":
            return np.full(self.lanes, self.ndrange.global_size[dim], dtype=_INT)
        if name == "get_local_size":
            return np.full(self.lanes, self.ndrange.local_size[dim], dtype=_INT)
        if name == "get_num_groups":
            return np.full(self.lanes, self.ndrange.num_groups[dim], dtype=_INT)
        raise InterpreterError(f"unknown context built-in {name!r}")  # pragma: no cover

    def _call_user_function(
        self, func: ast.FunctionDef, call: ast.Call, env, flow: Flow, mask
    ):
        if len(call.args) != len(func.params):
            raise InterpreterError(
                f"function {func.name!r} expects {len(func.params)} arguments, "
                f"got {len(call.args)}"
            )
        callee_env: dict[str, object] = {}
        for name, value in self.kernel.constants.items():
            if isinstance(value, _ConstantArray):
                callee_env[name] = ConstantView(name, value.values)
            else:
                callee_env[name] = self._full(value)
        for param, arg in zip(func.params, call.args):
            value = self.eval(arg, env, flow, mask)
            # Pointer/array arguments pass their container through untouched
            # (np.asarray would wrap it into a useless 0-d object array).
            if not isinstance(value, _CONTAINERS):
                value = np.asarray(value)
            callee_env[param.name] = value
        callee_flow = Flow(self.lanes, in_function=True)
        self.exec_block(func.body, callee_env, callee_flow, mask)
        if callee_flow.return_value is None:
            return np.zeros(self.lanes, dtype=_INT)
        return callee_flow.return_value


class _BatchedGroupState(_GroupState):
    """Execution state of one work group of ``batch`` stacked launches.

    The lane dimension is the concatenation of the group's work-items for
    every request: request ``r`` occupies lanes
    ``[r * group_size, (r + 1) * group_size)``, with identical gid/lid
    index arrays per request (the launches share one NDRange).  Global
    buffers must be :class:`~repro.clsim.memory.SegmentedBuffer` stacks and
    local tiles are allocated per request, so lanes of different requests
    can never observe each other's data (the segmented views are the
    batching transform, :mod:`repro.kernellang.passes.batching`).
    """

    def __init__(self, kernel, ctx, ndrange, work_items, batch: int) -> None:
        if batch <= 0:
            raise InterpreterError(f"batch must be positive, got {batch}")
        super().__init__(kernel, ctx, ndrange, list(work_items) * batch)
        self.batch = batch
        group_size = self.lanes // batch
        self.lane_request = lane_requests(batch, group_size)

    def _global_view(self, buffer: Buffer):
        return segmented_global_view(buffer, self.batch, self.lane_request)

    def _local_view(self, name: str, length: int):
        return SegLocalView(
            self.ctx.local, name, length, self.lane_request * length, self.batch
        )


# ---------------------------------------------------------------------------
# Kernel-level entry points
# ---------------------------------------------------------------------------
def vectorized_kernel(kernel: Kernel) -> VectorizedKernel:
    """Return (building and caching on first use) the vectorized form of a
    :class:`~repro.clsim.kernel.Kernel` that carries its kernellang AST."""
    cached = getattr(kernel, "_vectorized", None)
    if cached is not None:
        return cached
    program = getattr(kernel, "ast_program", None)
    if program is None:
        raise InterpreterError(
            f"kernel {kernel.name!r} carries no kernellang AST; only kernels "
            "compiled from kernellang source can run on the vectorized backend"
        )
    compiled = VectorizedKernel(program, getattr(kernel, "ast_kernel_name", None))
    kernel._vectorized = compiled
    return compiled
