"""Kernel objects for the functional executor.

A :class:`Kernel` wraps a Python callable that implements the per-work-item
body of an OpenCL-style kernel.  The callable receives a
:class:`KernelContext` (kernel arguments, local memory, private memory) and
a :class:`~repro.clsim.ndrange.WorkItemId`.  Work-group barriers are
expressed by writing the body as a *generator* that ``yield``s
:data:`BARRIER`; the executor advances all work-items of a group in
lock-step between barriers, which reproduces OpenCL barrier semantics.

Kernels can optionally carry a :class:`~repro.clsim.timing.KernelProfile`
factory so that launching them through a :class:`~repro.clsim.queue.CommandQueue`
also produces a timing estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from .errors import KernelArgumentError
from .memory import Buffer, LocalMemory, PrivateMemory
from .ndrange import NDRange, WorkItemId
from .timing import KernelProfile

#: Sentinel yielded by kernel bodies to indicate a work-group barrier.
BARRIER = "barrier"


@dataclass
class KernelContext:
    """Execution context shared by the work-items of one work group."""

    args: dict[str, object]
    local: LocalMemory
    ndrange: NDRange
    group_id: tuple[int, ...]
    private: dict[tuple[int, ...], PrivateMemory] = field(default_factory=dict)

    def arg(self, name: str):
        """Return the kernel argument bound to ``name``."""
        try:
            return self.args[name]
        except KeyError as exc:
            raise KernelArgumentError(f"kernel has no argument named {name!r}") from exc

    def buffer(self, name: str) -> Buffer:
        """Return the buffer argument bound to ``name``."""
        value = self.arg(name)
        if not isinstance(value, Buffer):
            raise KernelArgumentError(f"argument {name!r} is not a Buffer")
        return value

    def private_memory(self, work_item: WorkItemId) -> PrivateMemory:
        """Return (creating on first use) the private memory of a work-item."""
        key = work_item.local_id
        if key not in self.private:
            self.private[key] = PrivateMemory()
        return self.private[key]

    # Convenience accessors mirroring OpenCL built-ins -------------------
    def get_local_size(self, dim: int = 0) -> int:
        return self.ndrange.local_size[dim]

    def get_global_size(self, dim: int = 0) -> int:
        return self.ndrange.global_size[dim]

    def get_num_groups(self, dim: int = 0) -> int:
        return self.ndrange.num_groups[dim]


#: Type of a kernel body: ``body(ctx, work_item)``.  May be a plain function
#: or a generator function that yields :data:`BARRIER`.
KernelBody = Callable[[KernelContext, WorkItemId], object]


class Kernel:
    """A named kernel with an argument signature and a per-work-item body.

    ``ast_program``/``ast_kernel_name`` optionally carry the kernellang AST
    the kernel was compiled from; execution backends that re-lower the
    kernel (e.g. the vectorized backend) read them, the executor itself
    never does.
    """

    def __init__(
        self,
        name: str,
        body: KernelBody,
        arg_names: Sequence[str],
        profile_factory: Callable[[NDRange, Mapping[str, object]], KernelProfile] | None = None,
        ast_program: object | None = None,
        ast_kernel_name: str | None = None,
    ) -> None:
        self.name = name
        self.body = body
        self.arg_names = tuple(arg_names)
        self.profile_factory = profile_factory
        self.ast_program = ast_program
        self.ast_kernel_name = ast_kernel_name

    def bind_args(self, args: Mapping[str, object] | Sequence[object]) -> dict[str, object]:
        """Validate and normalise the arguments of a launch.

        ``args`` can be a mapping keyed by argument name or a positional
        sequence in signature order.
        """
        if isinstance(args, Mapping):
            missing = [name for name in self.arg_names if name not in args]
            if missing:
                raise KernelArgumentError(
                    f"kernel {self.name!r} is missing arguments: {missing}"
                )
            extra = [name for name in args if name not in self.arg_names]
            if extra:
                raise KernelArgumentError(
                    f"kernel {self.name!r} got unexpected arguments: {extra}"
                )
            return {name: args[name] for name in self.arg_names}
        values = list(args)
        if len(values) != len(self.arg_names):
            raise KernelArgumentError(
                f"kernel {self.name!r} expects {len(self.arg_names)} arguments, "
                f"got {len(values)}"
            )
        return dict(zip(self.arg_names, values))

    def profile(self, ndrange: NDRange, args: Mapping[str, object]) -> KernelProfile | None:
        """Build the timing profile for a launch, if a factory was supplied."""
        if self.profile_factory is None:
            return None
        return self.profile_factory(ndrange, args)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Kernel({self.name!r}, args={self.arg_names})"
