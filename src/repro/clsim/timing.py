"""Analytical kernel timing model.

The paper's speedups come from one mechanism: perforation reduces the
number of bytes a kernel moves across the global-memory interface, and the
reconstruction work it adds instead runs out of fast local memory.  The
timing model therefore estimates kernel runtime from a *traffic profile*:

* DRAM traffic, expressed as contiguous row segments per work group so that
  coalescing (transaction granularity) is modelled faithfully;
* cache traffic for repeated accesses to data already resident on-chip;
* local-memory (LDS) traffic;
* arithmetic work (ALU / special-function ops) per work-item;
* synchronisation (barriers) and occupancy limits from local-memory usage.

The model is a bandwidth/roofline model: kernel time is the launch overhead
plus the maximum of the compute time and the memory time (DRAM, cache and
LDS pipelines modelled separately), with a penalty when occupancy is too
low to hide DRAM latency.  Absolute times are approximate; *relative* times
between the accurate kernel, the perforated kernels and the Paraprox
baselines — which is what the paper's figures report — follow directly from
the traffic ratios.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace
from typing import Iterable

from .device import Device
from .errors import LocalMemoryExceededError
from .memory import transactions_for_row_segment
from .ndrange import NDRange

#: Fraction of peak DRAM bandwidth typically achievable by a well-coalesced
#: streaming kernel.  Keeps absolute numbers in a realistic range.
ACHIEVABLE_BANDWIDTH_FRACTION = 0.75

#: Relative cost of a special-function (transcendental) op vs. a MAD.
SFU_COST_FACTOR = 4.0

#: Cycles charged per work-group barrier (per wavefront).
BARRIER_CYCLES = 32.0

#: Occupancy (fraction of max resident wavefronts) needed to fully hide
#: DRAM latency.  Below this, DRAM time is inflated.
LATENCY_HIDING_OCCUPANCY = 0.25

#: Cost of a private-memory (register/scratch) access relative to an ALU op.
PRIVATE_ACCESS_OP_COST = 0.5

#: Fraction of the device's maximum resident wavefronts that realistically
#: contribute to hiding the latency of global load instructions (register
#: pressure and issue limits keep real kernels below the architectural
#: maximum).  The exposed-latency term this factor controls is what makes
#: kernels with many global loads per work-item (Sobel5: 25, Gaussian: 9)
#: profit so much from serving those loads out of local memory — the
#: effect behind the paper's 1.6x-3x speedups.
LATENCY_HIDING_WAVE_FRACTION = 0.6


class AccessPattern(str, enum.Enum):
    """How the work-items of a work group touch a global buffer."""

    #: Adjacent work-items read adjacent elements of the same row.
    ROW_CONTIGUOUS = "row-contiguous"
    #: Accesses stride through memory; each element needs its own transaction.
    STRIDED = "strided"
    #: All work-items of a group read the same element(s).
    BROADCAST = "broadcast"
    #: Effectively random accesses.
    SCATTER = "scatter"


@dataclass(frozen=True)
class GlobalTraffic:
    """DRAM traffic of one buffer access site, per work group.

    Attributes
    ----------
    buffer:
        Name of the buffer (for reporting).
    segments_per_group:
        Number of contiguous row segments each work group touches in DRAM.
    segment_elements:
        Elements per contiguous segment.
    element_bytes:
        Size of one element.
    pattern:
        Coalescing pattern of the access.
    is_store:
        Whether this is a write (stores and loads share bandwidth here).
    cached_accesses_per_group:
        Additional element accesses that hit in cache (data already fetched
        by this or a neighbouring work-item); they cost cache bandwidth,
        not DRAM bandwidth.
    """

    buffer: str
    segments_per_group: float
    segment_elements: float
    element_bytes: int = 4
    pattern: AccessPattern = AccessPattern.ROW_CONTIGUOUS
    is_store: bool = False
    cached_accesses_per_group: float = 0.0

    def elements_per_group(self) -> float:
        """Unique elements moved from/to DRAM per work group."""
        return self.segments_per_group * self.segment_elements

    def bytes_per_group(self) -> float:
        """Useful DRAM bytes per work group (excluding over-fetch)."""
        return self.elements_per_group() * self.element_bytes

    def transactions_per_group(self, transaction_bytes: int) -> float:
        """DRAM transactions per work group, including coalescing over-fetch."""
        if self.segments_per_group <= 0 or self.segment_elements <= 0:
            return 0.0
        if self.pattern is AccessPattern.BROADCAST:
            return 1.0
        if self.pattern in (AccessPattern.STRIDED, AccessPattern.SCATTER):
            # Every element lands in its own transaction.
            return self.segments_per_group * math.ceil(self.segment_elements)
        per_segment = transactions_for_row_segment(
            int(math.ceil(self.segment_elements)),
            self.element_bytes,
            transaction_bytes,
        )
        return self.segments_per_group * per_segment

    def fetched_bytes_per_group(self, transaction_bytes: int) -> float:
        """Bytes actually moved per work group (transactions x granularity)."""
        return self.transactions_per_group(transaction_bytes) * transaction_bytes

    def coalescing_efficiency(self, transaction_bytes: int) -> float:
        """Useful bytes / fetched bytes (1.0 = perfectly coalesced)."""
        fetched = self.fetched_bytes_per_group(transaction_bytes)
        if fetched <= 0:
            return 1.0
        return min(1.0, self.bytes_per_group() / fetched)


@dataclass(frozen=True)
class KernelProfile:
    """Per-launch cost profile of a kernel.

    All ``*_per_item`` quantities are averages over work-items; all
    ``*_per_group`` quantities are per work group.  Profiles are built
    either by hand (the NumPy-vectorised applications) or by the static
    traffic analysis in :mod:`repro.kernellang.analysis`.
    """

    name: str
    traffic: tuple[GlobalTraffic, ...] = ()
    flops_per_item: float = 0.0
    int_ops_per_item: float = 0.0
    sfu_ops_per_item: float = 0.0
    private_accesses_per_item: float = 0.0
    local_reads_per_item: float = 0.0
    local_writes_per_item: float = 0.0
    barriers_per_group: float = 0.0
    local_mem_bytes_per_group: float = 0.0
    divergence_factor: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "traffic", tuple(self.traffic))
        if self.divergence_factor < 1.0:
            raise ValueError("divergence_factor must be >= 1.0")

    def with_traffic(self, traffic: Iterable[GlobalTraffic]) -> "KernelProfile":
        """Return a copy of the profile with a different traffic list."""
        return replace(self, traffic=tuple(traffic))

    def total_ops_per_item(self) -> float:
        """Aggregate ALU work per item (flops + int ops + private accesses)."""
        return (
            self.flops_per_item
            + self.int_ops_per_item
            + self.private_accesses_per_item * PRIVATE_ACCESS_OP_COST
        )


@dataclass(frozen=True)
class TimingBreakdown:
    """Estimated execution time of one kernel launch, with its components."""

    kernel_name: str
    device_name: str
    total_time_s: float
    compute_time_s: float
    dram_time_s: float
    cache_time_s: float
    local_time_s: float
    latency_time_s: float
    barrier_time_s: float
    launch_overhead_s: float
    dram_bytes: float
    dram_transactions: float
    useful_dram_bytes: float
    local_bytes: float
    global_load_instructions: float
    occupancy: float
    coalescing_efficiency: float

    @property
    def bound(self) -> str:
        """Which resource dominates: 'compute', 'dram', 'latency' or 'local'."""
        components = {
            "compute": self.compute_time_s,
            "dram": self.dram_time_s,
            "latency": self.latency_time_s,
            "local": self.local_time_s + self.cache_time_s,
        }
        return max(components, key=components.get)

    def speedup_over(self, other: "TimingBreakdown") -> float:
        """Speedup of *this* launch relative to ``other`` (>1 means faster)."""
        if self.total_time_s <= 0:
            raise ValueError("total_time_s must be positive to compute a speedup")
        return other.total_time_s / self.total_time_s

    def describe(self) -> str:
        """Multi-line human-readable description."""
        return "\n".join(
            [
                f"Kernel {self.kernel_name} on {self.device_name}",
                f"  total time      : {self.total_time_s * 1e3:.3f} ms ({self.bound}-bound)",
                f"  compute         : {self.compute_time_s * 1e3:.3f} ms",
                f"  DRAM            : {self.dram_time_s * 1e3:.3f} ms"
                f" ({self.dram_bytes / 1e6:.2f} MB, eff {self.coalescing_efficiency:.2f})",
                f"  load latency    : {self.latency_time_s * 1e3:.3f} ms"
                f" ({self.global_load_instructions / 1e6:.2f} M loads)",
                f"  cache           : {self.cache_time_s * 1e3:.3f} ms",
                f"  local memory    : {self.local_time_s * 1e3:.3f} ms",
                f"  barriers        : {self.barrier_time_s * 1e3:.3f} ms",
                f"  occupancy       : {self.occupancy:.2f}",
            ]
        )


class TimingModel:
    """Analytical timing model for kernels launched on a :class:`Device`."""

    def __init__(self, device: Device) -> None:
        self.device = device

    # ------------------------------------------------------------------
    def occupancy(self, profile: KernelProfile, ndrange: NDRange) -> float:
        """Fraction of the device's maximum resident wavefronts achieved.

        Occupancy is limited by local-memory usage per work group (the main
        limiter relevant to the paper's kernels) and by the number of work
        groups available to fill the device.
        """
        device = self.device
        waves_per_group = ndrange.waves_per_group(device)
        if profile.local_mem_bytes_per_group > device.local_mem_per_cu:
            raise LocalMemoryExceededError(
                f"kernel {profile.name!r} needs {profile.local_mem_bytes_per_group:.0f} B of "
                f"local memory per group but the device has {device.local_mem_per_cu} B per CU"
            )
        if profile.local_mem_bytes_per_group > 0:
            groups_per_cu = int(
                device.local_mem_per_cu // profile.local_mem_bytes_per_group
            )
            groups_per_cu = max(1, groups_per_cu)
        else:
            groups_per_cu = device.max_waves_per_cu
        waves_per_cu = min(device.max_waves_per_cu, groups_per_cu * waves_per_group)
        # A grid with too few groups cannot fill the device either.
        total_waves = ndrange.total_groups * waves_per_group
        waves_per_cu = min(waves_per_cu, max(1, total_waves // device.compute_units))
        return min(1.0, waves_per_cu / device.max_waves_per_cu)

    # ------------------------------------------------------------------
    def estimate(self, profile: KernelProfile, ndrange: NDRange) -> TimingBreakdown:
        """Estimate the runtime of one launch of ``profile`` over ``ndrange``."""
        device = self.device
        ndrange.validate_for_device(device)

        groups = ndrange.total_groups
        items = ndrange.total_work_items

        # --- DRAM traffic -------------------------------------------------
        dram_transactions = 0.0
        useful_bytes = 0.0
        cached_accesses = 0.0
        load_elements_per_group = 0.0
        for traffic in profile.traffic:
            dram_transactions += traffic.transactions_per_group(device.transaction_bytes)
            useful_bytes += traffic.bytes_per_group()
            cached_accesses += traffic.cached_accesses_per_group * traffic.element_bytes
            if not traffic.is_store:
                load_elements_per_group += (
                    traffic.elements_per_group() + traffic.cached_accesses_per_group
                )
        dram_transactions *= groups
        useful_bytes *= groups
        cached_bytes = cached_accesses * groups
        dram_bytes = dram_transactions * device.transaction_bytes
        achievable_bw = device.global_bandwidth_bytes_per_s * ACHIEVABLE_BANDWIDTH_FRACTION
        dram_time = dram_bytes / achievable_bw if dram_bytes else 0.0
        coalescing = useful_bytes / dram_bytes if dram_bytes else 1.0

        # --- occupancy & latency hiding ----------------------------------
        occ = self.occupancy(profile, ndrange)
        if dram_time > 0 and occ < LATENCY_HIDING_OCCUPANCY:
            dram_time *= LATENCY_HIDING_OCCUPANCY / max(occ, 1e-6)

        # --- exposed global-load latency ----------------------------------
        # Every global load instruction pays the DRAM latency; resident
        # wavefronts hide part of it.  Kernels that read many elements per
        # work-item from global memory (stencils without local staging) are
        # bound by this term, which is precisely the cost local-memory
        # prefetching and perforation remove.
        global_load_instructions = load_elements_per_group * groups
        hiding_lanes = (
            device.compute_units
            * device.wavefront_size
            * max(1.0, device.max_waves_per_cu * LATENCY_HIDING_WAVE_FRACTION * occ)
        )
        latency_time = (
            global_load_instructions
            * device.global_latency_cycles
            / hiding_lanes
            * device.cycle_time_s
            if global_load_instructions
            else 0.0
        )

        # --- on-chip memory ------------------------------------------------
        cache_bw = device.local_bandwidth_bytes_per_s
        cache_time = cached_bytes / cache_bw if cached_bytes else 0.0
        local_bytes = (
            (profile.local_reads_per_item + profile.local_writes_per_item) * 4.0 * items
        )
        local_time = local_bytes / device.local_bandwidth_bytes_per_s if local_bytes else 0.0

        # --- compute -------------------------------------------------------
        alu_ops = profile.total_ops_per_item() * items * profile.divergence_factor
        sfu_ops = profile.sfu_ops_per_item * items * profile.divergence_factor
        compute_time = alu_ops / device.peak_flops if alu_ops else 0.0
        compute_time += (sfu_ops * SFU_COST_FACTOR) / device.peak_flops if sfu_ops else 0.0

        # --- synchronisation -----------------------------------------------
        # Barriers cost issue slots in every wavefront of the group; groups
        # resident on other compute units (and other wavefronts of the same
        # CU) keep executing, so the cost is spread over the device's
        # resident parallelism rather than serialised per compute unit.
        waves_per_group = ndrange.waves_per_group(device)
        barrier_cycles = (
            profile.barriers_per_group * groups * waves_per_group * BARRIER_CYCLES
        )
        resident_waves = device.compute_units * max(1.0, device.max_waves_per_cu * occ)
        barrier_time = (
            barrier_cycles / resident_waves * device.cycle_time_s
            if barrier_cycles
            else 0.0
        )

        launch = device.kernel_launch_overhead_us * 1e-6
        onchip_time = cache_time + local_time
        total = (
            launch
            + max(compute_time, dram_time, onchip_time, latency_time)
            + barrier_time
        )

        return TimingBreakdown(
            kernel_name=profile.name,
            device_name=device.name,
            total_time_s=total,
            compute_time_s=compute_time,
            dram_time_s=dram_time,
            cache_time_s=cache_time,
            local_time_s=local_time,
            latency_time_s=latency_time,
            barrier_time_s=barrier_time,
            launch_overhead_s=launch,
            dram_bytes=dram_bytes,
            dram_transactions=dram_transactions,
            useful_dram_bytes=useful_bytes,
            local_bytes=local_bytes,
            global_load_instructions=global_load_instructions,
            occupancy=occ,
            coalescing_efficiency=coalescing,
        )

    # ------------------------------------------------------------------
    def compare(
        self, baseline: tuple[KernelProfile, NDRange], candidate: tuple[KernelProfile, NDRange]
    ) -> float:
        """Speedup of ``candidate`` over ``baseline`` (>1 means faster)."""
        base_time = self.estimate(*baseline).total_time_s
        cand_time = self.estimate(*candidate).total_time_s
        return base_time / cand_time


def tile_traffic(
    buffer: str,
    tile_x: int,
    tile_y: int,
    halo: int = 0,
    element_bytes: int = 4,
    rows_loaded_fraction: float = 1.0,
    include_halo: bool = True,
    is_store: bool = False,
    cached_accesses_per_group: float = 0.0,
) -> GlobalTraffic:
    """Traffic of a 2D work-group tile load/store.

    A work group covering a ``tile_x`` x ``tile_y`` output region that
    stages its input in local memory loads a ``(tile_x + 2*halo) x
    (tile_y + 2*halo)`` region from DRAM (``include_halo=True``) or just
    the core tile (``include_halo=False`` — the paper's stencil perforation
    scheme).  ``rows_loaded_fraction`` models row perforation: only that
    fraction of the tile's rows is fetched.

    Each fetched row is one contiguous segment, so the x-extent of the work
    group determines coalescing efficiency — exactly the effect Figure 9 of
    the paper studies.
    """
    width = tile_x + (2 * halo if include_halo else 0)
    height = tile_y + (2 * halo if include_halo else 0)
    rows = height * rows_loaded_fraction
    return GlobalTraffic(
        buffer=buffer,
        segments_per_group=rows,
        segment_elements=width,
        element_bytes=element_bytes,
        pattern=AccessPattern.ROW_CONTIGUOUS,
        is_store=is_store,
        cached_accesses_per_group=cached_accesses_per_group,
    )


def per_item_traffic(
    buffer: str,
    tile_x: int,
    tile_y: int,
    elements_per_item: float,
    halo: int = 0,
    element_bytes: int = 4,
    is_store: bool = False,
) -> GlobalTraffic:
    """Traffic of a kernel that reads ``elements_per_item`` values per
    work-item directly from global memory (no local staging).

    The unique DRAM footprint per group is the tile plus its halo (served
    once thanks to the cache); the remaining accesses hit in cache.
    """
    width = tile_x + 2 * halo
    height = tile_y + 2 * halo
    unique = width * height
    total_accesses = elements_per_item * tile_x * tile_y
    cached = max(0.0, total_accesses - unique)
    return GlobalTraffic(
        buffer=buffer,
        segments_per_group=height,
        segment_elements=width,
        element_bytes=element_bytes,
        pattern=AccessPattern.ROW_CONTIGUOUS,
        is_store=is_store,
        cached_accesses_per_group=cached,
    )
