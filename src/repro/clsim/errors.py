"""Exception hierarchy for the OpenCL-like simulator.

The simulator mirrors the error conditions a real OpenCL runtime would
report (invalid work-group sizes, out-of-bounds buffer accesses, exceeding
the local-memory budget, ...) so that application code and the perforation
passes can be tested against realistic failure modes.
"""

from __future__ import annotations


class ClSimError(Exception):
    """Base class for all simulator errors."""


class InvalidDeviceError(ClSimError):
    """Raised when a device profile is malformed or unknown."""


class InvalidBackendError(ClSimError):
    """Raised when an execution backend is malformed or unknown."""


class InvalidNDRangeError(ClSimError):
    """Raised for malformed NDRange / work-group configurations."""


class InvalidWorkGroupSizeError(InvalidNDRangeError):
    """Raised when a work-group size does not divide the global size or
    exceeds the device limits."""


class BufferError(ClSimError):
    """Base class for buffer-related errors."""


class BufferOutOfBoundsError(BufferError):
    """Raised when a kernel accesses a buffer outside its allocated range."""


class BufferSizeError(BufferError):
    """Raised when a buffer is created with an invalid size."""


class LocalMemoryExceededError(ClSimError):
    """Raised when a kernel requests more local memory than the device has
    per compute unit."""


class KernelArgumentError(ClSimError):
    """Raised when kernel arguments do not match the kernel signature."""


class KernelExecutionError(ClSimError):
    """Raised when a kernel body fails during functional execution."""


class BarrierDivergenceError(KernelExecutionError):
    """Raised when work-items of the same work group reach different numbers
    of barriers (undefined behaviour on real hardware)."""


class ProfilingError(ClSimError):
    """Raised when profiling information is requested but unavailable."""
