"""Command queue: ties together functional execution and timing estimation.

A :class:`CommandQueue` mimics the OpenCL host API surface used by the
applications in this project: create buffers, enqueue kernels over an
NDRange, and read profiling information back from the returned
:class:`Event`.  "Profiling" times come from the analytical
:class:`~repro.clsim.timing.TimingModel` rather than a wall clock, so the
reported runtimes are the modelled GPU times the experiments compare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .device import Device, firepro_w5100
from .errors import ProfilingError
from .executor import ExecutionStats, Executor
from .kernel import Kernel
from .memory import Buffer
from .ndrange import NDRange
from .timing import KernelProfile, TimingBreakdown, TimingModel


@dataclass
class Event:
    """Result of an enqueued kernel launch."""

    kernel_name: str
    ndrange: NDRange
    stats: ExecutionStats | None = None
    timing: TimingBreakdown | None = None

    @property
    def duration_s(self) -> float:
        """Modelled execution time of the launch in seconds."""
        if self.timing is None:
            raise ProfilingError(
                f"launch of {self.kernel_name!r} has no timing information; "
                "pass a KernelProfile (or a profile_factory on the kernel)"
            )
        return self.timing.total_time_s

    @property
    def duration_ms(self) -> float:
        """Modelled execution time in milliseconds."""
        return self.duration_s * 1e3


class CommandQueue:
    """An in-order command queue on a simulated device."""

    def __init__(self, device: Device | None = None, profiling: bool = True) -> None:
        self.device = device or firepro_w5100()
        self.profiling = profiling
        self.executor = Executor(self.device)
        self.timing_model = TimingModel(self.device)
        self.events: list[Event] = []

    # ------------------------------------------------------------------
    def create_buffer(self, array: np.ndarray, name: str = "buffer") -> Buffer:
        """Create a device buffer initialised from ``array``."""
        return Buffer(array, name=name)

    def create_output_like(self, buffer: Buffer, name: str = "output") -> Buffer:
        """Create a zero-initialised buffer shaped like ``buffer``."""
        return Buffer.empty_like(buffer, name=name)

    # ------------------------------------------------------------------
    def enqueue(
        self,
        kernel: Kernel,
        ndrange: NDRange,
        args: Mapping[str, object] | Sequence[object],
        profile: KernelProfile | None = None,
        execute: bool = True,
    ) -> Event:
        """Enqueue a kernel launch.

        Parameters
        ----------
        kernel, ndrange, args:
            What to run.  ``args`` may be a mapping or a positional sequence.
        profile:
            Optional explicit timing profile; when omitted the kernel's own
            ``profile_factory`` is consulted.
        execute:
            When ``False`` the kernel is only *timed*, not functionally
            executed (used by the large parameter sweeps where functional
            output is produced by the vectorised application code instead).
        """
        stats = None
        if execute:
            stats = self.executor.run(kernel, ndrange, args)

        timing = None
        if self.profiling:
            bound = kernel.bind_args(args)
            prof = profile if profile is not None else kernel.profile(ndrange, bound)
            if prof is not None:
                timing = self.timing_model.estimate(prof, ndrange)

        event = Event(kernel_name=kernel.name, ndrange=ndrange, stats=stats, timing=timing)
        self.events.append(event)
        return event

    def estimate(self, profile: KernelProfile, ndrange: NDRange) -> TimingBreakdown:
        """Time a profile without running anything (pure analytical path)."""
        return self.timing_model.estimate(profile, ndrange)

    # ------------------------------------------------------------------
    def total_time_s(self) -> float:
        """Sum of the modelled durations of all profiled launches so far."""
        return sum(e.timing.total_time_s for e in self.events if e.timing is not None)

    def finish(self) -> None:
        """No-op (execution is synchronous); kept for OpenCL API parity."""
