"""Pluggable execution backends for the functional executor.

The :class:`~repro.clsim.executor.Executor` delegates the execution of each
work group to an :class:`ExecutionBackend`:

* the ``"interpreter"`` backend is the reference implementation — every
  work-item runs as a Python generator, all work-items of a group advance
  in lock-step between barriers (this is the seed behaviour, unchanged);
* the ``"vectorized"`` backend executes a whole work group as batched NumPy
  operations lowered from the kernellang AST
  (:mod:`repro.kernellang.vectorize`) — orders of magnitude faster, with
  bit-identical outputs and identical
  :class:`~repro.clsim.executor.ExecutionStats` counters, which the
  cross-backend conformance suite (``tests/clsim/test_backend_parity.py``)
  pins down;
* the ``"codegen"`` backend (:mod:`repro.kernellang.codegen`) lowers each
  (kernel source, work-group shape, batched?) triple once to flat
  specialized Python/NumPy source, compiled via ``compile()``/``exec()``
  and cached process-wide and on disk (:mod:`repro.api.artifacts`) — the
  same conformance contract, ~2-3x faster again on repeated launches.

Both compiled backends are consumers of the shared pass pipeline in
:mod:`repro.kernellang.passes` (uniformity analysis, mask insertion,
memory views, batching transform — see ``docs/ir.md``): the vectorized
backend runs the passes dynamically per work group, the codegen backend
prints them into the specialized source, which is why their outputs can
only agree bit for bit.

Backends are resolvable by name through a string-keyed registry, mirroring
the application/device/scheme registries of the session API:

.. code-block:: python

    from repro.clsim import Executor
    from repro.api import PerforationEngine

    Executor(backend="vectorized")
    PerforationEngine(backend="vectorized")
"""

from __future__ import annotations

import abc
import inspect

from ..api.registry import Registry
from .errors import (
    BarrierDivergenceError,
    InvalidBackendError,
    KernelExecutionError,
)
from .kernel import BARRIER, Kernel, KernelContext
from .ndrange import NDRange

#: Name of the backend used when none is selected explicitly.
DEFAULT_BACKEND = "interpreter"


class ExecutionBackend(abc.ABC):
    """Strategy that executes one work group of a kernel launch."""

    #: Registry name of the backend (informational).
    name: str = "backend"

    #: Whether :meth:`run_group_batch` executes the same work group of
    #: several compatible launches as one stacked group.  Backends without
    #: batching support still serve batched requests — the executor falls
    #: back to running the launches one by one.
    supports_batching: bool = False

    @abc.abstractmethod
    def run_group(
        self,
        kernel: Kernel,
        ctx: KernelContext,
        ndrange: NDRange,
        group_id: tuple[int, ...],
    ) -> int:
        """Run all work-items of one group; returns the number of barriers."""

    def run_group_batch(
        self,
        kernel: Kernel,
        ctx: KernelContext,
        ndrange: NDRange,
        group_id: tuple[int, ...],
        batch: int,
    ) -> int:
        """Run one work group of ``batch`` stacked compatible launches.

        ``ctx`` binds every pointer argument to a
        :class:`~repro.clsim.memory.SegmentedBuffer` with ``batch``
        segments.  Returns the *summed* barrier count (``batch`` times the
        per-launch barriers), so aggregated
        :class:`~repro.clsim.executor.ExecutionStats` match the sum of the
        individual launches.  Only called when :attr:`supports_batching`.
        """
        raise KernelExecutionError(
            f"execution backend {self.name!r} does not support batched launches"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class InterpreterBackend(ExecutionBackend):
    """Reference backend: per-work-item generators advanced in lock-step."""

    name = "interpreter"

    def run_group(self, kernel, ctx, ndrange, group_id) -> int:
        work_items = list(ndrange.work_items_in_group(group_id))
        if not inspect.isgeneratorfunction(kernel.body):
            for wi in work_items:
                try:
                    kernel.body(ctx, wi)
                except KernelExecutionError:
                    raise
                except Exception as exc:  # pragma: no cover - defensive
                    raise KernelExecutionError(
                        f"kernel {kernel.name!r} failed for work-item {wi.global_id}: {exc}"
                    ) from exc
            return 0

        generators = []
        for wi in work_items:
            try:
                generators.append((wi, kernel.body(ctx, wi)))
            except Exception as exc:  # pragma: no cover - defensive
                raise KernelExecutionError(
                    f"kernel {kernel.name!r} failed to start for work-item "
                    f"{wi.global_id}: {exc}"
                ) from exc

        barriers = 0
        active = generators
        while active:
            still_running = []
            finished = []
            for wi, gen in active:
                try:
                    value = next(gen)
                except StopIteration:
                    finished.append((wi, gen))
                    continue
                except Exception as exc:
                    raise KernelExecutionError(
                        f"kernel {kernel.name!r} failed for work-item {wi.global_id}: {exc}"
                    ) from exc
                if value is not BARRIER and value != BARRIER:
                    raise KernelExecutionError(
                        f"kernel {kernel.name!r} yielded unexpected value {value!r}; "
                        f"kernels may only yield BARRIER"
                    )
                still_running.append((wi, gen))
            if still_running and finished:
                raise BarrierDivergenceError(
                    f"kernel {kernel.name!r}: work-items of group {group_id} reached "
                    f"different numbers of barriers"
                )
            if still_running:
                barriers += 1
            active = still_running
        return barriers


class VectorizedBackend(ExecutionBackend):
    """Batched-NumPy backend for kernels compiled from kernellang source.

    Kernels built directly from Python bodies carry no AST to lower, so they
    raise :class:`KernelExecutionError`; run those on the interpreter
    backend instead.
    """

    name = "vectorized"
    supports_batching = True

    def _compiled(self, kernel):
        # Imported lazily: kernellang itself imports repro.clsim.
        from ..kernellang.vectorize import vectorized_kernel

        if getattr(kernel, "ast_program", None) is None:
            raise KernelExecutionError(
                f"kernel {kernel.name!r} carries no kernellang AST; the "
                f"vectorized backend only runs kernels compiled from "
                f"kernellang source (use the 'interpreter' backend)"
            )
        return vectorized_kernel(kernel)

    def run_group(self, kernel, ctx, ndrange, group_id) -> int:
        from ..kernellang.errors import KernelLangError

        compiled = self._compiled(kernel)
        try:
            return compiled.run_group(ctx, ndrange, group_id)
        except KernelExecutionError:  # includes BarrierDivergenceError
            raise
        except KernelLangError as exc:
            raise KernelExecutionError(
                f"kernel {kernel.name!r} failed for group {group_id}: {exc}"
            ) from exc

    def run_group_batch(self, kernel, ctx, ndrange, group_id, batch) -> int:
        from ..kernellang.errors import KernelLangError

        compiled = self._compiled(kernel)
        try:
            return compiled.run_group_batch(ctx, ndrange, group_id, batch)
        except KernelExecutionError:
            raise
        except KernelLangError as exc:
            raise KernelExecutionError(
                f"kernel {kernel.name!r} failed for batched group {group_id}: {exc}"
            ) from exc


class CodegenBackend(ExecutionBackend):
    """Compiled backend: kernellang ASTs lowered to specialized NumPy source.

    Each (kernel source, work-group shape, batched?) triple is lowered
    *once* to flat Python source (:mod:`repro.kernellang.codegen`), compiled
    with ``compile()``/``exec()``, memoized process-wide and persisted in
    the on-disk artifact cache (:mod:`repro.api.artifacts`) — repeated
    sweeps and serve sessions skip lowering entirely.  Outputs and
    :class:`~repro.clsim.executor.ExecutionStats` counters are bit-identical
    to the interpreter backend (same conformance contract as the vectorized
    backend, pinned by ``tests/clsim/test_backend_parity.py``).

    Programs the lowering cannot specialize fall back to the vectorized
    backend transparently (the lowering fails *before* any lane has run),
    so ``codegen`` is a strict drop-in for ``vectorized``.  Kernels built
    from hand-written Python bodies carry no AST and are rejected, exactly
    like the vectorized backend.
    """

    name = "codegen"
    supports_batching = True

    def _compiled(self, kernel):
        # Imported lazily: kernellang itself imports repro.clsim.
        from ..kernellang.codegen import codegen_kernel

        if getattr(kernel, "ast_program", None) is None:
            raise KernelExecutionError(
                f"kernel {kernel.name!r} carries no kernellang AST; the "
                f"codegen backend only runs kernels compiled from "
                f"kernellang source (use the 'interpreter' backend)"
            )
        return codegen_kernel(kernel)

    def _fallback(self):
        # Built lazily and kept: the vectorized backend object is stateless.
        backend = getattr(self, "_vectorized", None)
        if backend is None:
            backend = self._vectorized = VectorizedBackend()
        return backend

    def run_group(self, kernel, ctx, ndrange, group_id) -> int:
        from ..kernellang.codegen import LoweringError
        from ..kernellang.errors import KernelLangError

        compiled = self._compiled(kernel)
        try:
            return compiled.run_group(ctx, ndrange, group_id)
        except LoweringError:
            return self._fallback().run_group(kernel, ctx, ndrange, group_id)
        except KernelExecutionError:  # includes BarrierDivergenceError
            raise
        except KernelLangError as exc:
            raise KernelExecutionError(
                f"kernel {kernel.name!r} failed for group {group_id}: {exc}"
            ) from exc
        except Exception as exc:  # pragma: no cover - defensive
            # Keep the executor's error contract even if generated code
            # faults in an unforeseen way (mirrors InterpreterBackend).
            raise KernelExecutionError(
                f"kernel {kernel.name!r} failed for group {group_id}: {exc}"
            ) from exc

    def run_group_batch(self, kernel, ctx, ndrange, group_id, batch) -> int:
        from ..kernellang.codegen import LoweringError
        from ..kernellang.errors import KernelLangError

        compiled = self._compiled(kernel)
        try:
            return compiled.run_group_batch(ctx, ndrange, group_id, batch)
        except LoweringError:
            return self._fallback().run_group_batch(
                kernel, ctx, ndrange, group_id, batch
            )
        except KernelExecutionError:
            raise
        except KernelLangError as exc:
            raise KernelExecutionError(
                f"kernel {kernel.name!r} failed for batched group {group_id}: {exc}"
            ) from exc
        except Exception as exc:  # pragma: no cover - defensive
            raise KernelExecutionError(
                f"kernel {kernel.name!r} failed for batched group {group_id}: {exc}"
            ) from exc


#: Registry of execution-backend factories; new backends can be added with
#: :func:`register_backend` and are then resolvable by every executor and
#: engine: ``Executor(backend="my-backend")``.
EXECUTION_BACKENDS: Registry = Registry("execution backend", error=InvalidBackendError)

EXECUTION_BACKENDS.register("interpreter", InterpreterBackend)
EXECUTION_BACKENDS.register("vectorized", VectorizedBackend)
EXECUTION_BACKENDS.register("codegen", CodegenBackend)


def register_backend(name: str, factory=None, *, overwrite: bool = False):
    """Register an execution-backend class/factory under ``name``.

    Usable directly (``register_backend("mine", MyBackend)``) or as a
    decorator (``@register_backend("mine")``).
    """
    return EXECUTION_BACKENDS.register(name, factory, overwrite=overwrite)


def available_backends() -> list[str]:
    """Names of the registered execution backends."""
    return EXECUTION_BACKENDS.names()


def get_backend(name: str = DEFAULT_BACKEND) -> ExecutionBackend:
    """Look up a registered backend by name and instantiate it.

    Raises
    ------
    InvalidBackendError
        If ``name`` is not a known backend.
    """
    entry = EXECUTION_BACKENDS.get(name)
    backend = entry() if isinstance(entry, type) or callable(entry) else entry
    if not isinstance(backend, ExecutionBackend):
        raise InvalidBackendError(
            f"execution backend {name!r} resolved to {backend!r}, "
            f"which is not an ExecutionBackend"
        )
    return backend


def resolve_backend(backend=None) -> ExecutionBackend:
    """Normalise a backend selection (name, instance or ``None``)."""
    if backend is None:
        return get_backend(DEFAULT_BACKEND)
    if isinstance(backend, ExecutionBackend):
        return backend
    if isinstance(backend, str):
        return get_backend(backend)
    raise InvalidBackendError(
        f"backend must be a registered name or an ExecutionBackend, got {backend!r}"
    )
