"""NDRange and work-group index arithmetic.

OpenCL launches a kernel over an *NDRange*: a 1-, 2- or 3-dimensional grid
of work-items, partitioned into equally sized work groups.  This module
implements the index math (global id, local id, group id, group count) that
both the functional executor and the timing model rely on.

Conventions follow OpenCL: dimension 0 is the fastest-varying ("x")
dimension; for image kernels in this project dimension 0 indexes columns
and dimension 1 indexes rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from .device import Device
from .errors import InvalidNDRangeError, InvalidWorkGroupSizeError


def _normalize(shape: Sequence[int], what: str) -> tuple[int, ...]:
    dims = tuple(int(v) for v in shape)
    if not 1 <= len(dims) <= 3:
        raise InvalidNDRangeError(f"{what} must have 1-3 dimensions, got {len(dims)}")
    if any(d <= 0 for d in dims):
        raise InvalidNDRangeError(f"{what} dimensions must be positive, got {dims}")
    return dims


@dataclass(frozen=True)
class WorkItemId:
    """Identifies a single work-item inside an NDRange.

    Attributes
    ----------
    global_id:
        Position in the full NDRange, one entry per dimension.
    local_id:
        Position within the work group.
    group_id:
        Index of the work group within the grid of groups.
    """

    global_id: tuple[int, ...]
    local_id: tuple[int, ...]
    group_id: tuple[int, ...]

    def gid(self, dim: int = 0) -> int:
        """OpenCL ``get_global_id(dim)``."""
        return self.global_id[dim]

    def lid(self, dim: int = 0) -> int:
        """OpenCL ``get_local_id(dim)``."""
        return self.local_id[dim]

    def grp(self, dim: int = 0) -> int:
        """OpenCL ``get_group_id(dim)``."""
        return self.group_id[dim]


@dataclass(frozen=True)
class NDRange:
    """A kernel launch configuration: global size plus work-group (local) size.

    The local size must evenly divide the global size in every dimension,
    mirroring OpenCL 1.2 semantics (no remainder groups).
    """

    global_size: tuple[int, ...]
    local_size: tuple[int, ...]

    def __init__(self, global_size: Sequence[int], local_size: Sequence[int]) -> None:
        gsz = _normalize(global_size, "global_size")
        lsz = _normalize(local_size, "local_size")
        if len(gsz) != len(lsz):
            raise InvalidNDRangeError(
                f"global_size and local_size must have the same rank "
                f"({len(gsz)} vs {len(lsz)})"
            )
        for dim, (g, local) in enumerate(zip(gsz, lsz)):
            if g % local != 0:
                raise InvalidWorkGroupSizeError(
                    f"local size {local} does not divide global size {g} "
                    f"in dimension {dim}"
                )
        object.__setattr__(self, "global_size", gsz)
        object.__setattr__(self, "local_size", lsz)

    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """Number of dimensions (1-3)."""
        return len(self.global_size)

    @property
    def total_work_items(self) -> int:
        """Total number of work-items in the NDRange."""
        total = 1
        for g in self.global_size:
            total *= g
        return total

    @property
    def work_group_size(self) -> int:
        """Number of work-items per work group."""
        total = 1
        for local in self.local_size:
            total *= local
        return total

    @property
    def num_groups(self) -> tuple[int, ...]:
        """Number of work groups along each dimension."""
        return tuple(g // local for g, local in zip(self.global_size, self.local_size))

    @property
    def total_groups(self) -> int:
        """Total number of work groups."""
        total = 1
        for n in self.num_groups:
            total *= n
        return total

    # ------------------------------------------------------------------
    def validate_for_device(self, device: Device) -> None:
        """Check device limits (maximum work-group size, wavefront alignment).

        Raises :class:`InvalidWorkGroupSizeError` when the configuration
        cannot be launched on ``device``.
        """
        if self.work_group_size > device.max_work_group_size:
            raise InvalidWorkGroupSizeError(
                f"work-group size {self.work_group_size} exceeds device limit "
                f"{device.max_work_group_size}"
            )

    def waves_per_group(self, device: Device) -> int:
        """Number of wavefronts needed to cover one work group on ``device``."""
        wave = device.wavefront_size
        return (self.work_group_size + wave - 1) // wave

    # ------------------------------------------------------------------
    def group_ids(self) -> Iterator[tuple[int, ...]]:
        """Iterate over all work-group ids in row-major order (dim 0 fastest)."""
        counts = self.num_groups
        if self.rank == 1:
            for x in range(counts[0]):
                yield (x,)
        elif self.rank == 2:
            for y in range(counts[1]):
                for x in range(counts[0]):
                    yield (x, y)
        else:
            for z in range(counts[2]):
                for y in range(counts[1]):
                    for x in range(counts[0]):
                        yield (x, y, z)

    def work_items_in_group(self, group_id: Sequence[int]) -> Iterator[WorkItemId]:
        """Iterate over the work-items of one work group."""
        gid = tuple(int(v) for v in group_id)
        if len(gid) != self.rank:
            raise InvalidNDRangeError(
                f"group id rank {len(gid)} does not match NDRange rank {self.rank}"
            )
        counts = self.num_groups
        for dim, (g, n) in enumerate(zip(gid, counts)):
            if not 0 <= g < n:
                raise InvalidNDRangeError(
                    f"group id {gid} out of range {counts} in dimension {dim}"
                )
        local_ranges = [range(extent) for extent in self.local_size]
        if self.rank == 1:
            for lx in local_ranges[0]:
                yield WorkItemId(
                    global_id=(gid[0] * self.local_size[0] + lx,),
                    local_id=(lx,),
                    group_id=gid,
                )
        elif self.rank == 2:
            for ly in local_ranges[1]:
                for lx in local_ranges[0]:
                    yield WorkItemId(
                        global_id=(
                            gid[0] * self.local_size[0] + lx,
                            gid[1] * self.local_size[1] + ly,
                        ),
                        local_id=(lx, ly),
                        group_id=gid,
                    )
        else:
            for lz in local_ranges[2]:
                for ly in local_ranges[1]:
                    for lx in local_ranges[0]:
                        yield WorkItemId(
                            global_id=(
                                gid[0] * self.local_size[0] + lx,
                                gid[1] * self.local_size[1] + ly,
                                gid[2] * self.local_size[2] + lz,
                            ),
                            local_id=(lx, ly, lz),
                            group_id=gid,
                        )

    def work_items(self) -> Iterator[WorkItemId]:
        """Iterate over every work-item in the NDRange, group by group."""
        for gid in self.group_ids():
            yield from self.work_items_in_group(gid)

    # ------------------------------------------------------------------
    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"NDRange(global={self.global_size}, local={self.local_size})"


def ndrange_2d(width: int, height: int, local_x: int, local_y: int) -> NDRange:
    """Convenience constructor for the common 2D image-kernel launch."""
    return NDRange((width, height), (local_x, local_y))
