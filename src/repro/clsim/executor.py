"""Functional execution of kernels over an NDRange.

The executor runs a kernel work group by work group, delegating the
per-group execution to a pluggable :class:`~repro.clsim.backends.ExecutionBackend`:

* the default ``"interpreter"`` backend advances every work-item as a
  Python generator in lock-step between barriers (kernel bodies yield
  :data:`~repro.clsim.kernel.BARRIER` at synchronisation points) — the
  reference execution model;
* the ``"vectorized"`` backend executes a whole work group as batched
  NumPy operations lowered from the kernellang AST — bit-identical outputs
  and access counters, orders of magnitude faster;
* the ``"codegen"`` backend lowers each (kernel, work-group shape) pair
  once to specialized Python/NumPy source, compiled and cached on disk —
  the fastest path for repeated launches, same conformance contract.

Either way the executor owns the launch bookkeeping: device validation,
local-memory lifecycle, and the aggregation of the
:class:`ExecutionStats` access counters (the analytical timing model
handles performance separately).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..obs.trace import get_tracer
from .backends import ExecutionBackend, resolve_backend
from .device import Device, firepro_w5100
from .errors import KernelExecutionError
from .kernel import Kernel
from .kernel import KernelContext
from .memory import AccessCounters, Buffer, LocalMemory, SegmentedBuffer
from .ndrange import NDRange


@dataclass
class ExecutionStats:
    """Aggregate access statistics of one kernel launch."""

    work_items: int = 0
    work_groups: int = 0
    barriers: int = 0
    global_counters: AccessCounters = field(default_factory=AccessCounters)
    local_counters: AccessCounters = field(default_factory=AccessCounters)
    private_counters: AccessCounters = field(default_factory=AccessCounters)

    @property
    def global_accesses(self) -> int:
        return self.global_counters.total

    @property
    def local_accesses(self) -> int:
        return self.local_counters.total

    def merge(self, other: "ExecutionStats") -> None:
        """Accumulate another launch's statistics into this one."""
        self.work_items += other.work_items
        self.work_groups += other.work_groups
        self.barriers += other.barriers
        self.global_counters.merge(other.global_counters)
        self.local_counters.merge(other.local_counters)
        self.private_counters.merge(other.private_counters)


class Executor:
    """Runs kernels functionally on a simulated device.

    Parameters
    ----------
    device:
        Device profile to validate launches against (default: the paper's
        FirePro W5100).
    backend:
        Execution backend: a registered name (``"interpreter"``,
        ``"vectorized"``, ``"codegen"``), an :class:`ExecutionBackend`
        instance, or ``None`` for the default interpreter backend.
    """

    def __init__(
        self,
        device: Device | None = None,
        backend: ExecutionBackend | str | None = None,
    ) -> None:
        self.device = device or firepro_w5100()
        self.backend = resolve_backend(backend)

    # ------------------------------------------------------------------
    def run(
        self,
        kernel: Kernel,
        ndrange: NDRange,
        args: Mapping[str, object] | Sequence[object],
    ) -> ExecutionStats:
        """Execute ``kernel`` over ``ndrange`` with the given arguments.

        Buffer contents are updated in place; the returned
        :class:`ExecutionStats` aggregates the memory-access counters of the
        launch (useful for validating traffic profiles against the
        functional execution).
        """
        tracer = get_tracer()
        start_ns = time.monotonic_ns() if tracer.enabled else 0
        ndrange.validate_for_device(self.device)
        bound = kernel.bind_args(args)
        stats = ExecutionStats()

        # Snapshot buffer counters so the stats reflect only this launch.
        buffers = [v for v in bound.values() if hasattr(v, "counters")]
        before = [(b, b.counters.reads, b.counters.writes) for b in buffers]

        local = LocalMemory(self.device.local_mem_per_cu)
        for group_id in ndrange.group_ids():
            local.reset()
            ctx = KernelContext(
                args=dict(bound), local=local, ndrange=ndrange, group_id=group_id
            )
            stats.barriers += self.backend.run_group(kernel, ctx, ndrange, group_id)
            stats.work_groups += 1
            stats.local_counters.merge(local.counters)
            for private in ctx.private.values():
                stats.private_counters.merge(private.counters)

        stats.work_items = ndrange.total_work_items
        for buf, reads0, writes0 in before:
            stats.global_counters.reads += buf.counters.reads - reads0
            stats.global_counters.writes += buf.counters.writes - writes0
        if tracer.enabled:
            tracer.record(
                "clsim.launch",
                category="launch",
                start_ns=start_ns,
                duration_ns=time.monotonic_ns() - start_ns,
                kernel=kernel.name,
                backend=self.backend.name,
                work_items=stats.work_items,
                work_groups=stats.work_groups,
                barriers=stats.barriers,
                global_accesses=stats.global_accesses,
                local_accesses=stats.local_accesses,
            )
        return stats

    # ------------------------------------------------------------------
    def run_batch(
        self,
        kernel: Kernel,
        ndrange: NDRange,
        args_batch: Sequence[Mapping[str, object] | Sequence[object]],
    ) -> ExecutionStats:
        """Execute one kernel over several compatible argument bindings.

        All launches share the NDRange; every pointer argument must bind to
        identically shaped (and typed) buffers and every scalar argument to
        identical values across the batch.  On a backend that supports
        batching, the per-request buffers are stacked into
        :class:`~repro.clsim.memory.SegmentedBuffer` arenas and the whole
        batch executes as *one* launch — each work group runs the stacked
        lanes of every request together, which amortises the per-group
        interpretation overhead.  Outputs are written back to the caller's
        buffers and are bit-identical to running the launches one by one;
        the returned :class:`ExecutionStats` equal the *sum* of the
        individual launches' stats.  Backends without batching support fall
        back to exactly that serial loop.
        """
        args_batch = list(args_batch)
        if not args_batch:
            raise KernelExecutionError("run_batch requires at least one launch")
        if len(args_batch) == 1 or not self.backend.supports_batching:
            stats = ExecutionStats()
            for args in args_batch:
                stats.merge(self.run(kernel, ndrange, args))
            return stats

        tracer = get_tracer()
        start_ns = time.monotonic_ns() if tracer.enabled else 0
        ndrange.validate_for_device(self.device)
        batch = len(args_batch)
        bound_batch = [kernel.bind_args(args) for args in args_batch]
        first = bound_batch[0]

        # Stack the per-request buffers into segmented arenas; scalars must
        # agree across the batch (they are broadcast lane-wide).
        stacked: dict[str, object] = {}
        buffer_names: list[str] = []
        for name, value in first.items():
            if isinstance(value, Buffer):
                for bound in bound_batch[1:]:
                    other = bound[name]
                    if (
                        not isinstance(other, Buffer)
                        or other.shape != value.shape
                        or other.dtype != value.dtype
                    ):
                        raise KernelExecutionError(
                            f"batched launch requires identically shaped/typed "
                            f"buffers for argument {name!r}"
                        )
                arena = np.concatenate(
                    [bound[name].array.reshape(-1) for bound in bound_batch]
                )
                stacked[name] = SegmentedBuffer(
                    arena, name=name, segment_elements=value.size, batch=batch
                )
                buffer_names.append(name)
            else:
                for bound in bound_batch[1:]:
                    if bound[name] != value:
                        raise KernelExecutionError(
                            f"batched launch requires identical scalar values "
                            f"for argument {name!r} "
                            f"({value!r} vs {bound[name]!r})"
                        )
                stacked[name] = value

        stats = ExecutionStats()
        arenas = [stacked[name] for name in buffer_names]
        before = [(b, b.counters.reads, b.counters.writes) for b in arenas]

        # Each request's group still fits the per-CU budget on its own (its
        # tiles are exactly those of an individual launch); the stacked
        # group co-locates ``batch`` such groups, so it gets their combined
        # budget.
        local = LocalMemory(self.device.local_mem_per_cu * batch)
        for group_id in ndrange.group_ids():
            local.reset()
            ctx = KernelContext(
                args=dict(stacked), local=local, ndrange=ndrange, group_id=group_id
            )
            stats.barriers += self.backend.run_group_batch(
                kernel, ctx, ndrange, group_id, batch
            )
            stats.work_groups += batch
            stats.local_counters.merge(local.counters)
            for private in ctx.private.values():
                stats.private_counters.merge(private.counters)

        stats.work_items = batch * ndrange.total_work_items
        for arena, reads0, writes0 in before:
            stats.global_counters.reads += arena.counters.reads - reads0
            stats.global_counters.writes += arena.counters.writes - writes0

        # Scatter every arena segment back into the caller's buffers (only
        # outputs change, but copying all of them is cheap and assumes
        # nothing about which buffers a kernel writes).
        for name in buffer_names:
            arena = stacked[name]
            for index, bound in enumerate(bound_batch):
                np.copyto(bound[name].array.reshape(-1), arena.segment(index))
        if tracer.enabled:
            tracer.record(
                "clsim.launch_batch",
                category="launch",
                start_ns=start_ns,
                duration_ns=time.monotonic_ns() - start_ns,
                kernel=kernel.name,
                backend=self.backend.name,
                batch=batch,
                work_items=stats.work_items,
                work_groups=stats.work_groups,
                barriers=stats.barriers,
                global_accesses=stats.global_accesses,
                local_accesses=stats.local_accesses,
            )
        return stats
