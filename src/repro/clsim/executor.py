"""Functional execution of kernels over an NDRange.

The executor runs a kernel work group by work group, delegating the
per-group execution to a pluggable :class:`~repro.clsim.backends.ExecutionBackend`:

* the default ``"interpreter"`` backend advances every work-item as a
  Python generator in lock-step between barriers (kernel bodies yield
  :data:`~repro.clsim.kernel.BARRIER` at synchronisation points) — the
  reference execution model;
* the ``"vectorized"`` backend executes a whole work group as batched
  NumPy operations lowered from the kernellang AST — bit-identical outputs
  and access counters, orders of magnitude faster.

Either way the executor owns the launch bookkeeping: device validation,
local-memory lifecycle, and the aggregation of the
:class:`ExecutionStats` access counters (the analytical timing model
handles performance separately).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .backends import ExecutionBackend, resolve_backend
from .device import Device, firepro_w5100
from .kernel import Kernel
from .kernel import KernelContext
from .memory import AccessCounters, LocalMemory
from .ndrange import NDRange


@dataclass
class ExecutionStats:
    """Aggregate access statistics of one kernel launch."""

    work_items: int = 0
    work_groups: int = 0
    barriers: int = 0
    global_counters: AccessCounters = field(default_factory=AccessCounters)
    local_counters: AccessCounters = field(default_factory=AccessCounters)
    private_counters: AccessCounters = field(default_factory=AccessCounters)

    @property
    def global_accesses(self) -> int:
        return self.global_counters.total

    @property
    def local_accesses(self) -> int:
        return self.local_counters.total


class Executor:
    """Runs kernels functionally on a simulated device.

    Parameters
    ----------
    device:
        Device profile to validate launches against (default: the paper's
        FirePro W5100).
    backend:
        Execution backend: a registered name (``"interpreter"``,
        ``"vectorized"``), an :class:`ExecutionBackend` instance, or
        ``None`` for the default interpreter backend.
    """

    def __init__(
        self,
        device: Device | None = None,
        backend: ExecutionBackend | str | None = None,
    ) -> None:
        self.device = device or firepro_w5100()
        self.backend = resolve_backend(backend)

    # ------------------------------------------------------------------
    def run(
        self,
        kernel: Kernel,
        ndrange: NDRange,
        args: Mapping[str, object] | Sequence[object],
    ) -> ExecutionStats:
        """Execute ``kernel`` over ``ndrange`` with the given arguments.

        Buffer contents are updated in place; the returned
        :class:`ExecutionStats` aggregates the memory-access counters of the
        launch (useful for validating traffic profiles against the
        functional execution).
        """
        ndrange.validate_for_device(self.device)
        bound = kernel.bind_args(args)
        stats = ExecutionStats()

        # Snapshot buffer counters so the stats reflect only this launch.
        buffers = [v for v in bound.values() if hasattr(v, "counters")]
        before = [(b, b.counters.reads, b.counters.writes) for b in buffers]

        local = LocalMemory(self.device.local_mem_per_cu)
        for group_id in ndrange.group_ids():
            local.reset()
            ctx = KernelContext(
                args=dict(bound), local=local, ndrange=ndrange, group_id=group_id
            )
            stats.barriers += self.backend.run_group(kernel, ctx, ndrange, group_id)
            stats.work_groups += 1
            stats.local_counters.merge(local.counters)
            for private in ctx.private.values():
                stats.private_counters.merge(private.counters)

        stats.work_items = ndrange.total_work_items
        for buf, reads0, writes0 in before:
            stats.global_counters.reads += buf.counters.reads - reads0
            stats.global_counters.writes += buf.counters.writes - writes0
        return stats
