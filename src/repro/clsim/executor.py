"""Functional execution of kernels over an NDRange.

The executor runs a kernel work group by work group.  Within a work group
all work-items advance in lock-step between barriers: kernel bodies written
as generators yield :data:`~repro.clsim.kernel.BARRIER` at synchronisation
points, and the executor only resumes work-items once every member of the
group has reached the barrier.  This reproduces the OpenCL execution model
closely enough to validate the perforation/reconstruction transformations
functionally (the analytical timing model handles performance separately).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .device import Device, firepro_w5100
from .errors import BarrierDivergenceError, KernelExecutionError
from .kernel import BARRIER, Kernel, KernelContext
from .memory import AccessCounters, LocalMemory
from .ndrange import NDRange


@dataclass
class ExecutionStats:
    """Aggregate access statistics of one kernel launch."""

    work_items: int = 0
    work_groups: int = 0
    barriers: int = 0
    global_counters: AccessCounters = field(default_factory=AccessCounters)
    local_counters: AccessCounters = field(default_factory=AccessCounters)
    private_counters: AccessCounters = field(default_factory=AccessCounters)

    @property
    def global_accesses(self) -> int:
        return self.global_counters.total

    @property
    def local_accesses(self) -> int:
        return self.local_counters.total


class Executor:
    """Runs kernels functionally on a simulated device."""

    def __init__(self, device: Device | None = None) -> None:
        self.device = device or firepro_w5100()

    # ------------------------------------------------------------------
    def run(
        self,
        kernel: Kernel,
        ndrange: NDRange,
        args: Mapping[str, object] | Sequence[object],
    ) -> ExecutionStats:
        """Execute ``kernel`` over ``ndrange`` with the given arguments.

        Buffer contents are updated in place; the returned
        :class:`ExecutionStats` aggregates the memory-access counters of the
        launch (useful for validating traffic profiles against the
        functional execution).
        """
        ndrange.validate_for_device(self.device)
        bound = kernel.bind_args(args)
        stats = ExecutionStats()

        # Snapshot buffer counters so the stats reflect only this launch.
        buffers = [v for v in bound.values() if hasattr(v, "counters")]
        before = [(b, b.counters.reads, b.counters.writes) for b in buffers]

        local = LocalMemory(self.device.local_mem_per_cu)
        for group_id in ndrange.group_ids():
            local.reset()
            ctx = KernelContext(
                args=dict(bound), local=local, ndrange=ndrange, group_id=group_id
            )
            stats.barriers += self._run_group(kernel, ctx, ndrange, group_id)
            stats.work_groups += 1
            stats.local_counters.merge(local.counters)
            for private in ctx.private.values():
                stats.private_counters.merge(private.counters)

        stats.work_items = ndrange.total_work_items
        for buf, reads0, writes0 in before:
            stats.global_counters.reads += buf.counters.reads - reads0
            stats.global_counters.writes += buf.counters.writes - writes0
        return stats

    # ------------------------------------------------------------------
    def _run_group(
        self,
        kernel: Kernel,
        ctx: KernelContext,
        ndrange: NDRange,
        group_id: tuple[int, ...],
    ) -> int:
        """Run all work-items of one group; returns the number of barriers."""
        work_items = list(ndrange.work_items_in_group(group_id))
        if not inspect.isgeneratorfunction(kernel.body):
            for wi in work_items:
                try:
                    kernel.body(ctx, wi)
                except KernelExecutionError:
                    raise
                except Exception as exc:  # pragma: no cover - defensive
                    raise KernelExecutionError(
                        f"kernel {kernel.name!r} failed for work-item {wi.global_id}: {exc}"
                    ) from exc
            return 0

        generators = []
        for wi in work_items:
            try:
                generators.append((wi, kernel.body(ctx, wi)))
            except Exception as exc:  # pragma: no cover - defensive
                raise KernelExecutionError(
                    f"kernel {kernel.name!r} failed to start for work-item "
                    f"{wi.global_id}: {exc}"
                ) from exc

        barriers = 0
        active = generators
        while active:
            still_running = []
            finished = []
            for wi, gen in active:
                try:
                    value = next(gen)
                except StopIteration:
                    finished.append((wi, gen))
                    continue
                except Exception as exc:
                    raise KernelExecutionError(
                        f"kernel {kernel.name!r} failed for work-item {wi.global_id}: {exc}"
                    ) from exc
                if value is not BARRIER and value != BARRIER:
                    raise KernelExecutionError(
                        f"kernel {kernel.name!r} yielded unexpected value {value!r}; "
                        f"kernels may only yield BARRIER"
                    )
                still_running.append((wi, gen))
            if still_running and finished:
                raise BarrierDivergenceError(
                    f"kernel {kernel.name!r}: work-items of group {group_id} reached "
                    f"different numbers of barriers"
                )
            if still_running:
                barriers += 1
            active = still_running
        return barriers
