"""Memory objects for the simulator: global buffers, local memory tiles and
per-work-item private memory, with access accounting.

The paper's technique is entirely about *where* data lives (global vs.
local memory) and *how much* of it is fetched.  The simulator therefore
tracks, for every buffer, the number of read/written elements, which the
timing model later converts into memory transactions and bandwidth cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from .errors import (
    BufferOutOfBoundsError,
    BufferSizeError,
    LocalMemoryExceededError,
)


class AddressSpace:
    """OpenCL address-space qualifiers."""

    GLOBAL = "global"
    LOCAL = "local"
    PRIVATE = "private"
    CONSTANT = "constant"

    ALL = (GLOBAL, LOCAL, PRIVATE, CONSTANT)


@dataclass
class AccessCounters:
    """Read/write element counters for a memory object."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0

    def merge(self, other: "AccessCounters") -> None:
        self.reads += other.reads
        self.writes += other.writes


class Buffer:
    """A global-memory buffer backed by a NumPy array.

    The buffer wraps an ``ndarray`` and counts element accesses.  Kernels
    written against the functional executor use :meth:`read` / :meth:`write`
    (bounds-checked, counted); NumPy-vectorised application code can access
    :attr:`array` directly and record traffic via :meth:`record_reads` /
    :meth:`record_writes`.
    """

    def __init__(self, array: np.ndarray, name: str = "buffer") -> None:
        if array.size == 0:
            raise BufferSizeError(f"buffer {name!r} must not be empty")
        # C order, always: the executors address buffers through a flat
        # ``reshape(-1)`` view, which would silently detach into a copy for
        # Fortran-ordered arrays (losing every store).
        self._array = np.array(array, copy=True, order="C")
        self.name = name
        self.counters = AccessCounters()

    # ------------------------------------------------------------------
    @classmethod
    def empty_like(cls, other: "Buffer", name: str = "output") -> "Buffer":
        """Create a zero-initialised buffer with the same shape/dtype."""
        return cls(np.zeros_like(other.array), name=name)

    @classmethod
    def zeros(cls, shape: Iterable[int], dtype=np.float32, name: str = "buffer") -> "Buffer":
        """Create a zero-initialised buffer."""
        return cls(np.zeros(tuple(shape), dtype=dtype), name=name)

    # ------------------------------------------------------------------
    @property
    def array(self) -> np.ndarray:
        """The backing array (direct access does not update counters)."""
        return self._array

    @property
    def shape(self) -> tuple[int, ...]:
        return self._array.shape

    @property
    def dtype(self) -> np.dtype:
        return self._array.dtype

    @property
    def itemsize(self) -> int:
        """Size of one element in bytes."""
        return int(self._array.itemsize)

    @property
    def size(self) -> int:
        """Number of elements."""
        return int(self._array.size)

    @property
    def nbytes(self) -> int:
        """Total size in bytes."""
        return int(self._array.nbytes)

    # ------------------------------------------------------------------
    def _check_index(self, index: tuple[int, ...] | int) -> tuple[int, ...]:
        if isinstance(index, (int, np.integer)):
            index = (int(index),)
        else:
            index = tuple(int(i) for i in index)
        if len(index) != self._array.ndim:
            raise BufferOutOfBoundsError(
                f"buffer {self.name!r}: index rank {len(index)} does not match "
                f"buffer rank {self._array.ndim}"
            )
        for dim, (i, n) in enumerate(zip(index, self._array.shape)):
            if not 0 <= i < n:
                raise BufferOutOfBoundsError(
                    f"buffer {self.name!r}: index {index} out of bounds for shape "
                    f"{self._array.shape} (dimension {dim})"
                )
        return index

    def read(self, index) -> float:
        """Bounds-checked, counted element read."""
        idx = self._check_index(index)
        self.counters.reads += 1
        return self._array[idx]

    def write(self, index, value) -> None:
        """Bounds-checked, counted element write."""
        idx = self._check_index(index)
        self.counters.writes += 1
        self._array[idx] = value

    def read_clamped(self, index) -> float:
        """Read with indices clamped to the valid range (CLK_ADDRESS_CLAMP_TO_EDGE)."""
        if isinstance(index, (int, np.integer)):
            index = (int(index),)
        idx = tuple(
            min(max(int(i), 0), n - 1) for i, n in zip(index, self._array.shape)
        )
        self.counters.reads += 1
        return self._array[idx]

    # ------------------------------------------------------------------
    def record_reads(self, count: int) -> None:
        """Record ``count`` element reads performed through :attr:`array`."""
        self.counters.reads += int(count)

    def record_writes(self, count: int) -> None:
        """Record ``count`` element writes performed through :attr:`array`."""
        self.counters.writes += int(count)

    def reset_counters(self) -> None:
        self.counters.reset()

    def copy_array(self) -> np.ndarray:
        """Return a copy of the backing array."""
        return np.array(self._array, copy=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Buffer(name={self.name!r}, shape={self.shape}, dtype={self.dtype}, "
            f"reads={self.counters.reads}, writes={self.counters.writes})"
        )


class SegmentedBuffer(Buffer):
    """A buffer holding ``batch`` equally sized request segments back to back.

    Batched kernel launches (:meth:`repro.clsim.executor.Executor.run_batch`)
    stack the per-request buffers of several compatible launches into one
    contiguous array; request ``r`` owns elements
    ``[r * segment_elements, (r + 1) * segment_elements)``.  Execution
    backends that support batching add a per-lane segment base offset to
    every index, so each request only ever addresses its own segment.
    """

    def __init__(
        self, array: np.ndarray, name: str, segment_elements: int, batch: int
    ) -> None:
        super().__init__(array, name=name)
        if segment_elements <= 0 or batch <= 0:
            raise BufferSizeError(
                f"segmented buffer {name!r} needs positive segment/batch, got "
                f"{segment_elements}/{batch}"
            )
        if self.size != segment_elements * batch:
            raise BufferSizeError(
                f"segmented buffer {name!r} has {self.size} elements, expected "
                f"{segment_elements} x {batch}"
            )
        self.segment_elements = int(segment_elements)
        self.batch = int(batch)

    def segment(self, index: int) -> np.ndarray:
        """Flat view of one request's segment."""
        if not 0 <= index < self.batch:
            raise BufferOutOfBoundsError(
                f"segmented buffer {self.name!r}: segment {index} out of range "
                f"[0, {self.batch})"
            )
        n = self.segment_elements
        return self.array.reshape(-1)[index * n : (index + 1) * n]


class LocalMemory:
    """Per-work-group local (LDS / shared) memory.

    A :class:`LocalMemory` instance is created per work group by the
    executor.  Allocations are named 2D/1D tiles; the total allocation is
    checked against the device's per-CU local memory budget.
    """

    def __init__(self, capacity_bytes: int) -> None:
        self.capacity_bytes = int(capacity_bytes)
        self._tiles: dict[str, np.ndarray] = {}
        self.counters = AccessCounters()

    # ------------------------------------------------------------------
    @property
    def allocated_bytes(self) -> int:
        return sum(int(t.nbytes) for t in self._tiles.values())

    def allocate(self, name: str, shape: Iterable[int], dtype=np.float32) -> np.ndarray:
        """Allocate (or return an existing) named tile of local memory."""
        if name in self._tiles:
            return self._tiles[name]
        tile = np.zeros(tuple(int(s) for s in shape), dtype=dtype)
        if self.allocated_bytes + tile.nbytes > self.capacity_bytes:
            raise LocalMemoryExceededError(
                f"local allocation {name!r} of {tile.nbytes} B exceeds remaining "
                f"capacity ({self.capacity_bytes - self.allocated_bytes} B of "
                f"{self.capacity_bytes} B)"
            )
        self._tiles[name] = tile
        return tile

    def tile(self, name: str) -> np.ndarray:
        """Return a previously allocated tile."""
        return self._tiles[name]

    def has_tile(self, name: str) -> bool:
        return name in self._tiles

    # ------------------------------------------------------------------
    def read(self, name: str, index) -> float:
        """Counted element read from a tile."""
        tile = self._tiles[name]
        self.counters.reads += 1
        return tile[tuple(int(i) for i in np.atleast_1d(index))]

    def write(self, name: str, index, value) -> None:
        """Counted element write to a tile."""
        tile = self._tiles[name]
        self.counters.writes += 1
        tile[tuple(int(i) for i in np.atleast_1d(index))] = value

    def record_reads(self, count: int) -> None:
        self.counters.reads += int(count)

    def record_writes(self, count: int) -> None:
        self.counters.writes += int(count)

    def reset(self) -> None:
        """Clear all tiles and counters (reuse between work groups)."""
        self._tiles.clear()
        self.counters.reset()


@dataclass
class PrivateMemory:
    """Per-work-item private memory (registers / scratch).

    Only the access count matters for the timing model; values live in a
    plain dict keyed by variable name.
    """

    values: dict[str, object] = field(default_factory=dict)
    counters: AccessCounters = field(default_factory=AccessCounters)

    def store(self, name: str, value) -> None:
        self.counters.writes += 1
        self.values[name] = value

    def load(self, name: str):
        self.counters.reads += 1
        return self.values[name]

    def __contains__(self, name: str) -> bool:
        return name in self.values


def transactions_for_row_segment(
    num_elements: int, itemsize: int, transaction_bytes: int
) -> int:
    """Number of memory transactions needed for ``num_elements`` contiguous
    elements of ``itemsize`` bytes, with a transaction granularity of
    ``transaction_bytes``.

    This is the fundamental coalescing quantity used throughout the timing
    model: a row-contiguous segment of N elements costs
    ``ceil(N * itemsize / transaction_bytes)`` transactions, and every
    transaction moves a full ``transaction_bytes`` regardless of how many of
    its bytes are useful.
    """
    if num_elements <= 0:
        return 0
    bytes_needed = num_elements * itemsize
    return (bytes_needed + transaction_bytes - 1) // transaction_bytes
