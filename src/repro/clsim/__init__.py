"""``repro.clsim`` — an OpenCL-like GPU simulator.

The simulator has two independent halves:

* a **functional executor** (:class:`Executor`, :class:`CommandQueue`) that
  runs per-work-item kernel bodies with work groups, barriers, global
  buffers, local and private memory — used to validate that perforated
  kernels compute what we claim they compute; and
* an **analytical timing model** (:class:`TimingModel`) that estimates
  kernel runtimes from traffic profiles (DRAM transactions with coalescing,
  cache and LDS traffic, ALU work, occupancy) — used to reproduce the
  paper's speedup numbers.

The default device profile approximates the AMD FirePro W5100 used in the
paper's evaluation.
"""

from .backends import (
    DEFAULT_BACKEND,
    EXECUTION_BACKENDS,
    ExecutionBackend,
    InterpreterBackend,
    VectorizedBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from .device import (
    Device,
    available_devices,
    firepro_w5100,
    generic_hbm_gpu,
    get_device,
    low_bandwidth_igpu,
)
from .errors import (
    BarrierDivergenceError,
    BufferOutOfBoundsError,
    BufferSizeError,
    ClSimError,
    InvalidBackendError,
    InvalidDeviceError,
    InvalidNDRangeError,
    InvalidWorkGroupSizeError,
    KernelArgumentError,
    KernelExecutionError,
    LocalMemoryExceededError,
    ProfilingError,
)
from .executor import ExecutionStats, Executor
from .kernel import BARRIER, Kernel, KernelContext
from .memory import (
    AccessCounters,
    AddressSpace,
    Buffer,
    LocalMemory,
    PrivateMemory,
    transactions_for_row_segment,
)
from .ndrange import NDRange, WorkItemId, ndrange_2d
from .queue import CommandQueue, Event
from .timing import (
    AccessPattern,
    GlobalTraffic,
    KernelProfile,
    TimingBreakdown,
    TimingModel,
    per_item_traffic,
    tile_traffic,
)

__all__ = [
    "InvalidBackendError",
    "resolve_backend",
    "register_backend",
    "get_backend",
    "available_backends",
    "VectorizedBackend",
    "InterpreterBackend",
    "ExecutionBackend",
    "EXECUTION_BACKENDS",
    "DEFAULT_BACKEND",
    "AccessCounters",
    "AccessPattern",
    "AddressSpace",
    "BARRIER",
    "BarrierDivergenceError",
    "Buffer",
    "BufferOutOfBoundsError",
    "BufferSizeError",
    "ClSimError",
    "CommandQueue",
    "Device",
    "Event",
    "ExecutionStats",
    "Executor",
    "GlobalTraffic",
    "InvalidDeviceError",
    "InvalidNDRangeError",
    "InvalidWorkGroupSizeError",
    "Kernel",
    "KernelArgumentError",
    "KernelContext",
    "KernelExecutionError",
    "KernelProfile",
    "LocalMemory",
    "LocalMemoryExceededError",
    "NDRange",
    "PrivateMemory",
    "ProfilingError",
    "TimingBreakdown",
    "TimingModel",
    "WorkItemId",
    "available_devices",
    "firepro_w5100",
    "generic_hbm_gpu",
    "get_device",
    "low_bandwidth_igpu",
    "ndrange_2d",
    "per_item_traffic",
    "tile_traffic",
    "transactions_for_row_segment",
]
