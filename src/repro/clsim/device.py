"""GPU device models.

A :class:`Device` is a purely descriptive object: it captures the
architectural parameters that the analytical timing model
(:mod:`repro.clsim.timing`) needs to estimate kernel runtimes, together
with the capability limits the functional executor enforces (maximum
work-group size, local memory per compute unit, ...).

The default profile, :func:`firepro_w5100`, approximates the AMD FirePro
W5100 used in the paper's evaluation (GCN 1.0 "Bonaire", 12 compute units,
~96 GB/s GDDR5, 64 KiB LDS per CU).  Exact numbers do not matter for the
reproduction — the relative cost of global vs. local memory traffic and the
coalescing granularity are what shape the results — but keeping the profile
close to the real part makes the modelled speedups land in the same range
as the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api.registry import Registry
from .errors import InvalidDeviceError

#: Bytes fetched by one global-memory transaction (DRAM burst / cache line).
DEFAULT_TRANSACTION_BYTES = 64


@dataclass(frozen=True)
class Device:
    """An abstract GPU device description.

    Parameters mirror the OpenCL device-info queries plus a handful of
    micro-architectural constants used by the timing model.

    Attributes
    ----------
    name:
        Human-readable device name.
    compute_units:
        Number of compute units (CUs / SMs).
    clock_mhz:
        Core clock in MHz.
    wavefront_size:
        SIMD execution width (wavefront / warp size).
    max_work_group_size:
        Maximum number of work-items per work group.
    local_mem_per_cu:
        Local (LDS / shared) memory per compute unit, in bytes.
    global_mem_bytes:
        Total global memory, in bytes.
    global_bandwidth_gbps:
        Peak global-memory bandwidth in GB/s.
    global_latency_cycles:
        Unloaded global-memory access latency, in core cycles.
    local_latency_cycles:
        Local-memory access latency, in core cycles.
    local_bandwidth_bytes_per_cycle_per_cu:
        LDS bandwidth per compute unit (bytes per cycle).
    alu_ops_per_cycle_per_cu:
        Peak single-precision operations per cycle per compute unit.
    transaction_bytes:
        Global-memory transaction granularity (coalescing segment size).
    lds_banks:
        Number of LDS banks (bank conflicts are modelled coarsely).
    max_waves_per_cu:
        Maximum resident wavefronts per compute unit (occupancy ceiling).
    kernel_launch_overhead_us:
        Fixed host-side launch overhead per kernel, in microseconds.
    """

    name: str
    compute_units: int
    clock_mhz: float
    wavefront_size: int = 64
    max_work_group_size: int = 256
    local_mem_per_cu: int = 64 * 1024
    global_mem_bytes: int = 4 * 1024 ** 3
    global_bandwidth_gbps: float = 96.0
    global_latency_cycles: int = 400
    local_latency_cycles: int = 4
    local_bandwidth_bytes_per_cycle_per_cu: float = 128.0
    alu_ops_per_cycle_per_cu: float = 64.0
    transaction_bytes: int = DEFAULT_TRANSACTION_BYTES
    lds_banks: int = 32
    max_waves_per_cu: int = 40
    kernel_launch_overhead_us: float = 8.0

    def __post_init__(self) -> None:
        if self.compute_units <= 0:
            raise InvalidDeviceError("compute_units must be positive")
        if self.clock_mhz <= 0:
            raise InvalidDeviceError("clock_mhz must be positive")
        if self.wavefront_size <= 0 or self.wavefront_size & (self.wavefront_size - 1):
            raise InvalidDeviceError("wavefront_size must be a positive power of two")
        if self.max_work_group_size <= 0:
            raise InvalidDeviceError("max_work_group_size must be positive")
        if self.local_mem_per_cu <= 0:
            raise InvalidDeviceError("local_mem_per_cu must be positive")
        if self.global_bandwidth_gbps <= 0:
            raise InvalidDeviceError("global_bandwidth_gbps must be positive")
        if self.transaction_bytes <= 0:
            raise InvalidDeviceError("transaction_bytes must be positive")

    # ------------------------------------------------------------------
    # Derived quantities used by the timing model.
    # ------------------------------------------------------------------
    @property
    def clock_hz(self) -> float:
        """Core clock in Hz."""
        return self.clock_mhz * 1e6

    @property
    def cycle_time_s(self) -> float:
        """Duration of one core cycle in seconds."""
        return 1.0 / self.clock_hz

    @property
    def global_bandwidth_bytes_per_s(self) -> float:
        """Peak global bandwidth in bytes/second."""
        return self.global_bandwidth_gbps * 1e9

    @property
    def peak_flops(self) -> float:
        """Peak single-precision operation throughput (ops/second)."""
        return self.alu_ops_per_cycle_per_cu * self.compute_units * self.clock_hz

    @property
    def local_bandwidth_bytes_per_s(self) -> float:
        """Aggregate LDS bandwidth across all compute units (bytes/second)."""
        return (
            self.local_bandwidth_bytes_per_cycle_per_cu
            * self.compute_units
            * self.clock_hz
        )

    @property
    def global_latency_s(self) -> float:
        """Unloaded global-memory latency in seconds."""
        return self.global_latency_cycles * self.cycle_time_s

    def describe(self) -> str:
        """Return a short multi-line description of the device."""
        lines = [
            f"Device: {self.name}",
            f"  compute units      : {self.compute_units}",
            f"  clock              : {self.clock_mhz:.0f} MHz",
            f"  wavefront size     : {self.wavefront_size}",
            f"  max work-group size: {self.max_work_group_size}",
            f"  local mem / CU     : {self.local_mem_per_cu // 1024} KiB",
            f"  global memory      : {self.global_mem_bytes / 1024 ** 3:.1f} GiB",
            f"  global bandwidth   : {self.global_bandwidth_gbps:.0f} GB/s",
            f"  transaction size   : {self.transaction_bytes} B",
        ]
        return "\n".join(lines)


def firepro_w5100() -> Device:
    """Device profile approximating the AMD FirePro W5100 used in the paper."""
    return Device(
        name="AMD FirePro W5100 (simulated)",
        compute_units=12,
        clock_mhz=930.0,
        wavefront_size=64,
        max_work_group_size=256,
        local_mem_per_cu=64 * 1024,
        global_mem_bytes=int(3.5 * 1024 ** 3),
        global_bandwidth_gbps=96.0,
        global_latency_cycles=400,
        local_latency_cycles=4,
        local_bandwidth_bytes_per_cycle_per_cu=128.0,
        alu_ops_per_cycle_per_cu=128.0,
        transaction_bytes=64,
        lds_banks=32,
        max_waves_per_cu=40,
        kernel_launch_overhead_us=8.0,
    )


def generic_hbm_gpu() -> Device:
    """A modern high-bandwidth device profile (for sensitivity studies)."""
    return Device(
        name="Generic HBM GPU (simulated)",
        compute_units=60,
        clock_mhz=1400.0,
        wavefront_size=64,
        max_work_group_size=1024,
        local_mem_per_cu=64 * 1024,
        global_mem_bytes=16 * 1024 ** 3,
        global_bandwidth_gbps=900.0,
        global_latency_cycles=500,
        local_latency_cycles=4,
        local_bandwidth_bytes_per_cycle_per_cu=128.0,
        alu_ops_per_cycle_per_cu=128.0,
        transaction_bytes=64,
        lds_banks=32,
        max_waves_per_cu=40,
        kernel_launch_overhead_us=5.0,
    )


def low_bandwidth_igpu() -> Device:
    """An integrated-GPU-like profile with scarce bandwidth (for ablations)."""
    return Device(
        name="Low-bandwidth iGPU (simulated)",
        compute_units=8,
        clock_mhz=1100.0,
        wavefront_size=32,
        max_work_group_size=256,
        local_mem_per_cu=64 * 1024,
        global_mem_bytes=2 * 1024 ** 3,
        global_bandwidth_gbps=25.6,
        global_latency_cycles=300,
        local_latency_cycles=6,
        local_bandwidth_bytes_per_cycle_per_cu=64.0,
        alu_ops_per_cycle_per_cu=64.0,
        transaction_bytes=64,
        lds_banks=16,
        max_waves_per_cu=32,
        kernel_launch_overhead_us=10.0,
    )


#: Registry of device-profile factories.  New profiles can be added with
#: :func:`register_device` and are then resolvable by every engine:
#: ``PerforationEngine(device="my-gpu")``.
DEVICE_PROFILES: Registry = Registry("device profile", error=InvalidDeviceError)

DEVICE_PROFILES.register("firepro-w5100", firepro_w5100)
DEVICE_PROFILES.register("generic-hbm", generic_hbm_gpu)
DEVICE_PROFILES.register("low-bandwidth-igpu", low_bandwidth_igpu)


def register_device(name: str, factory=None, *, overwrite: bool = False):
    """Register a device-profile factory under ``name``.

    Usable directly (``register_device("my-gpu", make_gpu)``) or as a
    decorator (``@register_device("my-gpu")``).
    """
    return DEVICE_PROFILES.register(name, factory, overwrite=overwrite)


def available_devices() -> list[str]:
    """Names of the registered device profiles."""
    return DEVICE_PROFILES.names()


def get_device(name: str = "firepro-w5100") -> Device:
    """Look up a registered device profile by name.

    Raises
    ------
    InvalidDeviceError
        If ``name`` is not a known profile.
    """
    return DEVICE_PROFILES.get(name)()
