"""``repro.baselines`` — the approaches the paper compares against.

* :mod:`repro.baselines.paraprox` — Paraprox-style output approximation
  (Row/Col/Center schemes at two aggressiveness levels), used in the
  Figure 10 Pareto comparison;
* :mod:`repro.baselines.loop_perforation` — classic sequential loop
  perforation, used for the Section 4.1 exposition and the quick start.
"""

from .loop_perforation import (
    PerforationOutcome,
    accurate_loop,
    compare_strategies,
    input_perforation,
    output_perforation,
)
from .paraprox import (
    CENTER,
    COL,
    PARAPROX_SCHEMES,
    ParaproxResult,
    ParaproxScheme,
    ROW,
    approximate_output,
    evaluate_all_schemes,
    evaluate_paraprox,
    paraprox_output,
    paraprox_profile,
)

__all__ = [
    "CENTER",
    "COL",
    "PARAPROX_SCHEMES",
    "ParaproxResult",
    "ParaproxScheme",
    "PerforationOutcome",
    "ROW",
    "accurate_loop",
    "approximate_output",
    "compare_strategies",
    "evaluate_all_schemes",
    "evaluate_paraprox",
    "input_perforation",
    "output_perforation",
    "paraprox_output",
    "paraprox_profile",
]
