"""Classic (sequential) loop perforation.

Sidiroglou et al. introduced loop perforation for sequential loops; the
paper's Section 4.1 uses a small 1D example to explain the difference
between *output perforation* (skip iterations, copy results) and *input
perforation* (skip loads, reconstruct inputs, compute all results).  This
module implements both on plain Python/NumPy loops, serving as the
conceptual baseline and as the quick-start example of the library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.errors import ConfigurationError
from ..core.quality import mean_relative_error


@dataclass(frozen=True)
class PerforationOutcome:
    """Result of a perforated loop execution."""

    output: np.ndarray
    evaluations: int
    loads: int
    error: float

    @property
    def evaluation_savings(self) -> float:
        """Fraction of ``calc`` evaluations skipped relative to the accurate loop."""
        return 1.0 - self.evaluations / self.output.size

    @property
    def load_savings(self) -> float:
        """Fraction of input loads skipped relative to the accurate loop."""
        return 1.0 - self.loads / self.output.size


def accurate_loop(values: Sequence[float], calc: Callable[[float], float]) -> np.ndarray:
    """The accurate reference: ``output[i] = calc(input[i])`` for every i."""
    array = np.asarray(values, dtype=np.float64)
    return np.array([calc(v) for v in array], dtype=np.float64)


def output_perforation(
    values: Sequence[float], calc: Callable[[float], float], period: int = 3
) -> PerforationOutcome:
    """Skip iterations and copy the last computed result (Section 4.1).

    Every ``period``-th element is computed; the following ``period - 1``
    outputs are copies of it.  Both the loads and the evaluations shrink by
    the same factor, but the copied outputs carry the full error of being
    computed from the wrong input.
    """
    if period < 2:
        raise ConfigurationError("perforation period must be at least 2")
    array = np.asarray(values, dtype=np.float64)
    n = array.size
    output = np.empty(n, dtype=np.float64)
    evaluations = 0
    loads = 0
    for start in range(0, n, period):
        result = calc(array[start])
        evaluations += 1
        loads += 1
        end = min(start + period, n)
        output[start:end] = result
    reference = accurate_loop(array, calc)
    return PerforationOutcome(
        output=output,
        evaluations=evaluations,
        loads=loads,
        error=mean_relative_error(reference, output),
    )


def input_perforation(
    values: Sequence[float],
    calc: Callable[[float], float],
    period: int = 3,
    linear: bool = True,
) -> PerforationOutcome:
    """Skip loads, reconstruct the inputs, and compute every output.

    This is the 1D version of the paper's approach: the loads shrink by the
    perforation factor, but because every output is still computed from a
    (reconstructed) input, the error is much smaller than with output
    perforation — provided the input has some smoothness.
    """
    if period < 2:
        raise ConfigurationError("perforation period must be at least 2")
    array = np.asarray(values, dtype=np.float64)
    n = array.size
    loaded_idx = np.arange(0, n, period)
    loads = loaded_idx.size

    reconstructed = np.empty(n, dtype=np.float64)
    for i in range(n):
        below = (i // period) * period
        if linear and below + period <= loaded_idx[-1]:
            t = (i - below) / period
            reconstructed[i] = (1.0 - t) * array[below] + t * array[below + period]
        else:
            nearest = min(((i + period // 2) // period) * period, loaded_idx[-1])
            reconstructed[i] = array[nearest]
    reconstructed[loaded_idx] = array[loaded_idx]

    output = np.array([calc(v) for v in reconstructed], dtype=np.float64)
    reference = accurate_loop(array, calc)
    return PerforationOutcome(
        output=output,
        evaluations=n,
        loads=loads,
        error=mean_relative_error(reference, output),
    )


def compare_strategies(
    values: Sequence[float], calc: Callable[[float], float], period: int = 3
) -> dict[str, PerforationOutcome]:
    """Run output perforation and both input-perforation variants side by side."""
    return {
        "output-perforation": output_perforation(values, calc, period),
        "input-perforation-nn": input_perforation(values, calc, period, linear=False),
        "input-perforation-li": input_perforation(values, calc, period, linear=True),
    }
