"""Paraprox-style output approximation (the state-of-the-art baseline).

Paraprox [Samadi et al., ASPLOS 2014] approximates stencil kernels by
computing only a subset of the *output* elements and copying the computed
values to their neighbours (Figure 3 of the paper): the **Row** scheme
computes one row per block and copies it to the adjacent rows, **Col** does
the same with columns, and **Center** computes only the central element of
each block.  The paper compares against these schemes at two aggressiveness
levels: level 1 approximates 2 rows/columns per computed one (period 3) and
level 2 approximates 4 (period 5).

Functionally the approximation equals computing the accurate output and
replicating the computed rows/columns/centres; that is how the NumPy path
implements it.  The timing profile reflects Paraprox's key weakness that
motivates the paper: the *input* is still read in full (the computed
elements need their whole neighbourhood), so on memory-bound kernels the
speedup saturates while the error grows quickly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..clsim.device import Device, firepro_w5100
from ..clsim.ndrange import NDRange
from ..clsim.timing import (
    AccessPattern,
    GlobalTraffic,
    KernelProfile,
    TimingModel,
    per_item_traffic,
    tile_traffic,
)
from ..core.config import DEFAULT_WORK_GROUP
from ..core.errors import ConfigurationError
from ..core.pipeline import baseline_config_for
from ..core.quality import compute_error

#: Scheme kinds.
ROW = "rows"
COL = "cols"
CENTER = "center"

_KINDS = (ROW, COL, CENTER)


@dataclass(frozen=True)
class ParaproxScheme:
    """One Paraprox output-approximation scheme."""

    kind: str
    level: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(f"unknown Paraprox scheme kind {self.kind!r}")
        if self.level not in (1, 2):
            raise ConfigurationError("Paraprox aggressiveness level must be 1 or 2")

    @property
    def period(self) -> int:
        """Block size: 1 computed element per ``period`` rows/columns."""
        return 3 if self.level == 1 else 5

    @property
    def computed_fraction(self) -> float:
        """Fraction of output elements actually computed."""
        if self.kind == CENTER:
            return 1.0 / (self.period * self.period)
        return 1.0 / self.period

    @property
    def label(self) -> str:
        return f"{self.kind.capitalize()}{self.level}"

    def describe(self) -> str:
        approx = self.period - 1
        if self.kind == CENTER:
            return (
                f"{self.label}: compute the centre of every {self.period}x{self.period} "
                "block, copy it to the block"
            )
        return (
            f"{self.label}: compute 1 of every {self.period} {self.kind}, "
            f"copy it to the {approx} adjacent ones"
        )


#: The six Paraprox configurations of Figure 10 (three kinds x two levels).
PARAPROX_SCHEMES: tuple[ParaproxScheme, ...] = (
    ParaproxScheme(ROW, 1),
    ParaproxScheme(ROW, 2),
    ParaproxScheme(COL, 1),
    ParaproxScheme(COL, 2),
    ParaproxScheme(CENTER, 1),
    ParaproxScheme(CENTER, 2),
)


# ---------------------------------------------------------------------------
# Functional path
# ---------------------------------------------------------------------------
def _replicate_indices(length: int, period: int) -> np.ndarray:
    """Map every index to the computed index of its block.

    Paraprox-style generated code computes the first row/column of each
    block and copies it forward (``output[i+1] = output[i]`` in the paper's
    own Section 4.1 illustration of output perforation), so the copy
    distance grows up to ``period - 1`` — one source of the larger error of
    output approximation compared to input reconstruction.
    """
    blocks = np.arange(length) // period
    computed = blocks * period
    return np.clip(computed, 0, length - 1)


def approximate_output(accurate_output: np.ndarray, scheme: ParaproxScheme) -> np.ndarray:
    """Apply the output approximation to an accurate result."""
    output = np.asarray(accurate_output, dtype=np.float64)
    if output.ndim != 2:
        raise ConfigurationError("Paraprox output approximation expects 2D outputs")
    rows, cols = output.shape
    if scheme.kind == ROW:
        return output[_replicate_indices(rows, scheme.period), :]
    if scheme.kind == COL:
        return output[:, _replicate_indices(cols, scheme.period)]
    row_idx = _replicate_indices(rows, scheme.period)
    col_idx = _replicate_indices(cols, scheme.period)
    return output[np.ix_(row_idx, col_idx)]


def paraprox_output(app, inputs, scheme: ParaproxScheme) -> np.ndarray:
    """Run ``app`` under Paraprox output approximation."""
    return approximate_output(app.reference(inputs), scheme)


# ---------------------------------------------------------------------------
# Timing path
# ---------------------------------------------------------------------------
def paraprox_profile(
    app,
    scheme: ParaproxScheme,
    global_size: tuple[int, int],
    work_group: tuple[int, int] = DEFAULT_WORK_GROUP,
) -> tuple[KernelProfile, NDRange]:
    """Traffic/operation profile of the Paraprox-approximated kernel.

    Only the fraction of work-items that actually compute issues loads and
    arithmetic; the full output is still written and — crucially — the full
    input neighbourhood of every computed element is still fetched, so the
    unique DRAM footprint barely shrinks.  The column scheme additionally
    loses coalescing because the computed elements are spread across rows.
    """
    width, height = global_size
    tile_x, tile_y = work_group
    if width % tile_x or height % tile_y:
        raise ConfigurationError(
            f"work group {work_group} does not divide the global size {global_size}"
        )
    ndrange = NDRange((width, height), (tile_x, tile_y))
    fraction = scheme.computed_fraction

    traffic: list[GlobalTraffic] = []
    for spec in app.input_specs():
        reads_per_item = spec.reads_per_item * fraction
        if scheme.kind == COL and spec.halo == 0:
            # Strided single-element reads of the computed columns.
            loaded = tile_x * tile_y * fraction
            traffic.append(
                GlobalTraffic(
                    buffer=spec.name,
                    segments_per_group=loaded,
                    segment_elements=1.0,
                    element_bytes=app.element_bytes,
                    pattern=AccessPattern.STRIDED,
                )
            )
            continue
        if scheme.kind == COL and spec.halo > 0:
            # Short row segments around each computed column.
            columns = math.ceil(tile_x / scheme.period)
            segment = 2 * spec.halo + 1
            traffic.append(
                GlobalTraffic(
                    buffer=spec.name,
                    segments_per_group=float((tile_y + 2 * spec.halo) * columns),
                    segment_elements=float(segment),
                    element_bytes=app.element_bytes,
                    pattern=AccessPattern.ROW_CONTIGUOUS,
                )
            )
            continue
        if scheme.kind == ROW and spec.halo == 0:
            rows = math.ceil(tile_y / scheme.period)
            traffic.append(
                tile_traffic(
                    spec.name,
                    tile_x,
                    tile_y,
                    halo=0,
                    element_bytes=app.element_bytes,
                    rows_loaded_fraction=rows / tile_y,
                )
            )
            continue
        # Row and Center schemes on stencil inputs: the computed elements'
        # neighbourhoods still cover (almost) the whole tile.
        traffic.append(
            per_item_traffic(
                spec.name,
                tile_x,
                tile_y,
                elements_per_item=reads_per_item,
                halo=spec.halo,
                element_bytes=app.element_bytes,
            )
        )
    traffic.append(
        tile_traffic(
            "output", tile_x, tile_y, halo=0, element_bytes=app.element_bytes, is_store=True
        )
    )

    profile = KernelProfile(
        name=f"{app.name}:paraprox-{scheme.label}",
        traffic=tuple(traffic),
        flops_per_item=app.flops_per_item * fraction + 1.0,
        int_ops_per_item=app.int_ops_per_item,
        sfu_ops_per_item=app.sfu_ops_per_item * fraction,
        private_accesses_per_item=app.private_accesses_per_item * fraction,
        barriers_per_group=0.0,
        local_mem_bytes_per_group=0.0,
        # Copying outputs to neighbours diverges within the wavefront.
        divergence_factor=1.2,
    )
    return profile, ndrange


@dataclass(frozen=True)
class ParaproxResult:
    """Error and modelled performance of one Paraprox scheme on one input."""

    app_name: str
    scheme: ParaproxScheme
    error: float
    baseline_time_s: float
    approx_time_s: float

    @property
    def speedup(self) -> float:
        return self.baseline_time_s / self.approx_time_s

    @property
    def label(self) -> str:
        return self.scheme.label

    def describe(self) -> str:
        return (
            f"{self.app_name:<10s} paraprox {self.label:<8s} "
            f"error={self.error * 100:6.2f}%  speedup={self.speedup:5.2f}x"
        )


def evaluate_paraprox(
    app,
    inputs,
    scheme: ParaproxScheme,
    device: Device | None = None,
    reference: np.ndarray | None = None,
    work_group: tuple[int, int] = DEFAULT_WORK_GROUP,
) -> ParaproxResult:
    """Evaluate one Paraprox scheme on one input (error + modelled speedup)."""
    device = device or firepro_w5100()
    model = TimingModel(device)
    if reference is None:
        reference = app.reference(inputs)
    approximate = approximate_output(reference, scheme)
    error = compute_error(reference, approximate, app.error_metric)

    global_size = app.global_size(inputs)
    base_profile, base_nd = app.profile(baseline_config_for(app), global_size)
    approx_profile, approx_nd = paraprox_profile(app, scheme, global_size, work_group)
    baseline_time = model.estimate(base_profile, base_nd).total_time_s
    approx_time = model.estimate(approx_profile, approx_nd).total_time_s
    return ParaproxResult(
        app_name=app.name,
        scheme=scheme,
        error=error,
        baseline_time_s=baseline_time,
        approx_time_s=approx_time,
    )


def evaluate_all_schemes(
    app,
    inputs,
    device: Device | None = None,
    schemes: tuple[ParaproxScheme, ...] = PARAPROX_SCHEMES,
) -> list[ParaproxResult]:
    """Evaluate every Paraprox scheme on one input (Figure 10 baseline set)."""
    device = device or firepro_w5100()
    reference = app.reference(inputs)
    return [
        evaluate_paraprox(app, inputs, scheme, device=device, reference=reference)
        for scheme in schemes
    ]
